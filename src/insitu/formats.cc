#include "insitu/formats.h"

#include <fstream>

#include "common/byte_io.h"
#include "common/macros.h"
#include "storage/chunk_serde.h"

namespace scidb {

namespace {

constexpr uint32_t kSdbMagic = 0x53444246;  // "SDBF"
constexpr uint32_t kH5Magic = 0x53483546;   // "SH5F"
constexpr uint32_t kNcMagic = 0x534E4346;   // "SNCF"

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

void WriteSchemaTo(ByteWriter* w, const ArraySchema& s) {
  w->PutString(s.name());
  w->PutVarint(s.ndims());
  for (const auto& d : s.dims()) {
    w->PutString(d.name);
    w->PutSignedVarint(d.low);
    w->PutSignedVarint(d.high);
    w->PutSignedVarint(d.chunk_interval);
  }
  w->PutVarint(s.nattrs());
  for (const auto& a : s.attrs()) {
    w->PutString(a.name);
    w->PutU8(static_cast<uint8_t>(a.type));
    w->PutU8(a.uncertain ? 1 : 0);
  }
}

Result<ArraySchema> ReadSchemaFrom(ByteReader* r) {
  ASSIGN_OR_RETURN(std::string name, r->GetString());
  ASSIGN_OR_RETURN(uint64_t ndims, r->GetVarint());
  std::vector<DimensionDesc> dims;
  for (uint64_t i = 0; i < ndims; ++i) {
    DimensionDesc d;
    ASSIGN_OR_RETURN(d.name, r->GetString());
    ASSIGN_OR_RETURN(d.low, r->GetSignedVarint());
    ASSIGN_OR_RETURN(d.high, r->GetSignedVarint());
    ASSIGN_OR_RETURN(d.chunk_interval, r->GetSignedVarint());
    dims.push_back(std::move(d));
  }
  ASSIGN_OR_RETURN(uint64_t nattrs, r->GetVarint());
  std::vector<AttributeDesc> attrs;
  for (uint64_t i = 0; i < nattrs; ++i) {
    AttributeDesc a;
    ASSIGN_OR_RETURN(a.name, r->GetString());
    ASSIGN_OR_RETURN(uint8_t t, r->GetU8());
    a.type = static_cast<DataType>(t);
    ASSIGN_OR_RETURN(uint8_t unc, r->GetU8());
    a.uncertain = unc != 0;
    attrs.push_back(std::move(a));
  }
  return ArraySchema(std::move(name), std::move(dims), std::move(attrs));
}

}  // namespace

Result<MemArray> ExternalArraySource::ReadAll() const {
  ASSIGN_OR_RETURN(Box bounds, schema().Bounds());
  return ReadRegion(bounds);
}

// --------------------------------------------------------------- .sdb

Status WriteSciDbFile(const std::string& path, const MemArray& array,
                      CodecType codec) {
  // Serialize all chunks first so directory offsets are known.
  struct Entry {
    Box box;
    std::vector<uint8_t> payload;
  };
  std::vector<Entry> entries;
  for (const auto& [origin, chunk] : array.chunks()) {
    if (chunk->present_count() == 0) continue;
    entries.push_back({chunk->box(), Compress(codec, SerializeChunk(*chunk))});
  }

  ByteWriter header;
  header.PutU32(kSdbMagic);
  WriteSchemaTo(&header, array.schema());
  header.PutVarint(entries.size());
  // Directory sizes depend on offsets which depend on header size; write
  // the directory with placeholder-free two-pass sizing: first compute
  // directory bytes with offsets = 0 widths... simpler: use fixed-width
  // offsets.
  // Compute payload base = header bytes + directory bytes (fixed-width).
  size_t dir_bytes = 0;
  for (const auto& e : entries) {
    dir_bytes += 8;  // ndims as u64? use varint-free fixed encoding below
    dir_bytes += e.box.ndims() * 16;
    dir_bytes += 16;  // offset + size
  }
  uint64_t base = header.size() + dir_bytes;
  uint64_t off = base;
  ByteWriter dir;
  for (const auto& e : entries) {
    dir.PutU64(e.box.ndims());
    for (size_t d = 0; d < e.box.ndims(); ++d) {
      dir.PutI64(e.box.low[d]);
      dir.PutI64(e.box.high[d]);
    }
    dir.PutU64(off);
    dir.PutU64(e.payload.size());
    off += e.payload.size();
  }

  std::vector<uint8_t> bytes = header.Release();
  const auto& dbytes = dir.data();
  bytes.insert(bytes.end(), dbytes.begin(), dbytes.end());
  for (const auto& e : entries) {
    bytes.insert(bytes.end(), e.payload.begin(), e.payload.end());
  }
  return WriteFile(path, bytes);
}

Result<std::unique_ptr<SciDbFile>> SciDbFile::Open(const std::string& path) {
  auto file = std::unique_ptr<SciDbFile>(new SciDbFile());
  file->path_ = path;
  // Only the header + directory are read at open; payloads stay on disk.
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path);
  std::vector<uint8_t> head(64 * 1024);
  f.read(reinterpret_cast<char*>(head.data()),
         static_cast<std::streamsize>(head.size()));
  head.resize(static_cast<size_t>(f.gcount()));

  ByteReader r(head);
  ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kSdbMagic) {
    return Status::Corruption(path + " is not a SciDB file");
  }
  ASSIGN_OR_RETURN(file->schema_, ReadSchemaFrom(&r));
  ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    DirEntry e;
    ASSIGN_OR_RETURN(uint64_t ndims, r.GetU64());
    e.box.low.resize(ndims);
    e.box.high.resize(ndims);
    for (uint64_t d = 0; d < ndims; ++d) {
      ASSIGN_OR_RETURN(e.box.low[d], r.GetI64());
      ASSIGN_OR_RETURN(e.box.high[d], r.GetI64());
    }
    ASSIGN_OR_RETURN(e.offset, r.GetU64());
    ASSIGN_OR_RETURN(e.size, r.GetU64());
    file->directory_.push_back(std::move(e));
  }
  return file;
}

Result<MemArray> SciDbFile::ReadRegion(const Box& region) const {
  MemArray out(schema_);
  std::ifstream f(path_, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path_);
  std::vector<Value> cell;
  for (const DirEntry& e : directory_) {
    if (!e.box.Intersects(region)) continue;
    std::vector<uint8_t> payload(e.size);
    f.seekg(static_cast<std::streamoff>(e.offset));
    f.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(e.size));
    if (!f) return Status::IOError("short read from " + path_);
    bytes_read_ += static_cast<int64_t>(e.size);
    ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Decompress(payload));
    ASSIGN_OR_RETURN(Chunk chunk, DeserializeChunk(raw, schema_.attrs()));
    Box want = chunk.box().Intersect(region);
    Coordinates c = want.low;
    do {
      int64_t rank = RankInBox(chunk.box(), c);
      if (!chunk.IsPresent(rank)) continue;
      cell.clear();
      for (size_t a = 0; a < chunk.nattrs(); ++a) {
        cell.push_back(chunk.block(a).Get(rank));
      }
      RETURN_NOT_OK(out.SetCell(c, cell));
    } while (NextInBox(want, &c));
  }
  return out;
}

// ---------------------------------------------------------------- .sh5

Status WriteH5File(const std::string& path,
                   const std::vector<H5Dataset>& datasets) {
  ByteWriter w;
  w.PutU32(kH5Magic);
  w.PutVarint(datasets.size());
  for (const auto& ds : datasets) {
    int64_t cells = 1;
    for (int64_t s : ds.shape) cells *= s;
    if (static_cast<size_t>(cells) != ds.data.size()) {
      return Status::Invalid("dataset '" + ds.name +
                             "': shape does not match data size");
    }
    if (ds.dim_names.size() != ds.shape.size()) {
      return Status::Invalid("dataset '" + ds.name +
                             "': dim_names/shape mismatch");
    }
    w.PutString(ds.name);
    w.PutVarint(ds.shape.size());
    for (size_t d = 0; d < ds.shape.size(); ++d) {
      w.PutString(ds.dim_names[d]);
      w.PutSignedVarint(ds.shape[d]);
    }
    for (double v : ds.data) w.PutDouble(v);
  }
  return WriteFile(path, w.Release());
}

Result<std::unique_ptr<H5File>> H5File::Open(const std::string& path) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadWholeFile(path));
  ByteReader r(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kH5Magic) {
    return Status::Corruption(path + " is not an SH5 file");
  }
  auto file = std::unique_ptr<H5File>(new H5File());
  ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    H5Dataset ds;
    ASSIGN_OR_RETURN(ds.name, r.GetString());
    ASSIGN_OR_RETURN(uint64_t ndims, r.GetVarint());
    int64_t cells = 1;
    for (uint64_t d = 0; d < ndims; ++d) {
      std::string dim_name;
      ASSIGN_OR_RETURN(dim_name, r.GetString());
      int64_t len;
      ASSIGN_OR_RETURN(len, r.GetSignedVarint());
      if (len <= 0) return Status::Corruption("non-positive dataset extent");
      ds.dim_names.push_back(std::move(dim_name));
      ds.shape.push_back(len);
      cells *= len;
    }
    ds.data.resize(static_cast<size_t>(cells));
    for (auto& v : ds.data) {
      ASSIGN_OR_RETURN(v, r.GetDouble());
    }
    file->datasets_.push_back(std::move(ds));
  }
  return file;
}

std::vector<std::string> H5File::DatasetNames() const {
  std::vector<std::string> out;
  for (const auto& ds : datasets_) out.push_back(ds.name);
  return out;
}

Result<const H5Dataset*> H5File::Dataset(const std::string& name) const {
  for (const auto& ds : datasets_) {
    if (ds.name == name) return &ds;
  }
  return Status::NotFound("no dataset named '" + name + "'");
}

Result<std::unique_ptr<H5DatasetAdaptor>> H5DatasetAdaptor::Open(
    const std::string& path, const std::string& dataset,
    const std::string& array_name) {
  ASSIGN_OR_RETURN(std::unique_ptr<H5File> file, H5File::Open(path));
  ASSIGN_OR_RETURN(const H5Dataset* ds, file->Dataset(dataset));
  auto adaptor = std::unique_ptr<H5DatasetAdaptor>(new H5DatasetAdaptor());
  adaptor->dataset_ = *ds;
  std::vector<DimensionDesc> dims;
  for (size_t d = 0; d < ds->shape.size(); ++d) {
    dims.push_back({ds->dim_names[d], 1, ds->shape[d],
                    std::min<int64_t>(64, ds->shape[d])});
  }
  adaptor->schema_ = ArraySchema(
      array_name, std::move(dims),
      {{"value", DataType::kDouble, true, false}});
  return adaptor;
}

Result<MemArray> H5DatasetAdaptor::ReadRegion(const Box& region) const {
  if (region.ndims() != schema_.ndims()) {
    return Status::Invalid("region arity mismatch");
  }
  ASSIGN_OR_RETURN(Box bounds, schema_.Bounds());
  if (!bounds.Intersects(region)) return MemArray(schema_);
  Box want = bounds.Intersect(region);
  MemArray out(schema_);
  Coordinates c = want.low;
  do {
    int64_t rank = RankInBox(bounds, c);
    bytes_read_ += static_cast<int64_t>(sizeof(double));
    RETURN_NOT_OK(out.SetCell(
        c, Value(dataset_.data[static_cast<size_t>(rank)])));
  } while (NextInBox(want, &c));
  return out;
}

// ---------------------------------------------------------------- .snc

Status WriteNcFile(const std::string& path, const NcFileContents& contents) {
  ByteWriter w;
  w.PutU32(kNcMagic);
  w.PutVarint(contents.dimensions.size());
  for (const auto& d : contents.dimensions) {
    w.PutString(d.name);
    w.PutSignedVarint(d.length);
  }
  w.PutVarint(contents.attributes.size());
  for (const auto& [k, v] : contents.attributes) {
    w.PutString(k);
    w.PutString(v);
  }
  w.PutVarint(contents.variables.size());
  for (const auto& v : contents.variables) {
    int64_t cells = 1;
    for (size_t id : v.dim_ids) {
      if (id >= contents.dimensions.size()) {
        return Status::Invalid("variable '" + v.name +
                               "' references unknown dimension");
      }
      cells *= contents.dimensions[id].length;
    }
    if (static_cast<size_t>(cells) != v.data.size()) {
      return Status::Invalid("variable '" + v.name +
                             "': data size does not match dimensions");
    }
    w.PutString(v.name);
    w.PutVarint(v.dim_ids.size());
    for (size_t id : v.dim_ids) w.PutVarint(id);
    for (double x : v.data) w.PutDouble(x);
  }
  return WriteFile(path, w.Release());
}

Result<NcFileContents> ReadNcFile(const std::string& path) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadWholeFile(path));
  ByteReader r(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kNcMagic) {
    return Status::Corruption(path + " is not an SNC file");
  }
  NcFileContents out;
  ASSIGN_OR_RETURN(uint64_t ndims, r.GetVarint());
  for (uint64_t i = 0; i < ndims; ++i) {
    NcDimension d;
    ASSIGN_OR_RETURN(d.name, r.GetString());
    ASSIGN_OR_RETURN(d.length, r.GetSignedVarint());
    out.dimensions.push_back(std::move(d));
  }
  ASSIGN_OR_RETURN(uint64_t nattrs, r.GetVarint());
  for (uint64_t i = 0; i < nattrs; ++i) {
    ASSIGN_OR_RETURN(std::string k, r.GetString());
    ASSIGN_OR_RETURN(std::string v, r.GetString());
    out.attributes.emplace(std::move(k), std::move(v));
  }
  ASSIGN_OR_RETURN(uint64_t nvars, r.GetVarint());
  for (uint64_t i = 0; i < nvars; ++i) {
    NcVariable v;
    ASSIGN_OR_RETURN(v.name, r.GetString());
    ASSIGN_OR_RETURN(uint64_t nd, r.GetVarint());
    int64_t cells = 1;
    for (uint64_t d = 0; d < nd; ++d) {
      ASSIGN_OR_RETURN(uint64_t id, r.GetVarint());
      if (id >= out.dimensions.size()) {
        return Status::Corruption("bad dimension id");
      }
      v.dim_ids.push_back(static_cast<size_t>(id));
      cells *= out.dimensions[static_cast<size_t>(id)].length;
    }
    v.data.resize(static_cast<size_t>(cells));
    for (auto& x : v.data) {
      ASSIGN_OR_RETURN(x, r.GetDouble());
    }
    out.variables.push_back(std::move(v));
  }
  return out;
}

Result<std::unique_ptr<NcVariableAdaptor>> NcVariableAdaptor::Open(
    const std::string& path, const std::string& variable,
    const std::string& array_name) {
  ASSIGN_OR_RETURN(NcFileContents contents, ReadNcFile(path));
  const NcVariable* found = nullptr;
  for (const auto& v : contents.variables) {
    if (v.name == variable) {
      found = &v;
      break;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("no variable named '" + variable + "'");
  }
  auto adaptor = std::unique_ptr<NcVariableAdaptor>(new NcVariableAdaptor());
  adaptor->variable_ = *found;
  std::vector<DimensionDesc> dims;
  for (size_t id : found->dim_ids) {
    const NcDimension& d = contents.dimensions[id];
    adaptor->shape_.push_back(d.length);
    dims.push_back({d.name, 1, d.length, std::min<int64_t>(64, d.length)});
  }
  adaptor->schema_ = ArraySchema(
      array_name, std::move(dims),
      {{"value", DataType::kDouble, true, false}});
  return adaptor;
}

Result<MemArray> NcVariableAdaptor::ReadRegion(const Box& region) const {
  if (region.ndims() != schema_.ndims()) {
    return Status::Invalid("region arity mismatch");
  }
  ASSIGN_OR_RETURN(Box bounds, schema_.Bounds());
  if (!bounds.Intersects(region)) return MemArray(schema_);
  Box want = bounds.Intersect(region);
  MemArray out(schema_);
  Coordinates c = want.low;
  do {
    int64_t rank = RankInBox(bounds, c);
    bytes_read_ += static_cast<int64_t>(sizeof(double));
    RETURN_NOT_OK(out.SetCell(
        c, Value(variable_.data[static_cast<size_t>(rank)])));
  } while (NextInBox(want, &c));
  return out;
}

}  // namespace scidb
