#ifndef SCIDB_INSITU_FORMATS_H_
#define SCIDB_INSITU_FORMATS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/result.h"
#include "storage/codec.h"

namespace scidb {

// In-situ access (paper §2.9): "SciDB must be able to operate on in situ
// data, without requiring a load process. Our approach ... is to define a
// self-describing data format and then write adaptors to various popular
// external formats, for example HDF-5 or NetCDF."
//
// The real HDF5/NetCDF libraries are not available offline, so this
// module implements simplified stand-ins with the same structure (named
// datasets/variables, dimensions, contiguous typed payloads) — see
// DESIGN.md §3. The code path exercised — querying foreign files without
// a load step, reading only the region a query needs — is the paper's
// point, not wire compatibility.

// A queryable external data source: schema plus region reads that touch
// only the needed part of the file.
class ExternalArraySource {
 public:
  virtual ~ExternalArraySource() = default;
  virtual const ArraySchema& schema() const = 0;
  virtual Result<MemArray> ReadRegion(const Box& region) const = 0;
  Result<MemArray> ReadAll() const;
  // Bytes of file payload actually read so far (EXP-SITU accounting).
  virtual int64_t bytes_read() const = 0;
};

// ---------------- SciDB self-describing format (.sdb) ----------------
// Layout: magic | schema | chunk directory (box, offset, size) | chunk
// payloads (SerializeChunk + codec). The directory makes region reads
// touch only intersecting chunks.

Status WriteSciDbFile(const std::string& path, const MemArray& array,
                      CodecType codec = CodecType::kLz);

class SciDbFile : public ExternalArraySource {
 public:
  static Result<std::unique_ptr<SciDbFile>> Open(const std::string& path);

  const ArraySchema& schema() const override { return schema_; }
  Result<MemArray> ReadRegion(const Box& region) const override;
  int64_t bytes_read() const override { return bytes_read_; }
  size_t chunk_count() const { return directory_.size(); }

 private:
  struct DirEntry {
    Box box;
    uint64_t offset;
    uint64_t size;
  };
  SciDbFile() = default;

  std::string path_;
  ArraySchema schema_;
  std::vector<DirEntry> directory_;
  mutable int64_t bytes_read_ = 0;
};

// ----------------- H5-like hierarchical format (.sh5) -----------------
// A file holds named datasets, each an n-dimensional dense double array
// with named dimensions (HDF5 without groups-within-groups, chunking or
// type zoo — enough structure for a faithful adaptor).

struct H5Dataset {
  std::string name;
  std::vector<std::string> dim_names;
  std::vector<int64_t> shape;        // per-dimension lengths
  std::vector<double> data;          // row-major, product(shape) values
};

Status WriteH5File(const std::string& path,
                   const std::vector<H5Dataset>& datasets);

class H5File {
 public:
  static Result<std::unique_ptr<H5File>> Open(const std::string& path);

  std::vector<std::string> DatasetNames() const;
  Result<const H5Dataset*> Dataset(const std::string& name) const;

 private:
  std::vector<H5Dataset> datasets_;
};

// Adaptor: one H5 dataset as a queryable array without a load step.
class H5DatasetAdaptor : public ExternalArraySource {
 public:
  // Keeps the file open; `array_name` names the resulting array.
  static Result<std::unique_ptr<H5DatasetAdaptor>> Open(
      const std::string& path, const std::string& dataset,
      const std::string& array_name);

  const ArraySchema& schema() const override { return schema_; }
  Result<MemArray> ReadRegion(const Box& region) const override;
  int64_t bytes_read() const override { return bytes_read_; }

 private:
  H5DatasetAdaptor() = default;
  ArraySchema schema_;
  H5Dataset dataset_;
  mutable int64_t bytes_read_ = 0;
};

// ----------------- NetCDF-like classic format (.snc) -----------------
// Dimensions table + variables over those dimensions + global text
// attributes, mirroring classic NetCDF structure.

struct NcDimension {
  std::string name;
  int64_t length = 0;
};

struct NcVariable {
  std::string name;
  std::vector<size_t> dim_ids;   // indices into the dimension table
  std::vector<double> data;      // row-major
};

struct NcFileContents {
  std::vector<NcDimension> dimensions;
  std::vector<NcVariable> variables;
  std::map<std::string, std::string> attributes;
};

Status WriteNcFile(const std::string& path, const NcFileContents& contents);
Result<NcFileContents> ReadNcFile(const std::string& path);

// Adaptor: one NetCDF variable as a queryable array.
class NcVariableAdaptor : public ExternalArraySource {
 public:
  static Result<std::unique_ptr<NcVariableAdaptor>> Open(
      const std::string& path, const std::string& variable,
      const std::string& array_name);

  const ArraySchema& schema() const override { return schema_; }
  Result<MemArray> ReadRegion(const Box& region) const override;
  int64_t bytes_read() const override { return bytes_read_; }

 private:
  NcVariableAdaptor() = default;
  ArraySchema schema_;
  NcVariable variable_;
  std::vector<int64_t> shape_;
  mutable int64_t bytes_read_ = 0;
};

}  // namespace scidb

#endif  // SCIDB_INSITU_FORMATS_H_
