#ifndef SCIDB_GRID_PARTITIONER_H_
#define SCIDB_GRID_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "array/coordinates.h"
#include "array/schema.h"
#include "common/result.h"

namespace scidb {

// Maps a chunk (by its origin) to a node of the shared-nothing grid
// (paper §2.7). `time` threads through so the adaptive time-split scheme
// can route by load epoch; stationary partitioners ignore it.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual const std::string& name() const = 0;
  virtual int num_nodes() const = 0;
  virtual int NodeFor(const Coordinates& chunk_origin, int64_t time) const = 0;

  // Two arrays partitioned by Equals()-equal partitioners are
  // co-partitioned: joins on the common coordinate system need no data
  // movement (paper: "the co-partitioning of multiple arrays with a
  // common co-ordinate system").
  [[nodiscard]] virtual bool Equals(const Partitioner& other) const = 0;
};

// Fixed spatial grid: the bounding box is cut into a `tiles[d]` grid per
// dimension; product(tiles) == num_nodes. The paper's choice for whole-sky
// surveys and satellite imagery.
class FixedGridPartitioner : public Partitioner {
 public:
  FixedGridPartitioner(Box domain, std::vector<int64_t> tiles);

  const std::string& name() const override { return name_; }
  int num_nodes() const override;
  int NodeFor(const Coordinates& origin, int64_t time) const override;
  bool Equals(const Partitioner& other) const override;

 private:
  std::string name_ = "fixed_grid";
  Box domain_;
  std::vector<int64_t> tiles_;
};

// Hash of the chunk origin — Gamma-style hash partitioning. Balances
// storage regardless of skew, at the price of destroying locality.
class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(int num_nodes);

  const std::string& name() const override { return name_; }
  int num_nodes() const override { return n_; }
  int NodeFor(const Coordinates& origin, int64_t time) const override;
  bool Equals(const Partitioner& other) const override;

 private:
  std::string name_ = "hash";
  int n_;
};

// Range partitioning along one dimension: node i owns origins with
// coordinate in [boundaries[i-1], boundaries[i]). Gamma-style range
// partitioning; the automatic designer emits these.
class RangePartitioner : public Partitioner {
 public:
  // `boundaries` has num_nodes - 1 ascending split points.
  RangePartitioner(size_t dim, std::vector<int64_t> boundaries);

  const std::string& name() const override { return name_; }
  int num_nodes() const override {
    return static_cast<int>(boundaries_.size()) + 1;
  }
  int NodeFor(const Coordinates& origin, int64_t time) const override;
  bool Equals(const Partitioner& other) const override;

  size_t dim() const { return dim_; }
  const std::vector<int64_t>& boundaries() const { return boundaries_; }

 private:
  std::string name_ = "range";
  size_t dim_;
  std::vector<int64_t> boundaries_;
};

// Adaptive, time-split partitioning (paper §2.7: "a first partitioning
// scheme is used for time less than T and a second partitioning scheme
// for time > T"). Epochs are (threshold, scheme) pairs; a chunk written at
// time t uses the first epoch whose threshold exceeds t.
class TimeSplitPartitioner : public Partitioner {
 public:
  struct Epoch {
    int64_t until;  // exclusive upper bound on time; INT64_MAX for last
    std::shared_ptr<const Partitioner> scheme;
  };
  explicit TimeSplitPartitioner(std::vector<Epoch> epochs);

  const std::string& name() const override { return name_; }
  int num_nodes() const override;
  int NodeFor(const Coordinates& origin, int64_t time) const override;
  bool Equals(const Partitioner& other) const override;

  size_t num_epochs() const { return epochs_.size(); }

 private:
  std::string name_ = "time_split";
  std::vector<Epoch> epochs_;
};

}  // namespace scidb

#endif  // SCIDB_GRID_PARTITIONER_H_
