#ifndef SCIDB_GRID_PARTITIONER_H_
#define SCIDB_GRID_PARTITIONER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "array/coordinates.h"
#include "array/schema.h"
#include "common/result.h"

namespace scidb {

// Maps a chunk (by its origin) to a node of the shared-nothing grid
// (paper §2.7). `time` threads through so the adaptive time-split scheme
// can route by load epoch; stationary partitioners ignore it.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual const std::string& name() const = 0;
  virtual int num_nodes() const = 0;
  virtual int NodeFor(const Coordinates& chunk_origin, int64_t time) const = 0;

  // Two arrays partitioned by Equals()-equal partitioners are
  // co-partitioned: joins on the common coordinate system need no data
  // movement (paper: "the co-partitioning of multiple arrays with a
  // common co-ordinate system").
  [[nodiscard]] virtual bool Equals(const Partitioner& other) const = 0;
};

// Fixed spatial grid: the bounding box is cut into a `tiles[d]` grid per
// dimension; product(tiles) == num_nodes. The paper's choice for whole-sky
// surveys and satellite imagery.
class FixedGridPartitioner : public Partitioner {
 public:
  FixedGridPartitioner(Box domain, std::vector<int64_t> tiles);

  const std::string& name() const override { return name_; }
  int num_nodes() const override;
  int NodeFor(const Coordinates& origin, int64_t time) const override;
  bool Equals(const Partitioner& other) const override;

 private:
  std::string name_ = "fixed_grid";
  Box domain_;
  std::vector<int64_t> tiles_;
};

// Hash of the chunk origin — Gamma-style hash partitioning. Balances
// storage regardless of skew, at the price of destroying locality.
class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(int num_nodes);

  const std::string& name() const override { return name_; }
  int num_nodes() const override { return n_; }
  int NodeFor(const Coordinates& origin, int64_t time) const override;
  bool Equals(const Partitioner& other) const override;

 private:
  std::string name_ = "hash";
  int n_;
};

// Range partitioning along one dimension: node i owns origins with
// coordinate in [boundaries[i-1], boundaries[i]). Gamma-style range
// partitioning; the automatic designer emits these.
class RangePartitioner : public Partitioner {
 public:
  // `boundaries` has num_nodes - 1 ascending split points.
  RangePartitioner(size_t dim, std::vector<int64_t> boundaries);

  const std::string& name() const override { return name_; }
  int num_nodes() const override {
    return static_cast<int>(boundaries_.size()) + 1;
  }
  int NodeFor(const Coordinates& origin, int64_t time) const override;
  bool Equals(const Partitioner& other) const override;

  size_t dim() const { return dim_; }
  const std::vector<int64_t>& boundaries() const { return boundaries_; }

 private:
  std::string name_ = "range";
  size_t dim_;
  std::vector<int64_t> boundaries_;
};

// Adaptive, time-split partitioning (paper §2.7: "a first partitioning
// scheme is used for time less than T and a second partitioning scheme
// for time > T"). Epochs are (threshold, scheme) pairs; a chunk written at
// time t uses the first epoch whose threshold exceeds t.
class TimeSplitPartitioner : public Partitioner {
 public:
  struct Epoch {
    int64_t until;  // exclusive upper bound on time; INT64_MAX for last
    std::shared_ptr<const Partitioner> scheme;
  };
  explicit TimeSplitPartitioner(std::vector<Epoch> epochs);

  const std::string& name() const override { return name_; }
  int num_nodes() const override;
  int NodeFor(const Coordinates& origin, int64_t time) const override;
  bool Equals(const Partitioner& other) const override;

  size_t num_epochs() const { return epochs_.size(); }

 private:
  std::string name_ = "time_split";
  std::vector<Epoch> epochs_;
};

// k-way replica placement on top of any Partitioner (DESIGN.md §13).
//
// Every chunk has a *total preference order* over the nodes: the
// scheme's own NodeFor(origin, time) first (so k=1 placement is exactly
// the un-replicated grid), then every other node ranked by a
// rendezvous-style hash score of (origin, node), descending. The order
// is a pure function of (origin, time, node set size): it never depends
// on which nodes happen to be alive, so two coordinators with the same
// view compute the same placement, and a node's death permutes nothing —
// survivors keep their ranks (placement stability under node-set
// identity, the property grid_property_test pins down).
//
//   replicas   = first k entries of the order (k distinct nodes)
//   owner(D)   = first entry not in the dead set D — the node that
//                *serves* the chunk; equals the primary while it lives
//   recovery   = re-replicate until the first k live entries hold a copy
//
// As long as fewer than k holders have died since the last recovery,
// owner(D) is always a holder, which is the failover-read guarantee.
class ReplicaPlacement {
 public:
  // `replication` is clamped to [1, scheme->num_nodes()]: you cannot put
  // two copies of a chunk on one node and call it fault tolerance.
  ReplicaPlacement(std::shared_ptr<const Partitioner> scheme,
                   int replication);

  int replication() const { return k_; }
  int num_nodes() const { return scheme_->num_nodes(); }
  const Partitioner& scheme() const { return *scheme_; }

  // The chunk's primary: scheme placement, unchanged from k=1.
  int PrimaryFor(const Coordinates& origin, int64_t time) const {
    return scheme_->NodeFor(origin, time);
  }

  // Total preference order (primary first, then rendezvous ranks).
  std::vector<int> PreferenceOrder(const Coordinates& origin,
                                   int64_t time) const;

  // First min(k, n) entries of the preference order: where copies go at
  // load time (no dead nodes yet).
  std::vector<int> ReplicasFor(const Coordinates& origin, int64_t time) const;

  // First min(k, live) entries not in `dead`: where copies should live
  // given the current dead set — what recovery restores.
  std::vector<int> LiveReplicasFor(const Coordinates& origin, int64_t time,
                                   const std::set<int>& dead) const;

  // First entry not in `dead`, or -1 when every node is dead. The node
  // that serves the chunk's reads.
  int OwnerFor(const Coordinates& origin, int64_t time,
               const std::set<int>& dead) const;

  [[nodiscard]] bool Equals(const ReplicaPlacement& other) const {
    return k_ == other.k_ && scheme_->Equals(*other.scheme_);
  }

 private:
  // Rendezvous score of placing `origin` on `node`: FNV-1a over the
  // origin coordinates and the node id, finished with an avalanche so
  // per-node ranks decorrelate even though chunk origins are congruent
  // modulo the chunk interval.
  static uint64_t Score(const Coordinates& origin, int node);

  std::shared_ptr<const Partitioner> scheme_;
  int k_;
};

}  // namespace scidb

#endif  // SCIDB_GRID_PARTITIONER_H_
