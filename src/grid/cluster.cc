#include "grid/cluster.h"

#include <algorithm>
#include <map>
#include <thread>

#include "common/macros.h"
#include "common/metrics.h"

namespace scidb {

namespace {

// Grid-wide scan counters (scidb.grid.*). Bumped once per parallel
// operator at the coordinator — never per cell inside a worker, so the
// hot loops stay free of shared atomics.
struct GridMetrics {
  Counter* const cells_scanned =
      Metrics::Instance().counter("scidb.grid.cells_scanned");
  Counter* const bytes_scanned =
      Metrics::Instance().counter("scidb.grid.bytes_scanned");
  Counter* const parallel_ops =
      Metrics::Instance().counter("scidb.grid.parallel_ops");

  static const GridMetrics& Get() {
    static auto* const m = new GridMetrics();
    return *m;
  }
};

}  // namespace

DistributedArray::DistributedArray(
    ArraySchema schema, std::shared_ptr<const Partitioner> partitioner)
    : schema_(std::move(schema)), partitioner_(std::move(partitioner)) {
  SCIDB_CHECK(partitioner_ != nullptr);
  shards_.reserve(static_cast<size_t>(num_nodes()));
  for (int i = 0; i < num_nodes(); ++i) shards_.emplace_back(schema_);
  stats_.resize(static_cast<size_t>(num_nodes()));
}

Status DistributedArray::Load(const MemArray& source, int64_t time) {
  if (!(source.schema() == schema_)) {
    return Status::Invalid("schema mismatch loading distributed array");
  }
  Status st;
  bool failed = false;
  std::vector<Value> cell;
  source.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                         int64_t rank) {
    cell.clear();
    for (size_t a = 0; a < chunk.nattrs(); ++a) {
      cell.push_back(chunk.block(a).Get(rank));
    }
    st = SetCell(c, cell, time);
    if (!st.ok()) {
      failed = true;
      return false;
    }
    return true;
  });
  if (failed) return st;
  return Status::OK();
}

Status DistributedArray::SetCell(const Coordinates& c,
                                 const std::vector<Value>& values,
                                 int64_t time) {
  // Placement is per chunk, so every cell of one chunk lands together.
  MemArray probe(schema_);
  Coordinates origin = probe.ChunkOriginFor(c);
  int node = partitioner_->NodeFor(origin, time);
  if (node < 0 || node >= num_nodes()) {
    return Status::Internal("partitioner returned node " +
                            std::to_string(node));
  }
  RETURN_NOT_OK(shards_[static_cast<size_t>(node)].SetCell(c, values));
  {
    MutexLock lk(stats_mu_);
    ++stats_[static_cast<size_t>(node)].cells_stored;
  }
  return Status::OK();
}

std::vector<NodeStats> DistributedArray::node_stats() const {
  MutexLock lk(stats_mu_);
  std::vector<NodeStats> out = stats_;
  // Byte residency is derived from the shards at snapshot time rather
  // than maintained incrementally: SetCell can grow a chunk's blocks by
  // more than the logical cell width, so incremental accounting drifts.
  for (int i = 0; i < num_nodes(); ++i) {
    out[static_cast<size_t>(i)].bytes_stored =
        static_cast<int64_t>(shards_[static_cast<size_t>(i)].ByteSize());
  }
  return out;
}

void DistributedArray::RecordShardScan(int node) {
  const MemArray& shard = shards_[static_cast<size_t>(node)];
  int64_t cells = shard.CellCount();
  int64_t bytes = static_cast<int64_t>(shard.ByteSize());
  {
    MutexLock lk(stats_mu_);
    stats_[static_cast<size_t>(node)].cells_scanned += cells;
    stats_[static_cast<size_t>(node)].bytes_scanned += bytes;
  }
  const GridMetrics& gm = GridMetrics::Get();
  gm.cells_scanned->Inc(cells);
  gm.bytes_scanned->Inc(bytes);
}

int64_t DistributedArray::TotalCells() const {
  int64_t n = 0;
  for (const auto& s : shards_) n += s.CellCount();
  return n;
}

double DistributedArray::LoadImbalance() const {
  int64_t total = TotalCells();
  if (total == 0) return 1.0;
  int64_t max_cells = 0;
  for (const auto& s : shards_) max_cells = std::max(max_cells, s.CellCount());
  double mean = static_cast<double>(total) / num_nodes();
  return static_cast<double>(max_cells) / mean;
}

double DistributedArray::LoadImbalanceBytes() const {
  size_t total = 0;
  size_t max_bytes = 0;
  for (const auto& s : shards_) {
    size_t b = s.ByteSize();
    total += b;
    max_bytes = std::max(max_bytes, b);
  }
  if (total == 0) return 1.0;
  double mean = static_cast<double>(total) / num_nodes();
  return static_cast<double>(max_bytes) / mean;
}

Result<int64_t> DistributedArray::Repartition(
    std::shared_ptr<const Partitioner> to, int64_t time) {
  if (to == nullptr) return Status::Invalid("null partitioner");
  std::vector<MemArray> next;
  next.reserve(static_cast<size_t>(to->num_nodes()));
  for (int i = 0; i < to->num_nodes(); ++i) next.emplace_back(schema_);

  int64_t bytes_moved = 0;
  Status st;
  bool failed = false;
  std::vector<Value> cell;
  for (int node = 0; node < num_nodes(); ++node) {
    const MemArray& shard = shards_[static_cast<size_t>(node)];
    for (const auto& [origin, chunk] : shard.chunks()) {
      int dest = to->NodeFor(origin, time);
      if (dest != node) bytes_moved += static_cast<int64_t>(chunk->ByteSize());
      for (Chunk::CellIterator it(*chunk); it.valid(); it.Next()) {
        cell.clear();
        for (size_t a = 0; a < chunk->nattrs(); ++a) {
          cell.push_back(chunk->block(a).Get(it.rank()));
        }
        st = next[static_cast<size_t>(dest)].SetCell(it.coords(), cell);
        if (!st.ok()) {
          failed = true;
          break;
        }
      }
      if (failed) break;
    }
    if (failed) break;
  }
  if (failed) return st;
  shards_ = std::move(next);
  partitioner_ = std::move(to);
  {
    MutexLock lk(stats_mu_);
    stats_.assign(static_cast<size_t>(num_nodes()), NodeStats{});
    for (int i = 0; i < num_nodes(); ++i) {
      stats_[static_cast<size_t>(i)].cells_stored =
          shards_[static_cast<size_t>(i)].CellCount();
    }
  }
  return bytes_moved;
}

Result<MemArray> DistributedArray::ParallelAggregate(
    const ExecContext& ctx, const std::vector<std::string>& dims,
    const std::string& agg, const std::string& attr) {
  // Per-node partial aggregation into mergeable state maps on worker
  // threads, then a coordinator merge (AggregateState::Merge). Finalized
  // values cannot be merged (avg of avgs is wrong), hence states travel,
  // not results. Each worker records its own node's scan count under
  // stats_mu_.
  if (ctx.aggregates == nullptr) {
    return Status::Internal("no aggregate registry");
  }
  GridMetrics::Get().parallel_ops->Inc();
  ASSIGN_OR_RETURN(const AggregateFunction* afn, ctx.aggregates->Find(agg));

  std::vector<size_t> gidx;
  for (const auto& g : dims) {
    ASSIGN_OR_RETURN(size_t di, schema_.DimIndex(g));
    gidx.push_back(di);
  }
  size_t attr_idx = 0;
  if (attr != "*") {
    ASSIGN_OR_RETURN(attr_idx, schema_.AttrIndex(attr));
  }

  std::vector<std::map<Coordinates, std::unique_ptr<AggregateState>>>
      node_states(static_cast<size_t>(num_nodes()));
  {
    std::vector<std::thread> workers;
    std::vector<Status> worker_status(static_cast<size_t>(num_nodes()));
    for (int node = 0; node < num_nodes(); ++node) {
      workers.emplace_back([&, node] {
        RecordShardScan(node);
        auto& groups = node_states[static_cast<size_t>(node)];
        shards_[static_cast<size_t>(node)].ForEachCell(
            [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
              Coordinates key;
              if (gidx.empty()) {
                key.push_back(1);
              } else {
                for (size_t d : gidx) key.push_back(c[d]);
              }
              auto it = groups.find(key);
              if (it == groups.end()) {
                it = groups.emplace(std::move(key), afn->NewState()).first;
              }
              Status s =
                  it->second->Accumulate(chunk.block(attr_idx).Get(rank));
              if (!s.ok()) {
                worker_status[static_cast<size_t>(node)] = s;
                return false;
              }
              return true;
            });
      });
    }
    for (auto& w : workers) w.join();
    for (const Status& s : worker_status) RETURN_NOT_OK(s);
  }

  // Coordinator merge.
  std::map<Coordinates, std::unique_ptr<AggregateState>> merged;
  for (auto& groups : node_states) {
    for (auto& [key, state] : groups) {
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, std::move(state));
      } else {
        RETURN_NOT_OK(it->second->Merge(*state));
      }
    }
  }

  std::vector<DimensionDesc> out_dims;
  for (size_t d : gidx) out_dims.push_back(schema_.dim(d));
  if (out_dims.empty()) out_dims.push_back({"all", 1, 1, 1});
  ArraySchema out_schema(schema_.name() + "_agg", std::move(out_dims),
                         {AggOutputAttr(agg)});
  MemArray out(out_schema);
  for (const auto& [key, state] : merged) {
    RETURN_NOT_OK(out.SetCell(key, state->Finalize()));
  }
  return out;
}

Result<MemArray> DistributedArray::ParallelSubsample(const ExecContext& ctx,
                                                     const ExprPtr& pred) {
  GridMetrics::Get().parallel_ops->Inc();
  std::vector<Result<MemArray>> partials(
      static_cast<size_t>(num_nodes()),
      Result<MemArray>(Status::Internal("not run")));
  std::vector<std::thread> workers;
  for (int node = 0; node < num_nodes(); ++node) {
    workers.emplace_back([&, node] {
      RecordShardScan(node);
      ExecContext local = ctx;
      local.stats = nullptr;
      partials[static_cast<size_t>(node)] =
          Subsample(local, shards_[static_cast<size_t>(node)], pred);
    });
  }
  for (auto& w : workers) w.join();

  MemArray out(schema_);
  out.mutable_schema()->set_name(schema_.name() + "_subsample");
  std::vector<Value> cell;
  for (auto& partial : partials) {
    RETURN_NOT_OK(partial.status());
    Status st;
    bool failed = false;
    partial.value().ForEachCell(
        [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          st = out.SetCell(c, cell);
          if (!st.ok()) {
            failed = true;
            return false;
          }
          return true;
        });
    if (failed) return st;
  }
  return out;
}

Result<MemArray> DistributedArray::ParallelSjoin(
    const ExecContext& ctx, const DistributedArray& other,
    const std::vector<std::pair<std::string, std::string>>& dim_pairs,
    int64_t* bytes_moved) {
  if (bytes_moved != nullptr) *bytes_moved = 0;

  // Co-partitioned case: identical schemes over the same coordinate
  // system join node-locally with zero movement.
  const DistributedArray* rhs = &other;
  DistributedArray repartitioned(other.schema_, partitioner_);
  if (!partitioner_->Equals(*other.partitioner_)) {
    // Move the (usually smaller) other array to this scheme, counting
    // bytes. A production system would pick the cheaper direction; the
    // benchmark wants the movement made visible, not hidden.
    for (int node = 0; node < other.num_nodes(); ++node) {
      const MemArray& shard = other.shards_[static_cast<size_t>(node)];
      for (const auto& [origin, chunk] : shard.chunks()) {
        int dest = partitioner_->NodeFor(origin, 0);
        if (dest != node && bytes_moved != nullptr) {
          *bytes_moved += static_cast<int64_t>(chunk->ByteSize());
        }
        std::vector<Value> cell;
        for (Chunk::CellIterator it(*chunk); it.valid(); it.Next()) {
          cell.clear();
          for (size_t a = 0; a < chunk->nattrs(); ++a) {
            cell.push_back(chunk->block(a).Get(it.rank()));
          }
          RETURN_NOT_OK(
              repartitioned.shards_[static_cast<size_t>(dest)].SetCell(
                  it.coords(), cell));
        }
      }
    }
    rhs = &repartitioned;
  }

  // Node-local joins in parallel.
  GridMetrics::Get().parallel_ops->Inc();
  std::vector<Result<MemArray>> partials(
      static_cast<size_t>(num_nodes()),
      Result<MemArray>(Status::Internal("not run")));
  std::vector<std::thread> workers;
  for (int node = 0; node < num_nodes(); ++node) {
    workers.emplace_back([&, node] {
      RecordShardScan(node);
      ExecContext local = ctx;
      local.stats = nullptr;
      partials[static_cast<size_t>(node)] =
          Sjoin(local, shards_[static_cast<size_t>(node)],
                rhs->shards_[static_cast<size_t>(node)], dim_pairs);
    });
  }
  for (auto& w : workers) w.join();

  Result<MemArray>& first = partials[0];
  RETURN_NOT_OK(first.status());
  MemArray out(first.value().schema());
  std::vector<Value> cell;
  for (auto& partial : partials) {
    RETURN_NOT_OK(partial.status());
    Status st;
    bool failed = false;
    partial.value().ForEachCell(
        [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          st = out.SetCell(c, cell);
          if (!st.ok()) {
            failed = true;
            return false;
          }
          return true;
        });
    if (failed) return st;
  }
  return out;
}

Result<int64_t> DistributedArray::ReplicateBoundaries(
    int64_t max_position_error) {
  const auto* range = dynamic_cast<const RangePartitioner*>(
      partitioner_.get());
  if (range == nullptr) {
    return Status::Invalid(
        "boundary replication requires a range partitioner");
  }
  if (max_position_error < 0) {
    return Status::Invalid("max position error must be >= 0");
  }
  size_t dim = range->dim();
  int64_t replicated = 0;
  std::vector<std::pair<int, std::pair<Coordinates, std::vector<Value>>>>
      to_copy;
  for (int node = 0; node < num_nodes(); ++node) {
    const MemArray& shard = shards_[static_cast<size_t>(node)];
    std::vector<Value> cell;
    shard.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                          int64_t rank) {
      for (int64_t b : range->boundaries()) {
        // Cells within the error bound of boundary b may actually belong
        // to the other side; replicate there (paper: "redundantly place
        // an observation in multiple partitions").
        if (c[dim] >= b - max_position_error &&
            c[dim] <= b + max_position_error - 1) {
          Coordinates probe = c;
          int self = node;
          // Destination: the partition on the other side of b.
          int dest = c[dim] < b ? self + 1 : self - 1;
          // Compute destination robustly from the boundary itself.
          probe[dim] = c[dim] < b ? b : b - 1;
          dest = partitioner_->NodeFor(probe, 0);
          if (dest == self) continue;
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          to_copy.push_back({dest, {c, cell}});
        }
      }
      return true;
    });
  }
  for (auto& [dest, kv] : to_copy) {
    RETURN_NOT_OK(shards_[static_cast<size_t>(dest)].SetCell(kv.first,
                                                             kv.second));
    ++replicated;
  }
  return replicated;
}

}  // namespace scidb
