#include "grid/cluster.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <utility>

#include "common/byte_io.h"
#include "common/flight_recorder.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "exec/expr_serde.h"
#include "grid/node_service.h"
#include "net/inprocess_transport.h"
#include "net/message.h"
#include "net/tcp_transport.h"
#include "storage/chunk_serde.h"

namespace scidb {

namespace {

// Grid-wide scan counters (scidb.grid.*). Bumped once per parallel
// operator at the coordinator — never per cell inside a worker, so the
// hot loops stay free of shared atomics.
struct GridMetrics {
  Counter* const cells_scanned =
      Metrics::Instance().counter("scidb.grid.cells_scanned");
  Counter* const bytes_scanned =
      Metrics::Instance().counter("scidb.grid.bytes_scanned");
  Counter* const parallel_ops =
      Metrics::Instance().counter("scidb.grid.parallel_ops");
  // Replication & failover (DESIGN.md §13).
  Counter* const failover_reads =
      Metrics::Instance().counter("scidb.grid.failover_reads");
  Counter* const nodes_declared_dead =
      Metrics::Instance().counter("scidb.grid.nodes_declared_dead");
  Counter* const rereplicated_chunks =
      Metrics::Instance().counter("scidb.grid.rereplicated_chunks");
  Counter* const rereplicated_bytes =
      Metrics::Instance().counter("scidb.grid.rereplicated_bytes");

  static const GridMetrics& Get() {
    static auto* const m = new GridMetrics();
    return *m;
  }
};

// Process-wide default for GridNetOptions::fault_seed; set by the
// session `set net_faults` knob, read by the two-argument constructor.
std::atomic<uint64_t>& DefaultFaultSeedSlot() {
  static std::atomic<uint64_t> seed{0};
  return seed;
}

// Same pattern for GridNetOptions::replication (`set replication`).
std::atomic<int>& DefaultReplicationSlot() {
  static std::atomic<int> k{1};
  return k;
}

GridNetOptions DefaultNetOptions() {
  GridNetOptions net;
  net.fault_seed = DefaultFaultSeedSlot().load();
  net.replication = DefaultReplicationSlot().load();
  return net;
}

// RPC outcomes that mean "the peer may be gone" — the ones failover and
// failure detection react to. Anything else (Invalid, Corruption, a
// server-side error Status) is a real answer from a live node.
bool IsPeerFailure(const Status& s) {
  return s.IsUnavailable() || s.IsDeadlineExceeded();
}

}  // namespace

MetricsSnapshot ClusterMetrics::Labeled() const {
  MetricsSnapshot out;
  for (const NodeMetrics& nm : nodes) {
    if (!nm.reachable) continue;
    for (const MetricsSnapshot::Entry& e : nm.snapshot.entries) {
      MetricsSnapshot::Entry labeled = e;
      labeled.name = "node" + std::to_string(nm.node) + "." + e.name;
      out.entries.push_back(std::move(labeled));
    }
  }
  return out;
}

void DistributedArray::SetDefaultFaultSeed(uint64_t seed) {
  DefaultFaultSeedSlot().store(seed);
}

uint64_t DistributedArray::DefaultFaultSeed() {
  return DefaultFaultSeedSlot().load();
}

void DistributedArray::SetDefaultReplication(int k) {
  DefaultReplicationSlot().store(k < 1 ? 1 : k);
}

int DistributedArray::DefaultReplication() {
  return DefaultReplicationSlot().load();
}

DistributedArray::DistributedArray(
    ArraySchema schema, std::shared_ptr<const Partitioner> partitioner)
    : DistributedArray(std::move(schema), std::move(partitioner),
                       DefaultNetOptions()) {}

DistributedArray::DistributedArray(
    ArraySchema schema, std::shared_ptr<const Partitioner> partitioner,
    GridNetOptions net)
    : schema_(std::move(schema)),
      partitioner_(std::move(partitioner)),
      net_opts_(std::move(net)) {
  SCIDB_CHECK(partitioner_ != nullptr);
  clock_ = net_opts_.clock ? net_opts_.clock : TraceClock(SteadyNowNs);
  placement_ =
      std::make_unique<ReplicaPlacement>(partitioner_, net_opts_.replication);
  shards_.reserve(static_cast<size_t>(num_nodes()));
  for (int i = 0; i < num_nodes(); ++i) shards_.emplace_back(schema_);
  {
    MutexLock lk(stats_mu_);
    stats_.resize(static_cast<size_t>(num_nodes()));
  }
  {
    MutexLock lk(meta_mu_);
    consec_fail_.assign(static_cast<size_t>(num_nodes()), 0);
  }
  InitNet();
}

DistributedArray::~DistributedArray() { ShutdownNet(); }

void DistributedArray::InitNet() {
  switch (net_opts_.transport) {
    case GridNetOptions::TransportKind::kInline:
      base_transport_ = std::make_unique<net::InProcessTransport>(
          net::InProcessTransport::Mode::kInline);
      break;
    case GridNetOptions::TransportKind::kThreaded:
      base_transport_ = std::make_unique<net::InProcessTransport>(
          net::InProcessTransport::Mode::kThreaded);
      break;
    case GridNetOptions::TransportKind::kTcp:
      base_transport_ = std::make_unique<net::LoopbackTcpTransport>();
      break;
  }
  transport_ = base_transport_.get();
  if (net_opts_.fault_seed != 0) {
    fault_ = std::make_unique<net::FaultInjectingTransport>(
        base_transport_.get(), net_opts_.fault_profile, net_opts_.fault_seed);
    transport_ = fault_.get();
  }
  // Servers share the resolved clock so server-side handler spans are
  // deterministic under VirtualTime, like every other timing here.
  net::RpcServer::Options sopts;
  sopts.clock = clock_;
  for (int node = 0; node < num_nodes(); ++node) {
    services_.push_back(std::make_unique<GridNodeService>(this, node));
    servers_.push_back(
        std::make_unique<net::RpcServer>(transport_, node, sopts));
    services_.back()->Install(servers_.back().get());
    Status bound =
        net::BindNode(transport_, node, servers_.back().get(), nullptr);
    SCIDB_CHECK(bound.ok());
  }
  net::RpcClient::Options copts;
  copts.clock = net_opts_.clock;
  copts.sleep = net_opts_.sleep;
  copts.jitter_seed =
      net_opts_.fault_seed != 0 ? net_opts_.fault_seed : uint64_t{1};
  copts.spans = &client_spans_;
  client_ = std::make_unique<net::RpcClient>(transport_, coordinator_id(),
                                             copts);
  Status bound =
      net::BindNode(transport_, coordinator_id(), nullptr, client_.get());
  SCIDB_CHECK(bound.ok());
}

void DistributedArray::ShutdownNet() {
  if (transport_ != nullptr) transport_->Shutdown();
  client_.reset();
  servers_.clear();
  services_.clear();
  transport_ = nullptr;
  fault_.reset();
  base_transport_.reset();
}

ThreadPool* DistributedArray::FanoutPool() {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_nodes());
  return pool_.get();
}

TraceNode* DistributedArray::TraceChild(const char* label) {
  if (trace_node_ == nullptr) return nullptr;
  TraceNode* child = trace_node_->AddChild();
  child->label = label;
  return child;
}

TraceContext DistributedArray::BeginOpTrace() const {
  if (trace_node_ == nullptr) return {};
  TraceContext ctx;
  ctx.trace_id = NextTraceId();
  ctx.span_id = NextSpanId();
  ctx.parent_span_id = 0;
  return ctx;
}

void DistributedArray::StitchOpTrace(TraceNode* child,
                                     const TraceContext& ctx) const {
  if (child == nullptr || !ctx.active()) return;
  std::vector<SpanRecord> client = client_spans_.Take(ctx.trace_id);
  // The stitch's own TraceGet RPCs are deliberately untraced: they must
  // not add spans to the trace they are collecting. Declared-dead nodes
  // are skipped outright rather than burning a deadline each.
  const std::set<int> dead = DeadSnapshot();
  net::CallOptions co = net_opts_.call;
  co.trace = {};
  for (int node = 0; node < num_nodes(); ++node) {
    std::vector<SpanRecord> server;
    if (dead.count(node) == 0) {
      net::TraceGetRequest req;
      req.trace_id = ctx.trace_id;
      Result<std::vector<uint8_t>> r = client_->Call(
          node, net::MessageType::kTraceGet, req.EncodePayload(), co);
      if (r.ok()) {
        Result<net::TraceGetResponse> resp =
            net::TraceGetResponse::Decode(r.value());
        if (resp.ok()) server = std::move(resp.value().spans);
      }
    }
    // Every node gets a sub-tree even when it served no RPC of this
    // trace (or was unreachable for the stitch), so the tree shape stays
    // comparable across runs and transports.
    TraceNode* node_child = child->AddChild();
    node_child->label = "node " + std::to_string(node);
    for (const SpanRecord& cs : client) {
      const double* dst = cs.FindNote("dst");
      if (dst == nullptr || static_cast<int>(*dst) != node) continue;
      TraceNode* rpc = node_child->AddChild();
      rpc->label = cs.label;
      rpc->wall_ns = cs.wall_ns;
      for (const auto& [k, v] : cs.notes) {
        if (k == "dst") continue;  // already encoded in the parent label
        rpc->AddNote(k, v);
      }
      // The matching server-side handler span(s): more than one when the
      // network duplicated or the client retried a delivered request.
      for (const SpanRecord& ss : server) {
        if (ss.parent_span_id != cs.span_id) continue;
        TraceNode* srv = rpc->AddChild();
        srv->label = ss.label;
        srv->wall_ns = ss.wall_ns;
        for (const auto& [k, v] : ss.notes) srv->AddNote(k, v);
      }
    }
  }
}

ClusterMetrics DistributedArray::ScrapeClusterMetrics(
    bool include_process) const {
  ClusterMetrics out;
  for (int node = 0; node < num_nodes(); ++node) {
    ClusterMetrics::NodeMetrics nm;
    nm.node = node;
    net::MetricsGetRequest req;
    req.include_process = include_process ? 1 : 0;
    Result<std::vector<uint8_t>> r = client_->Call(
        node, net::MessageType::kMetricsGet, req.EncodePayload(),
        net_opts_.call);
    if (r.ok()) {
      Result<net::MetricsGetResponse> resp =
          net::MetricsGetResponse::Decode(r.value());
      if (resp.ok()) {
        std::string json(resp.value().json.begin(), resp.value().json.end());
        Result<MetricsSnapshot> snap = SnapshotFromJson(json);
        if (snap.ok()) {
          nm.snapshot = std::move(snap.value());
          nm.reachable = true;
        }
      }
    }
    out.nodes.push_back(std::move(nm));
  }
  return out;
}

Result<std::vector<FlightEvent>> DistributedArray::FetchFlightEvents(
    int node) const {
  net::TraceGetRequest req;
  req.trace_id = 0;  // no spans wanted, only the flight ring
  req.include_flight = 1;
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                   client_->Call(node, net::MessageType::kTraceGet,
                                 req.EncodePayload(), net_opts_.call));
  ASSIGN_OR_RETURN(net::TraceGetResponse resp,
                   net::TraceGetResponse::Decode(bytes));
  return std::move(resp.events);
}

Status DistributedArray::PutChunk(int dest, const Chunk& chunk, int64_t time,
                                  const TraceContext& ctx) {
  net::ChunkPutRequest req;
  req.time = time;
  req.chunk_bytes = SerializeChunk(chunk);
  net::CallOptions co = net_opts_.call;
  co.trace = ctx;
  ASSIGN_OR_RETURN(std::vector<uint8_t> ack,
                   client_->Call(dest, net::MessageType::kChunkPut,
                                 req.EncodePayload(), co));
  (void)ack;  // the ack payload is empty; arrival is the information
  return Status::OK();
}

Status DistributedArray::PutCell(int dest, const Coordinates& c,
                                 const std::vector<Value>& values,
                                 int64_t time) {
  // A one-cell chunk travels; the receiving shard upserts just that
  // cell (the presence bitmap carries which cells are real).
  MemArray one(schema_);
  RETURN_NOT_OK(one.SetCell(c, values));
  return PutChunk(dest, *one.chunks().begin()->second, time);
}

Result<MemArray> DistributedArray::FetchShard(int node, const ExprPtr& pred,
                                              const TraceContext& ctx,
                                              int view_of,
                                              const std::set<int>& dead,
                                              const net::CallOptions& call)
    const {
  net::ScanShardRequest req;
  req.view_of = view_of;
  // std::set iterates ascending — exactly the canonical wire order.
  req.suspect_dead.assign(dead.begin(), dead.end());
  if (pred != nullptr) {
    // Function shipping: serialize the predicate at the grid boundary;
    // the message layer carries it as opaque bytes.
    ByteWriter pw;
    EncodeExpr(*pred, &pw);
    req.pred_bytes = pw.Release();
  }
  net::CallOptions co = call;
  co.trace = ctx;
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                   client_->Call(node, net::MessageType::kScanShard,
                                 req.EncodePayload(), co));
  ASSIGN_OR_RETURN(net::ScanShardResponse resp,
                   net::ScanShardResponse::Decode(bytes));
  MemArray arr(schema_);
  for (const auto& chunk_bytes : resp.chunks) {
    ASSIGN_OR_RETURN(Chunk chunk,
                     DeserializeChunk(chunk_bytes, schema_.attrs()));
    Coordinates origin = arr.ChunkOriginFor(chunk.box().low);
    (*arr.mutable_chunks())[std::move(origin)] =
        std::make_shared<Chunk>(std::move(chunk));
  }
  return arr;
}

Result<MemArray> DistributedArray::FetchSlot(
    int slot, const ExprPtr& pred, const TraceContext& ctx,
    std::atomic<int64_t>* failovers) const {
  const int k = placement_->replication();
  std::set<int> dead = DeadSnapshot();
  const uint64_t start_ns = clock_();
  const uint64_t budget_ns = net_opts_.call.deadline_ns;

  if (dead.count(slot) == 0) {
    // Primary read: when failover is possible the primary attempt gets
    // half the call budget, so a dead primary still leaves time to ask
    // the survivors within the caller's original deadline.
    net::CallOptions co = net_opts_.call;
    if (k > 1) co.deadline_ns = budget_ns / 2;
    Result<MemArray> r = FetchShard(slot, pred, ctx, -1, dead, co);
    if (r.ok()) {
      RecordCallResult(slot, true);
      return r;
    }
    if (!IsPeerFailure(r.status())) return r;
    RecordCallResult(slot, false);
    if (k <= 1) return r;
    dead.insert(slot);
  } else if (k <= 1) {
    return Status::Unavailable("node " + std::to_string(slot) + " is dead");
  }

  // Failover read: every survivor is asked for slot `slot`'s chunks with
  // the suspect set attached; exactly one node serves each chunk (its
  // first live replica), so the union below never double-counts. A
  // survivor failing mid-failover joins the suspects and the pass
  // restarts.
  GridMetrics::Get().failover_reads->Inc();
  if (FlightRecorder::enabled()) {
    FlightRecorder::Instance().RecordAt(
        clock_(), FlightEventKind::kFailoverRead, slot,
        static_cast<uint64_t>(slot), static_cast<uint64_t>(dead.size()));
  }
  if (failovers != nullptr) failovers->fetch_add(1);
  for (;;) {
    MemArray merged(schema_);
    bool restart = false;
    for (int n = 0; n < num_nodes(); ++n) {
      if (dead.count(n) != 0) continue;
      const uint64_t elapsed = clock_() - start_ns;
      if (elapsed >= budget_ns) {
        return Status::DeadlineExceeded("failover read for slot " +
                                        std::to_string(slot) +
                                        " exhausted the call deadline");
      }
      net::CallOptions co = net_opts_.call;
      co.deadline_ns = budget_ns - elapsed;
      Result<MemArray> r = FetchShard(n, pred, ctx, slot, dead, co);
      if (!r.ok()) {
        if (!IsPeerFailure(r.status())) return r;
        RecordCallResult(n, false);
        dead.insert(n);
        restart = true;
        break;
      }
      RecordCallResult(n, true);
      for (const auto& [origin, chunk] : r.value().chunks()) {
        // Replicas are byte-identical, so an upsert is a no-op on the
        // (impossible) duplicate.
        (*merged.mutable_chunks())[origin] = chunk;
      }
    }
    if (restart) continue;
    if (pred == nullptr) {
      // Unfiltered scans can be audited against the chunk directory:
      // every chunk whose primary is `slot` must have been served by
      // someone, or data really was lost (more than k-1 holders died).
      MutexLock lk(meta_mu_);
      for (const auto& [origin, meta] : chunk_dir_) {
        if (placement_->PrimaryFor(origin, meta.time) != slot) continue;
        if (merged.chunks().count(origin) == 0) {
          return Status::Unavailable(
              "chunk lost: no surviving replica covers slot " +
              std::to_string(slot));
        }
      }
    }
    return merged;
  }
}

Status DistributedArray::PlaceChunk(const Coordinates& origin,
                                    const Chunk& chunk, int64_t time,
                                    const TraceContext& ctx) {
  const int k = placement_->replication();
  if (k <= 1) {
    // The legacy write path, byte for byte: placement is NodeFor at the
    // write's own epoch, no directory, no failure detection.
    int node = partitioner_->NodeFor(origin, time);
    if (node < 0 || node >= num_nodes()) {
      return Status::Internal("partitioner returned node " +
                              std::to_string(node));
    }
    return PutChunk(node, chunk, time, ctx);
  }

  bool existing = false;
  ChunkMeta meta;
  {
    MutexLock lk(meta_mu_);
    auto it = chunk_dir_.find(origin);
    if (it != chunk_dir_.end()) {
      existing = true;
      meta = it->second;
    }
  }
  const std::set<int> dead = DeadSnapshot();

  if (existing) {
    // Updates go to every live holder, strictly: a failed holder write
    // fails the whole operation rather than leaving replicas divergent.
    // (Declared-dead holders are skipped — recovery replaces them.)
    int written = 0;
    for (int h : meta.holders) {
      if (dead.count(h) != 0) continue;
      Status st = PutChunk(h, chunk, meta.time, ctx);
      if (!st.ok()) {
        if (IsPeerFailure(st)) RecordCallResult(h, false);
        return st;
      }
      RecordCallResult(h, true);
      ++written;
    }
    if (written == 0) {
      return Status::Unavailable("every holder of the chunk is dead");
    }
    return Status::OK();
  }

  // Fresh chunk: walk the preference order placing k copies, stepping
  // past dead or unreachable candidates. One successful copy is enough
  // to accept the write; Recover() tops the chunk back up to k.
  const std::vector<int> order = placement_->PreferenceOrder(origin, time);
  std::vector<int> holders;
  Status last = Status::Unavailable("no live node accepted the chunk");
  for (int cand : order) {
    if (static_cast<int>(holders.size()) == k) break;
    if (dead.count(cand) != 0) continue;
    Status st = PutChunk(cand, chunk, time, ctx);
    if (st.ok()) {
      RecordCallResult(cand, true);
      holders.push_back(cand);
      continue;
    }
    if (!IsPeerFailure(st)) return st;
    RecordCallResult(cand, false);
    last = st;
  }
  if (holders.empty()) return last;
  {
    MutexLock lk(meta_mu_);
    ChunkMeta& m = chunk_dir_[origin];
    m.time = time;  // the first write's epoch, sticky (pins placement)
    m.holders = holders;
  }
  return Status::OK();
}

Result<Chunk> DistributedArray::GetChunk(int src,
                                         const Coordinates& origin) const {
  net::ChunkGetRequest req;
  req.origin = origin;
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                   client_->Call(src, net::MessageType::kChunkGet,
                                 req.EncodePayload(), net_opts_.call));
  return DeserializeChunk(bytes, schema_.attrs());
}

void DistributedArray::RecordCallResult(int node, bool ok) const {
  if (placement_->replication() <= 1) return;  // legacy grid: no detector
  if (node < 0 || node >= num_nodes()) return;
  bool newly_dead = false;
  int fails = 0;
  {
    MutexLock lk(meta_mu_);
    int& f = consec_fail_[static_cast<size_t>(node)];
    if (ok) {
      f = 0;
      return;
    }
    if (dead_.count(node) != 0) return;  // already declared
    ++f;
    if (f >= net_opts_.dead_after_failures) {
      dead_.insert(node);
      recover_pending_ = true;
      newly_dead = true;
      fails = f;
    }
  }
  if (newly_dead) {
    GridMetrics::Get().nodes_declared_dead->Inc();
    if (FlightRecorder::enabled()) {
      FlightRecorder::Instance().RecordAt(clock_(),
                                          FlightEventKind::kNodeDead, node,
                                          static_cast<uint64_t>(fails));
    }
  }
}

std::set<int> DistributedArray::DeadSnapshot() const {
  MutexLock lk(meta_mu_);
  return dead_;
}

std::set<int> DistributedArray::dead_nodes() const { return DeadSnapshot(); }

int64_t DistributedArray::DirTimeFor(const Coordinates& origin) const {
  MutexLock lk(meta_mu_);
  auto it = chunk_dir_.find(origin);
  return it != chunk_dir_.end() ? it->second.time : 0;
}

void DistributedArray::BroadcastDeadSet() const {
  const std::set<int> dead = DeadSnapshot();
  net::MarkDeadRequest req;
  req.dead.assign(dead.begin(), dead.end());
  for (int n = 0; n < num_nodes(); ++n) {
    if (dead.count(n) != 0) continue;
    // Best-effort: a survivor that misses the broadcast still filters
    // correctly per request (the coordinator attaches its suspect set to
    // every ScanShard).
    (void)client_->Call(  // status-ignored: best-effort broadcast; see above
        n, net::MessageType::kMarkDead, req.EncodePayload(), net_opts_.call);
  }
}

void DistributedArray::MaybeRecover() {
  bool pending;
  {
    MutexLock lk(meta_mu_);
    pending = recover_pending_;
  }
  if (pending) (void)Recover();  // status-ignored: retried on the next op
                                 // via the sticky recover_pending_ flag
}

Result<int64_t> DistributedArray::Recover() {
  {
    MutexLock lk(meta_mu_);
    recover_pending_ = false;
  }
  if (placement_->replication() <= 1) return 0;
  const std::set<int> dead = DeadSnapshot();
  if (dead.empty()) return 0;
  BroadcastDeadSet();
  // Snapshot the directory so no RPC runs under meta_mu_ (the inline
  // transport executes handlers on this thread, and handlers read the
  // directory through DirTimeFor).
  std::vector<std::pair<Coordinates, ChunkMeta>> entries;
  {
    MutexLock lk(meta_mu_);
    entries.assign(chunk_dir_.begin(), chunk_dir_.end());
  }
  int64_t copies = 0;
  for (const auto& [origin, meta] : entries) {
    const std::vector<int> desired =
        placement_->LiveReplicasFor(origin, meta.time, dead);
    std::vector<int> live;
    for (int h : meta.holders) {
      if (dead.count(h) == 0) live.push_back(h);
    }
    if (live.empty()) {
      return Status::Unavailable(
          "chunk lost: every holder died before recovery");
    }
    std::vector<int> holders;
    for (int target : desired) {
      bool have = false;
      for (int h : live) have = have || h == target;
      if (have) {
        holders.push_back(target);
        continue;
      }
      // Copy from the first live holder that answers (holder order is
      // deterministic, so so is the source choice).
      Result<Chunk> chunk = Status::Unavailable("no source answered");
      int src = -1;
      for (int s : live) {
        chunk = GetChunk(s, origin);
        if (chunk.ok()) {
          src = s;
          break;
        }
        if (!IsPeerFailure(chunk.status())) return chunk.status();
        RecordCallResult(s, false);
      }
      RETURN_NOT_OK(chunk.status());
      RETURN_NOT_OK(PutChunk(target, chunk.value(), meta.time));
      GridMetrics::Get().rereplicated_chunks->Inc();
      GridMetrics::Get().rereplicated_bytes->Inc(
          static_cast<int64_t>(chunk.value().ByteSize()));
      if (FlightRecorder::enabled()) {
        FlightRecorder::Instance().RecordAt(
            clock_(), FlightEventKind::kRereplicate, target,
            static_cast<uint64_t>(src), static_cast<uint64_t>(target));
      }
      holders.push_back(target);
      ++copies;
    }
    if (holders != meta.holders) {
      MutexLock lk(meta_mu_);
      chunk_dir_[origin].holders = holders;
    }
  }
  return copies;
}

Status DistributedArray::Load(const MemArray& source, int64_t time) {
  if (!(source.schema() == schema_)) {
    return Status::Invalid("schema mismatch loading distributed array");
  }
  TraceNode* child = TraceChild("grid.load");
  const TraceContext ctx = BeginOpTrace();
  int64_t rpcs = 0;
  {
    TraceNode scratch;  // TraceSpan needs a sink even when tracing is off
    TraceSpan span(clock_, child != nullptr ? child : &scratch);
    for (const auto& [origin, chunk] : source.chunks()) {
      if (chunk->present_count() == 0) continue;  // nothing to place
      // Source and destination share the schema, so the source chunk
      // origin IS the placement key — every cell of it lands together
      // (on every replica, when replication > 1).
      RETURN_NOT_OK(PlaceChunk(origin, *chunk, time, ctx));
      rpcs += replication();
    }
  }
  if (child != nullptr) child->AddNote("net.rpcs", static_cast<double>(rpcs));
  StitchOpTrace(child, ctx);
  return Status::OK();
}

Status DistributedArray::SetCell(const Coordinates& c,
                                 const std::vector<Value>& values,
                                 int64_t time) {
  // Placement is per chunk, so every cell of one chunk lands together.
  // A one-cell chunk travels (to every live replica at k > 1).
  MemArray one(schema_);
  RETURN_NOT_OK(one.SetCell(c, values));
  const auto& [origin, chunk] = *one.chunks().begin();
  return PlaceChunk(origin, *chunk, time);
}

std::vector<NodeStats> DistributedArray::node_stats() const {
  std::vector<NodeStats> out(static_cast<size_t>(num_nodes()));
  const std::set<int> dead = DeadSnapshot();
  for (int node = 0; node < num_nodes(); ++node) {
    bool fetched = false;
    // A declared-dead node goes straight to the local fallback instead
    // of burning a full RPC deadline per stats call.
    Result<std::vector<uint8_t>> r =
        dead.count(node) != 0
            ? Result<std::vector<uint8_t>>(
                  Status::Unavailable("node declared dead"))
            : client_->Call(node, net::MessageType::kNodeStatsReq, {},
                            net_opts_.call);
    if (r.ok()) {
      Result<net::NodeStatsResponse> resp =
          net::NodeStatsResponse::Decode(r.value());
      if (resp.ok()) {
        out[static_cast<size_t>(node)].cells_stored =
            resp.value().cells_stored;
        out[static_cast<size_t>(node)].bytes_stored =
            resp.value().bytes_stored;
        out[static_cast<size_t>(node)].cells_scanned =
            resp.value().cells_scanned;
        out[static_cast<size_t>(node)].bytes_scanned =
            resp.value().bytes_scanned;
        fetched = true;
      }
    }
    if (!fetched) {
      // Unreachable node (partition, shutdown): fall back to the
      // coordinator's last local accounting. Byte residency is derived
      // from the shard at snapshot time rather than maintained
      // incrementally: SetCell can grow a chunk's blocks by more than
      // the logical cell width, so incremental accounting drifts.
      MutexLock lk(stats_mu_);
      out[static_cast<size_t>(node)] = stats_[static_cast<size_t>(node)];
      out[static_cast<size_t>(node)].bytes_stored = static_cast<int64_t>(
          shards_[static_cast<size_t>(node)].ByteSize());
    }
  }
  return out;
}

void DistributedArray::SyncStoredStats(int node) {
  int64_t cells = shards_[static_cast<size_t>(node)].CellCount();
  MutexLock lk(stats_mu_);
  stats_[static_cast<size_t>(node)].cells_stored = cells;
}

void DistributedArray::RecordShardScan(int node) {
  const MemArray& shard = shards_[static_cast<size_t>(node)];
  int64_t cells = shard.CellCount();
  int64_t bytes = static_cast<int64_t>(shard.ByteSize());
  if (FlightRecorder::enabled()) {
    FlightRecorder::Instance().RecordAt(clock_(), FlightEventKind::kShardScan,
                                        node, static_cast<uint64_t>(cells),
                                        static_cast<uint64_t>(bytes));
  }
  {
    MutexLock lk(stats_mu_);
    stats_[static_cast<size_t>(node)].cells_scanned += cells;
    stats_[static_cast<size_t>(node)].bytes_scanned += bytes;
  }
  const GridMetrics& gm = GridMetrics::Get();
  gm.cells_scanned->Inc(cells);
  gm.bytes_scanned->Inc(bytes);
}

int64_t DistributedArray::TotalCells() const {
  int64_t n = 0;
  for (const auto& s : shards_) n += s.CellCount();
  return n;
}

double DistributedArray::LoadImbalance() const {
  int64_t total = TotalCells();
  // An empty array has no load and therefore no imbalance; returning
  // the 0/0 ratio as NaN (or pretending perfect balance) would poison
  // downstream comparisons.
  if (total == 0) return 0.0;
  int64_t max_cells = 0;
  for (const auto& s : shards_) max_cells = std::max(max_cells, s.CellCount());
  double mean = static_cast<double>(total) / num_nodes();
  return static_cast<double>(max_cells) / mean;
}

double DistributedArray::LoadImbalanceBytes() const {
  size_t total = 0;
  size_t max_bytes = 0;
  for (const auto& s : shards_) {
    size_t b = s.ByteSize();
    total += b;
    max_bytes = std::max(max_bytes, b);
  }
  if (total == 0) return 0.0;  // empty: no load, no imbalance
  double mean = static_cast<double>(total) / num_nodes();
  return static_cast<double>(max_bytes) / mean;
}

Result<int64_t> DistributedArray::Repartition(
    std::shared_ptr<const Partitioner> to, int64_t time) {
  if (to == nullptr) return Status::Invalid("null partitioner");
  // A repartition replaces every shard wholesale, so it is executed as
  // a coordinator-local rebuild (the byte movement is still accounted);
  // the per-chunk write path would route every chunk through the OLD
  // node set's transport while the new one is being built.
  std::vector<MemArray> next;
  next.reserve(static_cast<size_t>(to->num_nodes()));
  for (int i = 0; i < to->num_nodes(); ++i) next.emplace_back(schema_);

  // Replication-aware: each (deduplicated) chunk lands on every node of
  // its new replica set; the directory is rebuilt alongside the shards.
  ReplicaPlacement next_place(to, net_opts_.replication);
  std::map<Coordinates, ChunkMeta> next_dir;
  std::set<Coordinates> seen;  // k > 1 stores each chunk k times

  int64_t bytes_moved = 0;
  Status st;
  bool failed = false;
  std::vector<Value> cell;
  for (int node = 0; node < num_nodes(); ++node) {
    const MemArray& shard = shards_[static_cast<size_t>(node)];
    for (const auto& [origin, chunk] : shard.chunks()) {
      // Replicas are byte-identical; rebuild each chunk once, from the
      // first shard that holds a copy.
      if (!seen.insert(origin).second) continue;
      int dest = to->NodeFor(origin, time);
      if (dest != node) bytes_moved += static_cast<int64_t>(chunk->ByteSize());
      std::vector<int> dests = next_place.ReplicasFor(origin, time);
      if (next_place.replication() > 1) {
        next_dir[origin] = ChunkMeta{time, dests};
      }
      for (Chunk::CellIterator it(*chunk); it.valid(); it.Next()) {
        cell.clear();
        for (size_t a = 0; a < chunk->nattrs(); ++a) {
          cell.push_back(chunk->block(a).Get(it.rank()));
        }
        for (int d : dests) {
          st = next[static_cast<size_t>(d)].SetCell(it.coords(), cell);
          if (!st.ok()) {
            failed = true;
            break;
          }
        }
        if (failed) break;
      }
      if (failed) break;
    }
    if (failed) break;
  }
  if (failed) return st;
  // The node count may change: tear the network down before the swap
  // (its services hold this-pointers into the old topology) and rebuild
  // it after.
  ShutdownNet();
  shards_ = std::move(next);
  partitioner_ = std::move(to);
  placement_ =
      std::make_unique<ReplicaPlacement>(partitioner_, net_opts_.replication);
  pool_.reset();
  {
    MutexLock lk(stats_mu_);
    stats_.assign(static_cast<size_t>(num_nodes()), NodeStats{});
    for (int i = 0; i < num_nodes(); ++i) {
      stats_[static_cast<size_t>(i)].cells_stored =
          shards_[static_cast<size_t>(i)].CellCount();
    }
  }
  {
    // A repartition is a fresh start for the failure detector: the old
    // dead set indexed the old topology.
    MutexLock lk(meta_mu_);
    chunk_dir_ = std::move(next_dir);
    dead_.clear();
    consec_fail_.assign(static_cast<size_t>(num_nodes()), 0);
    recover_pending_ = false;
  }
  InitNet();
  return bytes_moved;
}

Result<MemArray> DistributedArray::ParallelAggregate(
    const ExecContext& ctx, const std::vector<std::string>& dims,
    const std::string& agg, const std::string& attr) {
  // Per-node partial aggregation into mergeable state maps on fan-out
  // workers, then a coordinator merge (AggregateState::Merge). Finalized
  // values cannot be merged (avg of avgs is wrong), hence states travel,
  // not results — and since states have no wire form, the shard contents
  // travel instead (ScanShard data shipping) and the partials are built
  // coordinator-side.
  if (ctx.aggregates == nullptr) {
    return Status::Internal("no aggregate registry");
  }
  GridMetrics::Get().parallel_ops->Inc();
  ASSIGN_OR_RETURN(const AggregateFunction* afn, ctx.aggregates->Find(agg));

  std::vector<size_t> gidx;
  for (const auto& g : dims) {
    ASSIGN_OR_RETURN(size_t di, schema_.DimIndex(g));
    gidx.push_back(di);
  }
  size_t attr_idx = 0;
  if (attr != "*") {
    ASSIGN_OR_RETURN(attr_idx, schema_.AttrIndex(attr));
  }

  TraceNode* child = TraceChild("grid.parallel_aggregate");
  const TraceContext tctx = BeginOpTrace();
  std::atomic<int64_t> failovers{0};
  std::vector<std::map<Coordinates, std::unique_ptr<AggregateState>>>
      node_states(static_cast<size_t>(num_nodes()));
  {
    TraceNode scratch;
    TraceSpan span(clock_, child != nullptr ? child : &scratch);
    RETURN_NOT_OK(FanoutPool()->ParallelFor(
        num_nodes(), [&](int64_t node) -> Status {
          ASSIGN_OR_RETURN(MemArray partial,
                           FetchSlot(static_cast<int>(node), nullptr, tctx,
                                     &failovers));
          auto& groups = node_states[static_cast<size_t>(node)];
          Status acc;
          partial.ForEachCell(
              [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
                Coordinates key;
                if (gidx.empty()) {
                  key.push_back(1);
                } else {
                  for (size_t d : gidx) key.push_back(c[d]);
                }
                auto it = groups.find(key);
                if (it == groups.end()) {
                  it = groups.emplace(std::move(key), afn->NewState()).first;
                }
                Status s =
                    it->second->Accumulate(chunk.block(attr_idx).Get(rank));
                if (!s.ok()) {
                  acc = s;
                  return false;
                }
                return true;
              });
          return acc;
        }));
  }
  if (child != nullptr) {
    child->AddNote("net.rpcs", static_cast<double>(num_nodes()));
    if (failovers.load() > 0) {
      child->AddNote("failover", static_cast<double>(failovers.load()));
    }
  }
  StitchOpTrace(child, tctx);
  MaybeRecover();

  // Coordinator merge, in node order (deterministic at every width).
  std::map<Coordinates, std::unique_ptr<AggregateState>> merged;
  for (auto& groups : node_states) {
    for (auto& [key, state] : groups) {
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, std::move(state));
      } else {
        RETURN_NOT_OK(it->second->Merge(*state));
      }
    }
  }

  std::vector<DimensionDesc> out_dims;
  for (size_t d : gidx) out_dims.push_back(schema_.dim(d));
  if (out_dims.empty()) out_dims.push_back({"all", 1, 1, 1});
  ArraySchema out_schema(schema_.name() + "_agg", std::move(out_dims),
                         {AggOutputAttr(agg)});
  MemArray out(out_schema);
  for (const auto& [key, state] : merged) {
    RETURN_NOT_OK(out.SetCell(key, state->Finalize()));
  }
  return out;
}

Result<MemArray> DistributedArray::ParallelSubsample(const ExecContext& ctx,
                                                     const ExprPtr& pred) {
  GridMetrics::Get().parallel_ops->Inc();
  // Ship the execution environment so every node can evaluate the
  // predicate (in a real grid the registry is replicated at deploy).
  for (auto& svc : services_) {
    svc->SetExecEnv(ctx.functions, ctx.enable_chunk_pruning);
  }
  TraceNode* child = TraceChild("grid.parallel_subsample");
  const TraceContext tctx = BeginOpTrace();
  std::atomic<int64_t> failovers{0};
  std::vector<Result<MemArray>> partials(
      static_cast<size_t>(num_nodes()),
      Result<MemArray>(Status::Internal("not run")));
  {
    TraceNode scratch;
    TraceSpan span(clock_, child != nullptr ? child : &scratch);
    RETURN_NOT_OK(
        FanoutPool()->ParallelFor(num_nodes(), [&](int64_t node) -> Status {
          partials[static_cast<size_t>(node)] =
              FetchSlot(static_cast<int>(node), pred, tctx, &failovers);
          return partials[static_cast<size_t>(node)].status();
        }));
  }
  if (child != nullptr) {
    child->AddNote("net.rpcs", static_cast<double>(num_nodes()));
    if (failovers.load() > 0) {
      child->AddNote("failover", static_cast<double>(failovers.load()));
    }
  }
  StitchOpTrace(child, tctx);
  MaybeRecover();

  MemArray out(schema_);
  out.mutable_schema()->set_name(schema_.name() + "_subsample");
  std::vector<Value> cell;
  for (auto& partial : partials) {
    RETURN_NOT_OK(partial.status());
    Status st;
    bool failed = false;
    partial.value().ForEachCell(
        [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          st = out.SetCell(c, cell);
          if (!st.ok()) {
            failed = true;
            return false;
          }
          return true;
        });
    if (failed) return st;
  }
  return out;
}

Result<MemArray> DistributedArray::ParallelSjoin(
    const ExecContext& ctx, const DistributedArray& other,
    const std::vector<std::pair<std::string, std::string>>& dim_pairs,
    int64_t* bytes_moved) {
  if (bytes_moved != nullptr) *bytes_moved = 0;

  // Co-partitioned case: identical schemes over the same coordinate
  // system join node-locally with zero movement.
  const std::vector<MemArray>* rhs_shards = &other.shards_;
  std::vector<MemArray> repartitioned;
  if (!partitioner_->Equals(*other.partitioner_)) {
    // Move the (usually smaller) other array to this scheme, counting
    // bytes. A production system would pick the cheaper direction; the
    // benchmark wants the movement made visible, not hidden. The rebuild
    // is a plain shard vector, not a full DistributedArray — the staged
    // copy needs no network of its own.
    repartitioned.reserve(static_cast<size_t>(num_nodes()));
    for (int i = 0; i < num_nodes(); ++i) {
      repartitioned.emplace_back(other.schema_);
    }
    for (int node = 0; node < other.num_nodes(); ++node) {
      const MemArray& shard = other.shards_[static_cast<size_t>(node)];
      for (const auto& [origin, chunk] : shard.chunks()) {
        int dest = partitioner_->NodeFor(origin, 0);
        if (dest != node && bytes_moved != nullptr) {
          *bytes_moved += static_cast<int64_t>(chunk->ByteSize());
        }
        std::vector<Value> cell;
        for (Chunk::CellIterator it(*chunk); it.valid(); it.Next()) {
          cell.clear();
          for (size_t a = 0; a < chunk->nattrs(); ++a) {
            cell.push_back(chunk->block(a).Get(it.rank()));
          }
          RETURN_NOT_OK(repartitioned[static_cast<size_t>(dest)].SetCell(
              it.coords(), cell));
        }
      }
    }
    rhs_shards = &repartitioned;
  }

  // Node-local joins: each worker fetches its node's lhs shard over the
  // wire and joins it against the co-located rhs shard.
  GridMetrics::Get().parallel_ops->Inc();
  TraceNode* child = TraceChild("grid.parallel_sjoin");
  const TraceContext tctx = BeginOpTrace();
  std::atomic<int64_t> failovers{0};
  std::vector<Result<MemArray>> partials(
      static_cast<size_t>(num_nodes()),
      Result<MemArray>(Status::Internal("not run")));
  {
    TraceNode scratch;
    TraceSpan span(clock_, child != nullptr ? child : &scratch);
    RETURN_NOT_OK(
        FanoutPool()->ParallelFor(num_nodes(), [&](int64_t node) -> Status {
          ASSIGN_OR_RETURN(MemArray lhs,
                           FetchSlot(static_cast<int>(node), nullptr, tctx,
                                     &failovers));
          ExecContext local = ctx;
          local.stats = nullptr;
          partials[static_cast<size_t>(node)] = Sjoin(
              local, lhs, (*rhs_shards)[static_cast<size_t>(node)], dim_pairs);
          return partials[static_cast<size_t>(node)].status();
        }));
  }
  if (child != nullptr) {
    child->AddNote("net.rpcs", static_cast<double>(num_nodes()));
    if (failovers.load() > 0) {
      child->AddNote("failover", static_cast<double>(failovers.load()));
    }
  }
  StitchOpTrace(child, tctx);
  MaybeRecover();

  Result<MemArray>& first = partials[0];
  RETURN_NOT_OK(first.status());
  MemArray out(first.value().schema());
  std::vector<Value> cell;
  for (auto& partial : partials) {
    RETURN_NOT_OK(partial.status());
    Status st;
    bool failed = false;
    partial.value().ForEachCell(
        [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          st = out.SetCell(c, cell);
          if (!st.ok()) {
            failed = true;
            return false;
          }
          return true;
        });
    if (failed) return st;
  }
  return out;
}

Result<int64_t> DistributedArray::ReplicateBoundaries(
    int64_t max_position_error) {
  if (placement_->replication() > 1) {
    // Boundary replicas are deliberately placed on the "wrong" node,
    // which contradicts the chunk directory's holder bookkeeping; the
    // two replication mechanisms do not compose (DESIGN.md §13).
    return Status::Invalid(
        "boundary replication requires replication = 1");
  }
  const auto* range = dynamic_cast<const RangePartitioner*>(
      partitioner_.get());
  if (range == nullptr) {
    return Status::Invalid(
        "boundary replication requires a range partitioner");
  }
  if (max_position_error < 0) {
    return Status::Invalid("max position error must be >= 0");
  }
  size_t dim = range->dim();
  int64_t replicated = 0;
  std::vector<std::pair<int, std::pair<Coordinates, std::vector<Value>>>>
      to_copy;
  for (int node = 0; node < num_nodes(); ++node) {
    const MemArray& shard = shards_[static_cast<size_t>(node)];
    std::vector<Value> cell;
    shard.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                          int64_t rank) {
      for (int64_t b : range->boundaries()) {
        // Cells within the error bound of boundary b may actually belong
        // to the other side; replicate there (paper: "redundantly place
        // an observation in multiple partitions").
        if (c[dim] >= b - max_position_error &&
            c[dim] <= b + max_position_error - 1) {
          Coordinates probe = c;
          int self = node;
          // Destination: the partition on the other side of b.
          int dest = c[dim] < b ? self + 1 : self - 1;
          // Compute destination robustly from the boundary itself.
          probe[dim] = c[dim] < b ? b : b - 1;
          dest = partitioner_->NodeFor(probe, 0);
          if (dest == self) continue;
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          to_copy.push_back({dest, {c, cell}});
        }
      }
      return true;
    });
  }
  // Replica placement is a write like any other: through the wire.
  for (auto& [dest, kv] : to_copy) {
    RETURN_NOT_OK(PutCell(dest, kv.first, kv.second, 0));
    ++replicated;
  }
  return replicated;
}

}  // namespace scidb
