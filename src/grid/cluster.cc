#include "grid/cluster.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <utility>

#include "common/byte_io.h"
#include "common/flight_recorder.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "exec/expr_serde.h"
#include "grid/node_service.h"
#include "net/inprocess_transport.h"
#include "net/message.h"
#include "net/tcp_transport.h"
#include "storage/chunk_serde.h"

namespace scidb {

namespace {

// Grid-wide scan counters (scidb.grid.*). Bumped once per parallel
// operator at the coordinator — never per cell inside a worker, so the
// hot loops stay free of shared atomics.
struct GridMetrics {
  Counter* const cells_scanned =
      Metrics::Instance().counter("scidb.grid.cells_scanned");
  Counter* const bytes_scanned =
      Metrics::Instance().counter("scidb.grid.bytes_scanned");
  Counter* const parallel_ops =
      Metrics::Instance().counter("scidb.grid.parallel_ops");

  static const GridMetrics& Get() {
    static auto* const m = new GridMetrics();
    return *m;
  }
};

// Process-wide default for GridNetOptions::fault_seed; set by the
// session `set net_faults` knob, read by the two-argument constructor.
std::atomic<uint64_t>& DefaultFaultSeedSlot() {
  static std::atomic<uint64_t> seed{0};
  return seed;
}

GridNetOptions DefaultNetOptions() {
  GridNetOptions net;
  net.fault_seed = DefaultFaultSeedSlot().load();
  return net;
}

}  // namespace

MetricsSnapshot ClusterMetrics::Labeled() const {
  MetricsSnapshot out;
  for (const NodeMetrics& nm : nodes) {
    if (!nm.reachable) continue;
    for (const MetricsSnapshot::Entry& e : nm.snapshot.entries) {
      MetricsSnapshot::Entry labeled = e;
      labeled.name = "node" + std::to_string(nm.node) + "." + e.name;
      out.entries.push_back(std::move(labeled));
    }
  }
  return out;
}

void DistributedArray::SetDefaultFaultSeed(uint64_t seed) {
  DefaultFaultSeedSlot().store(seed);
}

uint64_t DistributedArray::DefaultFaultSeed() {
  return DefaultFaultSeedSlot().load();
}

DistributedArray::DistributedArray(
    ArraySchema schema, std::shared_ptr<const Partitioner> partitioner)
    : DistributedArray(std::move(schema), std::move(partitioner),
                       DefaultNetOptions()) {}

DistributedArray::DistributedArray(
    ArraySchema schema, std::shared_ptr<const Partitioner> partitioner,
    GridNetOptions net)
    : schema_(std::move(schema)),
      partitioner_(std::move(partitioner)),
      net_opts_(std::move(net)) {
  SCIDB_CHECK(partitioner_ != nullptr);
  clock_ = net_opts_.clock ? net_opts_.clock : TraceClock(SteadyNowNs);
  shards_.reserve(static_cast<size_t>(num_nodes()));
  for (int i = 0; i < num_nodes(); ++i) shards_.emplace_back(schema_);
  {
    MutexLock lk(stats_mu_);
    stats_.resize(static_cast<size_t>(num_nodes()));
  }
  InitNet();
}

DistributedArray::~DistributedArray() { ShutdownNet(); }

void DistributedArray::InitNet() {
  switch (net_opts_.transport) {
    case GridNetOptions::TransportKind::kInline:
      base_transport_ = std::make_unique<net::InProcessTransport>(
          net::InProcessTransport::Mode::kInline);
      break;
    case GridNetOptions::TransportKind::kThreaded:
      base_transport_ = std::make_unique<net::InProcessTransport>(
          net::InProcessTransport::Mode::kThreaded);
      break;
    case GridNetOptions::TransportKind::kTcp:
      base_transport_ = std::make_unique<net::LoopbackTcpTransport>();
      break;
  }
  transport_ = base_transport_.get();
  if (net_opts_.fault_seed != 0) {
    fault_ = std::make_unique<net::FaultInjectingTransport>(
        base_transport_.get(), net_opts_.fault_profile, net_opts_.fault_seed);
    transport_ = fault_.get();
  }
  // Servers share the resolved clock so server-side handler spans are
  // deterministic under VirtualTime, like every other timing here.
  net::RpcServer::Options sopts;
  sopts.clock = clock_;
  for (int node = 0; node < num_nodes(); ++node) {
    services_.push_back(std::make_unique<GridNodeService>(this, node));
    servers_.push_back(
        std::make_unique<net::RpcServer>(transport_, node, sopts));
    services_.back()->Install(servers_.back().get());
    Status bound =
        net::BindNode(transport_, node, servers_.back().get(), nullptr);
    SCIDB_CHECK(bound.ok());
  }
  net::RpcClient::Options copts;
  copts.clock = net_opts_.clock;
  copts.sleep = net_opts_.sleep;
  copts.jitter_seed =
      net_opts_.fault_seed != 0 ? net_opts_.fault_seed : uint64_t{1};
  copts.spans = &client_spans_;
  client_ = std::make_unique<net::RpcClient>(transport_, coordinator_id(),
                                             copts);
  Status bound =
      net::BindNode(transport_, coordinator_id(), nullptr, client_.get());
  SCIDB_CHECK(bound.ok());
}

void DistributedArray::ShutdownNet() {
  if (transport_ != nullptr) transport_->Shutdown();
  client_.reset();
  servers_.clear();
  services_.clear();
  transport_ = nullptr;
  fault_.reset();
  base_transport_.reset();
}

ThreadPool* DistributedArray::FanoutPool() {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_nodes());
  return pool_.get();
}

TraceNode* DistributedArray::TraceChild(const char* label) {
  if (trace_node_ == nullptr) return nullptr;
  TraceNode* child = trace_node_->AddChild();
  child->label = label;
  return child;
}

TraceContext DistributedArray::BeginOpTrace() const {
  if (trace_node_ == nullptr) return {};
  TraceContext ctx;
  ctx.trace_id = NextTraceId();
  ctx.span_id = NextSpanId();
  ctx.parent_span_id = 0;
  return ctx;
}

void DistributedArray::StitchOpTrace(TraceNode* child,
                                     const TraceContext& ctx) const {
  if (child == nullptr || !ctx.active()) return;
  std::vector<SpanRecord> client = client_spans_.Take(ctx.trace_id);
  // The stitch's own TraceGet RPCs are deliberately untraced: they must
  // not add spans to the trace they are collecting.
  net::CallOptions co = net_opts_.call;
  co.trace = {};
  for (int node = 0; node < num_nodes(); ++node) {
    std::vector<SpanRecord> server;
    net::TraceGetRequest req;
    req.trace_id = ctx.trace_id;
    Result<std::vector<uint8_t>> r = client_->Call(
        node, net::MessageType::kTraceGet, req.EncodePayload(), co);
    if (r.ok()) {
      Result<net::TraceGetResponse> resp =
          net::TraceGetResponse::Decode(r.value());
      if (resp.ok()) server = std::move(resp.value().spans);
    }
    // Every node gets a sub-tree even when it served no RPC of this
    // trace (or was unreachable for the stitch), so the tree shape stays
    // comparable across runs and transports.
    TraceNode* node_child = child->AddChild();
    node_child->label = "node " + std::to_string(node);
    for (const SpanRecord& cs : client) {
      const double* dst = cs.FindNote("dst");
      if (dst == nullptr || static_cast<int>(*dst) != node) continue;
      TraceNode* rpc = node_child->AddChild();
      rpc->label = cs.label;
      rpc->wall_ns = cs.wall_ns;
      for (const auto& [k, v] : cs.notes) {
        if (k == "dst") continue;  // already encoded in the parent label
        rpc->AddNote(k, v);
      }
      // The matching server-side handler span(s): more than one when the
      // network duplicated or the client retried a delivered request.
      for (const SpanRecord& ss : server) {
        if (ss.parent_span_id != cs.span_id) continue;
        TraceNode* srv = rpc->AddChild();
        srv->label = ss.label;
        srv->wall_ns = ss.wall_ns;
        for (const auto& [k, v] : ss.notes) srv->AddNote(k, v);
      }
    }
  }
}

ClusterMetrics DistributedArray::ScrapeClusterMetrics(
    bool include_process) const {
  ClusterMetrics out;
  for (int node = 0; node < num_nodes(); ++node) {
    ClusterMetrics::NodeMetrics nm;
    nm.node = node;
    net::MetricsGetRequest req;
    req.include_process = include_process ? 1 : 0;
    Result<std::vector<uint8_t>> r = client_->Call(
        node, net::MessageType::kMetricsGet, req.EncodePayload(),
        net_opts_.call);
    if (r.ok()) {
      Result<net::MetricsGetResponse> resp =
          net::MetricsGetResponse::Decode(r.value());
      if (resp.ok()) {
        std::string json(resp.value().json.begin(), resp.value().json.end());
        Result<MetricsSnapshot> snap = SnapshotFromJson(json);
        if (snap.ok()) {
          nm.snapshot = std::move(snap.value());
          nm.reachable = true;
        }
      }
    }
    out.nodes.push_back(std::move(nm));
  }
  return out;
}

Result<std::vector<FlightEvent>> DistributedArray::FetchFlightEvents(
    int node) const {
  net::TraceGetRequest req;
  req.trace_id = 0;  // no spans wanted, only the flight ring
  req.include_flight = 1;
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                   client_->Call(node, net::MessageType::kTraceGet,
                                 req.EncodePayload(), net_opts_.call));
  ASSIGN_OR_RETURN(net::TraceGetResponse resp,
                   net::TraceGetResponse::Decode(bytes));
  return std::move(resp.events);
}

Status DistributedArray::PutChunk(int dest, const Chunk& chunk, int64_t time,
                                  const TraceContext& ctx) {
  net::ChunkPutRequest req;
  req.time = time;
  req.chunk_bytes = SerializeChunk(chunk);
  net::CallOptions co = net_opts_.call;
  co.trace = ctx;
  ASSIGN_OR_RETURN(std::vector<uint8_t> ack,
                   client_->Call(dest, net::MessageType::kChunkPut,
                                 req.EncodePayload(), co));
  (void)ack;  // the ack payload is empty; arrival is the information
  return Status::OK();
}

Status DistributedArray::PutCell(int dest, const Coordinates& c,
                                 const std::vector<Value>& values,
                                 int64_t time) {
  // A one-cell chunk travels; the receiving shard upserts just that
  // cell (the presence bitmap carries which cells are real).
  MemArray one(schema_);
  RETURN_NOT_OK(one.SetCell(c, values));
  return PutChunk(dest, *one.chunks().begin()->second, time);
}

Result<MemArray> DistributedArray::FetchShard(int node, const ExprPtr& pred,
                                              const TraceContext& ctx) const {
  net::ScanShardRequest req;
  if (pred != nullptr) {
    // Function shipping: serialize the predicate at the grid boundary;
    // the message layer carries it as opaque bytes.
    ByteWriter pw;
    EncodeExpr(*pred, &pw);
    req.pred_bytes = pw.Release();
  }
  net::CallOptions co = net_opts_.call;
  co.trace = ctx;
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                   client_->Call(node, net::MessageType::kScanShard,
                                 req.EncodePayload(), co));
  ASSIGN_OR_RETURN(net::ScanShardResponse resp,
                   net::ScanShardResponse::Decode(bytes));
  MemArray arr(schema_);
  for (const auto& chunk_bytes : resp.chunks) {
    ASSIGN_OR_RETURN(Chunk chunk,
                     DeserializeChunk(chunk_bytes, schema_.attrs()));
    Coordinates origin = arr.ChunkOriginFor(chunk.box().low);
    (*arr.mutable_chunks())[std::move(origin)] =
        std::make_shared<Chunk>(std::move(chunk));
  }
  return arr;
}

Status DistributedArray::Load(const MemArray& source, int64_t time) {
  if (!(source.schema() == schema_)) {
    return Status::Invalid("schema mismatch loading distributed array");
  }
  TraceNode* child = TraceChild("grid.load");
  const TraceContext ctx = BeginOpTrace();
  int64_t rpcs = 0;
  {
    TraceNode scratch;  // TraceSpan needs a sink even when tracing is off
    TraceSpan span(clock_, child != nullptr ? child : &scratch);
    for (const auto& [origin, chunk] : source.chunks()) {
      if (chunk->present_count() == 0) continue;  // nothing to place
      // Source and destination share the schema, so the source chunk
      // origin IS the placement key — every cell of it lands together.
      int node = partitioner_->NodeFor(origin, time);
      if (node < 0 || node >= num_nodes()) {
        return Status::Internal("partitioner returned node " +
                                std::to_string(node));
      }
      RETURN_NOT_OK(PutChunk(node, *chunk, time, ctx));
      ++rpcs;
    }
  }
  if (child != nullptr) child->AddNote("net.rpcs", static_cast<double>(rpcs));
  StitchOpTrace(child, ctx);
  return Status::OK();
}

Status DistributedArray::SetCell(const Coordinates& c,
                                 const std::vector<Value>& values,
                                 int64_t time) {
  // Placement is per chunk, so every cell of one chunk lands together.
  MemArray probe(schema_);
  Coordinates origin = probe.ChunkOriginFor(c);
  int node = partitioner_->NodeFor(origin, time);
  if (node < 0 || node >= num_nodes()) {
    return Status::Internal("partitioner returned node " +
                            std::to_string(node));
  }
  return PutCell(node, c, values, time);
}

std::vector<NodeStats> DistributedArray::node_stats() const {
  std::vector<NodeStats> out(static_cast<size_t>(num_nodes()));
  for (int node = 0; node < num_nodes(); ++node) {
    bool fetched = false;
    Result<std::vector<uint8_t>> r = client_->Call(
        node, net::MessageType::kNodeStatsReq, {}, net_opts_.call);
    if (r.ok()) {
      Result<net::NodeStatsResponse> resp =
          net::NodeStatsResponse::Decode(r.value());
      if (resp.ok()) {
        out[static_cast<size_t>(node)].cells_stored =
            resp.value().cells_stored;
        out[static_cast<size_t>(node)].bytes_stored =
            resp.value().bytes_stored;
        out[static_cast<size_t>(node)].cells_scanned =
            resp.value().cells_scanned;
        out[static_cast<size_t>(node)].bytes_scanned =
            resp.value().bytes_scanned;
        fetched = true;
      }
    }
    if (!fetched) {
      // Unreachable node (partition, shutdown): fall back to the
      // coordinator's last local accounting. Byte residency is derived
      // from the shard at snapshot time rather than maintained
      // incrementally: SetCell can grow a chunk's blocks by more than
      // the logical cell width, so incremental accounting drifts.
      MutexLock lk(stats_mu_);
      out[static_cast<size_t>(node)] = stats_[static_cast<size_t>(node)];
      out[static_cast<size_t>(node)].bytes_stored = static_cast<int64_t>(
          shards_[static_cast<size_t>(node)].ByteSize());
    }
  }
  return out;
}

void DistributedArray::SyncStoredStats(int node) {
  int64_t cells = shards_[static_cast<size_t>(node)].CellCount();
  MutexLock lk(stats_mu_);
  stats_[static_cast<size_t>(node)].cells_stored = cells;
}

void DistributedArray::RecordShardScan(int node) {
  const MemArray& shard = shards_[static_cast<size_t>(node)];
  int64_t cells = shard.CellCount();
  int64_t bytes = static_cast<int64_t>(shard.ByteSize());
  if (FlightRecorder::enabled()) {
    FlightRecorder::Instance().RecordAt(clock_(), FlightEventKind::kShardScan,
                                        node, static_cast<uint64_t>(cells),
                                        static_cast<uint64_t>(bytes));
  }
  {
    MutexLock lk(stats_mu_);
    stats_[static_cast<size_t>(node)].cells_scanned += cells;
    stats_[static_cast<size_t>(node)].bytes_scanned += bytes;
  }
  const GridMetrics& gm = GridMetrics::Get();
  gm.cells_scanned->Inc(cells);
  gm.bytes_scanned->Inc(bytes);
}

int64_t DistributedArray::TotalCells() const {
  int64_t n = 0;
  for (const auto& s : shards_) n += s.CellCount();
  return n;
}

double DistributedArray::LoadImbalance() const {
  int64_t total = TotalCells();
  // An empty array has no load and therefore no imbalance; returning
  // the 0/0 ratio as NaN (or pretending perfect balance) would poison
  // downstream comparisons.
  if (total == 0) return 0.0;
  int64_t max_cells = 0;
  for (const auto& s : shards_) max_cells = std::max(max_cells, s.CellCount());
  double mean = static_cast<double>(total) / num_nodes();
  return static_cast<double>(max_cells) / mean;
}

double DistributedArray::LoadImbalanceBytes() const {
  size_t total = 0;
  size_t max_bytes = 0;
  for (const auto& s : shards_) {
    size_t b = s.ByteSize();
    total += b;
    max_bytes = std::max(max_bytes, b);
  }
  if (total == 0) return 0.0;  // empty: no load, no imbalance
  double mean = static_cast<double>(total) / num_nodes();
  return static_cast<double>(max_bytes) / mean;
}

Result<int64_t> DistributedArray::Repartition(
    std::shared_ptr<const Partitioner> to, int64_t time) {
  if (to == nullptr) return Status::Invalid("null partitioner");
  // A repartition replaces every shard wholesale, so it is executed as
  // a coordinator-local rebuild (the byte movement is still accounted);
  // the per-chunk write path would route every chunk through the OLD
  // node set's transport while the new one is being built.
  std::vector<MemArray> next;
  next.reserve(static_cast<size_t>(to->num_nodes()));
  for (int i = 0; i < to->num_nodes(); ++i) next.emplace_back(schema_);

  int64_t bytes_moved = 0;
  Status st;
  bool failed = false;
  std::vector<Value> cell;
  for (int node = 0; node < num_nodes(); ++node) {
    const MemArray& shard = shards_[static_cast<size_t>(node)];
    for (const auto& [origin, chunk] : shard.chunks()) {
      int dest = to->NodeFor(origin, time);
      if (dest != node) bytes_moved += static_cast<int64_t>(chunk->ByteSize());
      for (Chunk::CellIterator it(*chunk); it.valid(); it.Next()) {
        cell.clear();
        for (size_t a = 0; a < chunk->nattrs(); ++a) {
          cell.push_back(chunk->block(a).Get(it.rank()));
        }
        st = next[static_cast<size_t>(dest)].SetCell(it.coords(), cell);
        if (!st.ok()) {
          failed = true;
          break;
        }
      }
      if (failed) break;
    }
    if (failed) break;
  }
  if (failed) return st;
  // The node count may change: tear the network down before the swap
  // (its services hold this-pointers into the old topology) and rebuild
  // it after.
  ShutdownNet();
  shards_ = std::move(next);
  partitioner_ = std::move(to);
  pool_.reset();
  {
    MutexLock lk(stats_mu_);
    stats_.assign(static_cast<size_t>(num_nodes()), NodeStats{});
    for (int i = 0; i < num_nodes(); ++i) {
      stats_[static_cast<size_t>(i)].cells_stored =
          shards_[static_cast<size_t>(i)].CellCount();
    }
  }
  InitNet();
  return bytes_moved;
}

Result<MemArray> DistributedArray::ParallelAggregate(
    const ExecContext& ctx, const std::vector<std::string>& dims,
    const std::string& agg, const std::string& attr) {
  // Per-node partial aggregation into mergeable state maps on fan-out
  // workers, then a coordinator merge (AggregateState::Merge). Finalized
  // values cannot be merged (avg of avgs is wrong), hence states travel,
  // not results — and since states have no wire form, the shard contents
  // travel instead (ScanShard data shipping) and the partials are built
  // coordinator-side.
  if (ctx.aggregates == nullptr) {
    return Status::Internal("no aggregate registry");
  }
  GridMetrics::Get().parallel_ops->Inc();
  ASSIGN_OR_RETURN(const AggregateFunction* afn, ctx.aggregates->Find(agg));

  std::vector<size_t> gidx;
  for (const auto& g : dims) {
    ASSIGN_OR_RETURN(size_t di, schema_.DimIndex(g));
    gidx.push_back(di);
  }
  size_t attr_idx = 0;
  if (attr != "*") {
    ASSIGN_OR_RETURN(attr_idx, schema_.AttrIndex(attr));
  }

  TraceNode* child = TraceChild("grid.parallel_aggregate");
  const TraceContext tctx = BeginOpTrace();
  std::vector<std::map<Coordinates, std::unique_ptr<AggregateState>>>
      node_states(static_cast<size_t>(num_nodes()));
  {
    TraceNode scratch;
    TraceSpan span(clock_, child != nullptr ? child : &scratch);
    RETURN_NOT_OK(FanoutPool()->ParallelFor(
        num_nodes(), [&](int64_t node) -> Status {
          ASSIGN_OR_RETURN(MemArray partial,
                           FetchShard(static_cast<int>(node), nullptr, tctx));
          auto& groups = node_states[static_cast<size_t>(node)];
          Status acc;
          partial.ForEachCell(
              [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
                Coordinates key;
                if (gidx.empty()) {
                  key.push_back(1);
                } else {
                  for (size_t d : gidx) key.push_back(c[d]);
                }
                auto it = groups.find(key);
                if (it == groups.end()) {
                  it = groups.emplace(std::move(key), afn->NewState()).first;
                }
                Status s =
                    it->second->Accumulate(chunk.block(attr_idx).Get(rank));
                if (!s.ok()) {
                  acc = s;
                  return false;
                }
                return true;
              });
          return acc;
        }));
  }
  if (child != nullptr) {
    child->AddNote("net.rpcs", static_cast<double>(num_nodes()));
  }
  StitchOpTrace(child, tctx);

  // Coordinator merge, in node order (deterministic at every width).
  std::map<Coordinates, std::unique_ptr<AggregateState>> merged;
  for (auto& groups : node_states) {
    for (auto& [key, state] : groups) {
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, std::move(state));
      } else {
        RETURN_NOT_OK(it->second->Merge(*state));
      }
    }
  }

  std::vector<DimensionDesc> out_dims;
  for (size_t d : gidx) out_dims.push_back(schema_.dim(d));
  if (out_dims.empty()) out_dims.push_back({"all", 1, 1, 1});
  ArraySchema out_schema(schema_.name() + "_agg", std::move(out_dims),
                         {AggOutputAttr(agg)});
  MemArray out(out_schema);
  for (const auto& [key, state] : merged) {
    RETURN_NOT_OK(out.SetCell(key, state->Finalize()));
  }
  return out;
}

Result<MemArray> DistributedArray::ParallelSubsample(const ExecContext& ctx,
                                                     const ExprPtr& pred) {
  GridMetrics::Get().parallel_ops->Inc();
  // Ship the execution environment so every node can evaluate the
  // predicate (in a real grid the registry is replicated at deploy).
  for (auto& svc : services_) {
    svc->SetExecEnv(ctx.functions, ctx.enable_chunk_pruning);
  }
  TraceNode* child = TraceChild("grid.parallel_subsample");
  const TraceContext tctx = BeginOpTrace();
  std::vector<Result<MemArray>> partials(
      static_cast<size_t>(num_nodes()),
      Result<MemArray>(Status::Internal("not run")));
  {
    TraceNode scratch;
    TraceSpan span(clock_, child != nullptr ? child : &scratch);
    RETURN_NOT_OK(
        FanoutPool()->ParallelFor(num_nodes(), [&](int64_t node) -> Status {
          partials[static_cast<size_t>(node)] =
              FetchShard(static_cast<int>(node), pred, tctx);
          return partials[static_cast<size_t>(node)].status();
        }));
  }
  if (child != nullptr) {
    child->AddNote("net.rpcs", static_cast<double>(num_nodes()));
  }
  StitchOpTrace(child, tctx);

  MemArray out(schema_);
  out.mutable_schema()->set_name(schema_.name() + "_subsample");
  std::vector<Value> cell;
  for (auto& partial : partials) {
    RETURN_NOT_OK(partial.status());
    Status st;
    bool failed = false;
    partial.value().ForEachCell(
        [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          st = out.SetCell(c, cell);
          if (!st.ok()) {
            failed = true;
            return false;
          }
          return true;
        });
    if (failed) return st;
  }
  return out;
}

Result<MemArray> DistributedArray::ParallelSjoin(
    const ExecContext& ctx, const DistributedArray& other,
    const std::vector<std::pair<std::string, std::string>>& dim_pairs,
    int64_t* bytes_moved) {
  if (bytes_moved != nullptr) *bytes_moved = 0;

  // Co-partitioned case: identical schemes over the same coordinate
  // system join node-locally with zero movement.
  const std::vector<MemArray>* rhs_shards = &other.shards_;
  std::vector<MemArray> repartitioned;
  if (!partitioner_->Equals(*other.partitioner_)) {
    // Move the (usually smaller) other array to this scheme, counting
    // bytes. A production system would pick the cheaper direction; the
    // benchmark wants the movement made visible, not hidden. The rebuild
    // is a plain shard vector, not a full DistributedArray — the staged
    // copy needs no network of its own.
    repartitioned.reserve(static_cast<size_t>(num_nodes()));
    for (int i = 0; i < num_nodes(); ++i) {
      repartitioned.emplace_back(other.schema_);
    }
    for (int node = 0; node < other.num_nodes(); ++node) {
      const MemArray& shard = other.shards_[static_cast<size_t>(node)];
      for (const auto& [origin, chunk] : shard.chunks()) {
        int dest = partitioner_->NodeFor(origin, 0);
        if (dest != node && bytes_moved != nullptr) {
          *bytes_moved += static_cast<int64_t>(chunk->ByteSize());
        }
        std::vector<Value> cell;
        for (Chunk::CellIterator it(*chunk); it.valid(); it.Next()) {
          cell.clear();
          for (size_t a = 0; a < chunk->nattrs(); ++a) {
            cell.push_back(chunk->block(a).Get(it.rank()));
          }
          RETURN_NOT_OK(repartitioned[static_cast<size_t>(dest)].SetCell(
              it.coords(), cell));
        }
      }
    }
    rhs_shards = &repartitioned;
  }

  // Node-local joins: each worker fetches its node's lhs shard over the
  // wire and joins it against the co-located rhs shard.
  GridMetrics::Get().parallel_ops->Inc();
  TraceNode* child = TraceChild("grid.parallel_sjoin");
  const TraceContext tctx = BeginOpTrace();
  std::vector<Result<MemArray>> partials(
      static_cast<size_t>(num_nodes()),
      Result<MemArray>(Status::Internal("not run")));
  {
    TraceNode scratch;
    TraceSpan span(clock_, child != nullptr ? child : &scratch);
    RETURN_NOT_OK(
        FanoutPool()->ParallelFor(num_nodes(), [&](int64_t node) -> Status {
          ASSIGN_OR_RETURN(MemArray lhs,
                           FetchShard(static_cast<int>(node), nullptr, tctx));
          ExecContext local = ctx;
          local.stats = nullptr;
          partials[static_cast<size_t>(node)] = Sjoin(
              local, lhs, (*rhs_shards)[static_cast<size_t>(node)], dim_pairs);
          return partials[static_cast<size_t>(node)].status();
        }));
  }
  if (child != nullptr) {
    child->AddNote("net.rpcs", static_cast<double>(num_nodes()));
  }
  StitchOpTrace(child, tctx);

  Result<MemArray>& first = partials[0];
  RETURN_NOT_OK(first.status());
  MemArray out(first.value().schema());
  std::vector<Value> cell;
  for (auto& partial : partials) {
    RETURN_NOT_OK(partial.status());
    Status st;
    bool failed = false;
    partial.value().ForEachCell(
        [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          st = out.SetCell(c, cell);
          if (!st.ok()) {
            failed = true;
            return false;
          }
          return true;
        });
    if (failed) return st;
  }
  return out;
}

Result<int64_t> DistributedArray::ReplicateBoundaries(
    int64_t max_position_error) {
  const auto* range = dynamic_cast<const RangePartitioner*>(
      partitioner_.get());
  if (range == nullptr) {
    return Status::Invalid(
        "boundary replication requires a range partitioner");
  }
  if (max_position_error < 0) {
    return Status::Invalid("max position error must be >= 0");
  }
  size_t dim = range->dim();
  int64_t replicated = 0;
  std::vector<std::pair<int, std::pair<Coordinates, std::vector<Value>>>>
      to_copy;
  for (int node = 0; node < num_nodes(); ++node) {
    const MemArray& shard = shards_[static_cast<size_t>(node)];
    std::vector<Value> cell;
    shard.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                          int64_t rank) {
      for (int64_t b : range->boundaries()) {
        // Cells within the error bound of boundary b may actually belong
        // to the other side; replicate there (paper: "redundantly place
        // an observation in multiple partitions").
        if (c[dim] >= b - max_position_error &&
            c[dim] <= b + max_position_error - 1) {
          Coordinates probe = c;
          int self = node;
          // Destination: the partition on the other side of b.
          int dest = c[dim] < b ? self + 1 : self - 1;
          // Compute destination robustly from the boundary itself.
          probe[dim] = c[dim] < b ? b : b - 1;
          dest = partitioner_->NodeFor(probe, 0);
          if (dest == self) continue;
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          to_copy.push_back({dest, {c, cell}});
        }
      }
      return true;
    });
  }
  // Replica placement is a write like any other: through the wire.
  for (auto& [dest, kv] : to_copy) {
    RETURN_NOT_OK(PutCell(dest, kv.first, kv.second, 0));
    ++replicated;
  }
  return replicated;
}

}  // namespace scidb
