#include "grid/partitioner.h"

#include <algorithm>

#include "common/logging.h"

namespace scidb {

// ------------------------------------------------------------ FixedGrid

FixedGridPartitioner::FixedGridPartitioner(Box domain,
                                           std::vector<int64_t> tiles)
    : domain_(std::move(domain)), tiles_(std::move(tiles)) {
  SCIDB_CHECK(tiles_.size() == domain_.ndims());
  for (int64_t t : tiles_) SCIDB_CHECK(t >= 1);
}

int FixedGridPartitioner::num_nodes() const {
  int64_t n = 1;
  for (int64_t t : tiles_) n *= t;
  return static_cast<int>(n);
}

int FixedGridPartitioner::NodeFor(const Coordinates& origin,
                                  int64_t time) const {
  (void)time;
  int64_t node = 0;
  for (size_t d = 0; d < tiles_.size(); ++d) {
    // Unsigned arithmetic throughout: an unbounded ('*') dimension has
    // high == kUnboundedDim, where `extent + tiles - 1` and
    // `origin - low` overflow int64 (UB). The unsigned forms are exact
    // for every bounded domain, so bounded placement is unchanged.
    const uint64_t tiles = static_cast<uint64_t>(tiles_[d]);
    const uint64_t extent = static_cast<uint64_t>(domain_.high[d]) -
                            static_cast<uint64_t>(domain_.low[d]) + 1;
    uint64_t tile_size = extent / tiles + (extent % tiles != 0 ? 1 : 0);
    if (tile_size == 0) tile_size = 1;
    uint64_t off = origin[d] <= domain_.low[d]
                       ? 0
                       : static_cast<uint64_t>(origin[d]) -
                             static_cast<uint64_t>(domain_.low[d]);
    off = std::min(off, extent - 1);
    const uint64_t tile = std::min(off / tile_size, tiles - 1);
    node = node * tiles_[d] + static_cast<int64_t>(tile);
  }
  return static_cast<int>(node);
}

bool FixedGridPartitioner::Equals(const Partitioner& other) const {
  const auto* o = dynamic_cast<const FixedGridPartitioner*>(&other);
  return o != nullptr && o->domain_ == domain_ && o->tiles_ == tiles_;
}

// ----------------------------------------------------------------- Hash

HashPartitioner::HashPartitioner(int num_nodes) : n_(num_nodes) {
  SCIDB_CHECK(num_nodes >= 1);
}

int HashPartitioner::NodeFor(const Coordinates& origin, int64_t time) const {
  (void)time;
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (int64_t c : origin) {
    uint64_t x = static_cast<uint64_t>(c);
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (b * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  // FNV's low bits are weak (they only see the input mod 2^k, and chunk
  // origins are all congruent modulo the chunk interval); finish with a
  // murmur3-style avalanche before reducing.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return static_cast<int>(h % static_cast<uint64_t>(n_));
}

bool HashPartitioner::Equals(const Partitioner& other) const {
  const auto* o = dynamic_cast<const HashPartitioner*>(&other);
  return o != nullptr && o->n_ == n_;
}

// ---------------------------------------------------------------- Range

RangePartitioner::RangePartitioner(size_t dim,
                                   std::vector<int64_t> boundaries)
    : dim_(dim), boundaries_(std::move(boundaries)) {
  SCIDB_CHECK(std::is_sorted(boundaries_.begin(), boundaries_.end()));
}

int RangePartitioner::NodeFor(const Coordinates& origin,
                              int64_t time) const {
  (void)time;
  SCIDB_DCHECK(dim_ < origin.size());
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(),
                             origin[dim_]);
  return static_cast<int>(it - boundaries_.begin());
}

bool RangePartitioner::Equals(const Partitioner& other) const {
  const auto* o = dynamic_cast<const RangePartitioner*>(&other);
  return o != nullptr && o->dim_ == dim_ && o->boundaries_ == boundaries_;
}

// ------------------------------------------------------------ TimeSplit

TimeSplitPartitioner::TimeSplitPartitioner(std::vector<Epoch> epochs)
    : epochs_(std::move(epochs)) {
  SCIDB_CHECK(!epochs_.empty());
  for (size_t i = 1; i < epochs_.size(); ++i) {
    SCIDB_CHECK(epochs_[i].until > epochs_[i - 1].until);
  }
  for (const auto& e : epochs_) SCIDB_CHECK(e.scheme != nullptr);
}

int TimeSplitPartitioner::num_nodes() const {
  int n = 0;
  for (const auto& e : epochs_) n = std::max(n, e.scheme->num_nodes());
  return n;
}

int TimeSplitPartitioner::NodeFor(const Coordinates& origin,
                                  int64_t time) const {
  for (const auto& e : epochs_) {
    if (time < e.until) return e.scheme->NodeFor(origin, time);
  }
  return epochs_.back().scheme->NodeFor(origin, time);
}

bool TimeSplitPartitioner::Equals(const Partitioner& other) const {
  const auto* o = dynamic_cast<const TimeSplitPartitioner*>(&other);
  if (o == nullptr || o->epochs_.size() != epochs_.size()) return false;
  for (size_t i = 0; i < epochs_.size(); ++i) {
    if (o->epochs_[i].until != epochs_[i].until ||
        !o->epochs_[i].scheme->Equals(*epochs_[i].scheme)) {
      return false;
    }
  }
  return true;
}

// ----------------------------------------------------- ReplicaPlacement

ReplicaPlacement::ReplicaPlacement(
    std::shared_ptr<const Partitioner> scheme, int replication)
    : scheme_(std::move(scheme)) {
  SCIDB_CHECK(scheme_ != nullptr);
  k_ = std::max(1, std::min(replication, scheme_->num_nodes()));
}

uint64_t ReplicaPlacement::Score(const Coordinates& origin, int node) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (b * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (int64_t c : origin) mix(static_cast<uint64_t>(c));
  mix(static_cast<uint64_t>(node));
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

std::vector<int> ReplicaPlacement::PreferenceOrder(const Coordinates& origin,
                                                   int64_t time) const {
  const int n = num_nodes();
  const int primary = scheme_->NodeFor(origin, time);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  order.push_back(primary);
  std::vector<int> rest;
  rest.reserve(static_cast<size_t>(n) - 1);
  for (int node = 0; node < n; ++node) {
    if (node != primary) rest.push_back(node);
  }
  // Highest score first; ties (possible, if astronomically rare) break
  // on node id so the order is total and deterministic.
  std::sort(rest.begin(), rest.end(), [&origin](int a, int b) {
    uint64_t sa = Score(origin, a);
    uint64_t sb = Score(origin, b);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  order.insert(order.end(), rest.begin(), rest.end());
  return order;
}

std::vector<int> ReplicaPlacement::ReplicasFor(const Coordinates& origin,
                                               int64_t time) const {
  std::vector<int> order = PreferenceOrder(origin, time);
  order.resize(static_cast<size_t>(std::min<int>(k_, num_nodes())));
  return order;
}

std::vector<int> ReplicaPlacement::LiveReplicasFor(
    const Coordinates& origin, int64_t time,
    const std::set<int>& dead) const {
  std::vector<int> out;
  for (int node : PreferenceOrder(origin, time)) {
    if (dead.count(node) != 0) continue;
    out.push_back(node);
    if (static_cast<int>(out.size()) == k_) break;
  }
  return out;
}

int ReplicaPlacement::OwnerFor(const Coordinates& origin, int64_t time,
                               const std::set<int>& dead) const {
  if (dead.empty()) return scheme_->NodeFor(origin, time);
  for (int node : PreferenceOrder(origin, time)) {
    if (dead.count(node) == 0) return node;
  }
  return -1;
}

}  // namespace scidb
