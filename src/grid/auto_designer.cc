#include "grid/auto_designer.h"

#include <algorithm>

#include "common/logging.h"

namespace scidb {

AutoDesigner::AutoDesigner(Box domain, size_t split_dim, int num_nodes)
    : domain_(std::move(domain)), split_dim_(split_dim),
      num_nodes_(num_nodes) {
  SCIDB_CHECK(split_dim_ < domain_.ndims());
  SCIDB_CHECK(num_nodes_ >= 1);
  int64_t extent =
      domain_.high[split_dim_] - domain_.low[split_dim_] + 1;
  histogram_.assign(static_cast<size_t>(extent), 0.0);
}

void AutoDesigner::Observe(const WorkloadAccess& access) {
  if (access.region.ndims() != domain_.ndims()) return;
  int64_t lo = std::max(access.region.low[split_dim_],
                        domain_.low[split_dim_]);
  int64_t hi = std::min(access.region.high[split_dim_],
                        domain_.high[split_dim_]);
  for (int64_t c = lo; c <= hi; ++c) {
    histogram_[static_cast<size_t>(c - domain_.low[split_dim_])] +=
        access.weight;
  }
  ++observed_;
}

void AutoDesigner::ObserveAll(const std::vector<WorkloadAccess>& accesses) {
  for (const auto& a : accesses) Observe(a);
}

Result<std::shared_ptr<RangePartitioner>> AutoDesigner::Design() const {
  int64_t extent = static_cast<int64_t>(histogram_.size());
  std::vector<int64_t> boundaries;
  double total = 0;
  for (double w : histogram_) total += w;

  if (total == 0) {
    // No workload: uniform split.
    for (int i = 1; i < num_nodes_; ++i) {
      boundaries.push_back(domain_.low[split_dim_] +
                           i * extent / num_nodes_);
    }
    return std::make_shared<RangePartitioner>(split_dim_,
                                              std::move(boundaries));
  }

  // Equal-weight split points.
  double per_node = total / num_nodes_;
  double acc = 0;
  int next = 1;
  for (int64_t c = 0; c < extent && next < num_nodes_; ++c) {
    acc += histogram_[static_cast<size_t>(c)];
    if (acc >= per_node * next) {
      boundaries.push_back(domain_.low[split_dim_] + c + 1);
      ++next;
    }
  }
  // Degenerate workloads (all weight in one spot) may yield fewer split
  // points; pad with the domain end (empty trailing nodes).
  while (static_cast<int>(boundaries.size()) < num_nodes_ - 1) {
    boundaries.push_back(domain_.high[split_dim_] + 1);
  }
  return std::make_shared<RangePartitioner>(split_dim_,
                                            std::move(boundaries));
}

double AutoDesigner::PredictedImbalance(const Partitioner& p) const {
  std::vector<double> node_weight(static_cast<size_t>(p.num_nodes()), 0.0);
  Coordinates probe(domain_.ndims());
  for (size_t d = 0; d < domain_.ndims(); ++d) probe[d] = domain_.low[d];
  double total = 0;
  for (size_t i = 0; i < histogram_.size(); ++i) {
    probe[split_dim_] = domain_.low[split_dim_] + static_cast<int64_t>(i);
    int node = p.NodeFor(probe, 0);
    node_weight[static_cast<size_t>(node)] += histogram_[i];
    total += histogram_[i];
  }
  if (total == 0) return 1.0;
  double max_w = *std::max_element(node_weight.begin(), node_weight.end());
  return max_w / (total / p.num_nodes());
}

}  // namespace scidb
