#ifndef SCIDB_GRID_CLUSTER_H_
#define SCIDB_GRID_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/operators.h"
#include "grid/partitioner.h"
#include "net/fault_injection.h"
#include "net/rpc.h"

namespace scidb {

class GridNodeService;

// Per-node accounting of the simulated shared-nothing grid. The paper
// reasons about load balance and data movement; these counters are what
// EXP-PART reports. Byte counts matter independently of cell counts:
// variable-width attributes make cell-balanced placements byte-skewed,
// and repartitioning cost is paid in bytes.
struct NodeStats {
  int64_t cells_stored = 0;
  int64_t bytes_stored = 0;   // shard residency at snapshot time
  int64_t cells_scanned = 0;
  int64_t bytes_scanned = 0;  // cumulative bytes visited by Parallel* ops
};

// How a DistributedArray's coordinator talks to its nodes (DESIGN.md
// §10). The default — in-process inline delivery, no faults, steady
// clock — is fully deterministic and thread-free, matching the old
// direct-call grid exactly.
struct GridNetOptions {
  enum class TransportKind {
    kInline,    // synchronous in-process delivery (deterministic)
    kThreaded,  // per-node delivery threads (models asynchrony)
    kTcp,       // real sockets on 127.0.0.1
  };
  TransportKind transport = TransportKind::kInline;

  // Nonzero seeds a FaultInjectingTransport wrapper (drops, dups,
  // delays, reorders at `fault_profile` rates); 0 = transparent
  // network. The session knob `set net_faults = <seed>` feeds the
  // process-wide default picked up by the two-argument constructor.
  uint64_t fault_seed = 0;
  net::FaultProfile fault_profile = net::FaultProfile::Lossy();

  // Per-RPC deadline/retry budget for every grid call.
  net::CallOptions call;

  // Injectable time: tests drive deadlines from a VirtualTime pair so a
  // full partition consumes its deadline without real sleeping.
  TraceClock clock;    // null = SteadyNowNs
  net::SleepFn sleep;  // null = real condition-variable waits

  // k-way chunk replication (DESIGN.md §13): every chunk is written to
  // the first k nodes of its ReplicaPlacement preference order, reads
  // fail over to a surviving replica when the primary is unreachable,
  // and Recover() re-replicates a dead node's chunks onto survivors.
  // 1 (the default) is the exact pre-replication grid: no extra writes,
  // no failover, no failure detection. The session knob
  // `set replication = k` feeds the process-wide default picked up by
  // the two-argument constructor. Clamped to [1, num_nodes()].
  int replication = 1;

  // Consecutive failed data-path RPCs to one node before the
  // coordinator declares it dead (triggers MarkDead broadcast +
  // re-replication at the end of the running operation). Only
  // meaningful when replication > 1.
  int dead_after_failures = 3;
};

// One scrape of every node's metrics, pulled over MetricsGet RPCs
// (DESIGN.md §12). Each node contributes its snapshot plus a
// reachability flag; Labeled() merges them into one flat view whose
// entry names carry a "node<i>." prefix, which is what
// tools/metrics_dump --cluster prints.
struct ClusterMetrics {
  struct NodeMetrics {
    int node = -1;
    // False when the scrape RPC failed (partitioned / shut-down node);
    // `snapshot` is then empty rather than stale.
    bool reachable = false;
    MetricsSnapshot snapshot;
  };
  std::vector<NodeMetrics> nodes;

  // Flat merged view: every entry of every reachable node, renamed
  // "node<i>.<original name>", in node order.
  MetricsSnapshot Labeled() const;
  std::string ToText() const { return SnapshotToText(Labeled()); }
};

// An array horizontally partitioned across the nodes of a simulated grid
// (paper §2.7). Chunks are the unit of placement: each exec-grid chunk
// goes to Partitioner::NodeFor(origin, load_time).
//
// All data movement flows through the src/net/ stack: loads and cell
// writes are ChunkPut RPCs to the owning node, the parallel operators
// fetch their inputs with ScanShard RPCs, and node_stats() asks each
// node over the wire. The coordinator is registered on the transport as
// node id num_nodes(); shards are never written by reaching into a peer
// directly.
class DistributedArray {
 public:
  DistributedArray(ArraySchema schema,
                   std::shared_ptr<const Partitioner> partitioner);
  DistributedArray(ArraySchema schema,
                   std::shared_ptr<const Partitioner> partitioner,
                   GridNetOptions net);
  ~DistributedArray();
  DistributedArray(const DistributedArray&) = delete;
  DistributedArray& operator=(const DistributedArray&) = delete;

  const ArraySchema& schema() const { return schema_; }
  const Partitioner& partitioner() const { return *partitioner_; }
  std::shared_ptr<const Partitioner> partitioner_ptr() const {
    return partitioner_;
  }
  int num_nodes() const { return partitioner_->num_nodes(); }
  const MemArray& shard(int node) const { return shards_[node]; }

  // ---- replication & failover (DESIGN.md §13) ----

  // Effective replication factor (GridNetOptions::replication clamped).
  int replication() const { return placement_->replication(); }
  const ReplicaPlacement& placement() const { return *placement_; }

  // Nodes the coordinator has declared dead (dead_after_failures
  // consecutive data-path RPC failures). Snapshot copy.
  std::set<int> dead_nodes() const LOCKS_EXCLUDED(meta_mu_);

  // Re-replicates every chunk whose replica set lost nodes to the dead
  // set, copying from a surviving holder (ChunkGet) onto the first live
  // nodes of the chunk's preference order (ChunkPut), after broadcasting
  // the dead set to every survivor (MarkDead). Returns the number of
  // chunk copies created. Runs automatically at the end of a parallel
  // operation that declared a node dead; callable explicitly too.
  // No-op at replication = 1 (there is nothing to copy from).
  Result<int64_t> Recover() LOCKS_EXCLUDED(meta_mu_);
  // Snapshot of the per-node counters, fetched from each node with a
  // NodeStatsReq RPC (an unreachable node falls back to the
  // coordinator's last local accounting). Returns a copy.
  std::vector<NodeStats> node_stats() const LOCKS_EXCLUDED(stats_mu_);

  // Loads every chunk of `source`, stamping the load epoch `time` (drives
  // the adaptive time-split scheme). One ChunkPut RPC per source chunk.
  Status Load(const MemArray& source, int64_t time);
  Status SetCell(const Coordinates& c, const std::vector<Value>& values,
                 int64_t time);

  int64_t TotalCells() const;

  // max(node cells) / mean(node cells) — 1.0 is perfect balance, 0.0 for
  // an empty array (no load, no imbalance). The skew metric EXP-PART
  // reports for fixed vs adaptive schemes.
  double LoadImbalance() const;

  // Same ratio measured in shard bytes instead of cells; diverges from
  // LoadImbalance() when attribute widths vary across the array.
  double LoadImbalanceBytes() const;

  // Re-partitions in place; returns the bytes that had to move between
  // nodes (cells whose node assignment changed). The network stack is
  // rebuilt afterwards: the node count may have changed.
  Result<int64_t> Repartition(std::shared_ptr<const Partitioner> to,
                              int64_t time);

  // ---- parallel execution (one RPC-fetching worker per node) ----

  // Grand or grouped aggregate executed as per-node partials merged at
  // the coordinator (AggregateState::Merge). Shard contents travel to
  // the workers as ScanShard responses (data shipping: accumulator
  // state has no wire form).
  Result<MemArray> ParallelAggregate(const ExecContext& ctx,
                                     const std::vector<std::string>& dims,
                                     const std::string& agg,
                                     const std::string& attr);

  // Per-node Subsample with the predicate shipped to the serving node
  // (function shipping); results are unioned (subsample commutes with
  // partitioning).
  Result<MemArray> ParallelSubsample(const ExecContext& ctx,
                                     const ExprPtr& pred);

  // Structural join with another distributed array. When the two arrays
  // are co-partitioned the join runs node-locally and moves zero bytes;
  // otherwise `other` is first re-partitioned to this array's scheme and
  // the movement is reported in *bytes_moved.
  Result<MemArray> ParallelSjoin(
      const ExecContext& ctx, const DistributedArray& other,
      const std::vector<std::pair<std::string, std::string>>& dim_pairs,
      int64_t* bytes_moved);

  // ---- uncertain-location replication (paper §2.13 / PanSTARRS) ----
  // Replicates every cell whose position may fall in a neighboring
  // partition (|coordinate - boundary| <= max_position_error along the
  // range dimension) into that neighbor, so uncertain spatial joins can
  // run without data movement. Only meaningful under a RangePartitioner.
  // Replica placement goes through ChunkPut like any other write.
  // Returns the number of replicated cells.
  Result<int64_t> ReplicateBoundaries(int64_t max_position_error);

  // ---- cluster-wide observability (DESIGN.md §12) ----

  // Pulls every node's metrics snapshot with a MetricsGet RPC. Node-local
  // gauges (cells/bytes stored and scanned) always travel; when
  // `include_process` is set the shared process-wide registry snapshot is
  // appended too (every simulated node shares one process, so those
  // entries repeat per node — exactly what a real per-process scrape of a
  // real grid would return). Unreachable nodes come back with
  // reachable=false instead of failing the scrape.
  ClusterMetrics ScrapeClusterMetrics(bool include_process = false) const;

  // Pulls node `node`'s view of the process flight recorder over a
  // TraceGet RPC (trace_id 0 = no spans, include_flight set). The remote
  // path tools/flight_dump --rpc exercises.
  Result<std::vector<FlightEvent>> FetchFlightEvents(int node) const;

  // ---- network introspection ----

  const GridNetOptions& net_options() const { return net_opts_; }
  // The fault wrapper, or null when fault injection is off. Tests use it
  // to partition nodes and read drop/dup counters.
  net::FaultInjectingTransport* fault_injector() { return fault_.get(); }

  // Attaches a trace node: each parallel operator adds a timed child
  // span under it (clock = GridNetOptions::clock), which is how
  // `explain analyze` surfaces network time. Null detaches.
  void set_trace_node(TraceNode* node) { trace_node_ = node; }

  // Process-wide default fault seed for newly constructed arrays (the
  // two-argument constructor). Backs the session `set net_faults` knob.
  static void SetDefaultFaultSeed(uint64_t seed);
  static uint64_t DefaultFaultSeed();

  // Process-wide default replication factor for newly constructed
  // arrays. Backs the session `set replication = k` knob.
  static void SetDefaultReplication(int k);
  static int DefaultReplication();

 private:
  friend class GridNodeService;

  // Builds the transport, the per-node services/servers, and the
  // coordinator client. Called on construction and after Repartition.
  void InitNet();
  void ShutdownNet();

  // One ChunkPut RPC: upserts `chunk`'s cells into node `dest`. An
  // active `ctx` rides on the request frame and yields client/server
  // spans for the stitch.
  Status PutChunk(int dest, const Chunk& chunk, int64_t time,
                  const TraceContext& ctx = {});
  // Single-cell write via PutChunk (a one-cell chunk travels).
  Status PutCell(int dest, const Coordinates& c,
                 const std::vector<Value>& values, int64_t time);
  // Replica-aware chunk write: at replication = 1 this is exactly the
  // legacy NodeFor + PutChunk path; at k > 1 a fresh chunk is written
  // to the first k live nodes of its preference order (walking past
  // unreachable candidates) and an existing chunk is re-written to all
  // of its live holders, so copies never diverge. Updates the chunk
  // directory.
  Status PlaceChunk(const Coordinates& origin, const Chunk& chunk,
                    int64_t time, const TraceContext& ctx = {})
      LOCKS_EXCLUDED(meta_mu_);
  // One ChunkGet RPC: fetches the chunk at `origin` from node `src`.
  Result<Chunk> GetChunk(int src, const Coordinates& origin) const;
  // One ScanShard RPC: the chunks of fan-out slot `view_of` (-1 = node's
  // own slot) that `node` currently serves given the dead view, rebuilt
  // into a coordinator-side MemArray. `pred` filters server-side.
  Result<MemArray> FetchShard(int node, const ExprPtr& pred,
                              const TraceContext& ctx, int view_of,
                              const std::set<int>& dead,
                              const net::CallOptions& call) const;
  // The parallel operators' per-slot fetch: asks slot `slot` for its own
  // chunks, and when the slot is dead or unreachable (and k > 1)
  // degrades to a failover read — the survivors are asked for the
  // slot's chunks (first-live-replica serves), within what remains of
  // the original call deadline. Bumps scidb.grid.failover_reads and
  // `failovers` (the op's `failover` explain-analyze note) when the
  // degraded path runs.
  Result<MemArray> FetchSlot(int slot, const ExprPtr& pred,
                             const TraceContext& ctx,
                             std::atomic<int64_t>* failovers) const
      LOCKS_EXCLUDED(meta_mu_);

  // Failure-detection bookkeeping for one data-path RPC outcome.
  // Declares the node dead on the dead_after_failures'th consecutive
  // failure (flight-recorder kNodeDead + scidb.grid.nodes_declared_dead)
  // and remembers that a recovery pass is owed. No-op at k = 1, so the
  // legacy grid never changes behavior.
  void RecordCallResult(int node, bool ok) const LOCKS_EXCLUDED(meta_mu_);
  std::set<int> DeadSnapshot() const LOCKS_EXCLUDED(meta_mu_);
  // The chunk's load epoch from the directory (0 when unknown); the
  // node services use it to compute placement orders for scan
  // filtering.
  int64_t DirTimeFor(const Coordinates& origin) const
      LOCKS_EXCLUDED(meta_mu_);
  // Pushes the coordinator's dead set to every survivor (MarkDead).
  void BroadcastDeadSet() const LOCKS_EXCLUDED(meta_mu_);
  // Runs Recover() if RecordCallResult declared a node dead since the
  // last pass. Called at the end of each parallel operation.
  void MaybeRecover();

  // Starts a distributed trace for one grid operation: fresh trace id
  // plus a root span the per-RPC client spans parent onto. Inactive
  // (all-zero) when no trace node is attached, which turns the whole
  // span machinery off.
  TraceContext BeginOpTrace() const;
  // Completes the distributed half of `explain analyze` for `ctx`:
  // drains the coordinator's client spans, fetches every node's server
  // spans with an (untraced) TraceGet RPC, and grafts a "node <i>"
  // sub-tree under `child` — rpc.* spans with their attempt/retry/wire
  // notes, each with the matching server.* handler span as a child.
  // No-op when `child` is null or `ctx` is inactive.
  void StitchOpTrace(TraceNode* child, const TraceContext& ctx) const;

  // Lazy fan-out pool (one worker per node); rebuilt when the node
  // count changes.
  ThreadPool* FanoutPool();

  // Re-derives cells_stored for `node` from its shard. Derived rather
  // than incremented so replayed ChunkPuts are idempotent.
  void SyncStoredStats(int node) LOCKS_EXCLUDED(stats_mu_);

  // Accounts one full-shard scan by `node` (called by the node's
  // ScanShard handler): per-node counters under stats_mu_ plus the
  // process-wide scidb.grid.* counters. Once per shard scan, never per
  // cell, so the scan loops stay free of shared atomics.
  void RecordShardScan(int node) LOCKS_EXCLUDED(stats_mu_);

  // The coordinator's transport node id (one past the last grid node).
  int coordinator_id() const { return num_nodes(); }

  // Opens a timed child span under trace_node_, or null when detached.
  TraceNode* TraceChild(const char* label);

  // Topology: written by the coordinator at construction / Load /
  // Repartition, with no parallel execution in flight; during execution
  // each node's RPC handler touches only its own disjoint shard. Not a
  // stats_mu_ concern, so these opt out of lock-coverage.
  ArraySchema schema_;  // NOLINT(lock-coverage): coordinator-only
  std::shared_ptr<const Partitioner>
      partitioner_;  // NOLINT(lock-coverage): coordinator-only
  std::vector<MemArray> shards_;  // NOLINT(lock-coverage): disjoint per node
  // Per-node accounting; written by the coordinator on load/repartition
  // and by the per-node RPC handlers during parallel execution.
  mutable Mutex stats_mu_;
  std::vector<NodeStats> stats_ GUARDED_BY(stats_mu_);

  // ---- replication metadata (DESIGN.md §13) ----
  // Rebuilt alongside partitioner_ on construction and Repartition.
  std::unique_ptr<ReplicaPlacement>
      placement_;  // NOLINT(lock-coverage): coordinator-only
  // Chunk directory: load epoch (sticky: the first write's time, which
  // pins the chunk's placement order forever) plus current holders.
  struct ChunkMeta {
    int64_t time = 0;
    std::vector<int> holders;
  };
  mutable Mutex meta_mu_;
  mutable std::map<Coordinates, ChunkMeta> chunk_dir_ GUARDED_BY(meta_mu_);
  // Nodes declared dead + per-node consecutive data-path failures.
  mutable std::set<int> dead_ GUARDED_BY(meta_mu_);
  mutable std::vector<int> consec_fail_ GUARDED_BY(meta_mu_);
  // Set when RecordCallResult declares a death; cleared by Recover().
  mutable bool recover_pending_ GUARDED_BY(meta_mu_) = false;

  // ---- network stack (DESIGN.md §10) ----
  // Declaration order is teardown order in reverse: the client and
  // servers must die before the transports they point into.
  // The whole stack is wired once in the constructor and torn down in
  // the destructor; pointers are stable for the object's lifetime.
  GridNetOptions net_opts_;  // NOLINT(lock-coverage): ctor-wired
  // Resolved: net_opts_.clock or SteadyNowNs.
  TraceClock clock_;  // NOLINT(lock-coverage): ctor-wired
  std::unique_ptr<net::Transport>
      base_transport_;  // NOLINT(lock-coverage): ctor-wired
  std::unique_ptr<net::FaultInjectingTransport>
      fault_;  // NOLINT(lock-coverage): ctor-wired
  // fault_ wrapper when enabled.
  net::Transport* transport_ = nullptr;  // NOLINT(lock-coverage): ctor-wired
  std::vector<std::unique_ptr<GridNodeService>>
      services_;  // NOLINT(lock-coverage): ctor-wired
  std::vector<std::unique_ptr<net::RpcServer>>
      servers_;  // NOLINT(lock-coverage): ctor-wired
  // mutable: const reads (node_stats, FetchShard) still issue RPCs.
  mutable std::unique_ptr<net::RpcClient>
      client_;  // NOLINT(lock-coverage): ctor-wired
  // Client-side rpc.* spans of traced calls; survives Repartition so an
  // in-flight trace is never torn down with the network.
  mutable SpanStore client_spans_;  // NOLINT(lock-coverage): internally synchronized
  std::unique_ptr<ThreadPool> pool_;  // NOLINT(lock-coverage): ctor-wired
  TraceNode* trace_node_ = nullptr;  // NOLINT(lock-coverage): set pre-exec
};

}  // namespace scidb

#endif  // SCIDB_GRID_CLUSTER_H_
