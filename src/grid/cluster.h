#ifndef SCIDB_GRID_CLUSTER_H_
#define SCIDB_GRID_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/mutex.h"
#include "common/result.h"
#include "exec/operators.h"
#include "grid/partitioner.h"

namespace scidb {

// Per-node accounting of the simulated shared-nothing grid. The paper
// reasons about load balance and data movement; these counters are what
// EXP-PART reports. Byte counts matter independently of cell counts:
// variable-width attributes make cell-balanced placements byte-skewed,
// and repartitioning cost is paid in bytes.
struct NodeStats {
  int64_t cells_stored = 0;
  int64_t bytes_stored = 0;   // shard residency at snapshot time
  int64_t cells_scanned = 0;
  int64_t bytes_scanned = 0;  // cumulative bytes visited by Parallel* ops
};

// An array horizontally partitioned across the nodes of a simulated grid
// (paper §2.7). Chunks are the unit of placement: each exec-grid chunk
// goes to Partitioner::NodeFor(origin, load_time).
class DistributedArray {
 public:
  DistributedArray(ArraySchema schema,
                   std::shared_ptr<const Partitioner> partitioner);

  const ArraySchema& schema() const { return schema_; }
  const Partitioner& partitioner() const { return *partitioner_; }
  std::shared_ptr<const Partitioner> partitioner_ptr() const {
    return partitioner_;
  }
  int num_nodes() const { return partitioner_->num_nodes(); }
  const MemArray& shard(int node) const { return shards_[node]; }
  // Snapshot of the per-node counters. Returns a copy: worker threads of
  // the Parallel* operators update the counters under stats_mu_, so a
  // reference into stats_ would be a data race waiting for a caller.
  std::vector<NodeStats> node_stats() const LOCKS_EXCLUDED(stats_mu_);

  // Loads every chunk of `source`, stamping the load epoch `time` (drives
  // the adaptive time-split scheme).
  Status Load(const MemArray& source, int64_t time);
  Status SetCell(const Coordinates& c, const std::vector<Value>& values,
                 int64_t time);

  int64_t TotalCells() const;

  // max(node cells) / mean(node cells) — 1.0 is perfect balance. The
  // skew metric EXP-PART reports for fixed vs adaptive schemes.
  double LoadImbalance() const;

  // Same ratio measured in shard bytes instead of cells; diverges from
  // LoadImbalance() when attribute widths vary across the array.
  double LoadImbalanceBytes() const;

  // Re-partitions in place; returns the bytes that had to move between
  // nodes (cells whose node assignment changed).
  Result<int64_t> Repartition(std::shared_ptr<const Partitioner> to,
                              int64_t time);

  // ---- parallel execution (one thread per node) ----

  // Grand or grouped aggregate executed as per-node partials merged at
  // the coordinator (AggregateState::Merge).
  Result<MemArray> ParallelAggregate(const ExecContext& ctx,
                                     const std::vector<std::string>& dims,
                                     const std::string& agg,
                                     const std::string& attr);

  // Per-node Subsample; results are unioned (subsample commutes with
  // partitioning).
  Result<MemArray> ParallelSubsample(const ExecContext& ctx,
                                     const ExprPtr& pred);

  // Structural join with another distributed array. When the two arrays
  // are co-partitioned the join runs node-locally and moves zero bytes;
  // otherwise `other` is first re-partitioned to this array's scheme and
  // the movement is reported in *bytes_moved.
  Result<MemArray> ParallelSjoin(
      const ExecContext& ctx, const DistributedArray& other,
      const std::vector<std::pair<std::string, std::string>>& dim_pairs,
      int64_t* bytes_moved);

  // ---- uncertain-location replication (paper §2.13 / PanSTARRS) ----
  // Replicates every cell whose position may fall in a neighboring
  // partition (|coordinate - boundary| <= max_position_error along the
  // range dimension) into that neighbor, so uncertain spatial joins can
  // run without data movement. Only meaningful under a RangePartitioner.
  // Returns the number of replicated cells.
  Result<int64_t> ReplicateBoundaries(int64_t max_position_error);

 private:
  // Accounts one full-shard scan by `node`'s worker: per-node counters
  // under stats_mu_ plus the process-wide scidb.grid.* counters. Called
  // once per worker thread, never per cell, so the scan loops stay free
  // of shared atomics.
  void RecordShardScan(int node) LOCKS_EXCLUDED(stats_mu_);

  ArraySchema schema_;
  std::shared_ptr<const Partitioner> partitioner_;
  std::vector<MemArray> shards_;
  // Per-node accounting; written by the coordinator on load/repartition
  // and by one worker thread per node during parallel execution.
  mutable Mutex stats_mu_;
  std::vector<NodeStats> stats_ GUARDED_BY(stats_mu_);
};

}  // namespace scidb

#endif  // SCIDB_GRID_CLUSTER_H_
