#ifndef SCIDB_GRID_CLUSTER_H_
#define SCIDB_GRID_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/operators.h"
#include "grid/partitioner.h"
#include "net/fault_injection.h"
#include "net/rpc.h"

namespace scidb {

class GridNodeService;

// Per-node accounting of the simulated shared-nothing grid. The paper
// reasons about load balance and data movement; these counters are what
// EXP-PART reports. Byte counts matter independently of cell counts:
// variable-width attributes make cell-balanced placements byte-skewed,
// and repartitioning cost is paid in bytes.
struct NodeStats {
  int64_t cells_stored = 0;
  int64_t bytes_stored = 0;   // shard residency at snapshot time
  int64_t cells_scanned = 0;
  int64_t bytes_scanned = 0;  // cumulative bytes visited by Parallel* ops
};

// How a DistributedArray's coordinator talks to its nodes (DESIGN.md
// §10). The default — in-process inline delivery, no faults, steady
// clock — is fully deterministic and thread-free, matching the old
// direct-call grid exactly.
struct GridNetOptions {
  enum class TransportKind {
    kInline,    // synchronous in-process delivery (deterministic)
    kThreaded,  // per-node delivery threads (models asynchrony)
    kTcp,       // real sockets on 127.0.0.1
  };
  TransportKind transport = TransportKind::kInline;

  // Nonzero seeds a FaultInjectingTransport wrapper (drops, dups,
  // delays, reorders at `fault_profile` rates); 0 = transparent
  // network. The session knob `set net_faults = <seed>` feeds the
  // process-wide default picked up by the two-argument constructor.
  uint64_t fault_seed = 0;
  net::FaultProfile fault_profile = net::FaultProfile::Lossy();

  // Per-RPC deadline/retry budget for every grid call.
  net::CallOptions call;

  // Injectable time: tests drive deadlines from a VirtualTime pair so a
  // full partition consumes its deadline without real sleeping.
  TraceClock clock;    // null = SteadyNowNs
  net::SleepFn sleep;  // null = real condition-variable waits
};

// One scrape of every node's metrics, pulled over MetricsGet RPCs
// (DESIGN.md §12). Each node contributes its snapshot plus a
// reachability flag; Labeled() merges them into one flat view whose
// entry names carry a "node<i>." prefix, which is what
// tools/metrics_dump --cluster prints.
struct ClusterMetrics {
  struct NodeMetrics {
    int node = -1;
    // False when the scrape RPC failed (partitioned / shut-down node);
    // `snapshot` is then empty rather than stale.
    bool reachable = false;
    MetricsSnapshot snapshot;
  };
  std::vector<NodeMetrics> nodes;

  // Flat merged view: every entry of every reachable node, renamed
  // "node<i>.<original name>", in node order.
  MetricsSnapshot Labeled() const;
  std::string ToText() const { return SnapshotToText(Labeled()); }
};

// An array horizontally partitioned across the nodes of a simulated grid
// (paper §2.7). Chunks are the unit of placement: each exec-grid chunk
// goes to Partitioner::NodeFor(origin, load_time).
//
// All data movement flows through the src/net/ stack: loads and cell
// writes are ChunkPut RPCs to the owning node, the parallel operators
// fetch their inputs with ScanShard RPCs, and node_stats() asks each
// node over the wire. The coordinator is registered on the transport as
// node id num_nodes(); shards are never written by reaching into a peer
// directly.
class DistributedArray {
 public:
  DistributedArray(ArraySchema schema,
                   std::shared_ptr<const Partitioner> partitioner);
  DistributedArray(ArraySchema schema,
                   std::shared_ptr<const Partitioner> partitioner,
                   GridNetOptions net);
  ~DistributedArray();
  DistributedArray(const DistributedArray&) = delete;
  DistributedArray& operator=(const DistributedArray&) = delete;

  const ArraySchema& schema() const { return schema_; }
  const Partitioner& partitioner() const { return *partitioner_; }
  std::shared_ptr<const Partitioner> partitioner_ptr() const {
    return partitioner_;
  }
  int num_nodes() const { return partitioner_->num_nodes(); }
  const MemArray& shard(int node) const { return shards_[node]; }
  // Snapshot of the per-node counters, fetched from each node with a
  // NodeStatsReq RPC (an unreachable node falls back to the
  // coordinator's last local accounting). Returns a copy.
  std::vector<NodeStats> node_stats() const LOCKS_EXCLUDED(stats_mu_);

  // Loads every chunk of `source`, stamping the load epoch `time` (drives
  // the adaptive time-split scheme). One ChunkPut RPC per source chunk.
  Status Load(const MemArray& source, int64_t time);
  Status SetCell(const Coordinates& c, const std::vector<Value>& values,
                 int64_t time);

  int64_t TotalCells() const;

  // max(node cells) / mean(node cells) — 1.0 is perfect balance, 0.0 for
  // an empty array (no load, no imbalance). The skew metric EXP-PART
  // reports for fixed vs adaptive schemes.
  double LoadImbalance() const;

  // Same ratio measured in shard bytes instead of cells; diverges from
  // LoadImbalance() when attribute widths vary across the array.
  double LoadImbalanceBytes() const;

  // Re-partitions in place; returns the bytes that had to move between
  // nodes (cells whose node assignment changed). The network stack is
  // rebuilt afterwards: the node count may have changed.
  Result<int64_t> Repartition(std::shared_ptr<const Partitioner> to,
                              int64_t time);

  // ---- parallel execution (one RPC-fetching worker per node) ----

  // Grand or grouped aggregate executed as per-node partials merged at
  // the coordinator (AggregateState::Merge). Shard contents travel to
  // the workers as ScanShard responses (data shipping: accumulator
  // state has no wire form).
  Result<MemArray> ParallelAggregate(const ExecContext& ctx,
                                     const std::vector<std::string>& dims,
                                     const std::string& agg,
                                     const std::string& attr);

  // Per-node Subsample with the predicate shipped to the serving node
  // (function shipping); results are unioned (subsample commutes with
  // partitioning).
  Result<MemArray> ParallelSubsample(const ExecContext& ctx,
                                     const ExprPtr& pred);

  // Structural join with another distributed array. When the two arrays
  // are co-partitioned the join runs node-locally and moves zero bytes;
  // otherwise `other` is first re-partitioned to this array's scheme and
  // the movement is reported in *bytes_moved.
  Result<MemArray> ParallelSjoin(
      const ExecContext& ctx, const DistributedArray& other,
      const std::vector<std::pair<std::string, std::string>>& dim_pairs,
      int64_t* bytes_moved);

  // ---- uncertain-location replication (paper §2.13 / PanSTARRS) ----
  // Replicates every cell whose position may fall in a neighboring
  // partition (|coordinate - boundary| <= max_position_error along the
  // range dimension) into that neighbor, so uncertain spatial joins can
  // run without data movement. Only meaningful under a RangePartitioner.
  // Replica placement goes through ChunkPut like any other write.
  // Returns the number of replicated cells.
  Result<int64_t> ReplicateBoundaries(int64_t max_position_error);

  // ---- cluster-wide observability (DESIGN.md §12) ----

  // Pulls every node's metrics snapshot with a MetricsGet RPC. Node-local
  // gauges (cells/bytes stored and scanned) always travel; when
  // `include_process` is set the shared process-wide registry snapshot is
  // appended too (every simulated node shares one process, so those
  // entries repeat per node — exactly what a real per-process scrape of a
  // real grid would return). Unreachable nodes come back with
  // reachable=false instead of failing the scrape.
  ClusterMetrics ScrapeClusterMetrics(bool include_process = false) const;

  // Pulls node `node`'s view of the process flight recorder over a
  // TraceGet RPC (trace_id 0 = no spans, include_flight set). The remote
  // path tools/flight_dump --rpc exercises.
  Result<std::vector<FlightEvent>> FetchFlightEvents(int node) const;

  // ---- network introspection ----

  const GridNetOptions& net_options() const { return net_opts_; }
  // The fault wrapper, or null when fault injection is off. Tests use it
  // to partition nodes and read drop/dup counters.
  net::FaultInjectingTransport* fault_injector() { return fault_.get(); }

  // Attaches a trace node: each parallel operator adds a timed child
  // span under it (clock = GridNetOptions::clock), which is how
  // `explain analyze` surfaces network time. Null detaches.
  void set_trace_node(TraceNode* node) { trace_node_ = node; }

  // Process-wide default fault seed for newly constructed arrays (the
  // two-argument constructor). Backs the session `set net_faults` knob.
  static void SetDefaultFaultSeed(uint64_t seed);
  static uint64_t DefaultFaultSeed();

 private:
  friend class GridNodeService;

  // Builds the transport, the per-node services/servers, and the
  // coordinator client. Called on construction and after Repartition.
  void InitNet();
  void ShutdownNet();

  // One ChunkPut RPC: upserts `chunk`'s cells into node `dest`. An
  // active `ctx` rides on the request frame and yields client/server
  // spans for the stitch.
  Status PutChunk(int dest, const Chunk& chunk, int64_t time,
                  const TraceContext& ctx = {});
  // Single-cell write via PutChunk (a one-cell chunk travels).
  Status PutCell(int dest, const Coordinates& c,
                 const std::vector<Value>& values, int64_t time);
  // One ScanShard RPC: node `node`'s cells, optionally filtered
  // server-side by `pred`, rebuilt into a coordinator-side MemArray.
  Result<MemArray> FetchShard(int node, const ExprPtr& pred,
                              const TraceContext& ctx = {}) const;

  // Starts a distributed trace for one grid operation: fresh trace id
  // plus a root span the per-RPC client spans parent onto. Inactive
  // (all-zero) when no trace node is attached, which turns the whole
  // span machinery off.
  TraceContext BeginOpTrace() const;
  // Completes the distributed half of `explain analyze` for `ctx`:
  // drains the coordinator's client spans, fetches every node's server
  // spans with an (untraced) TraceGet RPC, and grafts a "node <i>"
  // sub-tree under `child` — rpc.* spans with their attempt/retry/wire
  // notes, each with the matching server.* handler span as a child.
  // No-op when `child` is null or `ctx` is inactive.
  void StitchOpTrace(TraceNode* child, const TraceContext& ctx) const;

  // Lazy fan-out pool (one worker per node); rebuilt when the node
  // count changes.
  ThreadPool* FanoutPool();

  // Re-derives cells_stored for `node` from its shard. Derived rather
  // than incremented so replayed ChunkPuts are idempotent.
  void SyncStoredStats(int node) LOCKS_EXCLUDED(stats_mu_);

  // Accounts one full-shard scan by `node` (called by the node's
  // ScanShard handler): per-node counters under stats_mu_ plus the
  // process-wide scidb.grid.* counters. Once per shard scan, never per
  // cell, so the scan loops stay free of shared atomics.
  void RecordShardScan(int node) LOCKS_EXCLUDED(stats_mu_);

  // The coordinator's transport node id (one past the last grid node).
  int coordinator_id() const { return num_nodes(); }

  // Opens a timed child span under trace_node_, or null when detached.
  TraceNode* TraceChild(const char* label);

  // Topology: written by the coordinator at construction / Load /
  // Repartition, with no parallel execution in flight; during execution
  // each node's RPC handler touches only its own disjoint shard. Not a
  // stats_mu_ concern, so these opt out of lock-coverage.
  ArraySchema schema_;  // NOLINT(lock-coverage): coordinator-only
  std::shared_ptr<const Partitioner>
      partitioner_;  // NOLINT(lock-coverage): coordinator-only
  std::vector<MemArray> shards_;  // NOLINT(lock-coverage): disjoint per node
  // Per-node accounting; written by the coordinator on load/repartition
  // and by the per-node RPC handlers during parallel execution.
  mutable Mutex stats_mu_;
  std::vector<NodeStats> stats_ GUARDED_BY(stats_mu_);

  // ---- network stack (DESIGN.md §10) ----
  // Declaration order is teardown order in reverse: the client and
  // servers must die before the transports they point into.
  // The whole stack is wired once in the constructor and torn down in
  // the destructor; pointers are stable for the object's lifetime.
  GridNetOptions net_opts_;  // NOLINT(lock-coverage): ctor-wired
  // Resolved: net_opts_.clock or SteadyNowNs.
  TraceClock clock_;  // NOLINT(lock-coverage): ctor-wired
  std::unique_ptr<net::Transport>
      base_transport_;  // NOLINT(lock-coverage): ctor-wired
  std::unique_ptr<net::FaultInjectingTransport>
      fault_;  // NOLINT(lock-coverage): ctor-wired
  // fault_ wrapper when enabled.
  net::Transport* transport_ = nullptr;  // NOLINT(lock-coverage): ctor-wired
  std::vector<std::unique_ptr<GridNodeService>>
      services_;  // NOLINT(lock-coverage): ctor-wired
  std::vector<std::unique_ptr<net::RpcServer>>
      servers_;  // NOLINT(lock-coverage): ctor-wired
  // mutable: const reads (node_stats, FetchShard) still issue RPCs.
  mutable std::unique_ptr<net::RpcClient>
      client_;  // NOLINT(lock-coverage): ctor-wired
  // Client-side rpc.* spans of traced calls; survives Repartition so an
  // in-flight trace is never torn down with the network.
  mutable SpanStore client_spans_;  // NOLINT(lock-coverage): internally synchronized
  std::unique_ptr<ThreadPool> pool_;  // NOLINT(lock-coverage): ctor-wired
  TraceNode* trace_node_ = nullptr;  // NOLINT(lock-coverage): set pre-exec
};

}  // namespace scidb

#endif  // SCIDB_GRID_CLUSTER_H_
