#ifndef SCIDB_GRID_AUTO_DESIGNER_H_
#define SCIDB_GRID_AUTO_DESIGNER_H_

#include <memory>
#include <vector>

#include "array/coordinates.h"
#include "common/result.h"
#include "grid/partitioner.h"

namespace scidb {

// One observed access in the sample workload: a query touched `region`
// with relative frequency `weight`.
struct WorkloadAccess {
  Box region;
  double weight = 1.0;
};

// The automatic database designer (paper §2.7: "Like C-Store and H-store,
// we plan an automatic data base designer which will use a sample
// workload to do the partitioning. This designer can be run periodically
// on the actual workload, and suggest modifications.").
//
// Given a sample workload it builds an access-weight histogram along one
// dimension and picks range boundaries that equalize the per-node load.
class AutoDesigner {
 public:
  AutoDesigner(Box domain, size_t split_dim, int num_nodes);

  void Observe(const WorkloadAccess& access);
  void ObserveAll(const std::vector<WorkloadAccess>& accesses);
  size_t observed() const { return observed_; }

  // Boundaries equalizing cumulative observed weight; falls back to
  // uniform splitting when nothing was observed.
  Result<std::shared_ptr<RangePartitioner>> Design() const;

  // Expected load imbalance (max node weight / mean) of a candidate
  // partitioner under the observed workload — lets callers decide whether
  // a suggested repartitioning is worth the movement cost.
  double PredictedImbalance(const Partitioner& p) const;

 private:
  Box domain_;
  size_t split_dim_;
  int num_nodes_;
  size_t observed_ = 0;
  std::vector<double> histogram_;  // weight per coordinate of split_dim_
};

}  // namespace scidb

#endif  // SCIDB_GRID_AUTO_DESIGNER_H_
