#ifndef SCIDB_GRID_NODE_SERVICE_H_
#define SCIDB_GRID_NODE_SERVICE_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "net/rpc.h"

namespace scidb {

class DistributedArray;
class FunctionRegistry;

// The server half of one simulated grid node: RPC handlers for the grid
// vocabulary (ChunkPut/ChunkGet/ScanShard/NodeStatsReq), operating on
// the owner DistributedArray's shard for `node`. The shard is looked up
// through the owner at handler time — never cached — so a Repartition
// that replaces the shard vector cannot leave a dangling reference.
//
// Every handler is idempotent, which is what makes the RPC layer's
// retries and fault-injected duplicates safe: ChunkPut upserts cells
// (last-writer-wins) and re-derives cells_stored from the shard rather
// than incrementing it; the reads are pure. The observability handlers
// (MetricsGet/TraceGet, DESIGN.md §12) ride the same vocabulary:
// MetricsGet is a pure read; TraceGet *takes* spans, but a retried
// TraceGet simply returns the spans the lost reply carried plus any
// recorded since, which the stitch tolerates.
class GridNodeService {
 public:
  GridNodeService(DistributedArray* owner, int node)
      : owner_(owner), node_(node) {}

  // Installs this node's handlers on `server`.
  void Install(net::RpcServer* server);

  // Execution environment for server-side predicate evaluation
  // (ScanShard with a shipped predicate). In a real grid the function
  // registry is replicated to every node; here the coordinator installs
  // its registry before fanning out.
  void SetExecEnv(const FunctionRegistry* functions,
                  bool enable_chunk_pruning) LOCKS_EXCLUDED(mu_);

 private:
  Result<std::vector<uint8_t>> ChunkPut(const std::vector<uint8_t>& payload)
      LOCKS_EXCLUDED(mu_);
  Result<std::vector<uint8_t>> ChunkGet(const std::vector<uint8_t>& payload)
      LOCKS_EXCLUDED(mu_);
  Result<std::vector<uint8_t>> ScanShard(const std::vector<uint8_t>& payload)
      LOCKS_EXCLUDED(mu_);
  // Replaces this node's dead-set view (DESIGN.md §13). Idempotent: the
  // payload is the whole set, so retries and duplicates are no-ops.
  Result<std::vector<uint8_t>> MarkDead(const std::vector<uint8_t>& payload)
      LOCKS_EXCLUDED(mu_);
  Result<std::vector<uint8_t>> NodeStatsReq(
      const std::vector<uint8_t>& payload) LOCKS_EXCLUDED(mu_);
  Result<std::vector<uint8_t>> MetricsGet(const std::vector<uint8_t>& payload)
      LOCKS_EXCLUDED(mu_);
  // Needs the owning server for TakeSpans, so Install's lambda passes it
  // back in rather than caching a server pointer here.
  Result<std::vector<uint8_t>> TraceGet(net::RpcServer* server,
                                        const std::vector<uint8_t>& payload);

  DistributedArray* const owner_;
  const int node_;
  // Serializes handler execution for this node: a duplicated write frame
  // must not race a concurrent scan of the same shard.
  Mutex mu_;
  const FunctionRegistry* functions_ GUARDED_BY(mu_) = nullptr;
  bool enable_chunk_pruning_ GUARDED_BY(mu_) = true;
  // This node's view of the dead set, replaced wholesale by MarkDead
  // broadcasts; union'd with each ScanShard request's suspect set to
  // decide which chunks this node serves (see ScanShard).
  std::vector<int32_t> known_dead_ GUARDED_BY(mu_);
};

}  // namespace scidb

#endif  // SCIDB_GRID_NODE_SERVICE_H_
