#include "grid/node_service.h"

#include <set>
#include <string>
#include <utility>

#include "common/byte_io.h"
#include "common/flight_recorder.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "exec/expr_serde.h"
#include "exec/operators.h"
#include "grid/cluster.h"
#include "net/message.h"
#include "storage/chunk_serde.h"

namespace scidb {

void GridNodeService::Install(net::RpcServer* server) {
  server->Handle(net::MessageType::kChunkPut,
                 [this](int, const std::vector<uint8_t>& payload) {
                   return ChunkPut(payload);
                 });
  server->Handle(net::MessageType::kChunkGet,
                 [this](int, const std::vector<uint8_t>& payload) {
                   return ChunkGet(payload);
                 });
  server->Handle(net::MessageType::kScanShard,
                 [this](int, const std::vector<uint8_t>& payload) {
                   return ScanShard(payload);
                 });
  server->Handle(net::MessageType::kMarkDead,
                 [this](int, const std::vector<uint8_t>& payload) {
                   return MarkDead(payload);
                 });
  server->Handle(net::MessageType::kNodeStatsReq,
                 [this](int, const std::vector<uint8_t>& payload) {
                   return NodeStatsReq(payload);
                 });
  server->Handle(net::MessageType::kMetricsGet,
                 [this](int, const std::vector<uint8_t>& payload) {
                   return MetricsGet(payload);
                 });
  server->Handle(net::MessageType::kTraceGet,
                 [this, server](int, const std::vector<uint8_t>& payload) {
                   return TraceGet(server, payload);
                 });
}

void GridNodeService::SetExecEnv(const FunctionRegistry* functions,
                                 bool enable_chunk_pruning) {
  MutexLock lock(mu_);
  functions_ = functions;
  enable_chunk_pruning_ = enable_chunk_pruning;
}

Result<std::vector<uint8_t>> GridNodeService::ChunkPut(
    const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::ChunkPutRequest req,
                   net::ChunkPutRequest::Decode(payload));
  // The load epoch decided placement on the sending side; the serving
  // node just stores what it was handed.
  (void)req.time;
  ASSIGN_OR_RETURN(Chunk chunk, DeserializeChunk(req.chunk_bytes,
                                                 owner_->schema_.attrs()));
  MutexLock lock(mu_);
  MemArray& shard = owner_->shards_[static_cast<size_t>(node_)];
  std::vector<Value> cell;
  for (Chunk::CellIterator it(chunk); it.valid(); it.Next()) {
    cell.clear();
    for (size_t a = 0; a < chunk.nattrs(); ++a) {
      cell.push_back(chunk.block(a).Get(it.rank()));
    }
    RETURN_NOT_OK(shard.SetCell(it.coords(), cell));
  }
  // Derived, not incremented: replaying this request (an RPC retry or a
  // fault-injected duplicate) leaves the count unchanged.
  owner_->SyncStoredStats(node_);
  return std::vector<uint8_t>{};  // empty ack
}

Result<std::vector<uint8_t>> GridNodeService::ChunkGet(
    const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::ChunkGetRequest req,
                   net::ChunkGetRequest::Decode(payload));
  MutexLock lock(mu_);
  const MemArray& shard = owner_->shards_[static_cast<size_t>(node_)];
  const Chunk* chunk = shard.FindChunk(req.origin);
  if (chunk == nullptr) {
    return Status::NotFound("no chunk at requested origin on node " +
                            std::to_string(node_));
  }
  return SerializeChunk(*chunk);
}

Result<std::vector<uint8_t>> GridNodeService::MarkDead(
    const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::MarkDeadRequest req,
                   net::MarkDeadRequest::Decode(payload));
  MutexLock lock(mu_);
  known_dead_.assign(req.dead.begin(), req.dead.end());
  return std::vector<uint8_t>{};  // empty ack
}

Result<std::vector<uint8_t>> GridNodeService::ScanShard(
    const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::ScanShardRequest req,
                   net::ScanShardRequest::Decode(payload));
  if (req.view_of >= owner_->num_nodes()) {
    return Status::Invalid("ScanShard view_of names no grid node");
  }
  MutexLock lock(mu_);
  // The serving node pays the scan, so it is accounted here — a
  // duplicated request really is scanned twice.
  owner_->RecordShardScan(node_);
  const MemArray& shard = owner_->shards_[static_cast<size_t>(node_)];

  // Replication view (DESIGN.md §13): the scan serves exactly the chunks
  // of fan-out slot `target` (a slot is a primary partition, fixed for
  // the chunk's lifetime) that this node currently owns — owns meaning
  // "is the first live replica of", under the union of this node's
  // MarkDead view and the request's suspect set. With replication = 1
  // and no replication view in the request, the legacy whole-shard scan
  // runs untouched.
  const ReplicaPlacement& place = owner_->placement();
  std::set<int> dead(known_dead_.begin(), known_dead_.end());
  for (int32_t d : req.suspect_dead) dead.insert(d);
  const int target = req.view_of >= 0 ? req.view_of : node_;
  const bool filtered =
      place.replication() > 1 || req.view_of >= 0 || !dead.empty();

  MemArray view(owner_->schema_);
  const MemArray* source = &shard;
  if (filtered) {
    for (const auto& [origin, chunk] : shard.chunks()) {
      const int64_t t = owner_->DirTimeFor(origin);
      if (place.PrimaryFor(origin, t) != target) continue;
      if (place.OwnerFor(origin, t, dead) != node_) continue;
      (*view.mutable_chunks())[origin] = chunk;
    }
    source = &view;
  }

  net::ScanShardResponse resp;
  if (req.pred_bytes.empty()) {
    // Data shipping: the served chunks verbatim, in origin order.
    for (const auto& [origin, chunk] : source->chunks()) {
      resp.chunks.push_back(SerializeChunk(*chunk));
    }
  } else {
    // Function shipping: the predicate arrives as opaque expr_serde
    // bytes (net/ cannot name the Expr type); decode it here, at the
    // grid boundary, rejecting trailing garbage after the tree.
    ByteReader pr(req.pred_bytes);
    ASSIGN_OR_RETURN(ExprPtr pred, DecodeExpr(&pr));
    if (pr.remaining() != 0) {
      return Status::Corruption("trailing bytes after ScanShard predicate");
    }
    // Evaluate the shipped predicate server-side and return only the
    // matching cells.
    ExecContext local;
    local.functions = functions_;
    local.enable_chunk_pruning = enable_chunk_pruning_;
    // `local.pool` is null, so Subsample's ParallelChunkMap takes the
    // serial path — no ParallelFor wait happens under mu_ despite what
    // the call graph's context-insensitive closure concludes.
    ASSIGN_OR_RETURN(MemArray filtered_arr, Subsample(local, *source, pred));  // NOLINT(blocking-under-lock)
    for (const auto& [origin, chunk] : filtered_arr.chunks()) {
      resp.chunks.push_back(SerializeChunk(*chunk));
    }
  }
  return resp.EncodePayload();
}

Result<std::vector<uint8_t>> GridNodeService::NodeStatsReq(
    const std::vector<uint8_t>& payload) {
  if (!payload.empty()) {
    return Status::Invalid("NodeStatsReq carries no payload");
  }
  MutexLock lock(mu_);
  net::NodeStatsResponse resp;
  const MemArray& shard = owner_->shards_[static_cast<size_t>(node_)];
  {
    MutexLock stats_lock(owner_->stats_mu_);
    const NodeStats& s = owner_->stats_[static_cast<size_t>(node_)];
    resp.cells_stored = s.cells_stored;
    resp.cells_scanned = s.cells_scanned;
    resp.bytes_scanned = s.bytes_scanned;
  }
  // Byte residency is derived from the shard at snapshot time; see
  // DistributedArray::node_stats().
  resp.bytes_stored = static_cast<int64_t>(shard.ByteSize());
  return resp.EncodePayload();
}

Result<std::vector<uint8_t>> GridNodeService::MetricsGet(
    const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::MetricsGetRequest req,
                   net::MetricsGetRequest::Decode(payload));
  MetricsSnapshot snap;
  auto gauge = [&snap](const char* name, int64_t v) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kGauge;
    e.value = v;
    snap.entries.push_back(std::move(e));
  };
  {
    MutexLock lock(mu_);
    {
      MutexLock stats_lock(owner_->stats_mu_);
      const NodeStats& s = owner_->stats_[static_cast<size_t>(node_)];
      gauge("scidb.node.cells_stored", s.cells_stored);
      gauge("scidb.node.cells_scanned", s.cells_scanned);
      gauge("scidb.node.bytes_scanned", s.bytes_scanned);
    }
    // Derived from the shard at scrape time, like NodeStatsReq.
    const MemArray& shard = owner_->shards_[static_cast<size_t>(node_)];
    gauge("scidb.node.bytes_stored", static_cast<int64_t>(shard.ByteSize()));
  }
  if (req.include_process != 0) {
    // Every simulated node shares one process, so the process-wide
    // registry repeats per node — exactly what scraping each process of
    // a real grid would return.
    MetricsSnapshot process = Metrics::Instance().Snapshot();
    for (auto& e : process.entries) snap.entries.push_back(std::move(e));
  }
  const std::string json = SnapshotToJson(snap);
  net::MetricsGetResponse resp;
  resp.json.assign(json.begin(), json.end());
  return resp.EncodePayload();
}

Result<std::vector<uint8_t>> GridNodeService::TraceGet(
    net::RpcServer* server, const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::TraceGetRequest req,
                   net::TraceGetRequest::Decode(payload));
  net::TraceGetResponse resp;
  if (req.trace_id != 0) resp.spans = server->TakeSpans(req.trace_id);
  if (req.include_flight != 0) {
    resp.events = FlightRecorder::Instance().Dump();
  }
  return resp.EncodePayload();
}

}  // namespace scidb
