#ifndef SCIDB_TYPES_VALUE_SERDE_H_
#define SCIDB_TYPES_VALUE_SERDE_H_

#include "common/byte_io.h"
#include "common/result.h"
#include "types/value.h"

namespace scidb {

// Tagged wire codec for Value (DESIGN.md §10). Lives in types/ — not
// net/ — because a Value's byte form is a property of the value model,
// and the transport must stay ignorant of engine types (net/ carries
// opaque payload bytes; the layering manifest forbids net -> types).
//
// Decoding is fully bounds-checked and depth-capped: a hostile payload
// yields Corruption, never UB or unbounded recursion. Tags are
// append-only (renumbering breaks cross-version decode); the tag enum
// itself is private to the .cc and covered by the protocol-drift check.

// Recursion cap shared by nested-array Values and Expr trees
// (exec/expr_serde reuses it so one limit governs the whole payload).
inline constexpr int kMaxWireDepth = 32;

void EncodeValue(const Value& v, ByteWriter* w);
Result<Value> DecodeValue(ByteReader* r);

}  // namespace scidb

#endif  // SCIDB_TYPES_VALUE_SERDE_H_
