#include "types/value_serde.h"

#include <memory>
#include <string>
#include <utility>

#include "common/macros.h"
#include "types/uncertain.h"

namespace scidb {

namespace {

// Value type tags. Append-only: renumbering breaks cross-version decode.
enum class ValueTag : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kUncertain = 4,
  kString = 5,
  kNestedArray = 6,
};

Status DepthExceeded(const char* what) {
  return Status::Corruption(std::string(what) +
                            " nesting exceeds wire depth cap");
}

void EncodeValueRec(const Value& v, ByteWriter* w, int depth) {
  if (v.is_null()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kNull));
  } else if (v.is_bool()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kBool));
    w->PutU8(v.bool_value() ? 1 : 0);
  } else if (v.is_int64()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kInt64));
    w->PutSignedVarint(v.int64_value());
  } else if (v.is_double()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kDouble));
    w->PutDouble(v.double_value());
  } else if (v.is_uncertain()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kUncertain));
    w->PutDouble(v.uncertain_value().mean);
    w->PutDouble(v.uncertain_value().stderr_);
  } else if (v.is_string()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kString));
    w->PutString(v.string_value());
  } else {
    // Nested array. A null shared_ptr is encoded as NULL — the engine
    // never stores one, but the codec must not crash on it.
    const auto& arr = v.array_value();
    if (arr == nullptr || depth + 1 >= kMaxWireDepth) {
      // Depth overflow on encode cannot happen for engine-built values
      // (parser and executor cap nesting far below the wire cap); encode
      // NULL rather than emit bytes the decoder would reject.
      w->PutU8(static_cast<uint8_t>(ValueTag::kNull));
      return;
    }
    w->PutU8(static_cast<uint8_t>(ValueTag::kNestedArray));
    w->PutVarint(arr->shape.size());
    for (int64_t s : arr->shape) w->PutSignedVarint(s);
    w->PutVarint(arr->values.size());
    for (const Value& e : arr->values) EncodeValueRec(e, w, depth + 1);
  }
}

Result<Value> DecodeValueRec(ByteReader* r, int depth) {
  if (depth >= kMaxWireDepth) return DepthExceeded("value");
  ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      return Value::Null();
    case ValueTag::kBool: {
      ASSIGN_OR_RETURN(uint8_t b, r->GetU8());
      if (b > 1) return Status::Corruption("bool value out of range");
      return Value(b != 0);
    }
    case ValueTag::kInt64: {
      ASSIGN_OR_RETURN(int64_t i, r->GetSignedVarint());
      return Value(i);
    }
    case ValueTag::kDouble: {
      ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value(d);
    }
    case ValueTag::kUncertain: {
      ASSIGN_OR_RETURN(double mean, r->GetDouble());
      ASSIGN_OR_RETURN(double se, r->GetDouble());
      return Value(Uncertain(mean, se));
    }
    case ValueTag::kString: {
      ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value(std::move(s));
    }
    case ValueTag::kNestedArray: {
      ASSIGN_OR_RETURN(uint64_t ndims, r->GetVarint());
      // A dimension costs at least one byte on the wire; anything larger
      // than the remaining input is definitionally corrupt, and this
      // check bounds the allocation below.
      if (ndims > r->remaining()) {
        return Status::Corruption("nested array dimension count too large");
      }
      auto arr = std::make_shared<NestedArray>();
      arr->shape.reserve(static_cast<size_t>(ndims));
      for (uint64_t i = 0; i < ndims; ++i) {
        ASSIGN_OR_RETURN(int64_t s, r->GetSignedVarint());
        arr->shape.push_back(s);
      }
      ASSIGN_OR_RETURN(uint64_t count, r->GetVarint());
      if (count > r->remaining()) {
        return Status::Corruption("nested array value count too large");
      }
      arr->values.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        ASSIGN_OR_RETURN(Value e, DecodeValueRec(r, depth + 1));
        arr->values.push_back(std::move(e));
      }
      return Value(std::move(arr));
    }
  }
  return Status::Corruption("unknown value tag " + std::to_string(tag));
}

}  // namespace

void EncodeValue(const Value& v, ByteWriter* w) { EncodeValueRec(v, w, 0); }

Result<Value> DecodeValue(ByteReader* r) { return DecodeValueRec(r, 0); }

}  // namespace scidb
