#ifndef SCIDB_TYPES_UNCERTAIN_H_
#define SCIDB_TYPES_UNCERTAIN_H_

#include <cmath>
#include <cstdint>

namespace scidb {

// "Uncertain x" per paper §2.13: scientists asked for a simple normal
// (error-bar) model — every value carries a mean and a standard error, and
// the executor combines them with first-order Gaussian error propagation
// (the "interval arithmetic" of the paper, applied to 1-sigma intervals):
//
//   (a ± sa) + (b ± sb) = (a+b) ± sqrt(sa^2 + sb^2)
//   (a ± sa) * (b ± sb) = (a*b) ± sqrt((b*sa)^2 + (a*sb)^2)
//
// More sophisticated error models are explicitly left to the application
// (paper: "leaving more complex error modelling to the user's application").
struct Uncertain {
  double mean = 0.0;
  double stderr_ = 0.0;  // 1-sigma standard error; always >= 0.

  constexpr Uncertain() = default;
  constexpr Uncertain(double m, double s) : mean(m), stderr_(s) {}
  // An exact value has zero error.
  explicit constexpr Uncertain(double m) : mean(m), stderr_(0.0) {}

  double lower() const { return mean - stderr_; }
  double upper() const { return mean + stderr_; }

  friend Uncertain operator+(const Uncertain& a, const Uncertain& b) {
    return {a.mean + b.mean, std::hypot(a.stderr_, b.stderr_)};
  }
  friend Uncertain operator-(const Uncertain& a, const Uncertain& b) {
    return {a.mean - b.mean, std::hypot(a.stderr_, b.stderr_)};
  }
  friend Uncertain operator*(const Uncertain& a, const Uncertain& b) {
    return {a.mean * b.mean,
            std::hypot(b.mean * a.stderr_, a.mean * b.stderr_)};
  }
  friend Uncertain operator/(const Uncertain& a, const Uncertain& b) {
    double m = a.mean / b.mean;
    // d(a/b) = sqrt((sa/b)^2 + (a*sb/b^2)^2)
    double s = std::hypot(a.stderr_ / b.mean,
                          a.mean * b.stderr_ / (b.mean * b.mean));
    return {m, std::fabs(s)};
  }
  friend Uncertain operator*(const Uncertain& a, double k) {
    return {a.mean * k, std::fabs(k) * a.stderr_};
  }
  friend Uncertain operator*(double k, const Uncertain& a) { return a * k; }

  friend bool operator==(const Uncertain& a, const Uncertain& b) {
    return a.mean == b.mean && a.stderr_ == b.stderr_;
  }

  // 1-sigma intervals overlap; the executor's notion of "possibly equal",
  // used e.g. by uncertain content joins.
  [[nodiscard]] bool Overlaps(const Uncertain& b) const {
    return lower() <= b.upper() && b.lower() <= upper();
  }
};

// Running aggregate over uncertain values: the mean adds linearly, the
// errors add in quadrature (independent Gaussian assumption).
struct UncertainSum {
  double mean = 0.0;
  double var = 0.0;  // accumulated variance
  int64_t count = 0;

  void Add(const Uncertain& v) {
    mean += v.mean;
    var += v.stderr_ * v.stderr_;
    ++count;
  }
  Uncertain Sum() const { return {mean, std::sqrt(var)}; }
  Uncertain Avg() const {
    if (count == 0) return {0, 0};
    double n = static_cast<double>(count);
    return {mean / n, std::sqrt(var) / n};
  }
};

}  // namespace scidb

#endif  // SCIDB_TYPES_UNCERTAIN_H_
