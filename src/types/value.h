#ifndef SCIDB_TYPES_VALUE_H_
#define SCIDB_TYPES_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"
#include "types/uncertain.h"

namespace scidb {

class Value;

// A nested array stored inside a cell (paper §2.1: "array cells containing
// records, which in turn can contain components that are multi-dimensional
// arrays"). Used e.g. by the eBay clickstream model where each time step
// embeds the array of surfaced search results.
struct NestedArray {
  std::vector<int64_t> shape;   // per-dimension lengths
  std::vector<Value> values;    // row-major, product(shape) entries

  int64_t cell_count() const {
    int64_t n = 1;
    for (int64_t s : shape) n *= s;
    return n;
  }
};

// Dynamically-typed scalar used at API boundaries, in expressions, and in
// sparse/mixed contexts. Hot loops inside operators use the typed columnar
// accessors on AttributeBlock instead; Value is the lingua franca, not the
// storage format.
class Value {
 public:
  Value() : v_(std::monostate{}) {}  // NULL
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(const Uncertain& u) : v_(u) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(std::shared_ptr<NestedArray> a) : v_(std::move(a)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_uncertain() const { return std::holds_alternative<Uncertain>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<NestedArray>>(v_);
  }
  bool is_numeric() const {
    return is_int64() || is_double() || is_uncertain();
  }

  bool bool_value() const { return std::get<bool>(v_); }
  int64_t int64_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const Uncertain& uncertain_value() const { return std::get<Uncertain>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }
  const std::shared_ptr<NestedArray>& array_value() const {
    return std::get<std::shared_ptr<NestedArray>>(v_);
  }

  // Numeric coercions used by the expression evaluator. Return an error for
  // non-numeric payloads; NULL coerces to an error as well (callers handle
  // NULL before coercing, mirroring SQL's three-valued evaluation).
  Result<double> AsDouble() const;
  Result<int64_t> AsInt64() const;
  // An exact number becomes (x, 0); an Uncertain passes through.
  Result<Uncertain> AsUncertain() const;

  // Equality is exact (NULL != NULL, mirroring the executor's join
  // semantics where NULL never matches).
  [[nodiscard]] bool EqualsForJoin(const Value& other) const;

  // Total ordering over non-null values of the same family; used by tests
  // and min/max aggregates. Null sorts first.
  [[nodiscard]] bool LessThan(const Value& other) const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, Uncertain, std::string,
               std::shared_ptr<NestedArray>>
      v_;
};

}  // namespace scidb

#endif  // SCIDB_TYPES_VALUE_H_
