#ifndef SCIDB_TYPES_DATA_TYPE_H_
#define SCIDB_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace scidb {

// Scalar cell-value types supported by the engine. Per paper §2.13 any
// numeric type can additionally be declared "uncertain"; that is carried
// as a flag on the attribute (AttributeDesc::uncertain), not as a
// separate DataType, so `uncertain double` stores a (mean, stderr) pair.
enum class DataType : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kFloat = 2,
  kDouble = 3,
  kString = 4,
  kArray = 5,  // nested array component (paper §2.1: cells contain records
               // whose components may themselves be arrays)
};

const char* DataTypeName(DataType t);
Result<DataType> DataTypeFromName(const std::string& name);

// Fixed in-memory width of one value; 0 for variable-width (string, array).
size_t DataTypeFixedWidth(DataType t);

bool IsNumeric(DataType t);

}  // namespace scidb

#endif  // SCIDB_TYPES_DATA_TYPE_H_
