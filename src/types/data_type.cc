#include "types/data_type.h"

namespace scidb {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat:
      return "float";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kArray:
      return "array";
  }
  return "unknown";
}

Result<DataType> DataTypeFromName(const std::string& name) {
  if (name == "bool") return DataType::kBool;
  if (name == "int64" || name == "int" || name == "integer") {
    return DataType::kInt64;
  }
  if (name == "float") return DataType::kFloat;
  if (name == "double") return DataType::kDouble;
  if (name == "string") return DataType::kString;
  if (name == "array") return DataType::kArray;
  return Status::Invalid("unknown data type: " + name);
}

size_t DataTypeFixedWidth(DataType t) {
  switch (t) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
      return 8;
    case DataType::kFloat:
      return 4;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
    case DataType::kArray:
      return 0;
  }
  return 0;
}

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat ||
         t == DataType::kDouble;
}

}  // namespace scidb
