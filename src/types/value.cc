#include "types/value.h"

#include <sstream>

namespace scidb {

Result<double> Value::AsDouble() const {
  if (is_double()) return double_value();
  if (is_int64()) return static_cast<double>(int64_value());
  if (is_uncertain()) return uncertain_value().mean;
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  return Status::TypeMismatch("value is not numeric: " + ToString());
}

Result<int64_t> Value::AsInt64() const {
  if (is_int64()) return int64_value();
  if (is_double()) return static_cast<int64_t>(double_value());
  if (is_uncertain()) return static_cast<int64_t>(uncertain_value().mean);
  if (is_bool()) return static_cast<int64_t>(bool_value() ? 1 : 0);
  return Status::TypeMismatch("value is not numeric: " + ToString());
}

Result<Uncertain> Value::AsUncertain() const {
  if (is_uncertain()) return uncertain_value();
  if (is_double()) return Uncertain(double_value());
  if (is_int64()) return Uncertain(static_cast<double>(int64_value()));
  return Status::TypeMismatch("value is not numeric: " + ToString());
}

bool Value::EqualsForJoin(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_string() && other.is_string()) {
    return string_value() == other.string_value();
  }
  if (is_bool() && other.is_bool()) return bool_value() == other.bool_value();
  if (is_numeric() && other.is_numeric()) {
    // Uncertain values match when their 1-sigma intervals overlap
    // (paper §2.13: interval arithmetic for uncertain elements).
    if (is_uncertain() || other.is_uncertain()) {
      auto a = AsUncertain();
      auto b = other.AsUncertain();
      return a.ok() && b.ok() && a.value().Overlaps(b.value());
    }
    auto a = AsDouble();
    auto b = other.AsDouble();
    return a.ok() && b.ok() && a.value() == b.value();
  }
  return false;
}

bool Value::LessThan(const Value& other) const {
  if (is_null()) return !other.is_null();
  if (other.is_null()) return false;
  if (is_string() && other.is_string()) {
    return string_value() < other.string_value();
  }
  if (is_numeric() && other.is_numeric()) {
    return AsDouble().value() < other.AsDouble().value();
  }
  if (is_bool() && other.is_bool()) {
    return bool_value() < other.bool_value();
  }
  return false;
}

std::string Value::ToString() const {
  std::ostringstream os;
  if (is_null()) {
    os << "NULL";
  } else if (is_bool()) {
    os << (bool_value() ? "true" : "false");
  } else if (is_int64()) {
    os << int64_value();
  } else if (is_double()) {
    os << double_value();
  } else if (is_uncertain()) {
    os << uncertain_value().mean << "±" << uncertain_value().stderr_;
  } else if (is_string()) {
    os << '"' << string_value() << '"';
  } else if (is_array()) {
    const auto& a = array_value();
    os << "array[";
    for (size_t i = 0; i < a->shape.size(); ++i) {
      if (i) os << "x";
      os << a->shape[i];
    }
    os << "]{";
    for (size_t i = 0; i < a->values.size() && i < 8; ++i) {
      if (i) os << ",";
      os << a->values[i].ToString();
    }
    if (a->values.size() > 8) os << ",...";
    os << "}";
  }
  return os.str();
}

}  // namespace scidb
