#include "query/session.h"

#include <cctype>

#include "common/flight_recorder.h"
#include "common/macros.h"
#include "grid/cluster.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/plan_printer.h"
#include "storage/storage_manager.h"

namespace scidb {

Session::Session() : clock_(SteadyNowNs) {}

void Session::set_clock(TraceClock clock) {
  clock_ = clock ? std::move(clock) : TraceClock(SteadyNowNs);
}

scidb::MetricsSnapshot Session::MetricsSnapshot() const {
  return Metrics::Instance().Snapshot();
}

ExecContext Session::MakeContext() const {
  ExecContext ctx;
  ctx.functions = &functions_;
  ctx.aggregates = &aggregates_;
  {
    MutexLock lock(mu_);
    if (shared_pool_ != nullptr) {
      // Shared-pool mode: borrow the server's pool under the per-query
      // clamp (README "parallelism precedence"). An effective width of 1
      // runs the serial engine — no pool, no gate, no slice overhead —
      // exactly like a width-1 session pool.
      int width = EffectiveParallelismLocked();
      if (width > 1) {
        ctx.pool = shared_pool_;
        ctx.max_workers = width;
        ctx.gate = controls_.gate;
      }
    } else {
      ctx.pool = pool_.get();  // null at parallelism 1 → serial engine
    }
    ctx.cancel = controls_.cancel;
  }
  return ctx;
}

int Session::EffectiveParallelismLocked() const {
  if (shared_pool_ == nullptr) {
    return pool_ != nullptr ? pool_->parallelism() : 1;
  }
  int width = requested_parallelism_ > 0 ? requested_parallelism_
                                         : per_query_cap_;
  if (per_query_cap_ > 0 && width > per_query_cap_) width = per_query_cap_;
  if (width > shared_pool_->parallelism()) {
    width = shared_pool_->parallelism();
  }
  return width < 1 ? 1 : width;
}

int Session::parallelism() const {
  MutexLock lock(mu_);
  return EffectiveParallelismLocked();
}

void Session::UseSharedPool(ThreadPool* pool, int per_query_cap) {
  MutexLock lock(mu_);
  shared_pool_ = pool;
  per_query_cap_ = pool != nullptr ? per_query_cap : 0;
  if (pool != nullptr) pool_.reset();  // one pool per query server
}

Status Session::set_parallelism(int workers) {
  if (workers < 1 || workers > kMaxParallelism) {
    return Status::Invalid("parallelism must be in [1, " +
                           std::to_string(kMaxParallelism) + "], got " +
                           std::to_string(workers));
  }
  MutexLock lock(mu_);
  if (shared_pool_ != nullptr) {
    // Shared-pool mode records the wish; the clamp happens in
    // MakeContext so a later cap change applies to the same request.
    requested_parallelism_ = workers;
    return Status::OK();
  }
  int current = pool_ != nullptr ? pool_->parallelism() : 1;
  if (workers == current) return Status::OK();
  if (workers == 1) {
    pool_.reset();
    return Status::OK();
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  return Status::OK();
}

Status Session::Define(const ArraySchema& type_schema) {
  RETURN_NOT_OK(type_schema.Validate());
  auto [it, inserted] = defines_.emplace(type_schema.name(), type_schema);
  if (!inserted) {
    return Status::AlreadyExists("type '" + type_schema.name() +
                                 "' already defined");
  }
  return Status::OK();
}

Status Session::CreateArray(const std::string& name,
                            const std::string& type_name,
                            const std::vector<int64_t>& highs) {
  auto def = defines_.find(type_name);
  if (def == defines_.end()) {
    return Status::NotFound("no array type named '" + type_name + "'");
  }
  if (arrays_.count(name)) {
    return Status::AlreadyExists("array '" + name + "' already exists");
  }
  ArraySchema schema = def->second;
  if (highs.size() != schema.ndims()) {
    return Status::Invalid("create " + name + ": expected " +
                           std::to_string(schema.ndims()) +
                           " bounds, got " + std::to_string(highs.size()));
  }
  auto* dims = schema.mutable_dims();
  for (size_t d = 0; d < highs.size(); ++d) {
    (*dims)[d].high = highs[d] == kUnboundedDim
                          ? kUnboundedDim
                          : (*dims)[d].low + highs[d] - 1;
  }
  schema.set_name(name);
  RETURN_NOT_OK(schema.Validate());
  arrays_.emplace(name, std::make_shared<MemArray>(std::move(schema)));
  return Status::OK();
}

Status Session::RegisterArray(std::shared_ptr<MemArray> array) {
  if (array == nullptr) return Status::Invalid("null array");
  const std::string& name = array->schema().name();
  if (name.empty()) return Status::Invalid("array has no name");
  auto [it, inserted] = arrays_.emplace(name, std::move(array));
  if (!inserted) {
    return Status::AlreadyExists("array '" + name + "' already exists");
  }
  return Status::OK();
}

Result<std::shared_ptr<MemArray>> Session::GetArray(
    const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    return Status::NotFound("no array named '" + name + "'");
  }
  return it->second;
}

bool Session::HasArray(const std::string& name) const {
  return arrays_.count(name) > 0;
}

std::vector<std::string> Session::ArrayNames() const {
  std::vector<std::string> out;
  for (const auto& [name, a] : arrays_) out.push_back(name);
  return out;
}

Result<QueryResult> Session::Execute(const std::string& statement) {
  // Parse is timed here (the Statement overload never sees the text);
  // ExecuteExplain picks the measurement up from pending_parse_ns_.
  uint64_t t0 = clock_();
  Result<Statement> stmt = ParseStatement(
      statement, user_op_names_.empty() ? nullptr : &user_op_names_);
  pending_parse_ns_ = clock_() - t0;
  pending_statement_ = statement;
  RETURN_NOT_OK(stmt.status());
  return Execute(stmt.value());
}

namespace {
std::string ToLowerName(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

const std::set<std::string>& BuiltinOpNames() {
  static const auto* const kOps = new std::set<std::string>{
      "subsample", "exists", "reshape", "sjoin", "adddimension",
      "removedimension", "concat", "crossproduct", "filter", "aggregate",
      "cjoin", "apply", "project", "regrid", "window",
  };
  return *kOps;
}
}  // namespace

Result<EnhancedArray*> Session::Enhanced(const std::string& array_name) {
  auto it = enhanced_.find(array_name);
  if (it == enhanced_.end()) {
    ASSIGN_OR_RETURN(std::shared_ptr<MemArray> arr, GetArray(array_name));
    it = enhanced_
             .emplace(array_name, std::make_shared<EnhancedArray>(arr))
             .first;
  }
  return it->second.get();
}

namespace {

Result<std::shared_ptr<EnhancementFunction>> BuildEnhancement(
    const std::string& func, const std::vector<Value>& args, size_t ndims) {
  auto out_names = [&](const char* prefix) {
    std::vector<std::string> names;
    for (size_t d = 0; d < ndims; ++d) {
      names.push_back(std::string(prefix) + std::to_string(d + 1));
    }
    return names;
  };
  auto int_args = [&]() -> Result<std::vector<int64_t>> {
    std::vector<int64_t> out;
    for (const Value& v : args) {
      ASSIGN_OR_RETURN(int64_t i, v.AsInt64());
      out.push_back(i);
    }
    return out;
  };
  if (func == "scale") {
    if (args.size() != 1) return Status::Invalid("scale(factor)");
    ASSIGN_OR_RETURN(int64_t k, args[0].AsInt64());
    return std::shared_ptr<EnhancementFunction>(
        std::make_shared<ScaleEnhancement>(
            "scale" + std::to_string(k), out_names("K"), k));
  }
  if (func == "translate") {
    ASSIGN_OR_RETURN(std::vector<int64_t> offsets, int_args());
    if (offsets.size() != ndims) {
      return Status::Invalid("translate needs one offset per dimension");
    }
    return std::shared_ptr<EnhancementFunction>(
        std::make_shared<TranslateEnhancement>("translate", out_names("T"),
                                               offsets));
  }
  if (func == "transpose") {
    ASSIGN_OR_RETURN(std::vector<int64_t> perm1, int_args());
    if (perm1.size() != ndims) {
      return Status::Invalid("transpose needs a full permutation");
    }
    std::vector<size_t> perm;
    for (int64_t p : perm1) {
      if (p < 1 || static_cast<size_t>(p) > ndims) {
        return Status::Invalid("transpose permutation entries are 1-based");
      }
      perm.push_back(static_cast<size_t>(p - 1));
    }
    return std::shared_ptr<EnhancementFunction>(
        std::make_shared<TransposeEnhancement>("transpose", out_names("P"),
                                               perm));
  }
  if (func == "mercator") {
    if (args.size() != 2 || ndims != 2) {
      return Status::Invalid("mercator(rows, cols) on a 2-D array");
    }
    ASSIGN_OR_RETURN(int64_t rows, args[0].AsInt64());
    ASSIGN_OR_RETURN(int64_t cols, args[1].AsInt64());
    return std::shared_ptr<EnhancementFunction>(
        std::make_shared<MercatorEnhancement>("mercator", rows, cols));
  }
  return Status::NotFound("unknown enhancement builder '" + func +
                          "' (scale|translate|transpose|mercator)");
}

Result<std::shared_ptr<ShapeFunction>> BuildShape(
    const std::string& func, const std::vector<Value>& args, size_t ndims) {
  auto int_args = [&]() -> Result<std::vector<int64_t>> {
    std::vector<int64_t> out;
    for (const Value& v : args) {
      ASSIGN_OR_RETURN(int64_t i, v.AsInt64());
      out.push_back(i);
    }
    return out;
  };
  if (func == "circle") {
    if (args.size() != 3 || ndims != 2) {
      return Status::Invalid("circle(ci, cj, r) on a 2-D array");
    }
    ASSIGN_OR_RETURN(std::vector<int64_t> a, int_args());
    return std::shared_ptr<ShapeFunction>(
        std::make_shared<CircleShape>(a[0], a[1], a[2]));
  }
  if (func == "triangle") {
    if (args.size() != 1 || ndims != 2) {
      return Status::Invalid("triangle(n) on a 2-D array");
    }
    ASSIGN_OR_RETURN(int64_t n, args[0].AsInt64());
    return std::shared_ptr<ShapeFunction>(
        std::make_shared<TriangleShape>(n));
  }
  if (func == "rectangle") {
    ASSIGN_OR_RETURN(std::vector<int64_t> a, int_args());
    if (a.size() != 2 * ndims) {
      return Status::Invalid("rectangle(lo1, hi1, lo2, hi2, ...)");
    }
    Box box;
    for (size_t d = 0; d < ndims; ++d) {
      box.low.push_back(a[2 * d]);
      box.high.push_back(a[2 * d + 1]);
    }
    return std::shared_ptr<ShapeFunction>(
        std::make_shared<RectangleShape>(box));
  }
  return Status::NotFound("unknown shape builder '" + func +
                          "' (circle|triangle|rectangle)");
}

}  // namespace

Status Session::RegisterArrayOp(const std::string& name, UserArrayOp op) {
  if (name.empty()) return Status::Invalid("operator name is empty");
  if (op == nullptr) return Status::Invalid("null operator body");
  std::string lower = ToLowerName(name);
  if (BuiltinOpNames().count(lower)) {
    return Status::Invalid("cannot shadow built-in operator '" + lower +
                           "'");
  }
  auto [it, inserted] = user_ops_.emplace(lower, std::move(op));
  if (!inserted) {
    return Status::AlreadyExists("operator '" + lower +
                                 "' already registered");
  }
  user_op_names_.insert(lower);
  return Status::OK();
}

bool Session::HasArrayOp(const std::string& name) const {
  return user_ops_.count(ToLowerName(name)) > 0;
}

namespace {

// Query-level metrics (scidb.query.*), registered once.
struct QueryMetrics {
  Counter* const statements =
      Metrics::Instance().counter("scidb.query.statements");
  Counter* const failures =
      Metrics::Instance().counter("scidb.query.failures");
  Histogram* const latency_us =
      Metrics::Instance().histogram("scidb.query.latency_us");

  static const QueryMetrics& Get() {
    static auto* const m = new QueryMetrics();
    return *m;
  }
};

}  // namespace

Result<QueryResult> Session::Execute(const Statement& stmt) {
  const QueryMetrics& qm = QueryMetrics::Get();
  uint64_t t0 = clock_();
  Result<QueryResult> result = ExecuteStatement(stmt);
  qm.latency_us->Record(static_cast<int64_t>((clock_() - t0) / 1000));
  qm.statements->Inc();
  if (!result.ok()) qm.failures->Inc();
  // Parse bookkeeping is one-shot: whatever statement ran, the next
  // Execute(Statement) from a binding must not inherit this text.
  pending_parse_ns_ = 0;
  pending_statement_.clear();
  return result;
}

Result<QueryResult> Session::ExecuteStatement(const Statement& stmt) {
  QueryResult result;
  switch (stmt.kind) {
    case Statement::Kind::kDefine:
      RETURN_NOT_OK(Define(stmt.define_schema));
      result.message = "defined " + stmt.define_schema.name();
      return result;
    case Statement::Kind::kCreate:
      RETURN_NOT_OK(
          CreateArray(stmt.create_name, stmt.create_type, stmt.create_highs));
      result.message = "created " + stmt.create_name;
      return result;
    case Statement::Kind::kInsert: {
      ASSIGN_OR_RETURN(std::shared_ptr<MemArray> arr,
                       GetArray(stmt.insert_array));
      RETURN_NOT_OK(arr->SetCell(stmt.insert_coords, stmt.insert_values));
      result.message = "inserted 1 cell";
      return result;
    }
    case Statement::Kind::kEnhance: {
      ASSIGN_OR_RETURN(EnhancedArray* arr, Enhanced(stmt.target_array));
      ASSIGN_OR_RETURN(
          std::shared_ptr<EnhancementFunction> fn,
          BuildEnhancement(stmt.func_name, stmt.func_args,
                           arr->base().schema().ndims()));
      RETURN_NOT_OK(arr->Enhance(fn));
      result.message = "enhanced " + stmt.target_array + " with " +
                       stmt.func_name;
      return result;
    }
    case Statement::Kind::kShape: {
      ASSIGN_OR_RETURN(EnhancedArray* arr, Enhanced(stmt.target_array));
      ASSIGN_OR_RETURN(std::shared_ptr<ShapeFunction> fn,
                       BuildShape(stmt.func_name, stmt.func_args,
                                  arr->base().schema().ndims()));
      RETURN_NOT_OK(arr->SetShape(fn));
      result.message = "shaped " + stmt.target_array + " with " +
                       stmt.func_name;
      return result;
    }
    case Statement::Kind::kEnhancedRead: {
      ASSIGN_OR_RETURN(EnhancedArray* arr, Enhanced(stmt.read_array));
      ASSIGN_OR_RETURN(result.values,
                       arr->GetEnhancedAny(stmt.read_pseudo));
      result.kind = QueryResult::Kind::kValues;
      return result;
    }
    case Statement::Kind::kTrace: {
      if (provenance_ == nullptr) {
        return Status::Invalid(
            "no provenance log attached to this session");
      }
      CellRef d{stmt.trace_array, stmt.trace_coords};
      result.kind = QueryResult::Kind::kCells;
      if (stmt.trace_back) {
        ASSIGN_OR_RETURN(auto steps, provenance_->TraceBack(d));
        for (const auto& step : steps) {
          for (const CellRef& c : step.contributors) {
            result.cells.push_back(c);
          }
        }
        result.message =
            "derivation spans " + std::to_string(steps.size()) + " step(s)";
      } else {
        ASSIGN_OR_RETURN(result.cells, provenance_->TraceForward(d));
        result.message = std::to_string(result.cells.size()) +
                         " downstream element(s)";
      }
      return result;
    }
    case Statement::Kind::kQuery: {
      OpNodePtr tree = stmt.query;
      if (optimize_) {
        ASSIGN_OR_RETURN(tree, OptimizeOpTree(tree));
      }
      return ExecuteQueryNode(tree);
    }
    case Statement::Kind::kStore: {
      OpNodePtr tree = stmt.query;
      if (optimize_) {
        ASSIGN_OR_RETURN(tree, OptimizeOpTree(tree));
      }
      ASSIGN_OR_RETURN(MemArray out, Eval(tree));
      if (arrays_.count(stmt.store_into)) {
        return Status::AlreadyExists("array '" + stmt.store_into +
                                     "' already exists");
      }
      out.mutable_schema()->set_name(stmt.store_into);
      arrays_.emplace(stmt.store_into,
                      std::make_shared<MemArray>(std::move(out)));
      result.message = "stored " + stmt.store_into;
      return result;
    }
    case Statement::Kind::kExplain:
      return ExecuteExplain(stmt);
    case Statement::Kind::kSet: {
      if (stmt.set_option == "net_faults") {
        // Seed for the grid's fault-injecting transport: every
        // DistributedArray constructed from now on misbehaves
        // deterministically under this seed. 0 restores a transparent
        // network.
        if (stmt.set_value < 0) {
          return Status::Invalid("net_faults seed must be >= 0, got " +
                                 std::to_string(stmt.set_value));
        }
        DistributedArray::SetDefaultFaultSeed(
            static_cast<uint64_t>(stmt.set_value));
        result.message =
            stmt.set_value == 0
                ? "net fault injection disabled"
                : "net fault seed set to " + std::to_string(stmt.set_value);
        return result;
      }
      if (stmt.set_option == "replication") {
        // k-way chunk replication (DESIGN.md §13): every
        // DistributedArray constructed from now on writes each chunk to
        // its first k replica nodes and fails reads over to survivors.
        // 1 restores the legacy single-copy grid.
        if (stmt.set_value < 1 || stmt.set_value > 64) {
          return Status::Invalid("replication must be in [1, 64], got " +
                                 std::to_string(stmt.set_value));
        }
        DistributedArray::SetDefaultReplication(
            static_cast<int>(stmt.set_value));
        result.message =
            "replication set to " + std::to_string(stmt.set_value);
        return result;
      }
      if (stmt.set_option == "flight_recorder") {
        // Process-wide flight-recorder kill switch (DESIGN.md §12):
        // 0 stops recording (single-digit-ns hot paths), nonzero
        // resumes. Already-recorded events stay in the ring.
        FlightRecorder::set_enabled(stmt.set_value != 0);
        result.message = stmt.set_value != 0 ? "flight recorder enabled"
                                             : "flight recorder disabled";
        return result;
      }
      if (stmt.set_option != "parallelism") {
        return Status::Invalid("unknown session option '" +
                               stmt.set_option + "'");
      }
      if (stmt.set_value < 1 ||
          stmt.set_value > static_cast<int64_t>(kMaxParallelism)) {
        return Status::Invalid("parallelism must be in [1, " +
                               std::to_string(kMaxParallelism) + "], got " +
                               std::to_string(stmt.set_value));
      }
      RETURN_NOT_OK(set_parallelism(static_cast<int>(stmt.set_value)));
      int effective = parallelism();
      result.message = "parallelism set to " + std::to_string(effective);
      if (effective < stmt.set_value) {
        // Shared-pool mode (DESIGN.md §15): the server's per-query cap
        // wins; README documents the precedence.
        result.message += " (requested " + std::to_string(stmt.set_value) +
                          ", clamped to the server's per-query cap)";
      }
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

namespace {

// Handles to the network counters `explain analyze` reports as root
// notes (net.*). Registered once; reading them is two relaxed loads.
struct NetExplainCounters {
  Counter* const frames = Metrics::Instance().counter("scidb.net.frames_sent");
  Counter* const bytes = Metrics::Instance().counter("scidb.net.bytes_sent");
  Counter* const retries = Metrics::Instance().counter("scidb.net.retries");
  Counter* const timeouts = Metrics::Instance().counter("scidb.net.timeouts");
  Histogram* const latency =
      Metrics::Instance().histogram("scidb.net.rpc_latency_us");

  static const NetExplainCounters& Get() {
    static const NetExplainCounters c;
    return c;
  }
};

}  // namespace

Result<QueryResult> Session::ExecuteExplain(const Statement& stmt) {
  if (stmt.query == nullptr) {
    return Status::Invalid("explain requires a query");
  }
  auto trace = std::make_shared<QueryTrace>();
  trace->statement = pending_statement_;
  trace->parse_ns = pending_parse_ns_;

  OpNodePtr tree = stmt.query;
  if (optimize_) {
    uint64_t t0 = clock_();
    ASSIGN_OR_RETURN(tree, OptimizeOpTree(tree));
    trace->optimize_ns = clock_() - t0;
  }

  QueryResult result;
  result.kind = QueryResult::Kind::kExplain;
  if (!stmt.explain_analyze) {
    // Plain explain: show the optimized plan, execute nothing.
    result.message = FormatPlan(*tree);
    return result;
  }

  trace->root.label = PlanLabel(*tree);
  const NetExplainCounters& net = NetExplainCounters::Get();
  const int64_t net_frames0 = net.frames->value();
  const int64_t net_bytes0 = net.bytes->value();
  const int64_t net_retries0 = net.retries->value();
  const int64_t net_timeouts0 = net.timeouts->value();
  const int64_t net_rpcs0 = net.latency->count();
  const int64_t net_us0 = net.latency->sum();
  uint64_t t0 = clock_();
  if (tree->op == "exists") {
    // Top-level boolean probe: trace the input scan, note the verdict.
    if (tree->inputs.size() != 1 || tree->inputs[0] == nullptr) {
      return Status::Invalid("Exists takes one array");
    }
    TraceSpan span(clock_, &trace->root);
    TraceNode* child = trace->root.AddChild();
    child->label = PlanLabel(*tree->inputs[0]);
    ASSIGN_OR_RETURN(MemArray in, EvalTraced(tree->inputs[0], child));
    trace->root.AddNote("exists", in.Exists(tree->numbers) ? 1 : 0);
  } else {
    // EvalTraced stamps trace->root's span itself.
    ASSIGN_OR_RETURN(MemArray out, EvalTraced(tree, &trace->root));
    (void)out;  // explain analyze reports the trace, not the data
  }
  trace->execute_ns = clock_() - t0;
  // Network activity attributable to this query (grid-backed plans);
  // queries that touched no transport stay note-free.
  if (net.frames->value() != net_frames0) {
    trace->root.AddNote(
        "net.frames_sent",
        static_cast<double>(net.frames->value() - net_frames0));
    trace->root.AddNote(
        "net.bytes_sent",
        static_cast<double>(net.bytes->value() - net_bytes0));
    trace->root.AddNote(
        "net.rpcs", static_cast<double>(net.latency->count() - net_rpcs0));
    trace->root.AddNote(
        "net.rpc_time_us",
        static_cast<double>(net.latency->sum() - net_us0));
    trace->root.AddNote(
        "net.retries",
        static_cast<double>(net.retries->value() - net_retries0));
    trace->root.AddNote(
        "net.timeouts",
        static_cast<double>(net.timeouts->value() - net_timeouts0));
  }
  {
    MutexLock lock(mu_);
    last_trace_ = trace;
  }
  result.trace = trace;
  result.message = trace->ToString(true);
  return result;
}

Result<QueryResult> Session::ExecuteQueryNode(const OpNodePtr& node) const {
  QueryResult result;
  if (node->op == "exists") {
    // Exists? [A, 7, 7] — boolean result (paper §2.2.1).
    if (node->inputs.size() != 1) {
      return Status::Invalid("Exists takes one array");
    }
    ASSIGN_OR_RETURN(MemArray in, Eval(node->inputs[0]));
    result.kind = QueryResult::Kind::kBool;
    result.boolean = in.Exists(node->numbers);
    return result;
  }
  ASSIGN_OR_RETURN(MemArray out, Eval(node));
  result.kind = QueryResult::Kind::kArray;
  result.array = std::make_shared<MemArray>(std::move(out));
  return result;
}

namespace {

// Converts an Sjoin predicate expression into dimension pairs: a
// conjunction of A.dim = B.dim equalities.
Status ExtractDimPairs(
    const Expr& e,
    std::vector<std::pair<std::string, std::string>>* pairs) {
  if (e.kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op() == BinaryOp::kAnd) {
      RETURN_NOT_OK(ExtractDimPairs(*b.lhs(), pairs));
      return ExtractDimPairs(*b.rhs(), pairs);
    }
    if (b.op() == BinaryOp::kEq &&
        b.lhs()->kind() == Expr::Kind::kRef &&
        b.rhs()->kind() == Expr::Kind::kRef) {
      const auto* l = static_cast<const RefExpr*>(b.lhs().get());
      const auto* r = static_cast<const RefExpr*>(b.rhs().get());
      if (l->side() == 0 && r->side() == 1) {
        pairs->push_back({l->name(), r->name()});
        return Status::OK();
      }
      if (l->side() == 1 && r->side() == 0) {
        pairs->push_back({r->name(), l->name()});
        return Status::OK();
      }
    }
  }
  return Status::Invalid(
      "Sjoin predicate must be a conjunction of A.dim = B.dim equalities: " +
      e.ToString());
}

}  // namespace

namespace {

// Exec-layer metrics (scidb.exec.*). The shared counters live in one
// registered-once struct; the per-operator counter is looked up by name
// on each flush — once per operator invocation, never per cell.
struct ExecMetrics {
  Counter* const ops = Metrics::Instance().counter("scidb.exec.ops");
  Counter* const cells_visited =
      Metrics::Instance().counter("scidb.exec.cells_visited");
  Counter* const chunks_scanned =
      Metrics::Instance().counter("scidb.exec.chunks_scanned");
  Counter* const chunks_pruned =
      Metrics::Instance().counter("scidb.exec.chunks_pruned");
  Counter* const morsels = Metrics::Instance().counter("scidb.exec.morsels");
  Histogram* const op_latency_us =
      Metrics::Instance().histogram("scidb.exec.op_latency_us");

  static const ExecMetrics& Get() {
    static auto* const m = new ExecMetrics();
    return *m;
  }
};

void FlushExecStats(const std::string& op, const ExecStats& stats,
                    uint64_t wall_ns) {
  const ExecMetrics& m = ExecMetrics::Get();
  m.ops->Inc();
  m.cells_visited->Inc(stats.cells_visited);
  m.chunks_scanned->Inc(stats.chunks_scanned);
  m.chunks_pruned->Inc(stats.chunks_pruned);
  m.morsels->Inc(stats.morsels);
  m.op_latency_us->Record(static_cast<int64_t>(wall_ns / 1000));
  Metrics::Instance().counter("scidb.exec.op." + op)->Inc();
}

}  // namespace

Result<MemArray> Session::ResolveArrayRef(const OpNode& node,
                                          TraceNode* tn) const {
  auto it = arrays_.find(node.array);
  if (it != arrays_.end()) {
    return *it->second;  // value copy: operators never mutate catalog arrays
  }
  // Snapshot the guarded pointers; mu_ must not be held across the read
  // itself (ReadAll can run for a long time and takes engine locks).
  StorageManager* storage = nullptr;
  ThreadPool* pool = nullptr;
  ArrayResolver resolver;
  {
    MutexLock lock(mu_);
    storage = storage_;
    pool = pool_.get();
    resolver = resolver_;
  }
  // Query-server snapshots shadow disk arrays but not session-local
  // names: a session's own `store` always wins (session isolation),
  // while shared arrays resolve to the epoch-pinned version.
  if (resolver != nullptr) {
    Result<MemArray> resolved = resolver(node.array);
    if (resolved.ok() || !resolved.status().IsNotFound()) {
      if (resolved.ok() && tn != nullptr) {
        tn->AddNote("snapshot", 1.0);
      }
      return resolved;
    }
  }
  if (storage != nullptr) {
    Result<DiskArray*> da = storage->OpenArray(node.array);
    if (da.ok()) {
      DiskArray* disk = da.value();
      // Deltas, not totals: the trace reports what THIS scan did to the
      // cache, not the cache's lifetime history.
      ChunkCache::Stats before;
      if (disk->cache() != nullptr) before = disk->cache()->stats();
      int64_t bytes_read_before = disk->stats().bytes_read;
      ASSIGN_OR_RETURN(MemArray out, disk->ReadAll(pool));
      if (tn != nullptr) {
        tn->AddNote("disk_bytes_read",
                    static_cast<double>(disk->stats().bytes_read -
                                        bytes_read_before));
        if (disk->cache() != nullptr) {
          const ChunkCache::Stats& after = disk->cache()->stats();
          double hits = static_cast<double>(after.hits - before.hits);
          double misses = static_cast<double>(after.misses - before.misses);
          tn->AddNote("cache_hits", hits);
          tn->AddNote("cache_misses", misses);
          if (hits + misses > 0) {
            tn->AddNote("cache_hit_ratio", hits / (hits + misses));
          }
        }
      }
      return out;
    }
  }
  return Status::NotFound("no array named '" + node.array + "'");
}

Result<MemArray> Session::EvalOp(const OpNode& node,
                                 std::vector<MemArray>* inputs,
                                 const ExecContext& ctx) const {
  const std::string& op = node.op;
  auto arity = [&](size_t n) -> Status {
    if (inputs->size() != n) {
      return Status::Invalid(op + " takes " + std::to_string(n) +
                             " array input(s), got " +
                             std::to_string(inputs->size()));
    }
    return Status::OK();
  };

  if (op == "subsample") {
    RETURN_NOT_OK(arity(1));
    return Subsample(ctx, (*inputs)[0], node.exprs.at(0));
  }
  if (op == "filter") {
    RETURN_NOT_OK(arity(1));
    return Filter(ctx, (*inputs)[0], node.exprs.at(0));
  }
  if (op == "sjoin") {
    RETURN_NOT_OK(arity(2));
    std::vector<std::pair<std::string, std::string>> pairs;
    RETURN_NOT_OK(ExtractDimPairs(*node.exprs.at(0), &pairs));
    return Sjoin(ctx, (*inputs)[0], (*inputs)[1], pairs);
  }
  if (op == "cjoin") {
    RETURN_NOT_OK(arity(2));
    return Cjoin(ctx, (*inputs)[0], (*inputs)[1], node.exprs.at(0));
  }
  if (op == "aggregate") {
    RETURN_NOT_OK(arity(1));
    if (node.aggs.size() > 1) {
      std::vector<AggCall> calls;
      for (const AggSpec& spec : node.aggs) {
        calls.push_back({spec.agg, spec.attr});
      }
      return AggregateMulti(ctx, (*inputs)[0], node.names, calls);
    }
    return Aggregate(ctx, (*inputs)[0], node.names, node.agg.agg,
                     node.agg.attr);
  }
  if (op == "apply") {
    RETURN_NOT_OK(arity(1));
    return Apply(ctx, (*inputs)[0], node.names.at(0), DataType::kDouble,
                 node.exprs.at(0));
  }
  if (op == "project") {
    RETURN_NOT_OK(arity(1));
    return Project(ctx, (*inputs)[0], node.names);
  }
  if (op == "reshape") {
    RETURN_NOT_OK(arity(1));
    return Reshape(ctx, (*inputs)[0], node.names, node.dims);
  }
  if (op == "regrid") {
    RETURN_NOT_OK(arity(1));
    return Regrid(ctx, (*inputs)[0], node.numbers, node.agg.agg,
                  node.agg.attr);
  }
  if (op == "window") {
    RETURN_NOT_OK(arity(1));
    return WindowAggregate(ctx, (*inputs)[0], node.numbers, node.agg.agg,
                           node.agg.attr);
  }
  if (op == "concat") {
    RETURN_NOT_OK(arity(2));
    return Concat(ctx, (*inputs)[0], (*inputs)[1], node.names.at(0));
  }
  if (op == "crossproduct") {
    RETURN_NOT_OK(arity(2));
    return CrossProduct(ctx, (*inputs)[0], (*inputs)[1]);
  }
  if (op == "adddimension") {
    RETURN_NOT_OK(arity(1));
    return AddDimension(ctx, (*inputs)[0], node.names.at(0));
  }
  if (op == "removedimension") {
    RETURN_NOT_OK(arity(1));
    return RemoveDimension(ctx, (*inputs)[0], node.names.at(0));
  }
  if (op == "exists") {
    return Status::Invalid(
        "Exists is a top-level predicate, not an array expression");
  }
  if (auto it = user_ops_.find(op); it != user_ops_.end()) {
    return it->second(ctx, *inputs, node.exprs);
  }
  return Status::NotImplemented("unknown operator '" + op + "'");
}

Result<MemArray> Session::Eval(const OpNodePtr& node) const {
  if (node == nullptr) return Status::Invalid("null query node");
  if (node->is_array_ref()) return ResolveArrayRef(*node, nullptr);

  std::vector<MemArray> inputs;
  inputs.reserve(node->inputs.size());
  for (const auto& in : node->inputs) {
    ASSIGN_OR_RETURN(MemArray a, Eval(in));
    inputs.push_back(std::move(a));
  }

  ExecContext ctx = MakeContext();
  ExecStats stats;
  ctx.stats = &stats;
  uint64_t t0 = clock_();
  Result<MemArray> out = EvalOp(*node, &inputs, ctx);
  FlushExecStats(node->op, stats, clock_() - t0);
  return out;
}

Result<MemArray> Session::EvalTraced(const OpNodePtr& node,
                                     TraceNode* self) const {
  if (node == nullptr) return Status::Invalid("null query node");
  TraceSpan span(clock_, self);

  if (node->is_array_ref()) {
    ASSIGN_OR_RETURN(MemArray out, ResolveArrayRef(*node, self));
    self->out_cells = out.CellCount();
    return out;
  }

  std::vector<MemArray> inputs;
  inputs.reserve(node->inputs.size());
  for (const auto& in : node->inputs) {
    if (in == nullptr) return Status::Invalid("null query node");
    TraceNode* child = self->AddChild();
    child->label = PlanLabel(*in);
    ASSIGN_OR_RETURN(MemArray a, EvalTraced(in, child));
    inputs.push_back(std::move(a));
  }

  ExecContext ctx = MakeContext();
  ExecStats stats;
  ctx.stats = &stats;
  uint64_t t0 = clock_();
  ASSIGN_OR_RETURN(MemArray out, EvalOp(*node, &inputs, ctx));
  FlushExecStats(node->op, stats, clock_() - t0);

  self->out_cells = out.CellCount();
  if (stats.cells_visited > 0) {
    self->AddNote("cells_visited", static_cast<double>(stats.cells_visited));
  }
  if (stats.chunks_scanned > 0) {
    self->AddNote("chunks_scanned",
                  static_cast<double>(stats.chunks_scanned));
  }
  if (stats.chunks_pruned > 0) {
    self->AddNote("chunks_pruned", static_cast<double>(stats.chunks_pruned));
  }
  // Gated on an actual pool so serial explain-analyze output is unchanged.
  if (stats.parallel_workers > 1) {
    self->AddNote("morsels", static_cast<double>(stats.morsels));
    self->AddNote("workers", static_cast<double>(stats.parallel_workers));
  }
  return out;
}

// ------------------------------- binding --------------------------------

namespace binding {

namespace {
std::shared_ptr<OpNode> Node(std::string op) {
  auto n = std::make_shared<OpNode>();
  n->op = std::move(op);
  return n;
}
}  // namespace

OpNodePtr Array(std::string name) {
  auto n = std::make_shared<OpNode>();
  n->array = std::move(name);
  return n;
}

OpNodePtr Subsample(OpNodePtr in, ExprPtr pred) {
  auto n = Node("subsample");
  n->inputs = {std::move(in)};
  n->exprs = {std::move(pred)};
  return n;
}

OpNodePtr Filter(OpNodePtr in, ExprPtr pred) {
  auto n = Node("filter");
  n->inputs = {std::move(in)};
  n->exprs = {std::move(pred)};
  return n;
}

OpNodePtr Sjoin(OpNodePtr a, OpNodePtr b, ExprPtr dim_equalities) {
  auto n = Node("sjoin");
  n->inputs = {std::move(a), std::move(b)};
  n->exprs = {std::move(dim_equalities)};
  return n;
}

OpNodePtr Cjoin(OpNodePtr a, OpNodePtr b, ExprPtr pred) {
  auto n = Node("cjoin");
  n->inputs = {std::move(a), std::move(b)};
  n->exprs = {std::move(pred)};
  return n;
}

OpNodePtr Aggregate(OpNodePtr in, std::vector<std::string> group_dims,
                    std::string agg, std::string attr) {
  auto n = Node("aggregate");
  n->inputs = {std::move(in)};
  n->names = std::move(group_dims);
  n->agg = {std::move(agg), std::move(attr)};
  return n;
}

OpNodePtr Apply(OpNodePtr in, std::string attr, ExprPtr e) {
  auto n = Node("apply");
  n->inputs = {std::move(in)};
  n->names = {std::move(attr)};
  n->exprs = {std::move(e)};
  return n;
}

OpNodePtr Project(OpNodePtr in, std::vector<std::string> attrs) {
  auto n = Node("project");
  n->inputs = {std::move(in)};
  n->names = std::move(attrs);
  return n;
}

OpNodePtr Reshape(OpNodePtr in, std::vector<std::string> dim_order,
                  std::vector<DimensionDesc> new_dims) {
  auto n = Node("reshape");
  n->inputs = {std::move(in)};
  n->names = std::move(dim_order);
  n->dims = std::move(new_dims);
  return n;
}

OpNodePtr Regrid(OpNodePtr in, std::vector<int64_t> factors, std::string agg,
                 std::string attr) {
  auto n = Node("regrid");
  n->inputs = {std::move(in)};
  n->numbers = std::move(factors);
  n->agg = {std::move(agg), std::move(attr)};
  return n;
}

OpNodePtr Window(OpNodePtr in, std::vector<int64_t> radii, std::string agg,
                 std::string attr) {
  auto n = Node("window");
  n->inputs = {std::move(in)};
  n->numbers = std::move(radii);
  n->agg = {std::move(agg), std::move(attr)};
  return n;
}

OpNodePtr Concat(OpNodePtr a, OpNodePtr b, std::string dim) {
  auto n = Node("concat");
  n->inputs = {std::move(a), std::move(b)};
  n->names = {std::move(dim)};
  return n;
}

OpNodePtr CrossProduct(OpNodePtr a, OpNodePtr b) {
  auto n = Node("crossproduct");
  n->inputs = {std::move(a), std::move(b)};
  return n;
}

OpNodePtr AddDimension(OpNodePtr in, std::string name) {
  auto n = Node("adddimension");
  n->inputs = {std::move(in)};
  n->names = {std::move(name)};
  return n;
}

OpNodePtr RemoveDimension(OpNodePtr in, std::string name) {
  auto n = Node("removedimension");
  n->inputs = {std::move(in)};
  n->names = {std::move(name)};
  return n;
}

}  // namespace binding

}  // namespace scidb
