#include "query/plan_printer.h"

#include <sstream>

namespace scidb {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

std::string JoinNumbers(const std::vector<int64_t>& nums) {
  std::string out;
  for (size_t i = 0; i < nums.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(nums[i]);
  }
  return out;
}

std::string AggSummary(const OpNode& node) {
  // Multi-aggregate lists every call; plain nodes have just `agg`.
  const std::vector<AggSpec>& specs =
      node.aggs.size() > 1 ? node.aggs : std::vector<AggSpec>{node.agg};
  std::string out;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (i > 0) out += ", ";
    out += specs[i].agg + "(" + specs[i].attr + ")";
  }
  return out;
}

void RenderPlanNode(const OpNode& node, int depth, std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << PlanLabel(node) << "\n";
  for (const auto& in : node.inputs) {
    if (in != nullptr) RenderPlanNode(*in, depth + 1, out);
  }
}

}  // namespace

std::string PlanLabel(const OpNode& node) {
  if (node.is_array_ref()) {
    std::string label = "scan " + node.array;
    if (!node.version.empty()) label += "@" + node.version;
    return label;
  }
  const std::string& op = node.op;
  std::string detail;
  if (op == "filter" || op == "subsample" || op == "cjoin" ||
      op == "sjoin") {
    if (!node.exprs.empty() && node.exprs[0] != nullptr) {
      detail = node.exprs[0]->ToString();
    }
  } else if (op == "apply") {
    if (!node.names.empty()) detail = node.names[0];
    if (!node.exprs.empty() && node.exprs[0] != nullptr) {
      detail += " = " + node.exprs[0]->ToString();
    }
  } else if (op == "aggregate") {
    detail = "{" + JoinNames(node.names) + "} " + AggSummary(node);
  } else if (op == "regrid" || op == "window") {
    detail = JoinNumbers(node.numbers) + "; " + AggSummary(node);
  } else if (op == "project" || op == "concat" || op == "adddimension" ||
             op == "removedimension" || op == "reshape") {
    detail = JoinNames(node.names);
  } else if (op == "exists") {
    detail = JoinNumbers(node.numbers);
  }
  if (detail.empty()) return op;
  return op + " [" + detail + "]";
}

std::string FormatPlan(const OpNode& root) {
  std::ostringstream out;
  RenderPlanNode(root, 0, &out);
  return out.str();
}

}  // namespace scidb
