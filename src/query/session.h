#ifndef SCIDB_QUERY_SESSION_H_
#define SCIDB_QUERY_SESSION_H_

#include <atomic>
#include <functional>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/operators.h"
#include "provenance/provenance.h"
#include "query/parse_tree.h"
#include "udf/enhanced_array.h"
#include "udf/aggregate.h"
#include "udf/function.h"

namespace scidb {

class StorageManager;

// The result of executing one statement.
struct QueryResult {
  enum class Kind { kNone, kArray, kBool, kCells, kValues, kExplain };
  Kind kind = Kind::kNone;
  std::shared_ptr<MemArray> array;
  bool boolean = false;
  std::string message;             // "defined", "created", ... ; for
                                   // kExplain: the rendered plan/trace
  std::vector<CellRef> cells;      // trace results (kCells)
  std::vector<Value> values;       // enhanced-read results (kValues)
  // kExplain with analyze: the structured per-operator trace behind
  // `message` (null for plain explain).
  std::shared_ptr<const QueryTrace> trace;
};

// Morsel-execution knob (DESIGN.md §8). `workers` is the pool width used
// for chunk-parallel operators and storage reads; 1 means the serial
// engine (no pool, no extra threads).
struct ParallelismOptions {
  int workers = 1;
};

// A user-registered array operation (paper §2.3): receives the evaluated
// input arrays and the raw expression arguments of its call site.
using UserArrayOp = std::function<Result<MemArray>(
    const ExecContext& ctx, const std::vector<MemArray>& inputs,
    const std::vector<ExprPtr>& args)>;

// A session owns the catalog (array type definitions + array instances)
// and the function/aggregate registries, and executes parse trees —
// whether produced by the AQL parser (Execute(string)) or by a language
// binding (Execute(OpNodePtr) / Execute(Statement)). This is the paper's
// §2.4 architecture: one command representation, many bindings.
class Session {
 public:
  Session();

  FunctionRegistry* functions() { return &functions_; }
  AggregateRegistry* aggregates() { return &aggregates_; }
  ExecContext MakeContext() const;

  // ---- catalog ----
  Status Define(const ArraySchema& type_schema);
  Status CreateArray(const std::string& name, const std::string& type_name,
                     const std::vector<int64_t>& highs);
  // Registers an externally built array instance under its schema name.
  Status RegisterArray(std::shared_ptr<MemArray> array);
  Result<std::shared_ptr<MemArray>> GetArray(const std::string& name) const;
  [[nodiscard]] bool HasArray(const std::string& name) const;
  std::vector<std::string> ArrayNames() const;

  // ---- execution ----
  Result<QueryResult> Execute(const std::string& statement);
  Result<QueryResult> Execute(const Statement& stmt);
  // Evaluates an operator tree to an array (the binding entry point).
  Result<MemArray> Eval(const OpNodePtr& node) const;

  // Logical optimization of query trees before execution (default on);
  // see query/optimizer.h. Off-switch for ablation benchmarks.
  void set_optimize(bool on) { optimize_ = on; }
  bool optimize() const { return optimize_; }

  // ---- morsel parallelism (DESIGN.md §8) ----
  // Sets the worker-pool width for chunk-parallel execution; the AQL
  // statement `set parallelism = N` routes here. Width 1 tears the pool
  // down and restores the serial engine (identical to pre-pool behavior);
  // widths above kMaxParallelism are rejected.
  [[nodiscard]] Status set_parallelism(int workers) LOCKS_EXCLUDED(mu_);
  Status set_parallelism(const ParallelismOptions& opts) {
    return set_parallelism(opts.workers);
  }
  int parallelism() const LOCKS_EXCLUDED(mu_);
  static constexpr int kMaxParallelism = 64;

  // ---- query-server hooks (DESIGN.md §15) ----
  // Shared-pool mode: the session stops owning a worker pool and instead
  // borrows `pool` (non-owning, must outlive the session), with each
  // query's effective width clamped to `per_query_cap`. In this mode
  // `set parallelism = N` records a per-session REQUEST — precedence is
  // min(requested, per_query_cap), documented in README — instead of
  // building a private pool, so one session cannot grab the whole
  // server. Pass nullptr to leave shared mode.
  void UseSharedPool(ThreadPool* pool, int per_query_cap)
      LOCKS_EXCLUDED(mu_);

  // Per-query controls the server installs around each Execute call:
  // a cancel flag polled once per morsel and a fair-scheduling slice
  // gate (both non-owning; cleared with {}). Read by MakeContext.
  struct QueryControls {
    const std::atomic<bool>* cancel = nullptr;
    SliceGate* gate = nullptr;
  };
  void set_query_controls(const QueryControls& qc) LOCKS_EXCLUDED(mu_) {
    MutexLock lock(mu_);
    controls_ = qc;
  }

  // Fallback array source consulted by array references that miss the
  // session catalog, BEFORE the attached storage manager. The query
  // server installs a per-query resolver that materializes
  // epoch-pinned snapshots of shared arrays (DESIGN.md §15), which is
  // what makes reads run against a stable version while loaders
  // commit. Return NotFound to fall through; any other error aborts
  // the query. Null detaches.
  using ArrayResolver =
      std::function<Result<MemArray>(const std::string& name)>;
  void set_array_resolver(ArrayResolver resolver) LOCKS_EXCLUDED(mu_) {
    MutexLock lock(mu_);
    resolver_ = std::move(resolver);
  }

  // ---- observability (DESIGN.md §7) ----
  // Array references not found in the in-memory catalog fall back to this
  // storage manager (DiskArray::ReadAll through its chunk cache), so
  // `explain analyze` can report cache hit ratios for stored arrays.
  // Non-owning; pass nullptr to detach.
  void AttachStorage(StorageManager* storage) LOCKS_EXCLUDED(mu_) {
    MutexLock lock(mu_);
    storage_ = storage;
  }

  // Injectable trace clock (nanoseconds, monotone). Tests install a fake
  // to make `explain analyze` timings deterministic; null restores the
  // steady clock.
  void set_clock(TraceClock clock);

  // The trace of the most recent `explain analyze`, or null.
  std::shared_ptr<const QueryTrace> last_trace() const LOCKS_EXCLUDED(mu_) {
    MutexLock lock(mu_);
    return last_trace_;
  }

  // Snapshot of the process-wide metrics registry (counters, gauges,
  // histograms) — the programmatic face of tools/metrics_dump.
  scidb::MetricsSnapshot MetricsSnapshot() const;

  // ---- §2.1 enhancements / shapes on catalog arrays ----
  // The enhanced wrapper for a catalog array (created on first use).
  Result<EnhancedArray*> Enhanced(const std::string& array_name);

  // ---- §2.12 provenance query language ----
  // Attaches a provenance log; afterwards "trace back X [c...]" and
  // "trace forward X [c...]" statements resolve against it (non-owning;
  // the log must outlive the session or be detached with nullptr).
  void AttachProvenance(const ProvenanceLog* log) { provenance_ = log; }

  // ---- §2.3 extendability: user array operations ----
  // Registers `name` as a new operator usable from AQL and Eval().
  // Built-in operator names cannot be shadowed.
  Status RegisterArrayOp(const std::string& name, UserArrayOp op);
  [[nodiscard]] bool HasArrayOp(const std::string& name) const;

 private:
  int EffectiveParallelismLocked() const EXCLUSIVE_LOCKS_REQUIRED(mu_);
  Result<QueryResult> ExecuteQueryNode(const OpNodePtr& node) const;
  Result<QueryResult> ExecuteStatement(const Statement& stmt);
  Result<QueryResult> ExecuteExplain(const Statement& stmt);

  // Resolves an array reference: in-memory catalog first, then the
  // attached storage manager. When `tn` is non-null the scan is traced
  // (cells out, chunk-cache delta for storage-backed reads).
  Result<MemArray> ResolveArrayRef(const OpNode& node, TraceNode* tn) const;

  // Applies one operator to its already-evaluated inputs — the single
  // dispatch shared by the untraced Eval() path and EvalTraced().
  Result<MemArray> EvalOp(const OpNode& node, std::vector<MemArray>* inputs,
                          const ExecContext& ctx) const;

  // Traced evaluation: fills `self` (labeled by the caller) with wall
  // time, output cells, and per-operator ExecStats, recursing into child
  // TraceNodes; also flushes the stats to the scidb.exec.* metrics.
  Result<MemArray> EvalTraced(const OpNodePtr& node, TraceNode* self) const;

  // Catalog state: a Session is driven by one statement-issuing thread
  // (worker threads only see operator-local state), so the registries and
  // named-array catalog are not under mu_ — only the control-plane knobs
  // below are shared.
  FunctionRegistry functions_;   // NOLINT(lock-coverage): statement thread
  AggregateRegistry aggregates_;  // NOLINT(lock-coverage): statement thread
  std::map<std::string, ArraySchema>
      defines_;  // NOLINT(lock-coverage): statement thread
  std::map<std::string, std::shared_ptr<MemArray>>
      arrays_;  // NOLINT(lock-coverage): statement thread
  std::map<std::string, std::shared_ptr<EnhancedArray>>
      enhanced_;  // NOLINT(lock-coverage): statement thread
  std::map<std::string, UserArrayOp>
      user_ops_;  // NOLINT(lock-coverage): statement thread
  // Lowercase, for the parser.
  std::set<std::string>
      user_op_names_;  // NOLINT(lock-coverage): statement thread
  bool optimize_ = true;  // NOLINT(lock-coverage): statement thread
  // Control-plane state other threads may flip or inspect while a
  // statement executes — the parallelism knob, the attached storage
  // fallback, and the last explain-analyze trace. mu_ is held only for
  // pointer reads/swaps, never across an execution, so it nests strictly
  // outside every engine lock (Session::mu_ -> ThreadPool/cache locks is
  // the only order the debug lock-order detector ever sees).
  mutable Mutex mu_{"Session::mu_"};
  // Null at width 1: the serial path must not pay even an empty pool.
  std::unique_ptr<ThreadPool> pool_ GUARDED_BY(mu_);
  // Shared-pool mode (DESIGN.md §15): non-null shared_pool_ supersedes
  // pool_; requested_parallelism_ is the session's `set parallelism`
  // wish, clamped to per_query_cap_ at context-build time.
  ThreadPool* shared_pool_ GUARDED_BY(mu_) = nullptr;
  int per_query_cap_ GUARDED_BY(mu_) = 0;
  int requested_parallelism_ GUARDED_BY(mu_) = 0;  // 0 = use the cap
  QueryControls controls_ GUARDED_BY(mu_);
  ArrayResolver resolver_ GUARDED_BY(mu_);
  const ProvenanceLog*
      provenance_ = nullptr;  // NOLINT(lock-coverage): set pre-exec
  StorageManager* storage_ GUARDED_BY(mu_) = nullptr;
  // Never null (ctor installs SteadyNowNs); test-time injection only,
  // set before any concurrent use.
  TraceClock clock_;  // NOLINT(lock-coverage): set pre-exec
  std::shared_ptr<const QueryTrace> last_trace_ GUARDED_BY(mu_);
  // Parse timing + statement text carried from Execute(string) into the
  // Statement overload, so explain traces can report the parse phase.
  uint64_t pending_parse_ns_ = 0;  // NOLINT(lock-coverage): stmt thread
  std::string pending_statement_;  // NOLINT(lock-coverage): stmt thread
};

// ------------------- fluent C++ binding (paper §2.4) -------------------
// Builds the same OpNode parse trees the text parser emits, using native
// C++ control structures — "fit large array manipulation cleanly into the
// target language", no ODBC/JDBC-style data sublanguage.
namespace binding {

OpNodePtr Array(std::string name);
OpNodePtr Subsample(OpNodePtr in, ExprPtr pred);
OpNodePtr Filter(OpNodePtr in, ExprPtr pred);
OpNodePtr Sjoin(OpNodePtr a, OpNodePtr b, ExprPtr dim_equalities);
OpNodePtr Cjoin(OpNodePtr a, OpNodePtr b, ExprPtr pred);
OpNodePtr Aggregate(OpNodePtr in, std::vector<std::string> group_dims,
                    std::string agg, std::string attr);
OpNodePtr Apply(OpNodePtr in, std::string attr, ExprPtr e);
OpNodePtr Project(OpNodePtr in, std::vector<std::string> attrs);
OpNodePtr Reshape(OpNodePtr in, std::vector<std::string> dim_order,
                  std::vector<DimensionDesc> new_dims);
OpNodePtr Regrid(OpNodePtr in, std::vector<int64_t> factors,
                 std::string agg, std::string attr);
OpNodePtr Window(OpNodePtr in, std::vector<int64_t> radii,
                 std::string agg, std::string attr);
OpNodePtr Concat(OpNodePtr a, OpNodePtr b, std::string dim);
OpNodePtr CrossProduct(OpNodePtr a, OpNodePtr b);
OpNodePtr AddDimension(OpNodePtr in, std::string name);
OpNodePtr RemoveDimension(OpNodePtr in, std::string name);

}  // namespace binding

}  // namespace scidb

#endif  // SCIDB_QUERY_SESSION_H_
