#ifndef SCIDB_QUERY_PARSE_TREE_H_
#define SCIDB_QUERY_PARSE_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "array/schema.h"
#include "exec/expression.h"

namespace scidb {

// The parse-tree representation for commands (paper §2.4): every language
// binding — the AQL text parser and the fluent C++ builder in binding.h —
// produces these nodes, and the Session executes them. There is
// deliberately no "data sublanguage" string API anywhere else.

// An operator invocation or a plain array reference. Operator inputs may
// be nested invocations ("Aggregate(Subsample(F, even(X)), {Y}, sum(v))").
struct OpNode;
using OpNodePtr = std::shared_ptr<const OpNode>;

struct AggSpec {
  std::string agg;   // "sum"
  std::string attr;  // attribute name or "*"
};

struct OpNode {
  // "" means: this node is a reference to the array named `array`.
  std::string op;
  std::string array;            // for array references / version reads
  std::string version;          // optional named-version qualifier
  std::vector<OpNodePtr> inputs;       // array-valued arguments
  std::vector<ExprPtr> exprs;          // predicates / computed expressions
  std::vector<std::string> names;      // {Y}, attribute lists, dim names
  std::vector<int64_t> numbers;        // [2, 2] factors, Exists coords
  std::vector<DimensionDesc> dims;     // reshape target dims
  AggSpec agg;                         // Aggregate / Regrid / Window
  std::vector<AggSpec> aggs;           // multi-aggregate (incl. agg)

  bool is_array_ref() const { return op.empty(); }
};

// A complete statement.
struct Statement {
  enum class Kind {
    kDefine,   // define [updatable] T (attrs)(dims)
    kCreate,   // create X as T [b1, b2]
    kQuery,    // select <opcall>   (or bare opcall)
    kStore,    // store <opcall> into X
    kInsert,   // insert X [c...] values (v...)
    kTrace,    // trace back|forward X [c...]   (provenance, §2.12)
    kEnhance,  // enhance X with func(args...)          (§2.1)
    kShape,    // shape X with func(args...)            (§2.1)
    kEnhancedRead,  // select X {v1, v2}  — pseudo-coordinate addressing
    kExplain,  // explain [analyze] <query> — plan / annotated execution
    kSet,      // set <option> = <int>  (session knob, e.g. parallelism)
  };

  Kind kind = Kind::kQuery;

  // kExplain: true = execute and annotate ("explain analyze"), false =
  // print the optimized plan shape only.
  bool explain_analyze = false;

  // kDefine: the array type template (dims may be unbounded).
  ArraySchema define_schema;

  // kCreate:
  std::string create_name;
  std::string create_type;
  std::vector<int64_t> create_highs;  // kUnboundedDim for '*'

  // kQuery / kStore:
  OpNodePtr query;
  std::string store_into;

  // kInsert:
  std::string insert_array;
  Coordinates insert_coords;
  std::vector<Value> insert_values;

  // kTrace:
  bool trace_back = true;  // false = forward
  std::string trace_array;
  Coordinates trace_coords;

  // kEnhance / kShape:
  std::string target_array;
  std::string func_name;            // scale|translate|transpose|mercator /
                                    // circle|triangle|rectangle
  std::vector<Value> func_args;

  // kEnhancedRead:
  std::string read_array;
  std::vector<Value> read_pseudo;   // the {..} operands

  // kSet:
  std::string set_option;           // lowercase option name
  int64_t set_value = 0;
};

}  // namespace scidb

#endif  // SCIDB_QUERY_PARSE_TREE_H_
