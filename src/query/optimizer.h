#ifndef SCIDB_QUERY_OPTIMIZER_H_
#define SCIDB_QUERY_OPTIMIZER_H_

#include "common/result.h"
#include "query/parse_tree.h"

namespace scidb {

// Logical rewrites over operator trees. §2.2.1 observes that structural
// operators "do not necessarily have to read the data values", so the
// planner's job is to move them below content-dependent work where chunk
// pruning can cut the scan set before any values are touched.
//
// Rules applied to fixpoint (top-down, then bottom-up merge):
//   R1  Subsample(Filter(A, p), q)   ->  Filter(Subsample(A, q), p)
//       (structural-below-content swap; q prunes chunks first)
//   R2  Subsample(Subsample(A, p), q) -> Subsample(A, p and q)
//   R3  Filter(Filter(A, p), q)       -> Filter(A, p and q)
//       (Filter NULLs non-matching cells, and NULL fails any predicate,
//        so cascaded filters conjoin)
//   R4  Subsample(Apply(A, x, e), q)  -> Apply(Subsample(A, q), x, e)
//       (Apply is cell-wise; compute e only for surviving cells)
//   R5  Project(Project(A, xs), ys)   -> Project(A, ys)
//       (ys must already be a subset of xs or binding fails later)
//
// The rewriter is purely structural: it never inspects the catalog, so a
// rewritten tree binds/execute exactly like the original.
struct OptimizerStats {
  int subsample_pushdowns = 0;   // R1 + R4
  int subsample_merges = 0;      // R2
  int filter_merges = 0;         // R3
  int project_collapses = 0;     // R5
  int total() const {
    return subsample_pushdowns + subsample_merges + filter_merges +
           project_collapses;
  }
};

Result<OpNodePtr> OptimizeOpTree(const OpNodePtr& root,
                                 OptimizerStats* stats = nullptr);

}  // namespace scidb

#endif  // SCIDB_QUERY_OPTIMIZER_H_
