#include "query/optimizer.h"

#include "common/macros.h"

namespace scidb {

namespace {

std::shared_ptr<OpNode> CloneNode(const OpNode& n) {
  auto copy = std::make_shared<OpNode>();
  *copy = n;
  return copy;
}

bool IsOp(const OpNodePtr& n, const char* op) {
  return n != nullptr && n->op == op;
}

// One top-down rewrite pass; sets *changed when a rule fired.
Result<OpNodePtr> Rewrite(const OpNodePtr& node, OptimizerStats* stats,
                          bool* changed);

Result<OpNodePtr> RewriteChildren(const OpNodePtr& node,
                                  OptimizerStats* stats, bool* changed) {
  bool child_changed = false;
  std::vector<OpNodePtr> new_inputs;
  new_inputs.reserve(node->inputs.size());
  for (const auto& in : node->inputs) {
    ASSIGN_OR_RETURN(OpNodePtr rewritten, Rewrite(in, stats, &child_changed));
    new_inputs.push_back(std::move(rewritten));
  }
  if (!child_changed) return node;
  *changed = true;
  auto copy = CloneNode(*node);
  copy->inputs = std::move(new_inputs);
  return OpNodePtr(copy);
}

Result<OpNodePtr> Rewrite(const OpNodePtr& node, OptimizerStats* stats,
                          bool* changed) {
  if (node == nullptr || node->is_array_ref()) return node;

  // R2: Subsample(Subsample(A, p), q) -> Subsample(A, p and q).
  if (IsOp(node, "subsample") && !node->inputs.empty() &&
      IsOp(node->inputs[0], "subsample")) {
    const OpNode& inner = *node->inputs[0];
    auto merged = std::make_shared<OpNode>();
    merged->op = "subsample";
    merged->inputs = inner.inputs;
    merged->exprs = {And(inner.exprs.at(0), node->exprs.at(0))};
    if (stats) ++stats->subsample_merges;
    *changed = true;
    return Rewrite(OpNodePtr(merged), stats, changed);
  }

  // R3: Filter(Filter(A, p), q) -> Filter(A, p and q).
  if (IsOp(node, "filter") && !node->inputs.empty() &&
      IsOp(node->inputs[0], "filter")) {
    const OpNode& inner = *node->inputs[0];
    auto merged = std::make_shared<OpNode>();
    merged->op = "filter";
    merged->inputs = inner.inputs;
    merged->exprs = {And(inner.exprs.at(0), node->exprs.at(0))};
    if (stats) ++stats->filter_merges;
    *changed = true;
    return Rewrite(OpNodePtr(merged), stats, changed);
  }

  // R1: Subsample(Filter(A, p), q) -> Filter(Subsample(A, q), p).
  if (IsOp(node, "subsample") && !node->inputs.empty() &&
      IsOp(node->inputs[0], "filter")) {
    const OpNode& filter = *node->inputs[0];
    auto pushed = std::make_shared<OpNode>();
    pushed->op = "subsample";
    pushed->inputs = filter.inputs;
    pushed->exprs = node->exprs;
    auto outer = std::make_shared<OpNode>();
    outer->op = "filter";
    outer->inputs = {OpNodePtr(pushed)};
    outer->exprs = filter.exprs;
    if (stats) ++stats->subsample_pushdowns;
    *changed = true;
    return Rewrite(OpNodePtr(outer), stats, changed);
  }

  // R4: Subsample(Apply(A, x, e), q) -> Apply(Subsample(A, q), x, e),
  // legal only when q does not reference the applied attribute.
  if (IsOp(node, "subsample") && !node->inputs.empty() &&
      IsOp(node->inputs[0], "apply")) {
    const OpNode& apply = *node->inputs[0];
    std::vector<std::string> refs;
    node->exprs.at(0)->CollectRefs(&refs);
    bool references_new_attr = false;
    for (const auto& r : refs) {
      if (!apply.names.empty() && r == apply.names[0]) {
        references_new_attr = true;
        break;
      }
    }
    // Subsample predicates are dimension-only, so this should always be
    // safe — the check guards against malformed trees.
    if (!references_new_attr) {
      auto pushed = std::make_shared<OpNode>();
      pushed->op = "subsample";
      pushed->inputs = apply.inputs;
      pushed->exprs = node->exprs;
      auto outer = CloneNode(apply);
      outer->inputs = {OpNodePtr(pushed)};
      if (stats) ++stats->subsample_pushdowns;
      *changed = true;
      return Rewrite(OpNodePtr(outer), stats, changed);
    }
  }

  // R5: Project(Project(A, xs), ys) -> Project(A, ys).
  if (IsOp(node, "project") && !node->inputs.empty() &&
      IsOp(node->inputs[0], "project")) {
    const OpNode& inner = *node->inputs[0];
    bool subset = true;
    for (const auto& y : node->names) {
      bool found = false;
      for (const auto& x : inner.names) {
        if (x == y) {
          found = true;
          break;
        }
      }
      if (!found) {
        subset = false;
        break;
      }
    }
    if (subset) {
      auto collapsed = CloneNode(*node);
      collapsed->inputs = inner.inputs;
      if (stats) ++stats->project_collapses;
      *changed = true;
      return Rewrite(OpNodePtr(collapsed), stats, changed);
    }
  }

  return RewriteChildren(node, stats, changed);
}

}  // namespace

Result<OpNodePtr> OptimizeOpTree(const OpNodePtr& root,
                                 OptimizerStats* stats) {
  if (root == nullptr) return Status::Invalid("null query tree");
  OpNodePtr current = root;
  // To fixpoint; each pass is O(tree), rule chains terminate because
  // every rule strictly reduces node count or pushes a subsample deeper.
  for (int round = 0; round < 64; ++round) {
    bool changed = false;
    ASSIGN_OR_RETURN(current, Rewrite(current, stats, &changed));
    if (!changed) return current;
  }
  return Status::Internal("optimizer did not reach a fixpoint");
}

}  // namespace scidb
