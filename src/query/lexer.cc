#include "query/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <set>

namespace scidb {

namespace {

const std::set<std::string>& Keywords() {
  static const auto* const kKeywords = new std::set<std::string>{
      "define", "create",  "updatable", "as",   "and", "or",
      "not",    "with",    "into",      "store", "insert", "values",
      "uncertain", "select", "enhance", "shape", "true", "false", "null",
      "trace", "back", "forward", "explain", "analyze", "set",
  };
  return *kKeywords;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.text = input.substr(start, i - start);
      std::string lower = ToLower(tok.text);
      if (Keywords().count(lower)) {
        tok.type = TokenType::kKeyword;
        tok.text = lower;
      } else {
        tok.type = TokenType::kIdentifier;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      // A '.' starts a fraction only when followed by a digit ("1.5"), not
      // member access ("A.x" never begins with a digit anyway).
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      tok.text = input.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloat;
        // strtod never throws (std::stod throws out_of_range on literals
        // like "1" + 400 digits, found by fuzz_parser). Overflow to
        // infinity is a lex error; underflow to 0 is accepted as 0.
        errno = 0;
        tok.float_value = std::strtod(tok.text.c_str(), nullptr);
        if (!std::isfinite(tok.float_value)) {
          return Status::Invalid("float literal out of range at offset " +
                                 std::to_string(tok.offset));
        }
      } else {
        tok.type = TokenType::kInteger;
        // Manual accumulation: std::stoll throws out_of_range on
        // "9223372036854775808" and longer digit runs (found by
        // fuzz_parser); library code must return Status instead.
        int64_t v = 0;
        for (char d : tok.text) {
          int digit = d - '0';
          if (v > (INT64_MAX - digit) / 10) {
            return Status::Invalid("integer literal out of range at offset " +
                                   std::to_string(tok.offset));
          }
          v = v * 10 + digit;
        }
        tok.int_value = v;
      }
    } else if (c == '\'') {
      ++i;
      std::string s;
      while (i < n && input[i] != '\'') {
        s.push_back(input[i]);
        ++i;
      }
      if (i >= n) {
        return Status::Invalid("unterminated string literal at offset " +
                               std::to_string(tok.offset));
      }
      ++i;  // closing quote
      tok.type = TokenType::kString;
      tok.text = std::move(s);
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = input.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
          tok.type = TokenType::kSymbol;
          tok.text = two == "<>" ? "!=" : two;
          out.push_back(tok);
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "()[]{},.=<>:*+-/%";
      if (kSingles.find(c) == std::string::npos) {
        return Status::Invalid(std::string("unexpected character '") + c +
                               "' at offset " + std::to_string(i));
      }
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(end);
  return out;
}

}  // namespace scidb
