#include "query/aql_printer.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "exec/expression.h"

namespace scidb {

namespace {

// Doubles print in fixed notation because the lexer has no exponent
// syntax. std::to_chars emits the shortest digit string that reparses to
// the same double; when that string has no '.' (integral values — "42",
// or 1e300's 301 digits, which would re-lex as an out-of-range integer),
// ".0" is appended so the token stays a float. The buffer covers the
// widest fixed renderings (~1080 chars for subnormals).
Result<std::string> FormatDouble(double v) {
  if (!std::isfinite(v)) {
    return Status::Invalid("non-finite float has no AQL literal form");
  }
  char buf[1600];
  auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed);
  if (ec != std::errc()) {
    return Status::Invalid("float literal too wide to print");
  }
  std::string s(buf, end);
  if (s.find('.') == std::string::npos) s += ".0";
  return s;
}

// Literal Values as they appear in `insert ... values (...)`, enhance /
// shape arguments, and `{...}` pseudo-coordinates.
Result<std::string> ValueToAqlLiteral(const Value& v) {
  if (v.is_null()) return std::string("null");
  if (v.is_bool()) return std::string(v.bool_value() ? "true" : "false");
  if (v.is_int64()) return std::to_string(v.int64_value());
  if (v.is_double()) return FormatDouble(v.double_value());
  if (v.is_string()) {
    const std::string& s = v.string_value();
    // The lexer has no escape syntax, so a quote inside the string is
    // unprintable (and unparseable to begin with).
    if (s.find('\'') != std::string::npos) {
      return Status::Invalid("string literal containing ' is not printable");
    }
    return "'" + s + "'";
  }
  return Status::Invalid("value kind has no AQL literal form");
}

// Expressions print fully parenthesized — "(a + (b * c))" — so no
// precedence reasoning is needed and the re-parse is unambiguous. `node`
// supplies input array names for qualified references ("A.x" stores only
// the side index; the name lives on the operator's input).
Result<std::string> ExprToAql(const Expr& e, const OpNode* node) {
  switch (e.kind()) {
    case Expr::Kind::kLiteral: {
      return ValueToAqlLiteral(static_cast<const LiteralExpr&>(e).value());
    }
    case Expr::Kind::kRef: {
      const auto& ref = static_cast<const RefExpr&>(e);
      if (ref.side() < 0) return ref.name();
      size_t side = static_cast<size_t>(ref.side());
      if (node == nullptr || side >= node->inputs.size() ||
          !node->inputs[side]->is_array_ref()) {
        return Status::Invalid("qualified reference to unnamed input");
      }
      return node->inputs[side]->array + "." + ref.name();
    }
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      ASSIGN_OR_RETURN(std::string lhs, ExprToAql(*bin.lhs(), node));
      ASSIGN_OR_RETURN(std::string rhs, ExprToAql(*bin.rhs(), node));
      return "(" + lhs + " " + BinaryOpName(bin.op()) + " " + rhs + ")";
    }
    case Expr::Kind::kNot: {
      const auto& n = static_cast<const NotExpr&>(e);
      ASSIGN_OR_RETURN(std::string inner, ExprToAql(*n.operand(), node));
      return "not (" + inner + ")";
    }
    case Expr::Kind::kCall: {
      const auto& call = static_cast<const CallExpr&>(e);
      std::string out = call.fn() + "(";
      for (size_t i = 0; i < call.args().size(); ++i) {
        if (i > 0) out += ", ";
        ASSIGN_OR_RETURN(std::string a, ExprToAql(*call.args()[i], node));
        out += a;
      }
      return out + ")";
    }
  }
  return Status::Invalid("unknown expression kind");
}

std::string JoinInt64(const std::vector<int64_t>& xs) {
  std::string out;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(xs[i]);
  }
  return out;
}

Result<std::string> OpToAql(const OpNode& node);

Result<std::string> JoinInputs(const OpNode& node) {
  std::string out;
  for (size_t i = 0; i < node.inputs.size(); ++i) {
    if (i > 0) out += ", ";
    ASSIGN_OR_RETURN(std::string in, OpToAql(*node.inputs[i]));
    out += in;
  }
  return out;
}

std::string AggToAql(const AggSpec& agg) {
  return agg.agg + "(" + agg.attr + ")";
}

// Operator argument shapes mirror Parser::ParseOpOrArray case by case;
// anything not special-cased below prints in the user-op shape
// "op(inputs..., exprs...)".
Result<std::string> OpToAql(const OpNode& node) {
  if (node.is_array_ref()) return node.array;
  const std::string& op = node.op;
  std::string out = op + "(";
  if (op == "subsample" || op == "filter" || op == "sjoin" || op == "cjoin") {
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    if (node.exprs.size() != 1) {
      return Status::Invalid(op + " requires exactly one predicate");
    }
    ASSIGN_OR_RETURN(std::string e, ExprToAql(*node.exprs[0], &node));
    out += ins + ", " + e;
  } else if (op == "exists") {
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    out += ins;
    if (!node.numbers.empty()) out += ", " + JoinInt64(node.numbers);
  } else if (op == "reshape") {
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    out += ins + ", [";
    for (size_t i = 0; i < node.names.size(); ++i) {
      if (i > 0) out += ", ";
      out += node.names[i];
    }
    out += "], [";
    for (size_t i = 0; i < node.dims.size(); ++i) {
      if (i > 0) out += ", ";
      const DimensionDesc& d = node.dims[i];
      out += d.name + " = " + std::to_string(d.low) + " : " +
             std::to_string(d.high);
    }
    out += "]";
  } else if (op == "adddimension" || op == "removedimension" ||
             op == "concat") {
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    if (node.names.size() != 1) {
      return Status::Invalid(op + " requires exactly one dimension name");
    }
    out += ins + ", " + node.names[0];
  } else if (op == "crossproduct") {
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    out += ins;
  } else if (op == "aggregate") {
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    out += ins + ", {";
    for (size_t i = 0; i < node.names.size(); ++i) {
      if (i > 0) out += ", ";
      out += node.names[i];
    }
    out += "}";
    for (const AggSpec& a : node.aggs) out += ", " + AggToAql(a);
  } else if (op == "apply") {
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    if (node.names.size() != 1 || node.exprs.size() != 1) {
      return Status::Invalid("apply requires one name and one expression");
    }
    ASSIGN_OR_RETURN(std::string e, ExprToAql(*node.exprs[0], &node));
    out += ins + ", " + node.names[0] + ", " + e;
  } else if (op == "project") {
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    out += ins;
    for (const std::string& n : node.names) out += ", " + n;
  } else if (op == "regrid" || op == "window") {
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    out += ins + ", [" + JoinInt64(node.numbers) + "], " + AggToAql(node.agg);
  } else {
    // User-registered operation: inputs first, then expressions.
    ASSIGN_OR_RETURN(std::string ins, JoinInputs(node));
    out += ins;
    for (const ExprPtr& e : node.exprs) {
      ASSIGN_OR_RETURN(std::string s, ExprToAql(*e, &node));
      if (!out.ends_with("(")) out += ", ";
      out += s;
    }
  }
  return out + ")";
}

Result<std::string> ValuesToAql(const std::vector<Value>& vals) {
  std::string out;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i > 0) out += ", ";
    ASSIGN_OR_RETURN(std::string v, ValueToAqlLiteral(vals[i]));
    out += v;
  }
  return out;
}

Result<std::string> DefineToAql(const Statement& stmt) {
  const ArraySchema& s = stmt.define_schema;
  std::string out = "define ";
  if (s.updatable()) out += "updatable ";
  out += s.name() + " (";
  for (size_t i = 0; i < s.attrs().size(); ++i) {
    if (i > 0) out += ", ";
    const AttributeDesc& a = s.attrs()[i];
    out += a.name + " = ";
    if (a.uncertain) out += "uncertain ";
    out += DataTypeName(a.type);
  }
  out += ") (";
  for (size_t i = 0; i < s.dims().size(); ++i) {
    if (i > 0) out += ", ";
    const DimensionDesc& d = s.dims()[i];
    out += d.name + " = " + std::to_string(d.low) + " : ";
    out += d.high == kUnboundedDim ? "*" : std::to_string(d.high);
  }
  return out + ")";
}

}  // namespace

Result<std::string> OpNodeToAql(const OpNode& node) { return OpToAql(node); }

Result<std::string> StatementToAql(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kDefine:
      return DefineToAql(stmt);
    case Statement::Kind::kCreate: {
      std::string out =
          "create " + stmt.create_name + " as " + stmt.create_type + " [";
      for (size_t i = 0; i < stmt.create_highs.size(); ++i) {
        if (i > 0) out += ", ";
        out += stmt.create_highs[i] == kUnboundedDim
                   ? "*"
                   : std::to_string(stmt.create_highs[i]);
      }
      return out + "]";
    }
    case Statement::Kind::kQuery: {
      if (stmt.query == nullptr) return Status::Invalid("query without tree");
      ASSIGN_OR_RETURN(std::string q, OpToAql(*stmt.query));
      return "select " + q;
    }
    case Statement::Kind::kStore: {
      if (stmt.query == nullptr) return Status::Invalid("store without tree");
      ASSIGN_OR_RETURN(std::string q, OpToAql(*stmt.query));
      return "store " + q + " into " + stmt.store_into;
    }
    case Statement::Kind::kInsert: {
      ASSIGN_OR_RETURN(std::string vals, ValuesToAql(stmt.insert_values));
      return "insert " + stmt.insert_array + " [" +
             JoinInt64(stmt.insert_coords) + "] values (" + vals + ")";
    }
    case Statement::Kind::kTrace: {
      return "trace " + std::string(stmt.trace_back ? "back " : "forward ") +
             stmt.trace_array + " [" + JoinInt64(stmt.trace_coords) + "]";
    }
    case Statement::Kind::kEnhance:
    case Statement::Kind::kShape: {
      std::string out = stmt.kind == Statement::Kind::kShape ? "shape "
                                                             : "enhance ";
      out += stmt.target_array + " with " + stmt.func_name;
      // A no-argument builder prints bare ("with transpose"); the parser
      // accepts both the bare and the "()" spelling, and bare is the
      // fixed point.
      if (!stmt.func_args.empty()) {
        ASSIGN_OR_RETURN(std::string args, ValuesToAql(stmt.func_args));
        out += "(" + args + ")";
      }
      return out;
    }
    case Statement::Kind::kEnhancedRead: {
      ASSIGN_OR_RETURN(std::string vals, ValuesToAql(stmt.read_pseudo));
      return "select " + stmt.read_array + " {" + vals + "}";
    }
    case Statement::Kind::kExplain: {
      if (stmt.query == nullptr) {
        return Status::Invalid("explain without tree");
      }
      ASSIGN_OR_RETURN(std::string q, OpToAql(*stmt.query));
      return "explain " + std::string(stmt.explain_analyze ? "analyze " : "") +
             q;
    }
    case Statement::Kind::kSet:
      return "set " + stmt.set_option + " = " + std::to_string(stmt.set_value);
  }
  return Status::Invalid("unknown statement kind");
}

}  // namespace scidb
