#ifndef SCIDB_QUERY_AQL_PRINTER_H_
#define SCIDB_QUERY_AQL_PRINTER_H_

#include <string>

#include "common/result.h"
#include "query/parse_tree.h"

namespace scidb {

// Renders a parse tree back to AQL text that re-parses to an equivalent
// tree. The contract fuzz_parser enforces is a STRING-level fixed point:
// for s2 = StatementToAql(Parse(s)), Parse(s2) must succeed and
// StatementToAql(Parse(s2)) == s2. One lossy normalization step is
// allowed on the first hop (case folding, integral floats printing as
// integers, redundant parens dropping), never on the second.
//
// Fails (Status::Invalid) only on trees the grammar cannot express —
// e.g. literal Values of uncertain/nested-array type or non-finite
// floats, which the C++ binding can build but no AQL text produces.
[[nodiscard]] Result<std::string> StatementToAql(const Statement& stmt);

// The same rendering for a single operator tree ("filter(A, x > 2)").
[[nodiscard]] Result<std::string> OpNodeToAql(const OpNode& node);

}  // namespace scidb

#endif  // SCIDB_QUERY_AQL_PRINTER_H_
