#ifndef SCIDB_QUERY_PLAN_PRINTER_H_
#define SCIDB_QUERY_PLAN_PRINTER_H_

#include <string>

#include "query/parse_tree.h"

namespace scidb {

// One-line label for an operator-tree node: the operator name plus a
// bracketed argument summary ("filter [v > 10]", "scan A"). Both the
// plain `explain` plan and the `explain analyze` trace use this label,
// which is what makes their tree shapes directly comparable.
std::string PlanLabel(const OpNode& node);

// Indented rendering of a whole operator tree, one node per line,
// children indented two spaces under their parent.
std::string FormatPlan(const OpNode& root);

}  // namespace scidb

#endif  // SCIDB_QUERY_PLAN_PRINTER_H_
