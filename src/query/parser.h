#ifndef SCIDB_QUERY_PARSER_H_
#define SCIDB_QUERY_PARSER_H_

#include <set>
#include <string>

#include "common/result.h"
#include "query/parse_tree.h"

namespace scidb {

// Parses one AQL statement into the parse-tree representation.
//
//   define Remote (s1 = float, s2 = float, s3 = float) (I, J)
//   define updatable Remote_2 (s1 = float) (I, J, history)
//   create My_remote as Remote [1024, 1024]
//   create My_remote_2 as Remote [*, *]
//   select Subsample(F, even(X))
//   select Aggregate(H, {Y}, sum(*))
//   select Sjoin(A, B, A.x = B.x)
//   select Cjoin(A, B, A.val = B.val)
//   select Filter(A, v > 10 and even(X))
//   select Apply(A, v2, v * v)
//   select Project(A, s1, s3)
//   select Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])
//   select Regrid(A, [2, 2], sum(v))
//   select Exists(A, 7, 7)
//   store Filter(A, v > 10) into Hot
//   insert My_remote [7, 8] values (1.5, 2.5, 3.5)
//
// Operator names are matched case-insensitively.
//
// `user_ops` (optional) adds user-registered array operations (paper
// §2.3: "the fundamental array operations in SciDB are user-extendable").
// A user operator call parses as  Name(input {, input} {, expr ...}):
// leading arguments that are bare identifiers or operator calls become
// array inputs; the remaining arguments parse as expressions.
Result<Statement> ParseStatement(
    const std::string& input,
    const std::set<std::string>* user_ops = nullptr);

}  // namespace scidb

#endif  // SCIDB_QUERY_PARSER_H_
