#include "query/parser.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "query/lexer.h"

namespace scidb {

namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

const std::set<std::string>& OperatorNames() {
  static const auto* const kOps = new std::set<std::string>{
      "subsample", "exists", "reshape", "sjoin", "adddimension",
      "removedimension", "concat", "crossproduct", "filter", "aggregate",
      "cjoin", "apply", "project", "regrid", "window",
  };
  return *kOps;
}

class Parser {
 public:
  Parser(std::vector<Token> toks, const std::set<std::string>* user_ops)
      : toks_(std::move(toks)), user_ops_(user_ops) {}

  Result<Statement> Parse() {
    Statement stmt;
    if (Peek().IsKeyword("define")) {
      RETURN_NOT_OK(ParseDefine(&stmt));
    } else if (Peek().IsKeyword("create")) {
      RETURN_NOT_OK(ParseCreate(&stmt));
    } else if (Peek().IsKeyword("insert")) {
      RETURN_NOT_OK(ParseInsert(&stmt));
    } else if (Peek().IsKeyword("trace")) {
      RETURN_NOT_OK(ParseTrace(&stmt));
    } else if (Peek().IsKeyword("enhance") || Peek().IsKeyword("shape")) {
      RETURN_NOT_OK(ParseEnhanceOrShape(&stmt));
    } else if (Peek().IsKeyword("set")) {
      Advance();
      stmt.kind = Statement::Kind::kSet;
      ASSIGN_OR_RETURN(stmt.set_option, ExpectIdentifier());
      RETURN_NOT_OK(ExpectSymbol("="));
      ASSIGN_OR_RETURN(stmt.set_value, ExpectInteger());
    } else if (Peek().IsKeyword("explain")) {
      Advance();
      stmt.kind = Statement::Kind::kExplain;
      stmt.explain_analyze = AcceptKeyword("analyze");
      if (Peek().IsKeyword("select")) Advance();
      ASSIGN_OR_RETURN(stmt.query, ParseOpOrArray());
    } else if (Peek().IsKeyword("store")) {
      Advance();
      stmt.kind = Statement::Kind::kStore;
      ASSIGN_OR_RETURN(stmt.query, ParseOpOrArray());
      RETURN_NOT_OK(ExpectKeyword("into"));
      ASSIGN_OR_RETURN(stmt.store_into, ExpectIdentifier());
    } else {
      if (Peek().IsKeyword("select")) Advance();
      stmt.kind = Statement::Kind::kQuery;
      ASSIGN_OR_RETURN(stmt.query, ParseOpOrArray());
      // Enhanced addressing: "select A {16.3, 48.2}" (paper §2.1's
      // {..} coordinate system).
      if (stmt.query->is_array_ref() && Peek().IsSymbol("{")) {
        stmt.kind = Statement::Kind::kEnhancedRead;
        stmt.read_array = stmt.query->array;
        Advance();  // {
        do {
          ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
          stmt.read_pseudo.push_back(std::move(v));
        } while (AcceptSymbol(","));
        RETURN_NOT_OK(ExpectSymbol("}"));
      }
    }
    if (!Peek().Is(TokenType::kEnd)) {
      return Err("trailing input after statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t k = 0) const {
    size_t i = std::min(pos_ + k, toks_.size() - 1);
    return toks_[i];
  }
  const Token& Advance() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool AcceptSymbol(const std::string& s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const std::string& s) {
    if (Peek().IsKeyword(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::Invalid(msg + " (near offset " +
                           std::to_string(Peek().offset) + ", got '" +
                           Peek().text + "')");
  }
  Status ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) return Err("expected '" + s + "'");
    return Status::OK();
  }
  Status ExpectKeyword(const std::string& s) {
    if (!AcceptKeyword(s)) return Err("expected '" + s + "'");
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      Status s = Err("expected identifier");
      return s;
    }
    return Advance().text;
  }
  Result<int64_t> ExpectInteger() {
    bool neg = Peek().IsSymbol("-");
    if (neg) Advance();
    if (!Peek().Is(TokenType::kInteger)) {
      Status s = Err("expected integer");
      return s;
    }
    int64_t v = Advance().int_value;
    return neg ? -v : v;
  }

  // ---- define ----
  Status ParseDefine(Statement* stmt) {
    Advance();  // define
    stmt->kind = Statement::Kind::kDefine;
    bool updatable = AcceptKeyword("updatable");
    ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());

    RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<AttributeDesc> attrs;
    do {
      AttributeDesc a;
      ASSIGN_OR_RETURN(a.name, ExpectIdentifier());
      RETURN_NOT_OK(ExpectSymbol("="));
      a.uncertain = AcceptKeyword("uncertain");
      ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      ASSIGN_OR_RETURN(a.type, DataTypeFromName(ToLower(type_name)));
      attrs.push_back(std::move(a));
    } while (AcceptSymbol(","));
    RETURN_NOT_OK(ExpectSymbol(")"));

    RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<DimensionDesc> dims;
    do {
      DimensionDesc d;
      ASSIGN_OR_RETURN(d.name, ExpectIdentifier());
      d.low = 1;
      d.high = kUnboundedDim;
      d.chunk_interval = 64;
      if (AcceptSymbol("=")) {
        ASSIGN_OR_RETURN(d.low, ExpectInteger());
        RETURN_NOT_OK(ExpectSymbol(":"));
        if (AcceptSymbol("*")) {
          d.high = kUnboundedDim;
        } else {
          ASSIGN_OR_RETURN(d.high, ExpectInteger());
        }
      }
      dims.push_back(std::move(d));
    } while (AcceptSymbol(","));
    RETURN_NOT_OK(ExpectSymbol(")"));

    // Paper §2.5: the history dimension of an updatable array is implicit
    // (layered deltas); an explicitly listed trailing "history" dim is
    // absorbed.
    if (updatable && !dims.empty() && ToLower(dims.back().name) == "history") {
      dims.pop_back();
    }
    stmt->define_schema =
        ArraySchema(name, std::move(dims), std::move(attrs), updatable);
    return stmt->define_schema.Validate();
  }

  // ---- create ----
  Status ParseCreate(Statement* stmt) {
    Advance();  // create
    stmt->kind = Statement::Kind::kCreate;
    ASSIGN_OR_RETURN(stmt->create_name, ExpectIdentifier());
    RETURN_NOT_OK(ExpectKeyword("as"));
    ASSIGN_OR_RETURN(stmt->create_type, ExpectIdentifier());
    RETURN_NOT_OK(ExpectSymbol("["));
    do {
      if (AcceptSymbol("*")) {
        stmt->create_highs.push_back(kUnboundedDim);
      } else {
        ASSIGN_OR_RETURN(int64_t hi, ExpectInteger());
        stmt->create_highs.push_back(hi);
      }
    } while (AcceptSymbol(","));
    return ExpectSymbol("]");
  }

  // ---- insert ----
  Status ParseInsert(Statement* stmt) {
    Advance();  // insert
    stmt->kind = Statement::Kind::kInsert;
    ASSIGN_OR_RETURN(stmt->insert_array, ExpectIdentifier());
    RETURN_NOT_OK(ExpectSymbol("["));
    do {
      ASSIGN_OR_RETURN(int64_t c, ExpectInteger());
      stmt->insert_coords.push_back(c);
    } while (AcceptSymbol(","));
    RETURN_NOT_OK(ExpectSymbol("]"));
    RETURN_NOT_OK(ExpectKeyword("values"));
    RETURN_NOT_OK(ExpectSymbol("("));
    do {
      ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      stmt->insert_values.push_back(std::move(v));
    } while (AcceptSymbol(","));
    return ExpectSymbol(")");
  }

  // ---- enhance / shape (paper §2.1) ----
  // "Enhance My_remote with Scale10" generalizes here to
  //   enhance <array> with <builder>(<literal args>)
  //   shape   <array> with <builder>(<literal args>)
  Status ParseEnhanceOrShape(Statement* stmt) {
    bool is_shape = Peek().IsKeyword("shape");
    Advance();
    stmt->kind = is_shape ? Statement::Kind::kShape
                          : Statement::Kind::kEnhance;
    ASSIGN_OR_RETURN(stmt->target_array, ExpectIdentifier());
    RETURN_NOT_OK(ExpectKeyword("with"));
    ASSIGN_OR_RETURN(stmt->func_name, ExpectIdentifier());
    stmt->func_name = ToLower(stmt->func_name);
    if (AcceptSymbol("(")) {
      if (!Peek().IsSymbol(")")) {
        do {
          ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
          stmt->func_args.push_back(std::move(v));
        } while (AcceptSymbol(","));
      }
      RETURN_NOT_OK(ExpectSymbol(")"));
    }
    return Status::OK();
  }

  // ---- trace (provenance query language, §2.12) ----
  Status ParseTrace(Statement* stmt) {
    Advance();  // trace
    stmt->kind = Statement::Kind::kTrace;
    if (AcceptKeyword("back")) {
      stmt->trace_back = true;
    } else if (AcceptKeyword("forward")) {
      stmt->trace_back = false;
    } else {
      return Err("expected 'back' or 'forward' after 'trace'");
    }
    ASSIGN_OR_RETURN(stmt->trace_array, ExpectIdentifier());
    RETURN_NOT_OK(ExpectSymbol("["));
    do {
      ASSIGN_OR_RETURN(int64_t c, ExpectInteger());
      stmt->trace_coords.push_back(c);
    } while (AcceptSymbol(","));
    return ExpectSymbol("]");
  }

  Result<Value> ParseLiteralValue() {
    bool neg = Peek().IsSymbol("-");
    if (neg) Advance();
    const Token& t = Peek();
    if (t.Is(TokenType::kInteger)) {
      Advance();
      return Value(neg ? -t.int_value : t.int_value);
    }
    if (t.Is(TokenType::kFloat)) {
      Advance();
      return Value(neg ? -t.float_value : t.float_value);
    }
    if (neg) {
      Status s = Err("expected number after '-'");
      return s;
    }
    if (t.Is(TokenType::kString)) {
      Advance();
      return Value(t.text);
    }
    if (t.IsKeyword("true")) {
      Advance();
      return Value(true);
    }
    if (t.IsKeyword("false")) {
      Advance();
      return Value(false);
    }
    if (t.IsKeyword("null")) {
      Advance();
      return Value::Null();
    }
    Status s = Err("expected literal value");
    return s;
  }

  bool IsUserOp(const std::string& lower) const {
    return user_ops_ != nullptr && user_ops_->count(lower) > 0;
  }

  // Generic argument parsing for user-registered array operations:
  // leading bare-identifier / operator-call arguments are array inputs,
  // the rest are expressions.
  Status ParseUserOpArgs(OpNode* node) {
    bool exprs_started = false;
    if (Peek().IsSymbol(")")) return Status::OK();
    do {
      bool looks_like_input = false;
      if (!exprs_started && Peek().Is(TokenType::kIdentifier)) {
        const Token& next = Peek(1);
        if (next.IsSymbol(",") || next.IsSymbol(")")) {
          looks_like_input = true;  // bare identifier -> array ref
        } else if (next.IsSymbol("(")) {
          std::string lower = ToLower(Peek().text);
          looks_like_input =
              OperatorNames().count(lower) > 0 || IsUserOp(lower);
        }
      }
      if (looks_like_input) {
        ASSIGN_OR_RETURN(OpNodePtr in, ParseOpOrArray());
        node->inputs.push_back(std::move(in));
      } else {
        exprs_started = true;
        RETURN_NOT_OK(BindInputNames(*node));
        ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        node->exprs.push_back(std::move(e));
      }
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  // ---- operator calls / array refs ----
  Result<OpNodePtr> ParseOpOrArray() {
    DepthGuard depth(&depth_);
    if (depth_ > kMaxDepth) return Err("statement nesting too deep");
    ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    std::string lower = ToLower(name);
    bool known = OperatorNames().count(lower) > 0 || IsUserOp(lower);
    if (!Peek().IsSymbol("(") || !known) {
      auto node = std::make_shared<OpNode>();
      node->array = name;
      return OpNodePtr(node);
    }
    if (IsUserOp(lower) && !OperatorNames().count(lower)) {
      RETURN_NOT_OK(ExpectSymbol("("));
      auto node = std::make_shared<OpNode>();
      node->op = lower;
      RETURN_NOT_OK(ParseUserOpArgs(node.get()));
      RETURN_NOT_OK(ExpectSymbol(")"));
      return OpNodePtr(node);
    }
    RETURN_NOT_OK(ExpectSymbol("("));
    auto node = std::make_shared<OpNode>();
    node->op = lower;
    if (lower == "subsample" || lower == "filter") {
      ASSIGN_OR_RETURN(OpNodePtr in, ParseOpOrArray());
      node->inputs.push_back(std::move(in));
      RETURN_NOT_OK(ExpectSymbol(","));
      RETURN_NOT_OK(BindInputNames(*node));
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      node->exprs.push_back(std::move(e));
    } else if (lower == "exists") {
      ASSIGN_OR_RETURN(OpNodePtr in, ParseOpOrArray());
      node->inputs.push_back(std::move(in));
      while (AcceptSymbol(",")) {
        ASSIGN_OR_RETURN(int64_t c, ExpectInteger());
        node->numbers.push_back(c);
      }
    } else if (lower == "reshape") {
      ASSIGN_OR_RETURN(OpNodePtr in, ParseOpOrArray());
      node->inputs.push_back(std::move(in));
      RETURN_NOT_OK(ExpectSymbol(","));
      RETURN_NOT_OK(ParseNameList(&node->names));
      RETURN_NOT_OK(ExpectSymbol(","));
      RETURN_NOT_OK(ParseDimSpecList(&node->dims));
    } else if (lower == "sjoin" || lower == "cjoin") {
      ASSIGN_OR_RETURN(OpNodePtr a, ParseOpOrArray());
      node->inputs.push_back(std::move(a));
      RETURN_NOT_OK(ExpectSymbol(","));
      ASSIGN_OR_RETURN(OpNodePtr b, ParseOpOrArray());
      node->inputs.push_back(std::move(b));
      RETURN_NOT_OK(ExpectSymbol(","));
      RETURN_NOT_OK(BindInputNames(*node));
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      node->exprs.push_back(std::move(e));
    } else if (lower == "adddimension" || lower == "removedimension") {
      ASSIGN_OR_RETURN(OpNodePtr in, ParseOpOrArray());
      node->inputs.push_back(std::move(in));
      RETURN_NOT_OK(ExpectSymbol(","));
      ASSIGN_OR_RETURN(std::string dim, ExpectIdentifier());
      node->names.push_back(std::move(dim));
    } else if (lower == "concat") {
      ASSIGN_OR_RETURN(OpNodePtr a, ParseOpOrArray());
      node->inputs.push_back(std::move(a));
      RETURN_NOT_OK(ExpectSymbol(","));
      ASSIGN_OR_RETURN(OpNodePtr b, ParseOpOrArray());
      node->inputs.push_back(std::move(b));
      RETURN_NOT_OK(ExpectSymbol(","));
      ASSIGN_OR_RETURN(std::string dim, ExpectIdentifier());
      node->names.push_back(std::move(dim));
    } else if (lower == "crossproduct") {
      ASSIGN_OR_RETURN(OpNodePtr a, ParseOpOrArray());
      node->inputs.push_back(std::move(a));
      RETURN_NOT_OK(ExpectSymbol(","));
      ASSIGN_OR_RETURN(OpNodePtr b, ParseOpOrArray());
      node->inputs.push_back(std::move(b));
    } else if (lower == "aggregate") {
      ASSIGN_OR_RETURN(OpNodePtr in, ParseOpOrArray());
      node->inputs.push_back(std::move(in));
      RETURN_NOT_OK(ExpectSymbol(","));
      RETURN_NOT_OK(ExpectSymbol("{"));
      if (!Peek().IsSymbol("}")) {
        do {
          ASSIGN_OR_RETURN(std::string g, ExpectIdentifier());
          node->names.push_back(std::move(g));
        } while (AcceptSymbol(","));
      }
      RETURN_NOT_OK(ExpectSymbol("}"));
      RETURN_NOT_OK(ExpectSymbol(","));
      RETURN_NOT_OK(ParseAggCall(&node->agg));
      node->aggs.push_back(node->agg);
      // Multi-aggregate: Aggregate(A, {Y}, sum(a), avg(b), ...) computes
      // every listed aggregate in one pass.
      while (AcceptSymbol(",")) {
        AggSpec extra;
        RETURN_NOT_OK(ParseAggCall(&extra));
        node->aggs.push_back(std::move(extra));
      }
    } else if (lower == "apply") {
      ASSIGN_OR_RETURN(OpNodePtr in, ParseOpOrArray());
      node->inputs.push_back(std::move(in));
      RETURN_NOT_OK(ExpectSymbol(","));
      ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier());
      node->names.push_back(std::move(attr));
      RETURN_NOT_OK(ExpectSymbol(","));
      RETURN_NOT_OK(BindInputNames(*node));
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      node->exprs.push_back(std::move(e));
    } else if (lower == "project") {
      ASSIGN_OR_RETURN(OpNodePtr in, ParseOpOrArray());
      node->inputs.push_back(std::move(in));
      while (AcceptSymbol(",")) {
        ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier());
        node->names.push_back(std::move(attr));
      }
    } else if (lower == "regrid" || lower == "window") {
      ASSIGN_OR_RETURN(OpNodePtr in, ParseOpOrArray());
      node->inputs.push_back(std::move(in));
      RETURN_NOT_OK(ExpectSymbol(","));
      RETURN_NOT_OK(ExpectSymbol("["));
      do {
        ASSIGN_OR_RETURN(int64_t f, ExpectInteger());
        node->numbers.push_back(f);
      } while (AcceptSymbol(","));
      RETURN_NOT_OK(ExpectSymbol("]"));
      RETURN_NOT_OK(ExpectSymbol(","));
      RETURN_NOT_OK(ParseAggCall(&node->agg));
    }
    RETURN_NOT_OK(ExpectSymbol(")"));
    return OpNodePtr(node);
  }

  // Remembers the (plain) input array names so qualified references
  // ("A.x") inside the following expression resolve to sides.
  Status BindInputNames(const OpNode& node) {
    input_names_.clear();
    for (const auto& in : node.inputs) {
      input_names_.push_back(in->is_array_ref() ? in->array : "");
    }
    return Status::OK();
  }

  Status ParseNameList(std::vector<std::string>* out) {
    RETURN_NOT_OK(ExpectSymbol("["));
    do {
      ASSIGN_OR_RETURN(std::string n, ExpectIdentifier());
      out->push_back(std::move(n));
    } while (AcceptSymbol(","));
    return ExpectSymbol("]");
  }

  Status ParseDimSpecList(std::vector<DimensionDesc>* out) {
    RETURN_NOT_OK(ExpectSymbol("["));
    do {
      DimensionDesc d;
      ASSIGN_OR_RETURN(d.name, ExpectIdentifier());
      RETURN_NOT_OK(ExpectSymbol("="));
      ASSIGN_OR_RETURN(d.low, ExpectInteger());
      RETURN_NOT_OK(ExpectSymbol(":"));
      ASSIGN_OR_RETURN(d.high, ExpectInteger());
      d.chunk_interval = std::max<int64_t>(1, d.high - d.low + 1);
      out->push_back(std::move(d));
    } while (AcceptSymbol(","));
    return ExpectSymbol("]");
  }

  Status ParseAggCall(AggSpec* agg) {
    ASSIGN_OR_RETURN(agg->agg, ExpectIdentifier());
    agg->agg = ToLower(agg->agg);
    RETURN_NOT_OK(ExpectSymbol("("));
    if (AcceptSymbol("*")) {
      agg->attr = "*";
    } else {
      ASSIGN_OR_RETURN(agg->attr, ExpectIdentifier());
    }
    return ExpectSymbol(")");
  }

  // ---- expressions (precedence climbing) ----
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("or")) {
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("and")) {
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      DepthGuard depth(&depth_);
      if (depth_ > kMaxDepth) return Err("expression nesting too deep");
      ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Not(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    struct CmpOp {
      const char* sym;
      BinaryOp op;
    };
    static constexpr CmpOp kOps[] = {
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"!=", BinaryOp::kNe},
        {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& c : kOps) {
      if (Peek().IsSymbol(c.sym)) {
        Advance();
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Bin(c.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (AcceptSymbol("+")) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Add(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("-")) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Sub(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (AcceptSymbol("*")) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Mul(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("/")) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Div(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("%")) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Mod(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      DepthGuard depth(&depth_);
      if (depth_ > kMaxDepth) return Err("expression nesting too deep");
      ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Sub(Lit(int64_t{0}), std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    DepthGuard depth(&depth_);
    if (depth_ > kMaxDepth) return Err("expression nesting too deep");
    const Token& t = Peek();
    if (t.Is(TokenType::kInteger)) {
      Advance();
      return Lit(t.int_value);
    }
    if (t.Is(TokenType::kFloat)) {
      Advance();
      return Lit(t.float_value);
    }
    if (t.Is(TokenType::kString)) {
      Advance();
      return Lit(Value(t.text));
    }
    if (t.IsKeyword("true")) {
      Advance();
      return Lit(Value(true));
    }
    if (t.IsKeyword("false")) {
      Advance();
      return Lit(Value(false));
    }
    if (t.IsKeyword("null")) {
      Advance();
      return Lit(Value::Null());
    }
    if (AcceptSymbol("(")) {
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    if (t.Is(TokenType::kIdentifier)) {
      std::string name = Advance().text;
      if (AcceptSymbol(".")) {
        // Qualified reference "A.x": resolve the qualifier to a side.
        ASSIGN_OR_RETURN(std::string member, ExpectIdentifier());
        int side = -1;
        for (size_t i = 0; i < input_names_.size(); ++i) {
          if (input_names_[i] == name) {
            side = static_cast<int>(i);
            break;
          }
        }
        if (side < 0) {
          Status s = Status::Invalid(
              "qualifier '" + name +
              "' does not name an input array of this operator");
          return s;
        }
        return Ref(std::move(member), side);
      }
      if (AcceptSymbol("(")) {
        std::vector<ExprPtr> args;
        if (!Peek().IsSymbol(")")) {
          do {
            ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
          } while (AcceptSymbol(","));
        }
        RETURN_NOT_OK(ExpectSymbol(")"));
        return Call(std::move(name), std::move(args));
      }
      return Ref(std::move(name));
    }
    Status s = Err("expected expression");
    return s;
  }

  // The grammar recurses through nested operator calls ("filter(filter(…")
  // and expressions ("((((…", "not not …"); without a ceiling a short
  // hostile input overflows the stack (found by fuzz_parser). 200 frames
  // is far beyond any legitimate statement yet safely inside the default
  // 8 MB stack even with ASan's larger frames.
  static constexpr int kMaxDepth = 200;
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    int* depth_;
  };

  std::vector<Token> toks_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::vector<std::string> input_names_;
  const std::set<std::string>* user_ops_;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& input,
                                 const std::set<std::string>* user_ops) {
  ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(input));
  Parser parser(std::move(toks), user_ops);
  return parser.Parse();
}

}  // namespace scidb
