#ifndef SCIDB_QUERY_LEXER_H_
#define SCIDB_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace scidb {

enum class TokenType {
  kIdentifier,  // My_remote, Subsample, even
  kInteger,     // 42
  kFloat,       // 16.3
  kString,      // 'text'
  kSymbol,      // ( ) [ ] { } , . = < > <= >= != : * + - / %
  kKeyword,     // define, create, updatable, as, and, or, not, with, into
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;  // for error messages

  bool Is(TokenType t) const { return type == t; }
  bool IsSymbol(const std::string& s) const {
    return type == TokenType::kSymbol && text == s;
  }
  bool IsKeyword(const std::string& s) const {
    return type == TokenType::kKeyword && text == s;
  }
};

// Tokenizes one AQL statement. Keywords are case-insensitive and
// normalized to lower case; identifiers keep their case.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace scidb

#endif  // SCIDB_QUERY_LEXER_H_
