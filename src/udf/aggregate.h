#ifndef SCIDB_UDF_AGGREGATE_H_
#define SCIDB_UDF_AGGREGATE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace scidb {

// Postgres-style user-defined aggregate (paper §2.1: "We will also support
// user-defined aggregates, again POSTGRES-style"). An aggregate is a state
// machine: fresh state per group, Accumulate per cell, Merge for parallel
// partial aggregation across grid nodes, Finalize to a Value.
class AggregateState {
 public:
  virtual ~AggregateState() = default;
  virtual Status Accumulate(const Value& v) = 0;
  virtual Status Merge(const AggregateState& other) = 0;
  virtual Value Finalize() const = 0;
};

class AggregateFunction {
 public:
  using StateFactory = std::function<std::unique_ptr<AggregateState>()>;

  AggregateFunction() = default;
  AggregateFunction(std::string name, StateFactory factory)
      : name_(std::move(name)), factory_(std::move(factory)) {}

  const std::string& name() const { return name_; }
  std::unique_ptr<AggregateState> NewState() const { return factory_(); }

 private:
  std::string name_;
  StateFactory factory_;
};

// Catalog of aggregates; pre-registers sum, count, avg, min, max, stddev
// and their uncertain-aware variants (usum/uavg propagate error bars in
// quadrature, paper §2.13).
class AggregateRegistry {
 public:
  AggregateRegistry();

  Status Register(AggregateFunction fn);
  Result<const AggregateFunction*> Find(const std::string& name) const;
  [[nodiscard]] bool Contains(const std::string& name) const;

 private:
  void RegisterBuiltins();
  std::map<std::string, AggregateFunction> fns_;
};

}  // namespace scidb

#endif  // SCIDB_UDF_AGGREGATE_H_
