#include "udf/shape_function.h"

#include <cmath>

#include "common/macros.h"

namespace scidb {

namespace {
Status BadDim(const std::string& name, size_t dim, size_t ndims) {
  return Status::Invalid("shape '" + name + "': dimension " +
                         std::to_string(dim) + " out of range (ndims=" +
                         std::to_string(ndims) + ")");
}
}  // namespace

bool ShapeFunction::Contains(const Coordinates& c) const {
  if (c.size() != ndims()) return false;
  for (size_t d = 0; d < c.size(); ++d) {
    auto b = SliceBounds(c, d);
    if (!b.ok() || b.value().empty()) return false;
    if (c[d] < b.value().low || c[d] > b.value().high) return false;
  }
  return true;
}

// ------------------------------------------------------------ Rectangle

RectangleShape::RectangleShape(Box box) : box_(std::move(box)) {}

Result<DimBounds> RectangleShape::SliceBounds(const Coordinates& partial,
                                              size_t free_dim) const {
  if (free_dim >= box_.ndims()) return BadDim(name_, free_dim, box_.ndims());
  // Empty slice when any bound coordinate is outside the box.
  for (size_t d = 0; d < box_.ndims(); ++d) {
    if (d == free_dim) continue;
    if (partial[d] < box_.low[d] || partial[d] > box_.high[d]) {
      return DimBounds{1, 0};
    }
  }
  return DimBounds{box_.low[free_dim], box_.high[free_dim]};
}

Result<DimBounds> RectangleShape::GlobalBounds(size_t dim) const {
  if (dim >= box_.ndims()) return BadDim(name_, dim, box_.ndims());
  return DimBounds{box_.low[dim], box_.high[dim]};
}

// --------------------------------------------------------------- Circle

CircleShape::CircleShape(int64_t center_i, int64_t center_j, int64_t radius)
    : ci_(center_i), cj_(center_j), r_(radius) {
  SCIDB_CHECK(radius >= 0);
}

Result<DimBounds> CircleShape::SliceBounds(const Coordinates& partial,
                                           size_t free_dim) const {
  if (free_dim >= 2) return BadDim(name_, free_dim, 2);
  int64_t bound_center = free_dim == 0 ? cj_ : ci_;
  int64_t free_center = free_dim == 0 ? ci_ : cj_;
  int64_t fixed = partial[1 - free_dim];
  int64_t d = fixed - bound_center;
  int64_t rem = r_ * r_ - d * d;
  if (rem < 0) return DimBounds{1, 0};  // slice misses the disc
  int64_t half = static_cast<int64_t>(std::sqrt(static_cast<double>(rem)));
  // sqrt of int can be off by one; correct exactly.
  while ((half + 1) * (half + 1) <= rem) ++half;
  while (half * half > rem) --half;
  return DimBounds{free_center - half, free_center + half};
}

Result<DimBounds> CircleShape::GlobalBounds(size_t dim) const {
  if (dim >= 2) return BadDim(name_, dim, 2);
  int64_t c = dim == 0 ? ci_ : cj_;
  return DimBounds{c - r_, c + r_};
}

bool CircleShape::Contains(const Coordinates& c) const {
  if (c.size() != 2) return false;
  int64_t di = c[0] - ci_;
  int64_t dj = c[1] - cj_;
  return di * di + dj * dj <= r_ * r_;
}

// ------------------------------------------------------------- Triangle

TriangleShape::TriangleShape(int64_t n) : n_(n) { SCIDB_CHECK(n >= 1); }

Result<DimBounds> TriangleShape::SliceBounds(const Coordinates& partial,
                                             size_t free_dim) const {
  if (free_dim >= 2) return BadDim(name_, free_dim, 2);
  if (free_dim == 1) {
    int64_t i = partial[0];
    if (i < 1 || i > n_) return DimBounds{1, 0};
    return DimBounds{1, i};  // j ranges 1..i
  }
  int64_t j = partial[1];
  if (j < 1 || j > n_) return DimBounds{1, 0};
  return DimBounds{j, n_};  // i ranges j..n
}

Result<DimBounds> TriangleShape::GlobalBounds(size_t dim) const {
  if (dim >= 2) return BadDim(name_, dim, 2);
  return DimBounds{1, n_};
}

// ------------------------------------------------------------ Separable

SeparableShape::SeparableShape(std::vector<DimBounds> per_dim)
    : per_dim_(std::move(per_dim)) {}

Result<DimBounds> SeparableShape::SliceBounds(const Coordinates& partial,
                                              size_t free_dim) const {
  (void)partial;  // independent of the other dimensions, by definition
  if (free_dim >= per_dim_.size()) {
    return BadDim(name_, free_dim, per_dim_.size());
  }
  return per_dim_[free_dim];
}

Result<DimBounds> SeparableShape::GlobalBounds(size_t dim) const {
  if (dim >= per_dim_.size()) return BadDim(name_, dim, per_dim_.size());
  return per_dim_[dim];
}

// ------------------------------------------------------------- Callable

CallableShape::CallableShape(std::string name, size_t ndims, BoundsFn fn,
                             std::vector<DimBounds> global)
    : name_(std::move(name)), ndims_(ndims), fn_(std::move(fn)),
      global_(std::move(global)) {
  SCIDB_CHECK(global_.size() == ndims_);
}

Result<DimBounds> CallableShape::SliceBounds(const Coordinates& partial,
                                             size_t free_dim) const {
  if (free_dim >= ndims_) return BadDim(name_, free_dim, ndims_);
  return fn_(partial, free_dim);
}

Result<DimBounds> CallableShape::GlobalBounds(size_t dim) const {
  if (dim >= ndims_) return BadDim(name_, dim, ndims_);
  return global_[dim];
}

}  // namespace scidb
