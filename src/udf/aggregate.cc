#include "udf/aggregate.h"

#include <cmath>

#include "common/macros.h"
#include "types/uncertain.h"

namespace scidb {
namespace {

// Nulls are skipped by every built-in (SQL semantics); count counts
// non-null values only.

class SumState : public AggregateState {
 public:
  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    ASSIGN_OR_RETURN(double d, v.AsDouble());
    sum_ += d;
    seen_ = true;
    return Status::OK();
  }
  Status Merge(const AggregateState& other) override {
    const auto& o = static_cast<const SumState&>(other);
    sum_ += o.sum_;
    seen_ = seen_ || o.seen_;
    return Status::OK();
  }
  Value Finalize() const override {
    return seen_ ? Value(sum_) : Value::Null();
  }

 private:
  double sum_ = 0;
  bool seen_ = false;
};

class CountState : public AggregateState {
 public:
  Status Accumulate(const Value& v) override {
    if (!v.is_null()) ++count_;
    return Status::OK();
  }
  Status Merge(const AggregateState& other) override {
    count_ += static_cast<const CountState&>(other).count_;
    return Status::OK();
  }
  Value Finalize() const override { return Value(count_); }

 private:
  int64_t count_ = 0;
};

class AvgState : public AggregateState {
 public:
  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    ASSIGN_OR_RETURN(double d, v.AsDouble());
    sum_ += d;
    ++count_;
    return Status::OK();
  }
  Status Merge(const AggregateState& other) override {
    const auto& o = static_cast<const AvgState&>(other);
    sum_ += o.sum_;
    count_ += o.count_;
    return Status::OK();
  }
  Value Finalize() const override {
    if (count_ == 0) return Value::Null();
    return Value(sum_ / static_cast<double>(count_));
  }

 private:
  double sum_ = 0;
  int64_t count_ = 0;
};

class MinMaxState : public AggregateState {
 public:
  explicit MinMaxState(bool is_min) : is_min_(is_min) {}
  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (best_.is_null() || (is_min_ ? v.LessThan(best_) : best_.LessThan(v))) {
      best_ = v;
    }
    return Status::OK();
  }
  Status Merge(const AggregateState& other) override {
    return Accumulate(static_cast<const MinMaxState&>(other).best_);
  }
  Value Finalize() const override { return best_; }

 private:
  bool is_min_;
  Value best_;
};

// Welford-style accumulation, merged with the parallel-variance formula.
class StddevState : public AggregateState {
 public:
  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    ASSIGN_OR_RETURN(double d, v.AsDouble());
    ++n_;
    double delta = d - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (d - mean_);
    return Status::OK();
  }
  Status Merge(const AggregateState& other) override {
    const auto& o = static_cast<const StddevState&>(other);
    if (o.n_ == 0) return Status::OK();
    if (n_ == 0) {
      *this = o;
      return Status::OK();
    }
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(o.n_);
    double delta = o.mean_ - mean_;
    double n = na + nb;
    m2_ = m2_ + o.m2_ + delta * delta * na * nb / n;
    mean_ = mean_ + delta * nb / n;
    n_ += o.n_;
    return Status::OK();
  }
  Value Finalize() const override {
    if (n_ < 2) return Value::Null();
    return Value(std::sqrt(m2_ / static_cast<double>(n_ - 1)));
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

// Uncertain sum/avg: means add, errors add in quadrature (paper §2.13).
class UncertainSumState : public AggregateState {
 public:
  explicit UncertainSumState(bool avg) : avg_(avg) {}
  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    ASSIGN_OR_RETURN(Uncertain u, v.AsUncertain());
    acc_.Add(u);
    return Status::OK();
  }
  Status Merge(const AggregateState& other) override {
    const auto& o = static_cast<const UncertainSumState&>(other);
    acc_.mean += o.acc_.mean;
    acc_.var += o.acc_.var;
    acc_.count += o.acc_.count;
    return Status::OK();
  }
  Value Finalize() const override {
    if (acc_.count == 0) return Value::Null();
    return Value(avg_ ? acc_.Avg() : acc_.Sum());
  }

 private:
  bool avg_;
  UncertainSum acc_;
};

}  // namespace

AggregateRegistry::AggregateRegistry() { RegisterBuiltins(); }

Status AggregateRegistry::Register(AggregateFunction fn) {
  if (fn.name().empty()) return Status::Invalid("aggregate name is empty");
  auto [it, inserted] = fns_.emplace(fn.name(), std::move(fn));
  if (!inserted) {
    return Status::AlreadyExists("aggregate '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

Result<const AggregateFunction*> AggregateRegistry::Find(
    const std::string& name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound("no aggregate named '" + name + "'");
  }
  return &it->second;
}

bool AggregateRegistry::Contains(const std::string& name) const {
  return fns_.count(name) > 0;
}

void AggregateRegistry::RegisterBuiltins() {
  // A builtin failing to register (duplicate name) is a programming
  // error, not a runtime condition; crash rather than drop the Status.
  auto must = [this](AggregateFunction fn) {
    Status st = Register(std::move(fn));
    SCIDB_CHECK(st.ok()) << "builtin aggregate: " << st.ToString();
  };
  must(AggregateFunction("sum", [] { return std::make_unique<SumState>(); }));
  must(AggregateFunction(
      "count", [] { return std::make_unique<CountState>(); }));
  must(AggregateFunction("avg", [] { return std::make_unique<AvgState>(); }));
  must(AggregateFunction(
      "min", [] { return std::make_unique<MinMaxState>(true); }));
  must(AggregateFunction(
      "max", [] { return std::make_unique<MinMaxState>(false); }));
  must(AggregateFunction(
      "stddev", [] { return std::make_unique<StddevState>(); }));
  must(AggregateFunction(
      "usum", [] { return std::make_unique<UncertainSumState>(false); }));
  must(AggregateFunction(
      "uavg", [] { return std::make_unique<UncertainSumState>(true); }));
}

}  // namespace scidb
