#ifndef SCIDB_UDF_SHAPE_FUNCTION_H_
#define SCIDB_UDF_SHAPE_FUNCTION_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "array/coordinates.h"
#include "common/result.h"

namespace scidb {

// A shape function (paper §2.1) describes ragged array boundaries: a UDF
// with integer arguments returning a (low, high) pair. With one dimension
// left unspecified — shape(A[I, *]) — it returns the water marks of that
// free dimension given the bound ones; with all dimensions unspecified it
// returns the global low/high water marks. Raggedness can exist in both
// the lower and upper bound, so digitized circles and other complex shapes
// are expressible. "Holes" are not expressible (the paper leaves them out).
struct DimBounds {
  int64_t low;
  int64_t high;  // inclusive; low > high means the slice is empty

  bool empty() const { return low > high; }
  bool operator==(const DimBounds& o) const {
    return low == o.low && high == o.high;
  }
};

class ShapeFunction {
 public:
  virtual ~ShapeFunction() = default;

  virtual const std::string& name() const = 0;
  virtual size_t ndims() const = 0;

  // Bounds of dimension `free_dim` given the other coordinates in `partial`
  // (entries other than free_dim are bound; partial[free_dim] is ignored).
  virtual Result<DimBounds> SliceBounds(const Coordinates& partial,
                                        size_t free_dim) const = 0;

  // Global water marks of dimension `dim`: maximum high and minimum low
  // over all slices (paper: shape-function(A[I, *])).
  virtual Result<DimBounds> GlobalBounds(size_t dim) const = 0;

  // True when `c` lies inside the ragged region. Default: every dimension's
  // coordinate within its slice bounds.
  virtual bool Contains(const Coordinates& c) const;
};

// Plain box — the trivial shape.
class RectangleShape : public ShapeFunction {
 public:
  explicit RectangleShape(Box box);

  const std::string& name() const override { return name_; }
  size_t ndims() const override { return box_.ndims(); }
  Result<DimBounds> SliceBounds(const Coordinates& partial,
                                size_t free_dim) const override;
  Result<DimBounds> GlobalBounds(size_t dim) const override;

 private:
  std::string name_ = "rectangle";
  Box box_;
};

// Digitized disc: cells within `radius` of (center_i, center_j). Ragged in
// both bounds — the paper's canonical "arrays that digitize circles".
class CircleShape : public ShapeFunction {
 public:
  CircleShape(int64_t center_i, int64_t center_j, int64_t radius);

  const std::string& name() const override { return name_; }
  size_t ndims() const override { return 2; }
  Result<DimBounds> SliceBounds(const Coordinates& partial,
                                size_t free_dim) const override;
  Result<DimBounds> GlobalBounds(size_t dim) const override;
  bool Contains(const Coordinates& c) const override;

 private:
  std::string name_ = "circle";
  int64_t ci_, cj_, r_;
};

// Lower-triangular 2-D region: j in [1, i] for i in [1, n]. Upper-bound
// raggedness only (the simplified case the paper mentions).
class TriangleShape : public ShapeFunction {
 public:
  explicit TriangleShape(int64_t n);

  const std::string& name() const override { return name_; }
  size_t ndims() const override { return 2; }
  Result<DimBounds> SliceBounds(const Coordinates& partial,
                                size_t free_dim) const override;
  Result<DimBounds> GlobalBounds(size_t dim) const override;

 private:
  std::string name_ = "triangle";
  int64_t n_;
};

// Separable composite (paper: "shape is separable into a collection of
// shape functions for the individual dimensions"): per-dimension 1-D bounds
// independent of the other dimensions.
class SeparableShape : public ShapeFunction {
 public:
  explicit SeparableShape(std::vector<DimBounds> per_dim);

  const std::string& name() const override { return name_; }
  size_t ndims() const override { return per_dim_.size(); }
  Result<DimBounds> SliceBounds(const Coordinates& partial,
                                size_t free_dim) const override;
  Result<DimBounds> GlobalBounds(size_t dim) const override;

 private:
  std::string name_ = "separable";
  std::vector<DimBounds> per_dim_;
};

// User-supplied shape via callable; lets applications register arbitrary
// ragged boundaries without subclassing in the engine.
class CallableShape : public ShapeFunction {
 public:
  using BoundsFn = std::function<Result<DimBounds>(const Coordinates&,
                                                   size_t free_dim)>;
  CallableShape(std::string name, size_t ndims, BoundsFn fn,
                std::vector<DimBounds> global);

  const std::string& name() const override { return name_; }
  size_t ndims() const override { return ndims_; }
  Result<DimBounds> SliceBounds(const Coordinates& partial,
                                size_t free_dim) const override;
  Result<DimBounds> GlobalBounds(size_t dim) const override;

 private:
  std::string name_;
  size_t ndims_;
  BoundsFn fn_;
  std::vector<DimBounds> global_;
};

}  // namespace scidb

#endif  // SCIDB_UDF_SHAPE_FUNCTION_H_
