#include "udf/function.h"

#include <cmath>

#include "common/macros.h"

namespace scidb {

Result<std::vector<Value>> UserFunction::Call(
    const std::vector<Value>& args) const {
  if (args.size() != sig_.inputs.size()) {
    return Status::Invalid("function '" + name_ + "' expects " +
                           std::to_string(sig_.inputs.size()) +
                           " arguments, got " + std::to_string(args.size()));
  }
  if (!body_) return Status::Internal("function '" + name_ + "' has no body");
  return body_(args);
}

FunctionRegistry::FunctionRegistry() { RegisterBuiltins(); }

Status FunctionRegistry::Register(UserFunction fn) {
  if (fn.name().empty()) return Status::Invalid("function name is empty");
  auto [it, inserted] = fns_.emplace(fn.name(), std::move(fn));
  if (!inserted) {
    return Status::AlreadyExists("function '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

Result<const UserFunction*> FunctionRegistry::Find(
    const std::string& name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound("no function named '" + name + "'");
  }
  return &it->second;
}

bool FunctionRegistry::Contains(const std::string& name) const {
  return fns_.count(name) > 0;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) out.push_back(name);
  return out;
}

namespace {

Result<std::vector<Value>> OneInt(const std::vector<Value>& args,
                                  int64_t (*fn)(int64_t)) {
  ASSIGN_OR_RETURN(int64_t x, args[0].AsInt64());
  return std::vector<Value>{Value(fn(x))};
}

Result<std::vector<Value>> OneDouble(const std::vector<Value>& args,
                                     double (*fn)(double)) {
  ASSIGN_OR_RETURN(double x, args[0].AsDouble());
  return std::vector<Value>{Value(fn(x))};
}

}  // namespace

void FunctionRegistry::RegisterBuiltins() {
  // Builtins registering into a fresh registry cannot collide; a failure
  // here is a programming error, so crash instead of dropping the Status.
  auto must = [this](UserFunction fn) {
    Status st = Register(std::move(fn));
    SCIDB_CHECK(st.ok()) << "builtin function: " << st.ToString();
  };
  // The paper's Scale10: multiplies each dimension of an array by 10.
  must(UserFunction(
      "Scale10", {{DataType::kInt64, DataType::kInt64},
                  {DataType::kInt64, DataType::kInt64}},
      [](const std::vector<Value>& args) -> Result<std::vector<Value>> {
        ASSIGN_OR_RETURN(int64_t i, args[0].AsInt64());
        ASSIGN_OR_RETURN(int64_t j, args[1].AsInt64());
        return std::vector<Value>{Value(i * 10), Value(j * 10)};
      }));

  // Predicates usable in Subsample (paper: "Subsample(F, even(X))").
  must(UserFunction(
      "even", {{DataType::kInt64}, {DataType::kBool}},
      [](const std::vector<Value>& args) -> Result<std::vector<Value>> {
        ASSIGN_OR_RETURN(int64_t x, args[0].AsInt64());
        return std::vector<Value>{Value(x % 2 == 0)};
      }));
  must(UserFunction(
      "odd", {{DataType::kInt64}, {DataType::kBool}},
      [](const std::vector<Value>& args) -> Result<std::vector<Value>> {
        ASSIGN_OR_RETURN(int64_t x, args[0].AsInt64());
        return std::vector<Value>{Value(x % 2 != 0)};
      }));

  must(UserFunction(
      "abs", {{DataType::kInt64}, {DataType::kInt64}},
      [](const std::vector<Value>& args) {
        return OneInt(args, [](int64_t x) { return x < 0 ? -x : x; });
      }));
  must(UserFunction("sqrt", {{DataType::kDouble}, {DataType::kDouble}},
                        [](const std::vector<Value>& args) {
                          return OneDouble(args, [](double x) {
                            return std::sqrt(x);
                          });
                        }));
  must(UserFunction("log", {{DataType::kDouble}, {DataType::kDouble}},
                        [](const std::vector<Value>& args) {
                          return OneDouble(args, [](double x) {
                            return std::log(x);
                          });
                        }));
  must(UserFunction("exp", {{DataType::kDouble}, {DataType::kDouble}},
                        [](const std::vector<Value>& args) {
                          return OneDouble(args, [](double x) {
                            return std::exp(x);
                          });
                        }));
}

}  // namespace scidb
