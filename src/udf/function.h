#ifndef SCIDB_UDF_FUNCTION_H_
#define SCIDB_UDF_FUNCTION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"

namespace scidb {

// A Postgres-style user-defined function (paper §2.1/§2.3):
//
//   Define function Scale10 (integer I, integer J)
//       returns (integer K, integer L) file_handle
//
// The paper loads object code from a file handle and links it into the
// server's address space; this build substitutes in-process registration of
// a C++ callable — the same extension point, minus the dynamic linker
// (documented in DESIGN.md §3). UDFs may call other UDFs (and, via the
// Session handle in query/, run queries), as in Postgres.
struct FunctionSignature {
  std::vector<DataType> inputs;
  std::vector<DataType> outputs;
};

class UserFunction {
 public:
  using Body =
      std::function<Result<std::vector<Value>>(const std::vector<Value>&)>;

  UserFunction() = default;
  UserFunction(std::string name, FunctionSignature sig, Body body)
      : name_(std::move(name)), sig_(std::move(sig)), body_(std::move(body)) {}

  const std::string& name() const { return name_; }
  const FunctionSignature& signature() const { return sig_; }

  // Validates arity (types are coerced leniently, numeric-to-numeric) and
  // invokes the body.
  Result<std::vector<Value>> Call(const std::vector<Value>& args) const;

 private:
  std::string name_;
  FunctionSignature sig_;
  Body body_;
};

// Name -> function catalog. One registry per engine instance; the engine
// pre-registers the built-ins the paper names (Scale10, even, ...).
class FunctionRegistry {
 public:
  FunctionRegistry();

  Status Register(UserFunction fn);
  Result<const UserFunction*> Find(const std::string& name) const;
  [[nodiscard]] bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  void RegisterBuiltins();
  std::map<std::string, UserFunction> fns_;
};

}  // namespace scidb

#endif  // SCIDB_UDF_FUNCTION_H_
