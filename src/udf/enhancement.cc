#include "udf/enhancement.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace scidb {

namespace {
Status ArityError(const std::string& name, size_t want, size_t got) {
  return Status::Invalid("enhancement '" + name + "' expects " +
                         std::to_string(want) + " coordinates, got " +
                         std::to_string(got));
}
}  // namespace

// ---------------------------------------------------------------- Scale

ScaleEnhancement::ScaleEnhancement(std::string name,
                                   std::vector<std::string> out_names,
                                   int64_t factor)
    : name_(std::move(name)), out_names_(std::move(out_names)),
      factor_(factor) {
  SCIDB_CHECK(factor_ != 0) << "scale factor must be non-zero";
}

Result<std::vector<Value>> ScaleEnhancement::Forward(
    const Coordinates& c) const {
  if (c.size() != out_names_.size()) {
    return ArityError(name_, out_names_.size(), c.size());
  }
  std::vector<Value> out;
  out.reserve(c.size());
  for (int64_t v : c) out.emplace_back(v * factor_);
  return out;
}

Result<Coordinates> ScaleEnhancement::Inverse(
    const std::vector<Value>& pseudo) const {
  if (pseudo.size() != out_names_.size()) {
    return ArityError(name_, out_names_.size(), pseudo.size());
  }
  Coordinates c(pseudo.size());
  for (size_t d = 0; d < pseudo.size(); ++d) {
    ASSIGN_OR_RETURN(int64_t v, pseudo[d].AsInt64());
    if (v % factor_ != 0) {
      return Status::NotFound("pseudo-coordinate " + std::to_string(v) +
                              " is not on the " + name_ + " grid");
    }
    c[d] = v / factor_;
  }
  return c;
}

// ------------------------------------------------------------ Translate

TranslateEnhancement::TranslateEnhancement(std::string name,
                                           std::vector<std::string> out_names,
                                           Coordinates offsets)
    : name_(std::move(name)), out_names_(std::move(out_names)),
      offsets_(std::move(offsets)) {
  SCIDB_CHECK(out_names_.size() == offsets_.size());
}

Result<std::vector<Value>> TranslateEnhancement::Forward(
    const Coordinates& c) const {
  if (c.size() != offsets_.size()) {
    return ArityError(name_, offsets_.size(), c.size());
  }
  std::vector<Value> out;
  out.reserve(c.size());
  for (size_t d = 0; d < c.size(); ++d) out.emplace_back(c[d] + offsets_[d]);
  return out;
}

Result<Coordinates> TranslateEnhancement::Inverse(
    const std::vector<Value>& pseudo) const {
  if (pseudo.size() != offsets_.size()) {
    return ArityError(name_, offsets_.size(), pseudo.size());
  }
  Coordinates c(pseudo.size());
  for (size_t d = 0; d < pseudo.size(); ++d) {
    ASSIGN_OR_RETURN(int64_t v, pseudo[d].AsInt64());
    c[d] = v - offsets_[d];
  }
  return c;
}

// ------------------------------------------------------------ Transpose

TransposeEnhancement::TransposeEnhancement(std::string name,
                                           std::vector<std::string> out_names,
                                           std::vector<size_t> perm)
    : name_(std::move(name)), out_names_(std::move(out_names)),
      perm_(std::move(perm)) {
  SCIDB_CHECK(out_names_.size() == perm_.size());
  // perm must be a permutation of 0..n-1.
  std::vector<size_t> sorted = perm_;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    SCIDB_CHECK(sorted[i] == i) << "invalid permutation in " << name_;
  }
}

Result<std::vector<Value>> TransposeEnhancement::Forward(
    const Coordinates& c) const {
  if (c.size() != perm_.size()) {
    return ArityError(name_, perm_.size(), c.size());
  }
  std::vector<Value> out;
  out.reserve(c.size());
  for (size_t d = 0; d < c.size(); ++d) out.emplace_back(c[perm_[d]]);
  return out;
}

Result<Coordinates> TransposeEnhancement::Inverse(
    const std::vector<Value>& pseudo) const {
  if (pseudo.size() != perm_.size()) {
    return ArityError(name_, perm_.size(), pseudo.size());
  }
  Coordinates c(pseudo.size());
  for (size_t d = 0; d < pseudo.size(); ++d) {
    ASSIGN_OR_RETURN(int64_t v, pseudo[d].AsInt64());
    c[perm_[d]] = v;
  }
  return c;
}

// ------------------------------------------------------------ Irregular

IrregularEnhancement::IrregularEnhancement(
    std::string name, std::vector<std::string> out_names,
    std::vector<std::vector<double>> tables)
    : name_(std::move(name)), out_names_(std::move(out_names)),
      tables_(std::move(tables)) {
  SCIDB_CHECK(out_names_.size() == tables_.size());
  for (const auto& t : tables_) {
    SCIDB_CHECK(std::is_sorted(t.begin(), t.end()))
        << "irregular coordinate table must be sorted";
  }
}

Result<std::vector<Value>> IrregularEnhancement::Forward(
    const Coordinates& c) const {
  if (c.size() != tables_.size()) {
    return ArityError(name_, tables_.size(), c.size());
  }
  std::vector<Value> out;
  out.reserve(c.size());
  for (size_t d = 0; d < c.size(); ++d) {
    int64_t i = c[d];
    if (i < 1 || static_cast<size_t>(i) > tables_[d].size()) {
      return Status::OutOfRange("index " + std::to_string(i) +
                                " outside irregular table for dim " +
                                out_names_[d]);
    }
    out.emplace_back(tables_[d][static_cast<size_t>(i - 1)]);
  }
  return out;
}

Result<Coordinates> IrregularEnhancement::Inverse(
    const std::vector<Value>& pseudo) const {
  if (pseudo.size() != tables_.size()) {
    return ArityError(name_, tables_.size(), pseudo.size());
  }
  Coordinates c(pseudo.size());
  for (size_t d = 0; d < pseudo.size(); ++d) {
    ASSIGN_OR_RETURN(double v, pseudo[d].AsDouble());
    const auto& t = tables_[d];
    auto it = std::lower_bound(t.begin(), t.end(), v);
    if (it == t.end() || *it != v) {
      return Status::NotFound("no cell at " + out_names_[d] + " = " +
                              std::to_string(v));
    }
    c[d] = static_cast<int64_t>(it - t.begin()) + 1;
  }
  return c;
}

// ------------------------------------------------------------- Mercator

MercatorEnhancement::MercatorEnhancement(std::string name, int64_t rows,
                                         int64_t cols)
    : name_(std::move(name)), out_names_({"lat", "lon"}), rows_(rows),
      cols_(cols) {
  SCIDB_CHECK(rows_ > 1 && cols_ > 1);
}

namespace {
constexpr double kMaxLatitude = 85.0;
double MercatorY(double lat_deg) {
  double phi = lat_deg * M_PI / 180.0;
  return std::log(std::tan(M_PI / 4 + phi / 2));
}
double InverseMercatorY(double y) {
  return (2 * std::atan(std::exp(y)) - M_PI / 2) * 180.0 / M_PI;
}
}  // namespace

Result<std::vector<Value>> MercatorEnhancement::Forward(
    const Coordinates& c) const {
  if (c.size() != 2) return ArityError(name_, 2, c.size());
  if (c[0] < 1 || c[0] > rows_ || c[1] < 1 || c[1] > cols_) {
    return Status::OutOfRange("cell " + CoordsToString(c) +
                              " outside Mercator grid");
  }
  // Row index spans Mercator-projected y uniformly (that is the point of
  // the projection: equal grid steps are equal map distances, not equal
  // latitude steps).
  double y_max = MercatorY(kMaxLatitude);
  double fy = static_cast<double>(c[0] - 1) / static_cast<double>(rows_ - 1);
  double lat = InverseMercatorY(y_max - fy * 2 * y_max);
  double fx = static_cast<double>(c[1] - 1) / static_cast<double>(cols_ - 1);
  double lon = -180.0 + fx * 360.0;
  return std::vector<Value>{Value(lat), Value(lon)};
}

Result<Coordinates> MercatorEnhancement::Inverse(
    const std::vector<Value>& pseudo) const {
  if (pseudo.size() != 2) return ArityError(name_, 2, pseudo.size());
  ASSIGN_OR_RETURN(double lat, pseudo[0].AsDouble());
  ASSIGN_OR_RETURN(double lon, pseudo[1].AsDouble());
  if (std::fabs(lat) > kMaxLatitude || std::fabs(lon) > 180.0) {
    return Status::OutOfRange("lat/lon outside Mercator domain");
  }
  double y_max = MercatorY(kMaxLatitude);
  double fy = (y_max - MercatorY(lat)) / (2 * y_max);
  double fx = (lon + 180.0) / 360.0;
  Coordinates c(2);
  c[0] = 1 + llround(fy * static_cast<double>(rows_ - 1));
  c[1] = 1 + llround(fx * static_cast<double>(cols_ - 1));
  c[0] = std::clamp<int64_t>(c[0], 1, rows_);
  c[1] = std::clamp<int64_t>(c[1], 1, cols_);
  return c;
}

// ------------------------------------------------------------ WallClock

WallClockEnhancement::WallClockEnhancement(std::string name)
    : name_(std::move(name)), out_names_({"time"}) {}

void WallClockEnhancement::RecordTimestamp(int64_t micros) {
  SCIDB_CHECK(times_.empty() || micros >= times_.back())
      << "wall clock timestamps must be non-decreasing";
  times_.push_back(micros);
}

Result<std::vector<Value>> WallClockEnhancement::Forward(
    const Coordinates& c) const {
  if (c.size() != 1) return ArityError(name_, 1, c.size());
  int64_t h = c[0];
  if (h < 1 || static_cast<size_t>(h) > times_.size()) {
    return Status::OutOfRange("history index " + std::to_string(h) +
                              " has no recorded timestamp");
  }
  return std::vector<Value>{Value(times_[static_cast<size_t>(h - 1)])};
}

Result<Coordinates> WallClockEnhancement::Inverse(
    const std::vector<Value>& pseudo) const {
  if (pseudo.size() != 1) return ArityError(name_, 1, pseudo.size());
  ASSIGN_OR_RETURN(int64_t t, pseudo[0].AsInt64());
  // Largest h whose timestamp <= t ("state of the array as of time t").
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) {
    return Status::NotFound("no history at or before time " +
                            std::to_string(t));
  }
  return Coordinates{static_cast<int64_t>(it - times_.begin())};
}

}  // namespace scidb
