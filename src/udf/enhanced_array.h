#ifndef SCIDB_UDF_ENHANCED_ARRAY_H_
#define SCIDB_UDF_ENHANCED_ARRAY_H_

#include <memory>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/result.h"
#include "udf/enhancement.h"
#include "udf/shape_function.h"

namespace scidb {

// An enhanced array (paper §2.1): a basic array plus any number of
// enhancement functions, each adding a pseudo-coordinate system, plus at
// most one shape function defining ragged boundaries.
//
//   Enhance My_remote with Scale10   ->  arr.Enhance(scale10)
//   A[7, 8]                          ->  arr.GetBasic({7, 8})
//   A{70, 80}                        ->  arr.GetEnhanced("Scale10", ...)
//   Shape My_remote with circle      ->  arr.SetShape(circle)
class EnhancedArray {
 public:
  explicit EnhancedArray(std::shared_ptr<MemArray> base)
      : base_(std::move(base)) {}

  MemArray& base() { return *base_; }
  const MemArray& base() const { return *base_; }

  // "Enhance <array> with <function>". Multiple enhancements may coexist;
  // each adds an independently addressable coordinate system.
  Status Enhance(std::shared_ptr<EnhancementFunction> fn);
  const std::vector<std::shared_ptr<EnhancementFunction>>& enhancements()
      const {
    return enhancements_;
  }
  Result<const EnhancementFunction*> FindEnhancement(
      const std::string& name) const;

  // Basic addressing: A[7, 8].
  std::optional<std::vector<Value>> GetBasic(const Coordinates& c) const {
    return base_->GetCell(c);
  }

  // Enhanced addressing: A{16.3, 48.2} under the named coordinate system.
  // NotFound when no basic cell maps to those pseudo-coordinates.
  Result<std::vector<Value>> GetEnhanced(
      const std::string& enhancement, const std::vector<Value>& pseudo) const;

  // Enhanced addressing without naming the system: tries each enhancement
  // whose inverse accepts the operand arity/types, in registration order.
  Result<std::vector<Value>> GetEnhancedAny(
      const std::vector<Value>& pseudo) const;

  // Forward projection of a basic cell into an enhancement's coordinates.
  Result<std::vector<Value>> Project(const std::string& enhancement,
                                     const Coordinates& basic) const;

  // ---- shape (ragged bounds) ----
  // "Every basic array can have at most one shape function."
  Status SetShape(std::shared_ptr<ShapeFunction> shape);
  const ShapeFunction* shape() const { return shape_.get(); }

  // Bounds of the free dimension given the other coordinates — the paper's
  // shape-function(A[7, *]) form.
  Result<DimBounds> ShapeSlice(const Coordinates& partial,
                               size_t free_dim) const;
  // shape-function(A[I, *]): global water marks.
  Result<DimBounds> ShapeGlobal(size_t dim) const;

  // SetCell that honours the shape: writing outside the ragged region is
  // an OutOfRange error.
  Status SetCell(const Coordinates& c, const std::vector<Value>& values);

 private:
  std::shared_ptr<MemArray> base_;
  std::vector<std::shared_ptr<EnhancementFunction>> enhancements_;
  std::shared_ptr<ShapeFunction> shape_;
};

}  // namespace scidb

#endif  // SCIDB_UDF_ENHANCED_ARRAY_H_
