#ifndef SCIDB_UDF_ENHANCEMENT_H_
#define SCIDB_UDF_ENHANCEMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "array/coordinates.h"
#include "common/result.h"
#include "types/value.h"

namespace scidb {

// An enhancement function (paper §2.1) adds a pseudo-coordinate system to a
// basic array: any function over the integer dimensions yields transposed,
// scaled, translated, irregular or well-known (e.g. Mercator) coordinates.
// Basic coordinates are addressed with A[...], enhanced ones with A{...}.
//
// Forward maps basic integer coordinates to pseudo-coordinates; Inverse
// maps pseudo-coordinates back to the basic cell (required for {..}
// addressing; enhancement classes without a closed-form inverse return
// kNotImplemented and are then only usable for forward projection).
class EnhancementFunction {
 public:
  virtual ~EnhancementFunction() = default;

  virtual const std::string& name() const = 0;
  // Names of the produced pseudo-dimensions (paper: Scale10 outputs (K, L)).
  virtual const std::vector<std::string>& output_names() const = 0;

  virtual Result<std::vector<Value>> Forward(const Coordinates& c) const = 0;
  virtual Result<Coordinates> Inverse(const std::vector<Value>& pseudo)
      const = 0;
};

// pseudo = scale * basic, per dimension. Scale10 is ScaleEnhancement(10).
class ScaleEnhancement : public EnhancementFunction {
 public:
  ScaleEnhancement(std::string name, std::vector<std::string> out_names,
                   int64_t factor);

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& output_names() const override {
    return out_names_;
  }
  Result<std::vector<Value>> Forward(const Coordinates& c) const override;
  Result<Coordinates> Inverse(const std::vector<Value>& pseudo) const override;

 private:
  std::string name_;
  std::vector<std::string> out_names_;
  int64_t factor_;
};

// pseudo = basic + offset, per dimension.
class TranslateEnhancement : public EnhancementFunction {
 public:
  TranslateEnhancement(std::string name, std::vector<std::string> out_names,
                       Coordinates offsets);

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& output_names() const override {
    return out_names_;
  }
  Result<std::vector<Value>> Forward(const Coordinates& c) const override;
  Result<Coordinates> Inverse(const std::vector<Value>& pseudo) const override;

 private:
  std::string name_;
  std::vector<std::string> out_names_;
  Coordinates offsets_;
};

// Reorders dimensions: pseudo[i] = basic[perm[i]].
class TransposeEnhancement : public EnhancementFunction {
 public:
  TransposeEnhancement(std::string name, std::vector<std::string> out_names,
                       std::vector<size_t> perm);

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& output_names() const override {
    return out_names_;
  }
  Result<std::vector<Value>> Forward(const Coordinates& c) const override;
  Result<Coordinates> Inverse(const std::vector<Value>& pseudo) const override;

 private:
  std::string name_;
  std::vector<std::string> out_names_;
  std::vector<size_t> perm_;
};

// Irregular 1-per-dimension mapping (paper: coordinates 16.3, 27.6, 48.2,
// ...): each dimension d has a sorted table mapping basic index i (1-based)
// to a real coordinate table[d][i-1]. Inverse uses exact lookup via binary
// search. This is the "separate data structure" implementation option the
// paper lists for pseudo-coordinates.
class IrregularEnhancement : public EnhancementFunction {
 public:
  IrregularEnhancement(std::string name, std::vector<std::string> out_names,
                       std::vector<std::vector<double>> tables);

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& output_names() const override {
    return out_names_;
  }
  Result<std::vector<Value>> Forward(const Coordinates& c) const override;
  Result<Coordinates> Inverse(const std::vector<Value>& pseudo) const override;

 private:
  std::string name_;
  std::vector<std::string> out_names_;
  std::vector<std::vector<double>> tables_;  // per dim, sorted ascending
};

// Well-known coordinate system (paper: Mercator geometry): dimension 0 is
// mapped to Mercator-projected latitude in degrees; remaining dimensions map
// to plain longitude degrees. Functional representation — computed from the
// integer index, no side table.
class MercatorEnhancement : public EnhancementFunction {
 public:
  // Grid of `rows` x `cols` covering lat in (-85, 85), lon in (-180, 180).
  MercatorEnhancement(std::string name, int64_t rows, int64_t cols);

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& output_names() const override {
    return out_names_;
  }
  Result<std::vector<Value>> Forward(const Coordinates& c) const override;
  Result<Coordinates> Inverse(const std::vector<Value>& pseudo) const override;

 private:
  std::string name_;
  std::vector<std::string> out_names_;
  int64_t rows_;
  int64_t cols_;
};

// Wall-clock mapping for the history dimension (paper §2.5): history index
// h (1-based) <-> recorded timestamp. Timestamps must be non-decreasing.
// Inverse maps a time t to the largest h whose timestamp <= t.
class WallClockEnhancement : public EnhancementFunction {
 public:
  explicit WallClockEnhancement(std::string name = "wall_clock");

  void RecordTimestamp(int64_t micros);  // for the next history index
  int64_t recorded() const { return static_cast<int64_t>(times_.size()); }

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& output_names() const override {
    return out_names_;
  }
  Result<std::vector<Value>> Forward(const Coordinates& c) const override;
  Result<Coordinates> Inverse(const std::vector<Value>& pseudo) const override;

 private:
  std::string name_;
  std::vector<std::string> out_names_;
  std::vector<int64_t> times_;  // times_[h-1] = timestamp of history h
};

}  // namespace scidb

#endif  // SCIDB_UDF_ENHANCEMENT_H_
