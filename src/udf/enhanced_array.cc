#include "udf/enhanced_array.h"

#include "common/macros.h"

namespace scidb {

Status EnhancedArray::Enhance(std::shared_ptr<EnhancementFunction> fn) {
  if (fn == nullptr) return Status::Invalid("null enhancement function");
  for (const auto& e : enhancements_) {
    if (e->name() == fn->name()) {
      return Status::AlreadyExists("array already enhanced with '" +
                                   fn->name() + "'");
    }
  }
  enhancements_.push_back(std::move(fn));
  return Status::OK();
}

Result<const EnhancementFunction*> EnhancedArray::FindEnhancement(
    const std::string& name) const {
  for (const auto& e : enhancements_) {
    if (e->name() == name) return e.get();
  }
  return Status::NotFound("array has no enhancement named '" + name + "'");
}

Result<std::vector<Value>> EnhancedArray::GetEnhanced(
    const std::string& enhancement, const std::vector<Value>& pseudo) const {
  ASSIGN_OR_RETURN(const EnhancementFunction* fn,
                   FindEnhancement(enhancement));
  ASSIGN_OR_RETURN(Coordinates basic, fn->Inverse(pseudo));
  auto cell = base_->GetCell(basic);
  if (!cell.has_value()) {
    return Status::NotFound("no cell at basic coordinates " +
                            CoordsToString(basic));
  }
  return *cell;
}

Result<std::vector<Value>> EnhancedArray::GetEnhancedAny(
    const std::vector<Value>& pseudo) const {
  for (const auto& e : enhancements_) {
    auto inv = e->Inverse(pseudo);
    if (!inv.ok()) continue;
    auto cell = base_->GetCell(inv.value());
    if (cell.has_value()) return *cell;
  }
  return Status::NotFound(
      "no enhancement maps the given pseudo-coordinates to a present cell");
}

Result<std::vector<Value>> EnhancedArray::Project(
    const std::string& enhancement, const Coordinates& basic) const {
  ASSIGN_OR_RETURN(const EnhancementFunction* fn,
                   FindEnhancement(enhancement));
  return fn->Forward(basic);
}

Status EnhancedArray::SetShape(std::shared_ptr<ShapeFunction> shape) {
  if (shape == nullptr) return Status::Invalid("null shape function");
  if (shape_ != nullptr) {
    return Status::AlreadyExists(
        "array already has a shape function ('" + shape_->name() +
        "'); at most one per basic array");
  }
  if (shape->ndims() != base_->schema().ndims()) {
    return Status::Invalid("shape arity " + std::to_string(shape->ndims()) +
                           " != array ndims " +
                           std::to_string(base_->schema().ndims()));
  }
  shape_ = std::move(shape);
  return Status::OK();
}

Result<DimBounds> EnhancedArray::ShapeSlice(const Coordinates& partial,
                                            size_t free_dim) const {
  if (shape_ == nullptr) {
    return Status::NotFound("array has no shape function");
  }
  return shape_->SliceBounds(partial, free_dim);
}

Result<DimBounds> EnhancedArray::ShapeGlobal(size_t dim) const {
  if (shape_ == nullptr) {
    return Status::NotFound("array has no shape function");
  }
  return shape_->GlobalBounds(dim);
}

Status EnhancedArray::SetCell(const Coordinates& c,
                              const std::vector<Value>& values) {
  if (shape_ != nullptr && !shape_->Contains(c)) {
    return Status::OutOfRange("cell " + CoordsToString(c) +
                              " outside shape '" + shape_->name() + "'");
  }
  return base_->SetCell(c, values);
}

}  // namespace scidb
