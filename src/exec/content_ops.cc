#include <map>
#include <set>
#include <memory>

#include "common/macros.h"
#include "exec/operators.h"
#include "exec/parallel.h"

namespace scidb {

// ---------------------------------------------------------------- Filter

Result<MemArray> Filter(const ExecContext& ctx, const MemArray& a,
                        const ExprPtr& pred) {
  if (pred == nullptr) return Status::Invalid("Filter: null predicate");
  const ArraySchema& schema = a.schema();
  MemArray out(schema);
  out.mutable_schema()->set_name(schema.name() + "_filter");

  const std::vector<Value> nulls(schema.nattrs());
  RETURN_NOT_OK(ParallelChunkMap(
      ctx, a, &out,
      [&](const Coordinates&, const Chunk& chunk,
          ExecStats* stats) -> Result<std::shared_ptr<Chunk>> {
        // Expression bindings are by pointer, so each morsel owns its
        // coordinate/attribute buffers.
        EvalContext ectx;
        ectx.functions = ctx.functions;
        Coordinates coords;
        std::vector<Value> attrs;
        ectx.sides.push_back({&schema, &coords, &attrs});

        auto oc = std::make_shared<Chunk>(chunk.box(), schema.attrs());
        for (Chunk::CellIterator it(chunk); it.valid(); it.Next()) {
          ++stats->cells_visited;
          coords = it.coords();
          attrs.clear();
          for (size_t at = 0; at < chunk.nattrs(); ++at) {
            attrs.push_back(chunk.block(at).Get(it.rank()));
          }
          ASSIGN_OR_RETURN(Value verdict, pred->Eval(ectx));
          bool keep = verdict.is_bool() && verdict.bool_value();
          // Paper: cells failing P "will contain NULL" — present,
          // null-valued.
          const std::vector<Value>& row = keep ? attrs : nulls;
          for (size_t at = 0; at < row.size(); ++at) {
            oc->block(at).Set(it.rank(), row[at]);
          }
          oc->MarkPresent(it.rank());
        }
        return oc;
      }));
  return out;
}

// ------------------------------------------------------------- Aggregate

AttributeDesc AggOutputAttr(const std::string& agg) {
  if (agg == "count") return {agg, DataType::kInt64, true, false};
  if (agg == "usum" || agg == "uavg") {
    return {agg, DataType::kDouble, true, true};
  }
  return {agg, DataType::kDouble, true, false};
}

Result<MemArray> Aggregate(const ExecContext& ctx, const MemArray& a,
                           const std::vector<std::string>& group_dims,
                           const std::string& agg, const std::string& attr) {
  if (ctx.aggregates == nullptr) {
    return Status::Internal("Aggregate: no aggregate registry bound");
  }
  ASSIGN_OR_RETURN(const AggregateFunction* afn, ctx.aggregates->Find(agg));
  const ArraySchema& schema = a.schema();

  size_t attr_idx = 0;
  if (attr != "*") {
    ASSIGN_OR_RETURN(attr_idx, schema.AttrIndex(attr));
  }

  std::vector<size_t> gidx;
  std::vector<DimensionDesc> out_dims;
  std::set<size_t> seen;
  for (const auto& g : group_dims) {
    ASSIGN_OR_RETURN(size_t di, schema.DimIndex(g));
    if (!seen.insert(di).second) {
      return Status::Invalid("Aggregate: duplicate grouping dimension '" +
                             g + "'");
    }
    gidx.push_back(di);
    out_dims.push_back(schema.dim(di));
  }
  if (out_dims.empty()) {
    // Grand aggregate: single-cell output with one synthetic dimension.
    out_dims.push_back({"all", 1, 1, 1});
  }
  ArraySchema out_schema(schema.name() + "_agg", std::move(out_dims),
                         {AggOutputAttr(agg)});
  MemArray out(out_schema);

  // Partial-aggregate phase (DESIGN.md §8): one group map per chunk,
  // accumulated independently. Run this way at EVERY pool width — the
  // partial+merge shape is the algorithm, not a parallel special case, so
  // results are bit-identical at parallelism 1/2/8.
  using GroupMap = std::map<Coordinates, std::unique_ptr<AggregateState>>;
  std::vector<GroupMap> partials(a.chunks().size());
  RETURN_NOT_OK(ForEachChunkParallel(
      ctx, a,
      [&](size_t index, const Coordinates&, const Chunk& chunk,
          ExecStats* stats) -> Status {
        GroupMap& local = partials[index];
        Coordinates key;
        for (Chunk::CellIterator it(chunk); it.valid(); it.Next()) {
          ++stats->cells_visited;
          key.clear();
          if (gidx.empty()) {
            key.push_back(1);
          } else {
            Coordinates c = it.coords();
            for (size_t d : gidx) key.push_back(c[d]);
          }
          auto git = local.find(key);
          if (git == local.end()) {
            git = local.emplace(key, afn->NewState()).first;
          }
          RETURN_NOT_OK(
              git->second->Accumulate(chunk.block(attr_idx).Get(it.rank())));
        }
        return Status::OK();
      }));

  // Deterministic single-threaded merge in chunk-map order: the first
  // chunk's state seeds each group, later partials Merge() in. Merge
  // order never depends on worker count.
  GroupMap groups;
  for (GroupMap& part : partials) {
    for (auto& [key, state] : part) {
      auto it = groups.find(key);
      if (it == groups.end()) {
        groups.emplace(key, std::move(state));
      } else {
        RETURN_NOT_OK(it->second->Merge(*state));
      }
    }
  }

  // A grand aggregate over an empty array still produces its one cell
  // (SQL semantics: SUM of nothing is NULL, COUNT of nothing is 0).
  if (gidx.empty() && groups.empty()) {
    groups.emplace(Coordinates{1}, afn->NewState());
  }
  for (const auto& [key, state] : groups) {
    RETURN_NOT_OK(out.SetCell(key, state->Finalize()));
  }
  return out;
}

Result<MemArray> AggregateMulti(const ExecContext& ctx, const MemArray& a,
                                const std::vector<std::string>& group_dims,
                                const std::vector<AggCall>& calls) {
  if (ctx.aggregates == nullptr) {
    return Status::Internal("AggregateMulti: no aggregate registry bound");
  }
  if (calls.empty()) {
    return Status::Invalid("AggregateMulti: need at least one aggregate");
  }
  const ArraySchema& schema = a.schema();

  std::vector<const AggregateFunction*> fns;
  std::vector<size_t> attr_idx;
  std::vector<AttributeDesc> out_attrs;
  std::set<std::string> used_names;
  for (const AggCall& call : calls) {
    ASSIGN_OR_RETURN(const AggregateFunction* fn,
                     ctx.aggregates->Find(call.agg));
    fns.push_back(fn);
    size_t ai = 0;
    if (call.attr != "*") {
      ASSIGN_OR_RETURN(ai, schema.AttrIndex(call.attr));
    }
    attr_idx.push_back(ai);
    AttributeDesc desc = AggOutputAttr(call.agg);
    if (call.attr != "*") desc.name = call.agg + "_" + call.attr;
    while (!used_names.insert(desc.name).second) desc.name += "_2";
    out_attrs.push_back(std::move(desc));
  }

  std::vector<size_t> gidx;
  std::vector<DimensionDesc> out_dims;
  std::set<size_t> seen;
  for (const auto& g : group_dims) {
    ASSIGN_OR_RETURN(size_t di, schema.DimIndex(g));
    if (!seen.insert(di).second) {
      return Status::Invalid(
          "AggregateMulti: duplicate grouping dimension '" + g + "'");
    }
    gidx.push_back(di);
    out_dims.push_back(schema.dim(di));
  }
  if (out_dims.empty()) out_dims.push_back({"all", 1, 1, 1});
  ArraySchema out_schema(schema.name() + "_agg", std::move(out_dims),
                         std::move(out_attrs));
  MemArray out(out_schema);

  // One state vector per group; all aggregates fed from a single scan.
  // Same partial+merge shape as Aggregate: per-chunk partials at every
  // pool width, merged single-threaded in chunk-map order.
  using MultiGroupMap =
      std::map<Coordinates, std::vector<std::unique_ptr<AggregateState>>>;
  std::vector<MultiGroupMap> partials(a.chunks().size());
  RETURN_NOT_OK(ForEachChunkParallel(
      ctx, a,
      [&](size_t index, const Coordinates&, const Chunk& chunk,
          ExecStats* stats) -> Status {
        MultiGroupMap& local = partials[index];
        Coordinates key;
        for (Chunk::CellIterator it(chunk); it.valid(); it.Next()) {
          ++stats->cells_visited;
          key.clear();
          if (gidx.empty()) {
            key.push_back(1);
          } else {
            Coordinates c = it.coords();
            for (size_t d : gidx) key.push_back(c[d]);
          }
          auto git = local.find(key);
          if (git == local.end()) {
            std::vector<std::unique_ptr<AggregateState>> states;
            for (const auto* fn : fns) states.push_back(fn->NewState());
            git = local.emplace(key, std::move(states)).first;
          }
          for (size_t k = 0; k < fns.size(); ++k) {
            RETURN_NOT_OK(git->second[k]->Accumulate(
                chunk.block(attr_idx[k]).Get(it.rank())));
          }
        }
        return Status::OK();
      }));

  MultiGroupMap groups;
  for (MultiGroupMap& part : partials) {
    for (auto& [key, states] : part) {
      auto it = groups.find(key);
      if (it == groups.end()) {
        groups.emplace(key, std::move(states));
      } else {
        for (size_t k = 0; k < fns.size(); ++k) {
          RETURN_NOT_OK(it->second[k]->Merge(*states[k]));
        }
      }
    }
  }

  if (gidx.empty() && groups.empty()) {
    std::vector<std::unique_ptr<AggregateState>> states;
    for (const auto* fn : fns) states.push_back(fn->NewState());
    groups.emplace(Coordinates{1}, std::move(states));
  }
  for (const auto& [key, states] : groups) {
    std::vector<Value> row;
    row.reserve(states.size());
    for (const auto& state : states) row.push_back(state->Finalize());
    RETURN_NOT_OK(out.SetCell(key, row));
  }
  return out;
}

// ----------------------------------------------------------------- Cjoin

Result<MemArray> Cjoin(const ExecContext& ctx, const MemArray& a,
                       const MemArray& b, const ExprPtr& pred) {
  if (pred == nullptr) return Status::Invalid("Cjoin: null predicate");
  const ArraySchema& sa = a.schema();
  const ArraySchema& sb = b.schema();

  std::vector<DimensionDesc> dims = sa.dims();
  for (DimensionDesc d : sb.dims()) {
    while (sa.DimIndex(d.name).ok()) d.name += "_2";
    dims.push_back(std::move(d));
  }
  ArraySchema out_schema(sa.name() + "_cjoin", std::move(dims),
                         MergeAttrs(sa.attrs(), sb.attrs()));
  MemArray out(out_schema);

  EvalContext ectx;
  ectx.functions = ctx.functions;
  Coordinates ca_bound, cb_bound;
  std::vector<Value> va, vb;
  ectx.sides.push_back({&sa, &ca_bound, &va});
  ectx.sides.push_back({&sb, &cb_bound, &vb});

  std::vector<Value> nulls(out_schema.nattrs());
  Status st;
  bool failed = false;
  a.ForEachCell([&](const Coordinates& ca, const Chunk& ach, int64_t ar) {
    va.clear();
    for (size_t at = 0; at < ach.nattrs(); ++at) {
      va.push_back(ach.block(at).Get(ar));
    }
    ca_bound = ca;
    b.ForEachCell([&](const Coordinates& cb, const Chunk& bch, int64_t br) {
      if (ctx.stats != nullptr) ++ctx.stats->cells_visited;
      vb.clear();
      for (size_t at = 0; at < bch.nattrs(); ++at) {
        vb.push_back(bch.block(at).Get(br));
      }
      cb_bound = cb;
      auto ok = pred->Eval(ectx);
      if (!ok.ok()) {
        st = ok.status();
        failed = true;
        return false;
      }
      bool match = ok.value().is_bool() && ok.value().bool_value();
      Coordinates oc = ca;
      oc.insert(oc.end(), cb.begin(), cb.end());
      if (match) {
        std::vector<Value> cell = va;
        cell.insert(cell.end(), vb.begin(), vb.end());
        st = out.SetCell(oc, cell);
      } else {
        // Figure 3: non-matching positions hold NULL.
        st = out.SetCell(oc, nulls);
      }
      if (!st.ok()) {
        failed = true;
        return false;
      }
      return true;
    });
    return !failed;
  });
  if (failed) return st;
  return out;
}

// ----------------------------------------------------------------- Apply

Result<MemArray> Apply(const ExecContext& ctx, const MemArray& a,
                       const std::string& name, DataType type,
                       const ExprPtr& e, bool uncertain) {
  if (e == nullptr) return Status::Invalid("Apply: null expression");
  const ArraySchema& schema = a.schema();
  if (schema.DimIndex(name).ok() || schema.AttrIndex(name).ok()) {
    return Status::Invalid("Apply: name '" + name + "' already in use");
  }
  std::vector<AttributeDesc> attrs = schema.attrs();
  attrs.push_back({name, type, true, uncertain});
  ArraySchema out_schema(schema.name() + "_apply", schema.dims(),
                         std::move(attrs));
  MemArray out(out_schema);

  const std::vector<AttributeDesc>& out_attrs = out.schema().attrs();
  RETURN_NOT_OK(ParallelChunkMap(
      ctx, a, &out,
      [&](const Coordinates&, const Chunk& chunk,
          ExecStats* stats) -> Result<std::shared_ptr<Chunk>> {
        EvalContext ectx;
        ectx.functions = ctx.functions;
        Coordinates coords;
        std::vector<Value> vals;
        ectx.sides.push_back({&schema, &coords, &vals});

        auto oc = std::make_shared<Chunk>(chunk.box(), out_attrs);
        const size_t new_at = chunk.nattrs();
        for (Chunk::CellIterator it(chunk); it.valid(); it.Next()) {
          ++stats->cells_visited;
          coords = it.coords();
          vals.clear();
          for (size_t at = 0; at < chunk.nattrs(); ++at) {
            vals.push_back(chunk.block(at).Get(it.rank()));
          }
          ASSIGN_OR_RETURN(Value v, e->Eval(ectx));
          for (size_t at = 0; at < vals.size(); ++at) {
            oc->block(at).Set(it.rank(), vals[at]);
          }
          oc->block(new_at).Set(it.rank(), v);
          oc->MarkPresent(it.rank());
        }
        return oc;
      }));
  return out;
}

// --------------------------------------------------------------- Project

Result<MemArray> Project(const ExecContext& ctx, const MemArray& a,
                         const std::vector<std::string>& attrs) {
  if (attrs.empty()) {
    return Status::Invalid("Project: need at least one attribute");
  }
  const ArraySchema& schema = a.schema();
  std::vector<size_t> idx;
  std::vector<AttributeDesc> out_attrs;
  for (const auto& name : attrs) {
    ASSIGN_OR_RETURN(size_t ai, schema.AttrIndex(name));
    idx.push_back(ai);
    out_attrs.push_back(schema.attr(ai));
  }
  ArraySchema out_schema(schema.name() + "_project", schema.dims(),
                         std::move(out_attrs));
  MemArray out(out_schema);

  const std::vector<AttributeDesc>& kept = out.schema().attrs();
  RETURN_NOT_OK(ParallelChunkMap(
      ctx, a, &out,
      [&](const Coordinates&, const Chunk& chunk,
          ExecStats*) -> Result<std::shared_ptr<Chunk>> {
        auto oc = std::make_shared<Chunk>(chunk.box(), kept);
        for (Chunk::CellIterator it(chunk); it.valid(); it.Next()) {
          for (size_t k = 0; k < idx.size(); ++k) {
            oc->block(k).Set(it.rank(), chunk.block(idx[k]).Get(it.rank()));
          }
          oc->MarkPresent(it.rank());
        }
        return oc;
      }));
  return out;
}

// ---------------------------------------------------------------- Regrid

Result<MemArray> Regrid(const ExecContext& ctx, const MemArray& a,
                        const std::vector<int64_t>& factors,
                        const std::string& agg, const std::string& attr) {
  if (ctx.aggregates == nullptr) {
    return Status::Internal("Regrid: no aggregate registry bound");
  }
  const ArraySchema& schema = a.schema();
  if (factors.size() != schema.ndims()) {
    return Status::Invalid("Regrid: need one factor per dimension");
  }
  for (int64_t f : factors) {
    if (f <= 0) return Status::Invalid("Regrid: factors must be positive");
  }
  ASSIGN_OR_RETURN(const AggregateFunction* afn, ctx.aggregates->Find(agg));
  size_t attr_idx = 0;
  if (attr != "*") {
    ASSIGN_OR_RETURN(attr_idx, schema.AttrIndex(attr));
  }

  std::vector<DimensionDesc> out_dims;
  for (size_t d = 0; d < schema.ndims(); ++d) {
    DimensionDesc dd = schema.dim(d);
    if (!dd.unbounded()) {
      dd.high = dd.low + (dd.extent() + factors[d] - 1) / factors[d] - 1;
    }
    out_dims.push_back(dd);
  }
  ArraySchema out_schema(schema.name() + "_regrid", std::move(out_dims),
                         {AggOutputAttr(agg)});
  MemArray out(out_schema);

  std::map<Coordinates, std::unique_ptr<AggregateState>> blocks;
  Status st;
  bool failed = false;
  a.ForEachCell([&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
    if (ctx.stats != nullptr) ++ctx.stats->cells_visited;
    Coordinates key(c.size());
    for (size_t d = 0; d < c.size(); ++d) {
      key[d] = schema.dim(d).low + (c[d] - schema.dim(d).low) / factors[d];
    }
    auto it = blocks.find(key);
    if (it == blocks.end()) {
      it = blocks.emplace(std::move(key), afn->NewState()).first;
    }
    st = it->second->Accumulate(chunk.block(attr_idx).Get(rank));
    if (!st.ok()) {
      failed = true;
      return false;
    }
    return true;
  });
  if (failed) return st;

  for (const auto& [key, state] : blocks) {
    RETURN_NOT_OK(out.SetCell(key, state->Finalize()));
  }
  return out;
}

}  // namespace scidb
