#ifndef SCIDB_EXEC_PARALLEL_H_
#define SCIDB_EXEC_PARALLEL_H_

#include <functional>
#include <memory>

#include "array/mem_array.h"
#include "common/result.h"
#include "exec/operators.h"

namespace scidb {

// Morsel drivers for chunk-parallel operators (DESIGN.md §8). The morsel
// is one input chunk; kernels see exactly one chunk and share nothing, so
// an operator is parallel-safe iff its kernel (a) reads only its chunk and
// read-only shared state, and (b) writes only its own return value / its
// own per-morsel slot. Result assembly is always single-threaded and in
// chunk-map (origin) order, which makes output — including every
// floating-point merge — independent of the pool width.

// Per-chunk body for ForEachChunkParallel. `index` is the chunk's position
// in the input's sorted chunk map (the serial visitation order); `stats`
// is a private per-morsel slot, folded into ctx.stats in index order
// afterwards.
using ChunkBody = std::function<Status(
    size_t index, const Coordinates& origin, const Chunk& chunk,
    ExecStats* stats)>;

// Runs `body` once per chunk of `in`, spread over ctx.pool (serially when
// the pool is null or width 1). On failure returns the Status of the
// lowest-index failing chunk — the same chunk a serial scan fails on
// first. Records morsel/worker counts in ctx.stats.
[[nodiscard]] Status ForEachChunkParallel(const ExecContext& ctx,
                                          const MemArray& in,
                                          const ChunkBody& body);

// Per-chunk kernel for ParallelChunkMap: returns the output chunk for one
// input chunk, or null when the chunk produces nothing. The output chunk's
// box must equal the input chunk's box (dimension-preserving operators
// only — Filter, Apply, Project, Subsample, Window).
using ChunkKernel = std::function<Result<std::shared_ptr<Chunk>>(
    const Coordinates& origin, const Chunk& chunk, ExecStats* stats)>;

// Maps every chunk of `in` through `kernel` and assembles the surviving
// (non-null, non-empty) outputs into `out`'s chunk map in origin order.
[[nodiscard]] Status ParallelChunkMap(const ExecContext& ctx,
                                      const MemArray& in, MemArray* out,
                                      const ChunkKernel& kernel);

}  // namespace scidb

#endif  // SCIDB_EXEC_PARALLEL_H_
