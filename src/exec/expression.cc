#include "exec/expression.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/macros.h"
#include "types/uncertain.h"

namespace scidb {

Result<Value> EvalContext::Resolve(const std::string& name,
                                   int side_hint) const {
  size_t first = side_hint >= 0 ? static_cast<size_t>(side_hint) : 0;
  size_t last = side_hint >= 0 ? static_cast<size_t>(side_hint) + 1
                               : sides.size();
  for (size_t s = first; s < last && s < sides.size(); ++s) {
    const EvalSide& side = sides[s];
    if (side.schema == nullptr) continue;
    if (auto di = side.schema->DimIndex(name); di.ok()) {
      if (side.coords == nullptr) {
        return Status::Internal("no coordinates bound for side " +
                                std::to_string(s));
      }
      return Value((*side.coords)[di.value()]);
    }
    if (auto ai = side.schema->AttrIndex(name); ai.ok()) {
      if (side.attrs == nullptr) {
        return Status::Internal("no attributes bound for side " +
                                std::to_string(s));
      }
      return (*side.attrs)[ai.value()];
    }
  }
  return Status::NotFound("unknown dimension or attribute '" + name + "'");
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

std::string RefExpr::ToString() const {
  if (side_ < 0) return name_;
  return (side_ == 0 ? "A." : "B.") + name_;
}

namespace {

Result<Value> EvalArith(BinaryOp op, const Value& l, const Value& r) {
  // NULL propagates (three-valued arithmetic).
  if (l.is_null() || r.is_null()) return Value::Null();
  // Uncertain operands propagate error bars (paper §2.13).
  if (l.is_uncertain() || r.is_uncertain()) {
    ASSIGN_OR_RETURN(Uncertain a, l.AsUncertain());
    ASSIGN_OR_RETURN(Uncertain b, r.AsUncertain());
    switch (op) {
      case BinaryOp::kAdd: return Value(a + b);
      case BinaryOp::kSub: return Value(a - b);
      case BinaryOp::kMul: return Value(a * b);
      case BinaryOp::kDiv:
        if (b.mean == 0) return Value::Null();
        return Value(a / b);
      default:
        return Status::Invalid("modulo undefined for uncertain values");
    }
  }
  if (l.is_int64() && r.is_int64()) {
    int64_t a = l.int64_value();
    int64_t b = r.int64_value();
    switch (op) {
      case BinaryOp::kAdd: return Value(a + b);
      case BinaryOp::kSub: return Value(a - b);
      case BinaryOp::kMul: return Value(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Value::Null();
        return Value(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Value::Null();
        return Value(a % b);
      default: break;
    }
  }
  ASSIGN_OR_RETURN(double a, l.AsDouble());
  ASSIGN_OR_RETURN(double b, r.AsDouble());
  switch (op) {
    case BinaryOp::kAdd: return Value(a + b);
    case BinaryOp::kSub: return Value(a - b);
    case BinaryOp::kMul: return Value(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Value::Null();
      return Value(a / b);
    case BinaryOp::kMod:
      if (b == 0) return Value::Null();
      return Value(std::fmod(a, b));
    default: break;
  }
  return Status::Internal("EvalArith on non-arithmetic op");
}

Result<Value> EvalCompare(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // String comparison.
  if (l.is_string() && r.is_string()) {
    int c = l.string_value().compare(r.string_value());
    switch (op) {
      case BinaryOp::kEq: return Value(c == 0);
      case BinaryOp::kNe: return Value(c != 0);
      case BinaryOp::kLt: return Value(c < 0);
      case BinaryOp::kLe: return Value(c <= 0);
      case BinaryOp::kGt: return Value(c > 0);
      case BinaryOp::kGe: return Value(c >= 0);
      default: break;
    }
  }
  if (l.is_bool() && r.is_bool()) {
    bool a = l.bool_value(), b = r.bool_value();
    switch (op) {
      case BinaryOp::kEq: return Value(a == b);
      case BinaryOp::kNe: return Value(a != b);
      default: break;
    }
  }
  // Uncertain equality = 1-sigma interval overlap.
  if ((l.is_uncertain() || r.is_uncertain()) &&
      (op == BinaryOp::kEq || op == BinaryOp::kNe)) {
    ASSIGN_OR_RETURN(Uncertain a, l.AsUncertain());
    ASSIGN_OR_RETURN(Uncertain b, r.AsUncertain());
    bool eq = a.Overlaps(b);
    return Value(op == BinaryOp::kEq ? eq : !eq);
  }
  ASSIGN_OR_RETURN(double a, l.AsDouble());
  ASSIGN_OR_RETURN(double b, r.AsDouble());
  switch (op) {
    case BinaryOp::kEq: return Value(a == b);
    case BinaryOp::kNe: return Value(a != b);
    case BinaryOp::kLt: return Value(a < b);
    case BinaryOp::kLe: return Value(a <= b);
    case BinaryOp::kGt: return Value(a > b);
    case BinaryOp::kGe: return Value(a >= b);
    default: break;
  }
  return Status::Internal("EvalCompare on non-comparison op");
}

}  // namespace

Result<Value> BinaryExpr::Eval(const EvalContext& ctx) const {
  switch (op_) {
    case BinaryOp::kAnd: {
      // Short-circuit with SQL three-valued logic.
      ASSIGN_OR_RETURN(Value l, lhs_->Eval(ctx));
      if (l.is_bool() && !l.bool_value()) return Value(false);
      ASSIGN_OR_RETURN(Value r, rhs_->Eval(ctx));
      if (r.is_bool() && !r.bool_value()) return Value(false);
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value(true);
    }
    case BinaryOp::kOr: {
      ASSIGN_OR_RETURN(Value l, lhs_->Eval(ctx));
      if (l.is_bool() && l.bool_value()) return Value(true);
      ASSIGN_OR_RETURN(Value r, rhs_->Eval(ctx));
      if (r.is_bool() && r.bool_value()) return Value(true);
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value(false);
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      ASSIGN_OR_RETURN(Value l, lhs_->Eval(ctx));
      ASSIGN_OR_RETURN(Value r, rhs_->Eval(ctx));
      return EvalArith(op_, l, r);
    }
    default: {
      ASSIGN_OR_RETURN(Value l, lhs_->Eval(ctx));
      ASSIGN_OR_RETURN(Value r, rhs_->Eval(ctx));
      return EvalCompare(op_, l, r);
    }
  }
}

std::string BinaryExpr::ToString() const {
  return "(" + lhs_->ToString() + " " + BinaryOpName(op_) + " " +
         rhs_->ToString() + ")";
}

Result<Value> NotExpr::Eval(const EvalContext& ctx) const {
  ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx));
  if (v.is_null()) return Value::Null();
  if (!v.is_bool()) {
    return Status::TypeMismatch("not() requires a boolean operand");
  }
  return Value(!v.bool_value());
}

Result<Value> CallExpr::Eval(const EvalContext& ctx) const {
  if (ctx.functions == nullptr) {
    return Status::Internal("no function registry bound");
  }
  ASSIGN_OR_RETURN(const UserFunction* fn, ctx.functions->Find(fn_));
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& a : args_) {
    ASSIGN_OR_RETURN(Value v, a->Eval(ctx));
    args.push_back(std::move(v));
  }
  ASSIGN_OR_RETURN(std::vector<Value> out, fn->Call(args));
  if (out.empty()) return Value::Null();
  return out[0];
}

std::string CallExpr::ToString() const {
  std::string s = fn_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i) s += ", ";
    s += args_[i]->ToString();
  }
  return s + ")";
}

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value(v)); }
ExprPtr Lit(double v) { return Lit(Value(v)); }
ExprPtr Ref(std::string name, int side) {
  return std::make_shared<RefExpr>(std::move(name), side);
}
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kEq, l, r); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kNe, l, r); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kLt, l, r); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kLe, l, r); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kGt, l, r); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kGe, l, r); }
ExprPtr And(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kAnd, l, r); }
ExprPtr Or(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kOr, l, r); }
ExprPtr Not(ExprPtr e) { return std::make_shared<NotExpr>(std::move(e)); }
ExprPtr Add(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kAdd, l, r); }
ExprPtr Sub(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kSub, l, r); }
ExprPtr Mul(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kMul, l, r); }
ExprPtr Div(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kDiv, l, r); }
ExprPtr Mod(ExprPtr l, ExprPtr r) { return Bin(BinaryOp::kMod, l, r); }
ExprPtr Call(std::string fn, std::vector<ExprPtr> args) {
  return std::make_shared<CallExpr>(std::move(fn), std::move(args));
}

namespace {

// Splits an AND-tree into conjuncts.
void SplitConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op() == BinaryOp::kAnd) {
      SplitConjuncts(*b.lhs(), out);
      SplitConjuncts(*b.rhs(), out);
      return;
    }
  }
  out->push_back(&e);
}

}  // namespace

bool IsPerDimensionConjunction(const Expr& pred, const ArraySchema& schema) {
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(pred, &conjuncts);
  for (const Expr* c : conjuncts) {
    std::vector<std::string> refs;
    c->CollectRefs(&refs);
    std::set<std::string> distinct_dims;
    for (const auto& r : refs) {
      if (!schema.DimIndex(r).ok()) return false;  // attr or unknown name
      distinct_dims.insert(r);
    }
    if (distinct_dims.size() > 1) return false;  // e.g. "X = Y"
  }
  return true;
}

namespace {

// Tries to interpret a conjunct as <dim> <cmp> <int literal> (either
// orientation) and tighten `bounds` accordingly. Returns true when the
// conjunct was fully captured by the bounds.
bool TightenFromComparison(const Expr& e, const ArraySchema& schema,
                           std::vector<DimBounds>* bounds) {
  if (e.kind() != Expr::Kind::kBinary) return false;
  const auto& b = static_cast<const BinaryExpr&>(e);
  BinaryOp op = b.op();
  const Expr* l = b.lhs().get();
  const Expr* r = b.rhs().get();
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return false;
  }
  // Normalize to ref-on-left.
  if (l->kind() == Expr::Kind::kLiteral && r->kind() == Expr::Kind::kRef) {
    std::swap(l, r);
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      default: break;
    }
  }
  if (l->kind() != Expr::Kind::kRef || r->kind() != Expr::Kind::kLiteral) {
    return false;
  }
  auto di = schema.DimIndex(static_cast<const RefExpr*>(l)->name());
  if (!di.ok()) return false;
  const Value& lit = static_cast<const LiteralExpr*>(r)->value();
  auto vi = lit.AsInt64();
  if (!vi.ok()) return false;
  int64_t v = vi.value();
  DimBounds& db = (*bounds)[di.value()];
  switch (op) {
    case BinaryOp::kEq:
      db.low = std::max(db.low, v);
      db.high = std::min(db.high, v);
      break;
    case BinaryOp::kLt:
      db.high = std::min(db.high, v - 1);
      break;
    case BinaryOp::kLe:
      db.high = std::min(db.high, v);
      break;
    case BinaryOp::kGt:
      db.low = std::max(db.low, v + 1);
      break;
    case BinaryOp::kGe:
      db.low = std::max(db.low, v);
      break;
    default:
      return false;
  }
  return true;
}

}  // namespace

std::vector<DimBounds> ExtractDimBounds(const Expr& pred,
                                        const ArraySchema& schema,
                                        const Box& domain, bool* exact) {
  std::vector<DimBounds> bounds;
  bounds.reserve(domain.ndims());
  for (size_t d = 0; d < domain.ndims(); ++d) {
    bounds.push_back({domain.low[d], domain.high[d]});
  }
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(pred, &conjuncts);
  bool all_captured = true;
  for (const Expr* c : conjuncts) {
    if (!TightenFromComparison(*c, schema, &bounds)) all_captured = false;
  }
  if (exact != nullptr) *exact = all_captured;
  return bounds;
}

}  // namespace scidb
