#ifndef SCIDB_EXEC_SLICE_GATE_H_
#define SCIDB_EXEC_SLICE_GATE_H_

#include <cstdint>

#include "common/status.h"

namespace scidb {

// Fair-scheduling hook for chunk-parallel loops (DESIGN.md §15). When an
// ExecContext carries a gate, ForEachChunkParallel dispatches morsels in
// slices: Acquire, run at most slice_morsels() morsels on the pool,
// Release, repeat. The gate's implementation (server/fair_scheduler)
// grants slices in FIFO order across concurrent queries, so a heavy
// operator is preempted every slice and a cheap query waits at most one
// slice per active query instead of the heavy query's full runtime.
//
// Acquire may block (it is a blocking.manifest root); a non-OK return —
// typically Cancelled, when the query was aborted while waiting — stops
// the loop without running the slice. Release never blocks and must be
// called exactly once per successful Acquire.
class SliceGate {
 public:
  virtual ~SliceGate() = default;

  [[nodiscard]] virtual Status Acquire() = 0;
  virtual void Release() = 0;

  // Morsel budget per slice; values < 1 are treated as 1.
  virtual int64_t slice_morsels() const = 0;
};

}  // namespace scidb

#endif  // SCIDB_EXEC_SLICE_GATE_H_
