#include "common/macros.h"
#include "exec/operators.h"
#include "exec/parallel.h"

namespace scidb {

Result<MemArray> WindowAggregate(const ExecContext& ctx, const MemArray& a,
                                 const std::vector<int64_t>& radii,
                                 const std::string& agg,
                                 const std::string& attr) {
  if (ctx.aggregates == nullptr) {
    return Status::Internal("WindowAggregate: no aggregate registry bound");
  }
  const ArraySchema& schema = a.schema();
  if (radii.size() != schema.ndims()) {
    return Status::Invalid("WindowAggregate: need one radius per dimension");
  }
  for (int64_t r : radii) {
    if (r < 0) return Status::Invalid("WindowAggregate: negative radius");
  }
  ASSIGN_OR_RETURN(const AggregateFunction* afn, ctx.aggregates->Find(agg));
  size_t attr_idx = 0;
  if (attr != "*") {
    ASSIGN_OR_RETURN(attr_idx, schema.AttrIndex(attr));
  }

  ArraySchema out_schema(schema.name() + "_window", schema.dims(),
                         {AggOutputAttr(agg)});
  MemArray out(out_schema);

  // For each present cell, accumulate over the window box. The window is
  // evaluated via chunk-local random access: cost O(cells * window).
  // (A production engine would slide partial aggregates; the separable
  // optimization is noted in DESIGN.md §5 and benchmarked as-is.)
  //
  // Parallel-safe because each morsel only reads `a` (windows cross chunk
  // boundaries, but reads of a const array share nothing mutable) and
  // writes its own output chunk.
  const std::vector<AttributeDesc>& out_attrs = out.schema().attrs();
  RETURN_NOT_OK(ParallelChunkMap(
      ctx, a, &out,
      [&](const Coordinates&, const Chunk& chunk,
          ExecStats* stats) -> Result<std::shared_ptr<Chunk>> {
        auto oc = std::make_shared<Chunk>(chunk.box(), out_attrs);
        for (Chunk::CellIterator it(chunk); it.valid(); it.Next()) {
          ++stats->cells_visited;
          Coordinates c = it.coords();
          Box window;
          window.low.resize(c.size());
          window.high.resize(c.size());
          for (size_t d = 0; d < c.size(); ++d) {
            window.low[d] = c[d] - radii[d];
            window.high[d] = c[d] + radii[d];
            // Clip to declared bounds so probes stay in-range.
            window.low[d] = std::max(window.low[d], schema.dim(d).low);
            if (!schema.dim(d).unbounded()) {
              window.high[d] = std::min(window.high[d], schema.dim(d).high);
            }
          }
          auto state = afn->NewState();
          Coordinates probe = window.low;
          do {
            auto cell = a.GetCell(probe);
            if (cell.has_value()) {
              RETURN_NOT_OK(state->Accumulate((*cell)[attr_idx]));
            }
          } while (NextInBox(window, &probe));
          oc->block(0).Set(it.rank(), state->Finalize());
          oc->MarkPresent(it.rank());
        }
        return oc;
      }));
  return out;
}

}  // namespace scidb
