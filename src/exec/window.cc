#include "common/macros.h"
#include "exec/operators.h"

namespace scidb {

Result<MemArray> WindowAggregate(const ExecContext& ctx, const MemArray& a,
                                 const std::vector<int64_t>& radii,
                                 const std::string& agg,
                                 const std::string& attr) {
  if (ctx.aggregates == nullptr) {
    return Status::Internal("WindowAggregate: no aggregate registry bound");
  }
  const ArraySchema& schema = a.schema();
  if (radii.size() != schema.ndims()) {
    return Status::Invalid("WindowAggregate: need one radius per dimension");
  }
  for (int64_t r : radii) {
    if (r < 0) return Status::Invalid("WindowAggregate: negative radius");
  }
  ASSIGN_OR_RETURN(const AggregateFunction* afn, ctx.aggregates->Find(agg));
  size_t attr_idx = 0;
  if (attr != "*") {
    ASSIGN_OR_RETURN(attr_idx, schema.AttrIndex(attr));
  }

  ArraySchema out_schema(schema.name() + "_window", schema.dims(),
                         {AggOutputAttr(agg)});
  MemArray out(out_schema);

  // For each present cell, accumulate over the window box. The window is
  // evaluated via chunk-local random access: cost O(cells * window).
  // (A production engine would slide partial aggregates; the separable
  // optimization is noted in DESIGN.md §5 and benchmarked as-is.)
  Status st;
  bool failed = false;
  a.ForEachCell([&](const Coordinates& c, const Chunk&, int64_t) {
    if (ctx.stats != nullptr) ++ctx.stats->cells_visited;
    Box window;
    window.low.resize(c.size());
    window.high.resize(c.size());
    for (size_t d = 0; d < c.size(); ++d) {
      window.low[d] = c[d] - radii[d];
      window.high[d] = c[d] + radii[d];
      // Clip to declared bounds so probes stay in-range.
      window.low[d] = std::max(window.low[d], schema.dim(d).low);
      if (!schema.dim(d).unbounded()) {
        window.high[d] = std::min(window.high[d], schema.dim(d).high);
      }
    }
    auto state = afn->NewState();
    Coordinates probe = window.low;
    do {
      auto cell = a.GetCell(probe);
      if (cell.has_value()) {
        st = state->Accumulate((*cell)[attr_idx]);
        if (!st.ok()) {
          failed = true;
          return false;
        }
      }
    } while (NextInBox(window, &probe));
    st = out.SetCell(c, state->Finalize());
    if (!st.ok()) {
      failed = true;
      return false;
    }
    return true;
  });
  if (failed) return st;
  return out;
}

}  // namespace scidb
