#ifndef SCIDB_EXEC_OPERATORS_H_
#define SCIDB_EXEC_OPERATORS_H_

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "array/mem_array.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "exec/expression.h"
#include "exec/slice_gate.h"
#include "udf/aggregate.h"
#include "udf/function.h"

namespace scidb {

// Shared operator environment: registries plus optional execution
// statistics for the pruning/ablation benchmarks.
struct ExecStats {
  int64_t chunks_scanned = 0;
  int64_t chunks_pruned = 0;
  int64_t cells_visited = 0;
  // Morsel accounting (DESIGN.md §8): chunk-morsels dispatched and the
  // widest pool that ran them (1 = serial).
  int64_t morsels = 0;
  int64_t parallel_workers = 0;
};

struct ExecContext {
  const FunctionRegistry* functions = nullptr;
  const AggregateRegistry* aggregates = nullptr;
  // Ablation switch for EXP-CHUNK / DESIGN.md §5: when false, Subsample
  // visits every chunk instead of pruning via the predicate's box.
  bool enable_chunk_pruning = true;
  ExecStats* stats = nullptr;  // optional
  // Morsel executor for chunk-parallel operators (exec/parallel.h); null
  // or width-1 runs the serial path. Non-owning (Session owns it).
  ThreadPool* pool = nullptr;
  // Query-server hooks (DESIGN.md §15), all optional and non-owning.
  // `cancel` is checked before every morsel (parallel and serial paths):
  // once set, the operator aborts with Cancelled within one morsel.
  const std::atomic<bool>* cancel = nullptr;
  // Fair-scheduling gate: morsels dispatch in bounded slices so the
  // shared pool time-slices across concurrent queries.
  SliceGate* gate = nullptr;
  // Per-query worker cap on the shared pool (0 = full pool width). The
  // server clamps each session's requested parallelism to this.
  int max_workers = 0;
};

// ===================== structural operators (§2.2.1) =====================
// Data-agnostic: results depend only on input structure.

// Subsample(A, P): P must be a conjunction of per-dimension conditions
// ("X = 3 and Y < 4" legal, "X = Y" not — rejected as Invalid). Keeps the
// matching cells at their original index values; same dimensionality.
Result<MemArray> Subsample(const ExecContext& ctx, const MemArray& a,
                           const ExprPtr& pred);

// Exists? [A, 7, 7]
[[nodiscard]] bool Exists(const MemArray& a, const Coordinates& c);

// Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3]): relinearizes the array by
// iterating `dim_order` (first-listed slowest) and refolding into
// `new_dims`. Cell counts must match; the input must be bounded.
Result<MemArray> Reshape(const ExecContext& ctx, const MemArray& a,
                         const std::vector<std::string>& dim_order,
                         std::vector<DimensionDesc> new_dims);

// Sjoin(A, B, A.x = B.y, ...): join predicate over dimensions only
// (equality pairs). Result has (m + n - k) dimensions — A's dimensions
// plus B's un-joined dimensions — with concatenated cell tuples where both
// cells are present.
Result<MemArray> Sjoin(
    const ExecContext& ctx, const MemArray& a, const MemArray& b,
    const std::vector<std::pair<std::string, std::string>>& dim_pairs);

// Adds a size-1 dimension named `name` (coordinate = low = 1).
Result<MemArray> AddDimension(const ExecContext& ctx, const MemArray& a,
                              const std::string& name);

// Removes dimension `name`; every pair of present cells must agree on the
// remaining coordinates (guaranteed when the dimension has extent 1),
// otherwise Invalid.
Result<MemArray> RemoveDimension(const ExecContext& ctx, const MemArray& a,
                                 const std::string& name);

// Concatenates B after A along dimension `dim`; schemas must match
// (attribute lists equal, same dimensionality).
Result<MemArray> Concat(const ExecContext& ctx, const MemArray& a,
                        const MemArray& b, const std::string& dim);

// Cross product: (m + n)-dimensional, every pair of present cells,
// concatenated tuples.
Result<MemArray> CrossProduct(const ExecContext& ctx, const MemArray& a,
                              const MemArray& b);

// ================== content-dependent operators (§2.2.2) =================

// Filter(A, P): same dimensions; cells where P is true keep their values,
// cells where P is false or NULL become NULL-valued (still present), per
// the paper's definition.
Result<MemArray> Filter(const ExecContext& ctx, const MemArray& a,
                        const ExprPtr& pred);

// Aggregate(A, {G...}, agg(attr)): groups over the k grouping dimensions;
// each group aggregates the (n-k)-dimensional subarray. `attr` may be "*"
// for the first attribute (the paper's Sum(*)).
Result<MemArray> Aggregate(const ExecContext& ctx, const MemArray& a,
                           const std::vector<std::string>& group_dims,
                           const std::string& agg, const std::string& attr);

// Multi-aggregate variant: several (agg, attr) pairs computed in ONE pass
// over the input; the output has one attribute per pair, named
// "<agg>_<attr>" ("<agg>" when attr is "*"), deduplicated with "_2".
struct AggCall {
  std::string agg;
  std::string attr;  // "*" = first attribute
};
Result<MemArray> AggregateMulti(const ExecContext& ctx, const MemArray& a,
                                const std::vector<std::string>& group_dims,
                                const std::vector<AggCall>& calls);

// Cjoin(A, B, P over data values): (m + n)-dimensional result; cell
// [a..., b...] holds the concatenated tuple where P is true, NULL where P
// is false (per Figure 3).
Result<MemArray> Cjoin(const ExecContext& ctx, const MemArray& a,
                       const MemArray& b, const ExprPtr& pred);

// Apply(A, name, type, e): appends attribute `name` computed by `e` over
// each present cell (dims and attrs are in scope).
Result<MemArray> Apply(const ExecContext& ctx, const MemArray& a,
                       const std::string& name, DataType type,
                       const ExprPtr& e, bool uncertain = false);

// Project(A, attrs): keeps the named attributes, in the given order.
Result<MemArray> Project(const ExecContext& ctx, const MemArray& a,
                         const std::vector<std::string>& attrs);

// ======================= science operators (§2.3) ========================

// Regrid(A, factors, agg(attr)): coarsens the array by `factors[d]` along
// each dimension, aggregating the cells of each block — the paper's
// canonical "regrid" science operation.
Result<MemArray> Regrid(const ExecContext& ctx, const MemArray& a,
                        const std::vector<int64_t>& factors,
                        const std::string& agg, const std::string& attr);

// WindowAggregate(A, radii, agg(attr)): sliding-window aggregate — every
// present cell c gets agg over the present cells of the box
// [c - radii, c + radii]. Smoothing/moving averages for the time-series
// analytics of §2.14 and the image processing of §2.10.
Result<MemArray> WindowAggregate(const ExecContext& ctx, const MemArray& a,
                                 const std::vector<int64_t>& radii,
                                 const std::string& agg,
                                 const std::string& attr);

// ========================= helpers shared by ops =========================

// Merges attribute lists for join outputs, renaming collisions from B by
// appending "_2".
std::vector<AttributeDesc> MergeAttrs(const std::vector<AttributeDesc>& a,
                                      const std::vector<AttributeDesc>& b);

// The output attribute produced by aggregate `agg` (count -> int64,
// usum/uavg -> uncertain double, everything else -> double).
AttributeDesc AggOutputAttr(const std::string& agg);

}  // namespace scidb

#endif  // SCIDB_EXEC_OPERATORS_H_
