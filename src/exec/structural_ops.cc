#include <algorithm>
#include <map>
#include <set>

#include "common/macros.h"
#include "exec/operators.h"
#include "exec/parallel.h"

namespace scidb {

std::vector<AttributeDesc> MergeAttrs(const std::vector<AttributeDesc>& a,
                                      const std::vector<AttributeDesc>& b) {
  std::vector<AttributeDesc> out = a;
  std::set<std::string> names;
  for (const auto& x : a) names.insert(x.name);
  for (AttributeDesc x : b) {
    while (names.count(x.name)) x.name += "_2";
    names.insert(x.name);
    out.push_back(std::move(x));
  }
  return out;
}

// ------------------------------------------------------------- Subsample

Result<MemArray> Subsample(const ExecContext& ctx, const MemArray& a,
                           const ExprPtr& pred) {
  if (pred == nullptr) return Status::Invalid("Subsample: null predicate");
  if (!IsPerDimensionConjunction(*pred, a.schema())) {
    return Status::Invalid(
        "Subsample predicate must be a conjunction of conditions on each "
        "dimension independently: " +
        pred->ToString());
  }
  const ArraySchema& schema = a.schema();
  MemArray out(schema);
  out.mutable_schema()->set_name(schema.name() + "_subsample");

  RETURN_NOT_OK(ParallelChunkMap(
      ctx, a, &out,
      [&](const Coordinates&, const Chunk& chunk,
          ExecStats* stats) -> Result<std::shared_ptr<Chunk>> {
        bool exact = false;
        Box want = chunk.box();
        if (ctx.enable_chunk_pruning) {
          std::vector<DimBounds> bounds =
              ExtractDimBounds(*pred, schema, chunk.box(), &exact);
          for (size_t d = 0; d < bounds.size(); ++d) {
            if (bounds[d].empty()) {
              ++stats->chunks_pruned;
              return std::shared_ptr<Chunk>();
            }
            want.low[d] = bounds[d].low;
            want.high[d] = bounds[d].high;
          }
        }
        ++stats->chunks_scanned;

        EvalContext ectx;
        ectx.functions = ctx.functions;
        Coordinates coords;
        ectx.sides.push_back({&schema, &coords, nullptr});

        std::shared_ptr<Chunk> oc;  // created lazily on the first keeper
        // Iterate only the implied sub-box of the chunk; when the bounds
        // fully capture the predicate, skip per-cell re-evaluation
        // (data-agnostic fast path — the "opportunity for optimization"
        // of §2.2.1).
        Coordinates c = want.low;
        do {
          int64_t rank = RankInBox(chunk.box(), c);
          if (!chunk.IsPresent(rank)) continue;
          ++stats->cells_visited;
          if (!exact) {
            coords = c;
            ASSIGN_OR_RETURN(Value keep, pred->Eval(ectx));
            if (!keep.is_bool() || !keep.bool_value()) continue;
          }
          if (oc == nullptr) {
            oc = std::make_shared<Chunk>(chunk.box(), schema.attrs());
          }
          for (size_t at = 0; at < chunk.nattrs(); ++at) {
            oc->block(at).Set(rank, chunk.block(at).Get(rank));
          }
          oc->MarkPresent(rank);
        } while (NextInBox(want, &c));
        return oc;
      }));
  return out;
}

bool Exists(const MemArray& a, const Coordinates& c) { return a.Exists(c); }

// --------------------------------------------------------------- Reshape

Result<MemArray> Reshape(const ExecContext& ctx, const MemArray& a,
                         const std::vector<std::string>& dim_order,
                         std::vector<DimensionDesc> new_dims) {
  (void)ctx;
  const ArraySchema& schema = a.schema();
  if (dim_order.size() != schema.ndims()) {
    return Status::Invalid("Reshape: dim_order must list all " +
                           std::to_string(schema.ndims()) + " dimensions");
  }
  ASSIGN_OR_RETURN(Box in_box, schema.Bounds());

  // Permuted box following dim_order (first listed iterates slowest).
  std::vector<size_t> perm(dim_order.size());
  std::set<size_t> used;
  for (size_t i = 0; i < dim_order.size(); ++i) {
    ASSIGN_OR_RETURN(size_t di, schema.DimIndex(dim_order[i]));
    if (!used.insert(di).second) {
      return Status::Invalid("Reshape: duplicate dimension '" +
                             dim_order[i] + "'");
    }
    perm[i] = di;
  }

  ArraySchema out_schema(schema.name() + "_reshape", std::move(new_dims),
                         schema.attrs());
  RETURN_NOT_OK(out_schema.Validate());
  ASSIGN_OR_RETURN(Box out_box, out_schema.Bounds());
  if (out_box.CellCount() != in_box.CellCount()) {
    return Status::Invalid(
        "Reshape: cell count mismatch (" +
        std::to_string(in_box.CellCount()) + " vs " +
        std::to_string(out_box.CellCount()) + ")");
  }

  Box perm_box;
  for (size_t i = 0; i < perm.size(); ++i) {
    perm_box.low.push_back(in_box.low[perm[i]]);
    perm_box.high.push_back(in_box.high[perm[i]]);
  }

  MemArray out(out_schema);
  Coordinates pc(perm.size());
  std::vector<Value> cell;
  bool failed = false;
  Status st;
  a.ForEachCell([&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
    // Linear index under the requested iteration order.
    for (size_t i = 0; i < perm.size(); ++i) pc[i] = c[perm[i]];
    int64_t lin = RankInBox(perm_box, pc);
    Coordinates oc = UnrankInBox(out_box, lin);
    cell.clear();
    for (size_t at = 0; at < chunk.nattrs(); ++at) {
      cell.push_back(chunk.block(at).Get(rank));
    }
    st = out.SetCell(oc, cell);
    if (!st.ok()) {
      failed = true;
      return false;
    }
    return true;
  });
  if (failed) return st;
  return out;
}

// ----------------------------------------------------------------- Sjoin

Result<MemArray> Sjoin(
    const ExecContext& ctx, const MemArray& a, const MemArray& b,
    const std::vector<std::pair<std::string, std::string>>& dim_pairs) {
  (void)ctx;
  if (dim_pairs.empty()) {
    return Status::Invalid("Sjoin: need at least one dimension pair");
  }
  const ArraySchema& sa = a.schema();
  const ArraySchema& sb = b.schema();

  std::vector<size_t> a_join, b_join;
  std::set<size_t> a_seen, b_seen;
  for (const auto& [an, bn] : dim_pairs) {
    ASSIGN_OR_RETURN(size_t ai, sa.DimIndex(an));
    ASSIGN_OR_RETURN(size_t bi, sb.DimIndex(bn));
    if (!a_seen.insert(ai).second || !b_seen.insert(bi).second) {
      return Status::Invalid("Sjoin: dimension used twice in join predicate");
    }
    a_join.push_back(ai);
    b_join.push_back(bi);
  }

  // Output: all of A's dims, then B's un-joined dims.
  std::vector<DimensionDesc> out_dims = sa.dims();
  std::vector<size_t> b_free;
  for (size_t d = 0; d < sb.ndims(); ++d) {
    if (!b_seen.count(d)) {
      b_free.push_back(d);
      DimensionDesc dd = sb.dim(d);
      // Rename on collision with any A dim.
      while (sa.DimIndex(dd.name).ok()) dd.name += "_2";
      out_dims.push_back(dd);
    }
  }
  ArraySchema out_schema(sa.name() + "_sjoin", std::move(out_dims),
                         MergeAttrs(sa.attrs(), sb.attrs()));
  MemArray out(out_schema);

  // Hash B's present cells by their joined-dimension values.
  std::map<Coordinates, std::vector<std::pair<const Chunk*, int64_t>>>
      b_index;
  b.ForEachCell([&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
    Coordinates key(b_join.size());
    for (size_t i = 0; i < b_join.size(); ++i) key[i] = c[b_join[i]];
    b_index[key].push_back({&chunk, rank});
    return true;
  });

  Status st;
  bool failed = false;
  std::vector<Value> cell;
  a.ForEachCell([&](const Coordinates& ca, const Chunk& ach, int64_t arank) {
    Coordinates key(a_join.size());
    for (size_t i = 0; i < a_join.size(); ++i) key[i] = ca[a_join[i]];
    auto it = b_index.find(key);
    if (it == b_index.end()) return true;
    for (const auto& [bch, brank] : it->second) {
      Coordinates cb = UnrankInBox(bch->box(), brank);
      Coordinates oc = ca;
      for (size_t f : b_free) oc.push_back(cb[f]);
      cell.clear();
      for (size_t at = 0; at < ach.nattrs(); ++at) {
        cell.push_back(ach.block(at).Get(arank));
      }
      for (size_t at = 0; at < bch->nattrs(); ++at) {
        cell.push_back(bch->block(at).Get(brank));
      }
      st = out.SetCell(oc, cell);
      if (!st.ok()) {
        failed = true;
        return false;
      }
    }
    return true;
  });
  if (failed) return st;
  return out;
}

// ---------------------------------------------------- Add/RemoveDimension

Result<MemArray> AddDimension(const ExecContext& ctx, const MemArray& a,
                              const std::string& name) {
  (void)ctx;
  if (a.schema().DimIndex(name).ok() || a.schema().AttrIndex(name).ok()) {
    return Status::Invalid("AddDimension: name '" + name +
                           "' already in use");
  }
  std::vector<DimensionDesc> dims = a.schema().dims();
  dims.push_back({name, 1, 1, 1});
  ArraySchema out_schema(a.schema().name() + "_adddim", std::move(dims),
                         a.schema().attrs());
  MemArray out(out_schema);
  Status st;
  bool failed = false;
  std::vector<Value> cell;
  a.ForEachCell([&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
    Coordinates oc = c;
    oc.push_back(1);
    cell.clear();
    for (size_t at = 0; at < chunk.nattrs(); ++at) {
      cell.push_back(chunk.block(at).Get(rank));
    }
    st = out.SetCell(oc, cell);
    if (!st.ok()) {
      failed = true;
      return false;
    }
    return true;
  });
  if (failed) return st;
  return out;
}

Result<MemArray> RemoveDimension(const ExecContext& ctx, const MemArray& a,
                                 const std::string& name) {
  (void)ctx;
  ASSIGN_OR_RETURN(size_t di, a.schema().DimIndex(name));
  if (a.schema().ndims() == 1) {
    return Status::Invalid("RemoveDimension: cannot remove the only "
                           "dimension");
  }
  std::vector<DimensionDesc> dims;
  for (size_t d = 0; d < a.schema().ndims(); ++d) {
    if (d != di) dims.push_back(a.schema().dim(d));
  }
  ArraySchema out_schema(a.schema().name() + "_rmdim", std::move(dims),
                         a.schema().attrs());
  MemArray out(out_schema);
  Status st;
  bool failed = false;
  std::vector<Value> cell;
  a.ForEachCell([&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
    Coordinates oc;
    oc.reserve(c.size() - 1);
    for (size_t d = 0; d < c.size(); ++d) {
      if (d != di) oc.push_back(c[d]);
    }
    if (out.Exists(oc)) {
      st = Status::Invalid(
          "RemoveDimension: removing '" + name +
          "' collapses distinct cells onto " + CoordsToString(oc));
      failed = true;
      return false;
    }
    cell.clear();
    for (size_t at = 0; at < chunk.nattrs(); ++at) {
      cell.push_back(chunk.block(at).Get(rank));
    }
    st = out.SetCell(oc, cell);
    if (!st.ok()) {
      failed = true;
      return false;
    }
    return true;
  });
  if (failed) return st;
  return out;
}

// ---------------------------------------------------------------- Concat

Result<MemArray> Concat(const ExecContext& ctx, const MemArray& a,
                        const MemArray& b, const std::string& dim) {
  (void)ctx;
  const ArraySchema& sa = a.schema();
  const ArraySchema& sb = b.schema();
  if (!(sa == sb)) {
    return Status::Invalid("Concat: array schemas must match");
  }
  ASSIGN_OR_RETURN(size_t di, sa.DimIndex(dim));

  // B is shifted to start right after A's extent along `dim`.
  ASSIGN_OR_RETURN(Box a_bounds, sa.Bounds());
  int64_t shift = a_bounds.high[di] + 1 - sb.dim(di).low;

  std::vector<DimensionDesc> dims = sa.dims();
  if (sb.dim(di).unbounded()) {
    dims[di].high = kUnboundedDim;
  } else {
    dims[di].high = a_bounds.high[di] + sb.dim(di).extent();
  }
  ArraySchema out_schema(sa.name() + "_concat", std::move(dims), sa.attrs());
  MemArray out(out_schema);

  Status st;
  bool failed = false;
  std::vector<Value> cell;
  auto copy_all = [&](const MemArray& src, int64_t delta) {
    src.ForEachCell(
        [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
          Coordinates oc = c;
          oc[di] += delta;
          cell.clear();
          for (size_t at = 0; at < chunk.nattrs(); ++at) {
            cell.push_back(chunk.block(at).Get(rank));
          }
          st = out.SetCell(oc, cell);
          if (!st.ok()) {
            failed = true;
            return false;
          }
          return true;
        });
  };
  copy_all(a, 0);
  if (!failed) copy_all(b, shift);
  if (failed) return st;
  return out;
}

// ---------------------------------------------------------- CrossProduct

Result<MemArray> CrossProduct(const ExecContext& ctx, const MemArray& a,
                              const MemArray& b) {
  (void)ctx;
  const ArraySchema& sa = a.schema();
  const ArraySchema& sb = b.schema();
  std::vector<DimensionDesc> dims = sa.dims();
  for (DimensionDesc d : sb.dims()) {
    while (sa.DimIndex(d.name).ok()) d.name += "_2";
    dims.push_back(std::move(d));
  }
  ArraySchema out_schema(sa.name() + "_cross", std::move(dims),
                         MergeAttrs(sa.attrs(), sb.attrs()));
  MemArray out(out_schema);

  Status st;
  bool failed = false;
  std::vector<Value> cell;
  a.ForEachCell([&](const Coordinates& ca, const Chunk& ach, int64_t ar) {
    b.ForEachCell([&](const Coordinates& cb, const Chunk& bch, int64_t br) {
      Coordinates oc = ca;
      oc.insert(oc.end(), cb.begin(), cb.end());
      cell.clear();
      for (size_t at = 0; at < ach.nattrs(); ++at) {
        cell.push_back(ach.block(at).Get(ar));
      }
      for (size_t at = 0; at < bch.nattrs(); ++at) {
        cell.push_back(bch.block(at).Get(br));
      }
      st = out.SetCell(oc, cell);
      if (!st.ok()) {
        failed = true;
        return false;
      }
      return true;
    });
    return !failed;
  });
  if (failed) return st;
  return out;
}

}  // namespace scidb
