#ifndef SCIDB_EXEC_EXPRESSION_H_
#define SCIDB_EXEC_EXPRESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "array/coordinates.h"
#include "array/schema.h"
#include "common/result.h"
#include "udf/function.h"
#include "udf/shape_function.h"
#include "types/value.h"

namespace scidb {

// One operand array visible to an expression. Join predicates see two
// sides (A and B); scans see one.
struct EvalSide {
  const ArraySchema* schema = nullptr;
  const Coordinates* coords = nullptr;
  const std::vector<Value>* attrs = nullptr;
};

struct EvalContext {
  std::vector<EvalSide> sides;
  const FunctionRegistry* functions = nullptr;

  // Resolves `name` as a dimension or attribute on any side. `side_hint`
  // narrows the search when the reference was qualified ("A.x").
  Result<Value> Resolve(const std::string& name, int side_hint) const;
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* BinaryOpName(BinaryOp op);

// Immutable expression tree over dimensions, attributes, literals, UDF
// calls, arithmetic and comparisons. Uncertain operands propagate error
// bars through arithmetic (paper §2.13). Shared via shared_ptr — plans
// reuse subtrees freely.
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind { kLiteral, kRef, kBinary, kNot, kCall };

  virtual ~Expr() = default;
  virtual Kind kind() const = 0;
  virtual Result<Value> Eval(const EvalContext& ctx) const = 0;
  virtual std::string ToString() const = 0;

  // Every dimension/attribute name referenced (unqualified), used by
  // Subsample legality checks and chunk pruning.
  virtual void CollectRefs(std::vector<std::string>* out) const = 0;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Kind kind() const override { return Kind::kLiteral; }
  Result<Value> Eval(const EvalContext&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  void CollectRefs(std::vector<std::string>*) const override {}
  const Value& value() const { return value_; }

 private:
  Value value_;
};

// Reference to a dimension or attribute; side < 0 means "search all sides".
class RefExpr : public Expr {
 public:
  explicit RefExpr(std::string name, int side = -1)
      : name_(std::move(name)), side_(side) {}
  Kind kind() const override { return Kind::kRef; }
  Result<Value> Eval(const EvalContext& ctx) const override {
    return ctx.Resolve(name_, side_);
  }
  std::string ToString() const override;
  void CollectRefs(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }
  const std::string& name() const { return name_; }
  int side() const { return side_; }

 private:
  std::string name_;
  int side_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Kind kind() const override { return Kind::kBinary; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectRefs(std::vector<std::string>* out) const override {
    lhs_->CollectRefs(out);
    rhs_->CollectRefs(out);
  }
  BinaryOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  Kind kind() const override { return Kind::kNot; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override {
    return "not(" + operand_->ToString() + ")";
  }
  void CollectRefs(std::vector<std::string>* out) const override {
    operand_->CollectRefs(out);
  }
  const ExprPtr& operand() const { return operand_; }

 private:
  ExprPtr operand_;
};

// Call into the FunctionRegistry ("even(X)"); multi-output UDFs yield
// their first output in expression position.
class CallExpr : public Expr {
 public:
  CallExpr(std::string fn, std::vector<ExprPtr> args)
      : fn_(std::move(fn)), args_(std::move(args)) {}
  Kind kind() const override { return Kind::kCall; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectRefs(std::vector<std::string>* out) const override {
    for (const auto& a : args_) a->CollectRefs(out);
  }
  const std::string& fn() const { return fn_; }
  const std::vector<ExprPtr>& args() const { return args_; }

 private:
  std::string fn_;
  std::vector<ExprPtr> args_;
};

// ----- convenience constructors (the C++ "language binding" for
// expressions; the AQL parser produces the same nodes) -----
ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Ref(std::string name, int side = -1);
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);
ExprPtr Mod(ExprPtr l, ExprPtr r);
ExprPtr Call(std::string fn, std::vector<ExprPtr> args);

// ----- structural-predicate analysis (Subsample legality + pruning) -----

// True when the predicate is a conjunction of conditions each over at most
// one distinct dimension of `schema` and no attributes — the paper's
// Subsample restriction ("X = 3 and Y < 4" legal, "X = Y" not).
[[nodiscard]] bool IsPerDimensionConjunction(const Expr& pred,
                                             const ArraySchema& schema);

// Conservative per-dimension bounds implied by the predicate within
// `domain`: simple comparisons against literals tighten bounds; anything
// unrecognized leaves the dimension's full domain. Used for chunk pruning;
// exact cell filtering still re-evaluates the predicate.
// `exact` (optional) is set true when every conjunct was captured by the
// returned bounds, i.e. the predicate IS the box and per-cell
// re-evaluation can be skipped entirely.
std::vector<DimBounds> ExtractDimBounds(const Expr& pred,
                                        const ArraySchema& schema,
                                        const Box& domain,
                                        bool* exact = nullptr);

}  // namespace scidb

#endif  // SCIDB_EXEC_EXPRESSION_H_
