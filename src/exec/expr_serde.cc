#include "exec/expr_serde.h"

#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "types/value_serde.h"

namespace scidb {

namespace {

// Expr node tags. Append-only: renumbering breaks cross-version decode.
enum class ExprTag : uint8_t {
  kLiteral = 1,
  kRef = 2,
  kBinary = 3,
  kNot = 4,
  kCall = 5,
};

constexpr uint8_t kMaxBinaryOp = static_cast<uint8_t>(BinaryOp::kOr);

void EncodeExprRec(const Expr& e, ByteWriter* w, int depth) {
  // Engine-built predicates never approach the cap (the parser's own
  // recursion limit is lower); encode a NULL literal as a defensive
  // bottom rather than recursing past the decoder's limit.
  if (depth >= kMaxWireDepth) {
    w->PutU8(static_cast<uint8_t>(ExprTag::kLiteral));
    EncodeValue(Value::Null(), w);
    return;
  }
  switch (e.kind()) {
    case Expr::Kind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kLiteral));
      EncodeValue(lit.value(), w);
      return;
    }
    case Expr::Kind::kRef: {
      const auto& ref = static_cast<const RefExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kRef));
      w->PutString(ref.name());
      w->PutSignedVarint(ref.side());
      return;
    }
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kBinary));
      w->PutU8(static_cast<uint8_t>(bin.op()));
      EncodeExprRec(*bin.lhs(), w, depth + 1);
      EncodeExprRec(*bin.rhs(), w, depth + 1);
      return;
    }
    case Expr::Kind::kNot: {
      const auto& n = static_cast<const NotExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kNot));
      EncodeExprRec(*n.operand(), w, depth + 1);
      return;
    }
    case Expr::Kind::kCall: {
      const auto& call = static_cast<const CallExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kCall));
      w->PutString(call.fn());
      w->PutVarint(call.args().size());
      for (const auto& a : call.args()) EncodeExprRec(*a, w, depth + 1);
      return;
    }
  }
}

Result<ExprPtr> DecodeExprRec(ByteReader* r, int depth) {
  if (depth >= kMaxWireDepth) {
    return Status::Corruption("expression nesting exceeds wire depth cap");
  }
  ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ExprTag>(tag)) {
    case ExprTag::kLiteral: {
      ASSIGN_OR_RETURN(Value v, DecodeValue(r));
      return Lit(std::move(v));
    }
    case ExprTag::kRef: {
      ASSIGN_OR_RETURN(std::string name, r->GetString());
      ASSIGN_OR_RETURN(int64_t side, r->GetSignedVarint());
      if (side < -1 || side > 1) {
        return Status::Corruption("expression ref side out of range");
      }
      return Ref(std::move(name), static_cast<int>(side));
    }
    case ExprTag::kBinary: {
      ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > kMaxBinaryOp) {
        return Status::Corruption("unknown binary op " + std::to_string(op));
      }
      ASSIGN_OR_RETURN(ExprPtr lhs, DecodeExprRec(r, depth + 1));
      ASSIGN_OR_RETURN(ExprPtr rhs, DecodeExprRec(r, depth + 1));
      return Bin(static_cast<BinaryOp>(op), std::move(lhs), std::move(rhs));
    }
    case ExprTag::kNot: {
      ASSIGN_OR_RETURN(ExprPtr operand, DecodeExprRec(r, depth + 1));
      return Not(std::move(operand));
    }
    case ExprTag::kCall: {
      ASSIGN_OR_RETURN(std::string fn, r->GetString());
      ASSIGN_OR_RETURN(uint64_t nargs, r->GetVarint());
      if (nargs > r->remaining()) {
        return Status::Corruption("call argument count too large");
      }
      std::vector<ExprPtr> args;
      args.reserve(static_cast<size_t>(nargs));
      for (uint64_t i = 0; i < nargs; ++i) {
        ASSIGN_OR_RETURN(ExprPtr a, DecodeExprRec(r, depth + 1));
        args.push_back(std::move(a));
      }
      return Call(std::move(fn), std::move(args));
    }
  }
  return Status::Corruption("unknown expression tag " + std::to_string(tag));
}

}  // namespace

void EncodeExpr(const Expr& e, ByteWriter* w) { EncodeExprRec(e, w, 0); }

Result<ExprPtr> DecodeExpr(ByteReader* r) { return DecodeExprRec(r, 0); }

}  // namespace scidb
