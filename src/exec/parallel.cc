#include "exec/parallel.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/flight_recorder.h"
#include "common/macros.h"

namespace scidb {

namespace {

void FoldStats(const ExecContext& ctx, const std::vector<ExecStats>& slots,
               int64_t morsels) {
  if (ctx.stats == nullptr) return;
  // Fixed index order; integer sums are order-independent but the habit
  // keeps any future float stat deterministic too.
  for (const ExecStats& s : slots) {
    ctx.stats->chunks_scanned += s.chunks_scanned;
    ctx.stats->chunks_pruned += s.chunks_pruned;
    ctx.stats->cells_visited += s.cells_visited;
  }
  ctx.stats->morsels += morsels;
  int64_t width = ctx.pool != nullptr ? ctx.pool->parallelism() : 1;
  if (ctx.max_workers > 0 && ctx.max_workers < width) {
    width = ctx.max_workers;  // per-query cap (DESIGN.md §15)
  }
  if (width > ctx.stats->parallel_workers) {
    ctx.stats->parallel_workers = width;
  }
}

bool Cancelled(const ExecContext& ctx) {
  return ctx.cancel != nullptr &&
         ctx.cancel->load(std::memory_order_acquire);
}

Status CancelledStatus() {
  return Status::Cancelled("query cancelled");
}

}  // namespace

Status ForEachChunkParallel(const ExecContext& ctx, const MemArray& in,
                            const ChunkBody& body) {
  // Snapshot the chunk map into an indexable morsel list. Pointers stay
  // valid: `in` is const for the whole run.
  std::vector<std::pair<const Coordinates*, const Chunk*>> morsels;
  morsels.reserve(in.chunks().size());
  for (const auto& [origin, chunk] : in.chunks()) {
    morsels.emplace_back(&origin, chunk.get());
  }
  std::vector<ExecStats> slots(morsels.size());
  const int64_t n = static_cast<int64_t>(morsels.size());

  // The cancel flag is polled before every morsel — in the pool path and
  // the serial path alike — so an aborted query stops within one morsel
  // (the satellite contract the server's Cancel RPC relies on).
  auto run_one = [&](int64_t i) -> Status {
    if (Cancelled(ctx)) return CancelledStatus();
    size_t idx = static_cast<size_t>(i);
    return body(idx, *morsels[idx].first, *morsels[idx].second, &slots[idx]);
  };

  Status st;
  if (ctx.pool != nullptr) {
    if (FlightRecorder::enabled()) {
      FlightRecorder::Instance().Record(
          FlightEventKind::kParallelFor, /*node=*/-1,
          static_cast<uint64_t>(morsels.size()),
          static_cast<uint64_t>(ctx.pool->parallelism()));
    }
    if (ctx.gate != nullptr) {
      // Sliced dispatch (DESIGN.md §15): at most slice_morsels() morsels
      // per gate acquisition, so concurrent queries interleave on the
      // shared pool. Slices run in index order and stop at the first
      // failing slice, which preserves the lowest-failing-index error
      // determinism of the unsliced path.
      const int64_t slice = std::max<int64_t>(1, ctx.gate->slice_morsels());
      for (int64_t start = 0; start < n; start += slice) {
        if (Cancelled(ctx)) {
          st = CancelledStatus();
          break;
        }
        st = ctx.gate->Acquire();
        if (!st.ok()) break;
        const int64_t count = std::min(slice, n - start);
        st = ctx.pool->ParallelFor(
            count, [&](int64_t i) { return run_one(start + i); },
            ctx.max_workers);
        ctx.gate->Release();
        if (!st.ok()) break;
      }
    } else {
      st = ctx.pool->ParallelFor(n, run_one, ctx.max_workers);
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      st = run_one(i);
      if (!st.ok()) break;
    }
  }
  // Stats are folded even on failure (partial progress is still progress
  // the trace should see), morsel count reflects what was dispatched.
  FoldStats(ctx, slots, n);
  return st;
}

Status ParallelChunkMap(const ExecContext& ctx, const MemArray& in,
                        MemArray* out, const ChunkKernel& kernel) {
  std::vector<std::shared_ptr<Chunk>> results(in.chunks().size());
  RETURN_NOT_OK(ForEachChunkParallel(
      ctx, in,
      [&](size_t index, const Coordinates& origin, const Chunk& chunk,
          ExecStats* stats) -> Status {
        ASSIGN_OR_RETURN(results[index], kernel(origin, chunk, stats));
        return Status::OK();
      }));
  // Single-threaded assembly in origin order; empty outputs are dropped so
  // the chunk map matches what cell-at-a-time SetCell would have built.
  size_t index = 0;
  auto* chunks = out->mutable_chunks();
  for (const auto& [origin, chunk] : in.chunks()) {
    std::shared_ptr<Chunk>& produced = results[index++];
    if (produced == nullptr || produced->present_count() == 0) continue;
    chunks->emplace(origin, std::move(produced));
  }
  return Status::OK();
}

}  // namespace scidb
