#ifndef SCIDB_EXEC_EXPR_SERDE_H_
#define SCIDB_EXEC_EXPR_SERDE_H_

#include "common/byte_io.h"
#include "common/result.h"
#include "exec/expression.h"

namespace scidb {

// Binary structural serde for Expr trees (function shipping, DESIGN.md
// §10): the decoded tree is node-for-node identical to the encoded one,
// so a shipped predicate evaluates bit-identically to the coordinator's
// copy. Not AQL-text round-tripping.
//
// Lives in exec/ — not net/ — so the transport never links against the
// expression model; RPC messages carry predicates as opaque bytes
// (ScanShardRequest::pred_bytes) that the grid layer encodes/decodes at
// the boundary.
//
// Decoding is bounds-checked and depth-capped (types/value_serde's
// kMaxWireDepth); hostile payloads yield Corruption, never UB or
// unbounded recursion. Node tags are append-only and covered by the
// protocol-drift check.

void EncodeExpr(const Expr& e, ByteWriter* w);
Result<ExprPtr> DecodeExpr(ByteReader* r);

}  // namespace scidb

#endif  // SCIDB_EXEC_EXPR_SERDE_H_
