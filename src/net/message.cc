#include "net/message.h"

#include <utility>

#include "common/byte_io.h"
#include "common/macros.h"

namespace scidb {
namespace net {

namespace {

// Length-prefixed byte string. The count guard bounds the allocation:
// a chunk body costs at least one byte on the wire.
void PutByteString(const std::vector<uint8_t>& bytes, ByteWriter* w) {
  w->PutVarint(bytes.size());
  w->PutBytes(bytes.data(), bytes.size());
}

Result<std::vector<uint8_t>> GetByteString(ByteReader* r) {
  ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > r->remaining()) {
    return Status::Corruption("byte string length too large");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(n));
  RETURN_NOT_OK(r->GetBytes(bytes.data(), bytes.size()));
  return bytes;
}

Status ExpectExhausted(const ByteReader& r, const char* what) {
  if (r.remaining() != 0) {
    return Status::Corruption(std::string("trailing bytes after ") + what);
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> ChunkPutRequest::EncodePayload() const {
  ByteWriter w;
  w.PutSignedVarint(time);
  PutByteString(chunk_bytes, &w);
  return w.Release();
}

Result<ChunkPutRequest> ChunkPutRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ChunkPutRequest req;
  ASSIGN_OR_RETURN(req.time, r.GetSignedVarint());
  ASSIGN_OR_RETURN(req.chunk_bytes, GetByteString(&r));
  RETURN_NOT_OK(ExpectExhausted(r, "ChunkPut"));
  return req;
}

std::vector<uint8_t> ChunkGetRequest::EncodePayload() const {
  ByteWriter w;
  EncodeCoordinates(origin, &w);
  return w.Release();
}

Result<ChunkGetRequest> ChunkGetRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ChunkGetRequest req;
  ASSIGN_OR_RETURN(req.origin, DecodeCoordinates(&r));
  RETURN_NOT_OK(ExpectExhausted(r, "ChunkGet"));
  return req;
}

std::vector<uint8_t> ScanShardRequest::EncodePayload() const {
  ByteWriter w;
  w.PutU8(!pred_bytes.empty() ? 1 : 0);
  w.PutBytes(pred_bytes.data(), pred_bytes.size());
  return w.Release();
}

Result<ScanShardRequest> ScanShardRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ASSIGN_OR_RETURN(uint8_t has_pred, r.GetU8());
  if (has_pred > 1) return Status::Corruption("bad ScanShard pred flag");
  ScanShardRequest req;
  if (has_pred == 1) {
    // The expr bytes are the remainder of the payload; structural
    // validation happens where they are decoded (grid layer), which
    // also rejects trailing garbage after the tree.
    if (r.remaining() == 0) {
      return Status::Corruption("ScanShard pred flag set but no bytes");
    }
    req.pred_bytes.resize(r.remaining());
    RETURN_NOT_OK(r.GetBytes(req.pred_bytes.data(), req.pred_bytes.size()));
  }
  RETURN_NOT_OK(ExpectExhausted(r, "ScanShard"));
  return req;
}

std::vector<uint8_t> ScanShardResponse::EncodePayload() const {
  ByteWriter w;
  w.PutVarint(chunks.size());
  for (const auto& c : chunks) PutByteString(c, &w);
  return w.Release();
}

Result<ScanShardResponse> ScanShardResponse::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > r.remaining()) {
    return Status::Corruption("chunk count too large");
  }
  ScanShardResponse resp;
  resp.chunks.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, GetByteString(&r));
    resp.chunks.push_back(std::move(bytes));
  }
  RETURN_NOT_OK(ExpectExhausted(r, "ScanShard response"));
  return resp;
}

std::vector<uint8_t> NodeStatsResponse::EncodePayload() const {
  ByteWriter w;
  w.PutSignedVarint(cells_stored);
  w.PutSignedVarint(bytes_stored);
  w.PutSignedVarint(cells_scanned);
  w.PutSignedVarint(bytes_scanned);
  return w.Release();
}

Result<NodeStatsResponse> NodeStatsResponse::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  NodeStatsResponse resp;
  ASSIGN_OR_RETURN(resp.cells_stored, r.GetSignedVarint());
  ASSIGN_OR_RETURN(resp.bytes_stored, r.GetSignedVarint());
  ASSIGN_OR_RETURN(resp.cells_scanned, r.GetSignedVarint());
  ASSIGN_OR_RETURN(resp.bytes_scanned, r.GetSignedVarint());
  RETURN_NOT_OK(ExpectExhausted(r, "NodeStats response"));
  return resp;
}

std::vector<uint8_t> EncodeErrorPayload(const Status& s) {
  ByteWriter w;
  EncodeStatus(s, &w);
  return w.Release();
}

Status DecodeErrorPayload(const std::vector<uint8_t>& payload, Status* out) {
  ByteReader r(payload);
  RETURN_NOT_OK(DecodeStatus(&r, out));
  return ExpectExhausted(r, "Error payload");
}

}  // namespace net
}  // namespace scidb
