#include "net/message.h"

#include <utility>

#include "array/schema_serde.h"
#include "common/byte_io.h"
#include "common/macros.h"

namespace scidb {
namespace net {

namespace {

// Length-prefixed byte string. The count guard bounds the allocation:
// a chunk body costs at least one byte on the wire.
void PutByteString(const std::vector<uint8_t>& bytes, ByteWriter* w) {
  w->PutVarint(bytes.size());
  w->PutBytes(bytes.data(), bytes.size());
}

Result<std::vector<uint8_t>> GetByteString(ByteReader* r) {
  ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > r->remaining()) {
    return Status::Corruption("byte string length too large");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(n));
  RETURN_NOT_OK(r->GetBytes(bytes.data(), bytes.size()));
  return bytes;
}

Status ExpectExhausted(const ByteReader& r, const char* what) {
  if (r.remaining() != 0) {
    return Status::Corruption(std::string("trailing bytes after ") + what);
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> ChunkPutRequest::EncodePayload() const {
  ByteWriter w;
  w.PutSignedVarint(time);
  PutByteString(chunk_bytes, &w);
  return w.Release();
}

Result<ChunkPutRequest> ChunkPutRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ChunkPutRequest req;
  ASSIGN_OR_RETURN(req.time, r.GetSignedVarint());
  ASSIGN_OR_RETURN(req.chunk_bytes, GetByteString(&r));
  RETURN_NOT_OK(ExpectExhausted(r, "ChunkPut"));
  return req;
}

std::vector<uint8_t> ChunkGetRequest::EncodePayload() const {
  ByteWriter w;
  EncodeCoordinates(origin, &w);
  return w.Release();
}

Result<ChunkGetRequest> ChunkGetRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ChunkGetRequest req;
  ASSIGN_OR_RETURN(req.origin, DecodeCoordinates(&r));
  RETURN_NOT_OK(ExpectExhausted(r, "ChunkGet"));
  return req;
}

namespace {

// Strictly ascending non-negative node list — the canonical form for
// dead sets on the wire. Canonicality (no duplicates, no reordering)
// keeps decode->encode a byte-identical fixed point for fuzz_frame.
void PutNodeSet(const std::vector<int32_t>& nodes, ByteWriter* w) {
  w->PutVarint(nodes.size());
  for (int32_t n : nodes) w->PutVarint(static_cast<uint64_t>(n));
}

Result<std::vector<int32_t>> GetNodeSet(ByteReader* r, const char* what) {
  ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  // Each node id costs at least one byte on the wire.
  if (n > r->remaining()) {
    return Status::Corruption(std::string(what) + " node count too large");
  }
  std::vector<int32_t> nodes;
  nodes.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(uint64_t v, r->GetVarint());
    if (v > INT32_MAX) {
      return Status::Corruption(std::string(what) + " node id out of range");
    }
    int32_t node = static_cast<int32_t>(v);
    if (!nodes.empty() && node <= nodes.back()) {
      return Status::Corruption(std::string(what) +
                                " node set not strictly ascending");
    }
    nodes.push_back(node);
  }
  return nodes;
}

}  // namespace

std::vector<uint8_t> ScanShardRequest::EncodePayload() const {
  ByteWriter w;
  w.PutSignedVarint(view_of);
  PutNodeSet(suspect_dead, &w);
  w.PutU8(!pred_bytes.empty() ? 1 : 0);
  w.PutBytes(pred_bytes.data(), pred_bytes.size());
  return w.Release();
}

Result<ScanShardRequest> ScanShardRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ScanShardRequest req;
  ASSIGN_OR_RETURN(int64_t view, r.GetSignedVarint());
  if (view < -1 || view > INT32_MAX) {
    return Status::Corruption("bad ScanShard view_of");
  }
  req.view_of = static_cast<int32_t>(view);
  ASSIGN_OR_RETURN(req.suspect_dead, GetNodeSet(&r, "ScanShard"));
  ASSIGN_OR_RETURN(uint8_t has_pred, r.GetU8());
  if (has_pred > 1) return Status::Corruption("bad ScanShard pred flag");
  if (has_pred == 1) {
    // The expr bytes are the remainder of the payload; structural
    // validation happens where they are decoded (grid layer), which
    // also rejects trailing garbage after the tree.
    if (r.remaining() == 0) {
      return Status::Corruption("ScanShard pred flag set but no bytes");
    }
    req.pred_bytes.resize(r.remaining());
    RETURN_NOT_OK(r.GetBytes(req.pred_bytes.data(), req.pred_bytes.size()));
  }
  RETURN_NOT_OK(ExpectExhausted(r, "ScanShard"));
  return req;
}

std::vector<uint8_t> MarkDeadRequest::EncodePayload() const {
  ByteWriter w;
  PutNodeSet(dead, &w);
  return w.Release();
}

Result<MarkDeadRequest> MarkDeadRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  MarkDeadRequest req;
  ASSIGN_OR_RETURN(req.dead, GetNodeSet(&r, "MarkDead"));
  RETURN_NOT_OK(ExpectExhausted(r, "MarkDead"));
  return req;
}

std::vector<uint8_t> ScanShardResponse::EncodePayload() const {
  ByteWriter w;
  w.PutVarint(chunks.size());
  for (const auto& c : chunks) PutByteString(c, &w);
  return w.Release();
}

Result<ScanShardResponse> ScanShardResponse::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > r.remaining()) {
    return Status::Corruption("chunk count too large");
  }
  ScanShardResponse resp;
  resp.chunks.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, GetByteString(&r));
    resp.chunks.push_back(std::move(bytes));
  }
  RETURN_NOT_OK(ExpectExhausted(r, "ScanShard response"));
  return resp;
}

std::vector<uint8_t> NodeStatsResponse::EncodePayload() const {
  ByteWriter w;
  w.PutSignedVarint(cells_stored);
  w.PutSignedVarint(bytes_stored);
  w.PutSignedVarint(cells_scanned);
  w.PutSignedVarint(bytes_scanned);
  return w.Release();
}

Result<NodeStatsResponse> NodeStatsResponse::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  NodeStatsResponse resp;
  ASSIGN_OR_RETURN(resp.cells_stored, r.GetSignedVarint());
  ASSIGN_OR_RETURN(resp.bytes_stored, r.GetSignedVarint());
  ASSIGN_OR_RETURN(resp.cells_scanned, r.GetSignedVarint());
  ASSIGN_OR_RETURN(resp.bytes_scanned, r.GetSignedVarint());
  RETURN_NOT_OK(ExpectExhausted(r, "NodeStats response"));
  return resp;
}

std::vector<uint8_t> MetricsGetRequest::EncodePayload() const {
  ByteWriter w;
  w.PutU8(include_process);
  return w.Release();
}

Result<MetricsGetRequest> MetricsGetRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  MetricsGetRequest req;
  ASSIGN_OR_RETURN(req.include_process, r.GetU8());
  if (req.include_process > 1) {
    return Status::Corruption("bad MetricsGet include_process flag");
  }
  RETURN_NOT_OK(ExpectExhausted(r, "MetricsGet"));
  return req;
}

std::vector<uint8_t> MetricsGetResponse::EncodePayload() const {
  ByteWriter w;
  PutByteString(json, &w);
  return w.Release();
}

Result<MetricsGetResponse> MetricsGetResponse::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  MetricsGetResponse resp;
  ASSIGN_OR_RETURN(resp.json, GetByteString(&r));
  RETURN_NOT_OK(ExpectExhausted(r, "MetricsGet response"));
  return resp;
}

std::vector<uint8_t> TraceGetRequest::EncodePayload() const {
  ByteWriter w;
  w.PutU64(trace_id);
  w.PutU8(include_flight);
  return w.Release();
}

Result<TraceGetRequest> TraceGetRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  TraceGetRequest req;
  ASSIGN_OR_RETURN(req.trace_id, r.GetU64());
  ASSIGN_OR_RETURN(req.include_flight, r.GetU8());
  if (req.include_flight > 1) {
    return Status::Corruption("bad TraceGet include_flight flag");
  }
  RETURN_NOT_OK(ExpectExhausted(r, "TraceGet"));
  return req;
}

namespace {

void PutSpan(const SpanRecord& s, ByteWriter* w) {
  w->PutU64(s.trace_id);
  w->PutU64(s.span_id);
  w->PutU64(s.parent_span_id);
  w->PutSignedVarint(s.node);
  w->PutString(s.label);
  w->PutU64(s.start_ns);
  w->PutU64(s.wall_ns);
  w->PutVarint(s.notes.size());
  for (const auto& [key, value] : s.notes) {
    w->PutString(key);
    w->PutDouble(value);
  }
}

Result<SpanRecord> GetSpan(ByteReader* r) {
  SpanRecord s;
  ASSIGN_OR_RETURN(s.trace_id, r->GetU64());
  ASSIGN_OR_RETURN(s.span_id, r->GetU64());
  ASSIGN_OR_RETURN(s.parent_span_id, r->GetU64());
  ASSIGN_OR_RETURN(int64_t node, r->GetSignedVarint());
  if (node < INT32_MIN || node > INT32_MAX) {
    return Status::Corruption("span node id out of range");
  }
  s.node = static_cast<int32_t>(node);
  ASSIGN_OR_RETURN(s.label, r->GetString());
  ASSIGN_OR_RETURN(s.start_ns, r->GetU64());
  ASSIGN_OR_RETURN(s.wall_ns, r->GetU64());
  ASSIGN_OR_RETURN(uint64_t n_notes, r->GetVarint());
  // A note costs at least one key byte plus the 8-byte double.
  if (n_notes > r->remaining() / 9 + 1) {
    return Status::Corruption("span note count too large");
  }
  s.notes.reserve(static_cast<size_t>(n_notes));
  for (uint64_t i = 0; i < n_notes; ++i) {
    std::string key;
    ASSIGN_OR_RETURN(key, r->GetString());
    double value = 0;
    ASSIGN_OR_RETURN(value, r->GetDouble());
    s.notes.push_back({std::move(key), value});
  }
  return s;
}

void PutFlightEvent(const FlightEvent& e, ByteWriter* w) {
  w->PutU64(e.seq);
  w->PutU64(e.t_ns);
  w->PutU8(static_cast<uint8_t>(e.kind));
  w->PutSignedVarint(e.node);
  w->PutU64(e.a);
  w->PutU64(e.b);
}

Result<FlightEvent> GetFlightEvent(ByteReader* r) {
  FlightEvent e;
  ASSIGN_OR_RETURN(e.seq, r->GetU64());
  ASSIGN_OR_RETURN(e.t_ns, r->GetU64());
  ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (!IsValidFlightEventKind(kind)) {
    return Status::Corruption("unknown flight event kind " +
                              std::to_string(kind));
  }
  e.kind = static_cast<FlightEventKind>(kind);
  ASSIGN_OR_RETURN(int64_t node, r->GetSignedVarint());
  if (node < INT32_MIN || node > INT32_MAX) {
    return Status::Corruption("flight event node id out of range");
  }
  e.node = static_cast<int32_t>(node);
  ASSIGN_OR_RETURN(e.a, r->GetU64());
  ASSIGN_OR_RETURN(e.b, r->GetU64());
  return e;
}

}  // namespace

std::vector<uint8_t> TraceGetResponse::EncodePayload() const {
  ByteWriter w;
  w.PutVarint(spans.size());
  for (const SpanRecord& s : spans) PutSpan(s, &w);
  w.PutVarint(events.size());
  for (const FlightEvent& e : events) PutFlightEvent(e, &w);
  return w.Release();
}

Result<TraceGetResponse> TraceGetResponse::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  TraceGetResponse resp;
  ASSIGN_OR_RETURN(uint64_t n_spans, r.GetVarint());
  // A span costs at least 3x8 id bytes + node + empty label + 2x8 times.
  if (n_spans > r.remaining() / 42 + 1) {
    return Status::Corruption("span count too large");
  }
  resp.spans.reserve(static_cast<size_t>(n_spans));
  for (uint64_t i = 0; i < n_spans; ++i) {
    ASSIGN_OR_RETURN(SpanRecord s, GetSpan(&r));
    resp.spans.push_back(std::move(s));
  }
  ASSIGN_OR_RETURN(uint64_t n_events, r.GetVarint());
  // An event costs at least 4x8 fixed fields + kind + node byte.
  if (n_events > r.remaining() / 34 + 1) {
    return Status::Corruption("flight event count too large");
  }
  resp.events.reserve(static_cast<size_t>(n_events));
  for (uint64_t i = 0; i < n_events; ++i) {
    ASSIGN_OR_RETURN(FlightEvent e, GetFlightEvent(&r));
    resp.events.push_back(std::move(e));
  }
  RETURN_NOT_OK(ExpectExhausted(r, "TraceGet response"));
  return resp;
}

namespace {

// Strict 0/1 byte: anything else is non-canonical and would break the
// decode -> encode fixed point fuzz_frame enforces.
Result<uint8_t> GetFlagByte(ByteReader* r, const char* field) {
  ASSIGN_OR_RETURN(uint8_t b, r->GetU8());
  if (b > 1) {
    return Status::Corruption(std::string(field) + " byte out of range: " +
                              std::to_string(b));
  }
  return b;
}

}  // namespace

std::vector<uint8_t> QueryRequest::EncodePayload() const {
  ByteWriter w;
  w.PutVarint(client_qid);
  w.PutString(statement);
  return w.Release();
}

Result<QueryRequest> QueryRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  QueryRequest req;
  ASSIGN_OR_RETURN(req.client_qid, r.GetVarint());
  ASSIGN_OR_RETURN(req.statement, r.GetString());
  RETURN_NOT_OK(ExpectExhausted(r, "Query"));
  return req;
}

std::vector<uint8_t> QueryDoneRequest::EncodePayload() const {
  ByteWriter w;
  w.PutVarint(client_qid);
  return w.Release();
}

Result<QueryDoneRequest> QueryDoneRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  QueryDoneRequest req;
  ASSIGN_OR_RETURN(req.client_qid, r.GetVarint());
  RETURN_NOT_OK(ExpectExhausted(r, "QueryDone"));
  return req;
}

std::vector<uint8_t> QueryDoneResponse::EncodePayload() const {
  ByteWriter w;
  w.PutU8(done);
  w.PutU8(status_code);
  w.PutString(status_message);
  w.PutU8(kind);
  w.PutU8(boolean);
  w.PutString(message);
  w.PutVarint(n_chunks);
  w.PutSignedVarint(snapshot_epoch);
  w.PutU8(has_schema);
  if (has_schema != 0) EncodeSchema(schema, &w);
  return w.Release();
}

Result<QueryDoneResponse> QueryDoneResponse::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  QueryDoneResponse resp;
  ASSIGN_OR_RETURN(resp.done, GetFlagByte(&r, "done"));
  ASSIGN_OR_RETURN(resp.status_code, r.GetU8());
  if (resp.status_code > static_cast<uint8_t>(StatusCode::kCancelled)) {
    return Status::Corruption("status code out of range: " +
                              std::to_string(resp.status_code));
  }
  ASSIGN_OR_RETURN(resp.status_message, r.GetString());
  ASSIGN_OR_RETURN(resp.kind, r.GetU8());
  if (resp.kind > QueryDoneResponse::kMaxKind) {
    return Status::Corruption("result kind out of range: " +
                              std::to_string(resp.kind));
  }
  ASSIGN_OR_RETURN(resp.boolean, GetFlagByte(&r, "boolean"));
  ASSIGN_OR_RETURN(resp.message, r.GetString());
  ASSIGN_OR_RETURN(resp.n_chunks, r.GetVarint());
  ASSIGN_OR_RETURN(resp.snapshot_epoch, r.GetSignedVarint());
  ASSIGN_OR_RETURN(resp.has_schema, GetFlagByte(&r, "has_schema"));
  if (resp.has_schema != 0) {
    ASSIGN_OR_RETURN(resp.schema, DecodeSchema(&r));
  }
  RETURN_NOT_OK(ExpectExhausted(r, "QueryDone response"));
  return resp;
}

std::vector<uint8_t> ResultChunkRequest::EncodePayload() const {
  ByteWriter w;
  w.PutVarint(client_qid);
  w.PutVarint(seq);
  return w.Release();
}

Result<ResultChunkRequest> ResultChunkRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ResultChunkRequest req;
  ASSIGN_OR_RETURN(req.client_qid, r.GetVarint());
  ASSIGN_OR_RETURN(req.seq, r.GetVarint());
  RETURN_NOT_OK(ExpectExhausted(r, "ResultChunk"));
  return req;
}

std::vector<uint8_t> ResultChunkResponse::EncodePayload() const {
  ByteWriter w;
  w.PutU8(ready);
  PutByteString(chunk_bytes, &w);
  return w.Release();
}

Result<ResultChunkResponse> ResultChunkResponse::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  ResultChunkResponse resp;
  ASSIGN_OR_RETURN(resp.ready, GetFlagByte(&r, "ready"));
  ASSIGN_OR_RETURN(resp.chunk_bytes, GetByteString(&r));
  RETURN_NOT_OK(ExpectExhausted(r, "ResultChunk response"));
  return resp;
}

std::vector<uint8_t> CancelRequest::EncodePayload() const {
  ByteWriter w;
  w.PutVarint(client_qid);
  return w.Release();
}

Result<CancelRequest> CancelRequest::Decode(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  CancelRequest req;
  ASSIGN_OR_RETURN(req.client_qid, r.GetVarint());
  RETURN_NOT_OK(ExpectExhausted(r, "Cancel"));
  return req;
}

std::vector<uint8_t> EncodeErrorPayload(const Status& s) {
  ByteWriter w;
  EncodeStatus(s, &w);
  return w.Release();
}

Status DecodeErrorPayload(const std::vector<uint8_t>& payload, Status* out) {
  ByteReader r(payload);
  RETURN_NOT_OK(DecodeStatus(&r, out));
  return ExpectExhausted(r, "Error payload");
}

}  // namespace net
}  // namespace scidb
