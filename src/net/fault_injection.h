#ifndef SCIDB_NET_FAULT_INJECTION_H_
#define SCIDB_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "net/transport.h"

namespace scidb {
namespace net {

// Per-frame fault probabilities, applied independently in the order
// drop -> duplicate -> delay/reorder. All zero = transparent wrapper.
struct FaultProfile {
  double drop_p = 0.0;     // frame vanishes
  double dup_p = 0.0;      // frame delivered twice
  double delay_p = 0.0;    // frame held, delivered after later traffic
  double reorder_p = 0.0;  // like delay with a shorter hold (1 frame)

  // The rates the differential suite and `set net_faults` use: lossy
  // enough that retries demonstrably fire, mild enough that 4-6
  // attempts mask everything with a fixed seed.
  static FaultProfile Lossy() {
    FaultProfile p;
    p.drop_p = 0.05;
    p.dup_p = 0.05;
    p.delay_p = 0.10;
    p.reorder_p = 0.05;
    return p;
  }
};

// Wraps any Transport and misbehaves on purpose (DESIGN.md §10): frames
// are dropped, duplicated, delayed, reordered, or black-holed between
// partitioned nodes, driven by a seeded common/rng.h RNG so every run
// with the same seed misbehaves identically.
//
// Timer-free by construction: a delayed frame is not re-injected by a
// background clock but held in a queue and flushed by later Send
// traffic (each Send releases up to one held frame; a retry therefore
// flushes the delayed original). This keeps fault schedules a pure
// function of (seed, send sequence) — the property the differential
// suite relies on — and works identically under real and manual clocks.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(Transport* inner, FaultProfile profile,
                          uint64_t seed);

  Status Register(int node, FrameHandler handler) override;
  Status Send(int src, int dst, Frame frame) override LOCKS_EXCLUDED(mu_);
  void Shutdown() override;
  const char* name() const override { return "fault"; }

  // Severs `node` from the network: every frame to or from it is
  // silently dropped until HealPartition. Models a full partition —
  // callers observe Unavailable/DeadlineExceeded from the RPC layer,
  // never a hang.
  void PartitionNode(int node) LOCKS_EXCLUDED(mu_);
  void HealPartition(int node) LOCKS_EXCLUDED(mu_);

  // Seeded mid-query kill: partitions `node` the moment `after_sends`
  // more frames have entered Send (replies and fault-flushed frames
  // count — the counter ticks on the transport's serialized send
  // sequence, so a given (seed, schedule) kills at exactly the same
  // point in the frame stream every run). The `after_sends`-th frame
  // already finds the node dead. This is what the kill-a-node failover
  // harness uses to die mid-query deterministically.
  void KillNodeAfterSends(int node, int64_t after_sends)
      LOCKS_EXCLUDED(mu_);

  // Delivers every held (delayed/reordered) frame now, in hold order.
  // Called by tests to drain the queue at quiescence.
  Status Flush() LOCKS_EXCLUDED(mu_);

  int64_t frames_dropped() const LOCKS_EXCLUDED(mu_);
  int64_t frames_duplicated() const LOCKS_EXCLUDED(mu_);
  int64_t frames_held() const LOCKS_EXCLUDED(mu_);

 private:
  struct HeldFrame {
    int src;
    int dst;
    Frame frame;
  };

  Transport* const inner_;
  const FaultProfile profile_;

  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  std::set<int> partitioned_ GUARDED_BY(mu_);
  // (node, sends remaining) armed by KillNodeAfterSends.
  std::vector<std::pair<int, int64_t>> pending_kills_ GUARDED_BY(mu_);
  std::vector<HeldFrame> held_ GUARDED_BY(mu_);
  int64_t dropped_ GUARDED_BY(mu_) = 0;
  int64_t duplicated_ GUARDED_BY(mu_) = 0;
  int64_t total_held_ GUARDED_BY(mu_) = 0;
};

}  // namespace net
}  // namespace scidb

#endif  // SCIDB_NET_FAULT_INJECTION_H_
