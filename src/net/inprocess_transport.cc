#include "net/inprocess_transport.h"

#include <utility>

#include "common/metrics.h"

namespace scidb {
namespace net {

void RecordFrameSent(const Frame& frame) {
  static Counter* const frames =
      Metrics::Instance().counter("scidb.net.frames_sent");
  static Counter* const bytes =
      Metrics::Instance().counter("scidb.net.bytes_sent");
  frames->Inc();
  bytes->Inc(static_cast<int64_t>(kFrameHeaderSize + frame.payload.size()));
}

InProcessTransport::InProcessTransport(Mode mode) : mode_(mode) {}

InProcessTransport::~InProcessTransport() { Shutdown(); }

Status InProcessTransport::Register(int node, FrameHandler handler) {
  MutexLock lock(mu_);
  if (shutdown_) return Status::Unavailable("transport is shut down");
  auto [it, inserted] = nodes_.emplace(node, std::make_unique<Node>());
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(node) +
                                 " already registered");
  }
  Node* n = it->second.get();
  n->handler = std::move(handler);
  if (mode_ == Mode::kThreaded) {
    n->worker = std::thread([this, n] { DeliveryLoop(n); });
  }
  return Status::OK();
}

Status InProcessTransport::Send(int src, int dst, Frame frame) {
  Node* node = nullptr;
  {
    MutexLock lock(mu_);
    if (shutdown_) return Status::Unavailable("transport is shut down");
    auto it = nodes_.find(dst);
    if (it == nodes_.end()) {
      return Status::Unavailable("node " + std::to_string(dst) +
                                 " is not registered");
    }
    node = it->second.get();
  }
  RecordFrameSent(frame);
  if (mode_ == Mode::kInline) {
    // Synchronous delivery on the sender's thread, outside mu_ so the
    // handler can itself Send (request -> handler -> response is one
    // call stack in this mode).
    node->handler(src, std::move(frame));
    return Status::OK();
  }
  {
    MutexLock lock(node->mu);
    if (node->stop) return Status::Unavailable("node is shutting down");
    node->queue.emplace_back(src, std::move(frame));
  }
  node->cv.notify_one();
  return Status::OK();
}

void InProcessTransport::DeliveryLoop(Node* node) {
  while (true) {
    std::vector<std::pair<int, Frame>> batch;
    {
      MutexLock lock(node->mu);
      while (node->queue.empty() && !node->stop) node->cv.wait(node->mu);
      if (node->queue.empty() && node->stop) return;
      batch.swap(node->queue);
    }
    for (auto& [src, frame] : batch) {
      node->handler(src, std::move(frame));
    }
  }
}

void InProcessTransport::Shutdown() {
  std::vector<Node*> nodes;
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    nodes.reserve(nodes_.size());
    for (auto& [id, n] : nodes_) nodes.push_back(n.get());
  }
  for (Node* n : nodes) {
    {
      MutexLock lock(n->mu);
      n->stop = true;
    }
    n->cv.notify_one();
  }
  // Joins outside every lock; delivery threads drain their queues first.
  for (Node* n : nodes) {
    if (n->worker.joinable()) n->worker.join();
  }
}

}  // namespace net
}  // namespace scidb
