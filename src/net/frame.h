#ifndef SCIDB_NET_FRAME_H_
#define SCIDB_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"

namespace scidb {
namespace net {

// Wire framing (DESIGN.md §10). Every message between grid nodes travels
// as one frame:
//
//   offset  size  field
//   0       4     magic "SNET" (bytes 'S','N','E','T')
//   4       1     version (kFrameVersion)
//   5       1     message type (MessageType)
//   6       2     flags, little-endian (bit 0 = trace context present;
//                 the rest reserved, must be 0 on encode)
//   8       8     request id, little-endian
//   16      4     payload length, little-endian
//   20      4     CRC-32 of the payload bytes, little-endian
//   24      n     payload
//
// The fixed 24-byte header makes stream reassembly trivial (read header,
// then read exactly payload_len bytes) and the trailing-free layout means
// a frame is self-delimiting: DecodeFrame can tell "need more bytes"
// apart from "corrupt" without heuristics.
//
// Distributed tracing (DESIGN.md §12): when flags bit kFrameFlagTrace is
// set, the first kTraceContextWireSize bytes of the payload region are a
// TraceContext — trace_id, span_id, parent_span_id as three little-endian
// u64s — and `Frame::payload` holds only the bytes after it. The prefix is
// counted by payload_len and covered by the CRC, so pre-trace decoders
// and the assembler see a perfectly ordinary frame. Encoding is canonical:
// the flag is set iff trace_id != 0, and decode rejects a set flag with a
// zero trace_id or a payload shorter than the prefix as Corruption (this
// keeps decode->encode a byte-identical fixed point, which fuzz_frame
// checks).

inline constexpr size_t kFrameHeaderSize = 24;
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr uint32_t kFrameMagic = 0x54454E53;  // "SNET" little-endian

// Refuse absurd payload lengths up front so a corrupt or adversarial
// header cannot drive a multi-gigabyte allocation (the fuzz harness
// exercises exactly this path). 256 MiB comfortably covers the largest
// chunk-shipping payload the grid produces.
inline constexpr uint32_t kMaxFramePayload = 256u << 20;

// Flags bit 0: the payload region starts with an encoded TraceContext.
inline constexpr uint16_t kFrameFlagTrace = 0x1;

// Encoded TraceContext size: trace_id + span_id + parent_span_id, u64 each.
inline constexpr size_t kTraceContextWireSize = 24;

// Message vocabulary of the grid RPC layer. Requests carry an encoded
// argument payload; the server answers every request with kAck (payload =
// encoded result) or kError (payload = wire-encoded Status), echoing the
// request id.
enum class MessageType : uint8_t {
  kChunkPut = 1,     // idempotent upsert of cells into a shard
  kChunkGet = 2,     // fetch one chunk by origin
  kScanShard = 3,    // scan a shard, optionally filtered server-side
  kNodeStatsReq = 4, // per-node statistics snapshot
  kAck = 5,          // success response
  kError = 6,        // failure response (payload = wire Status)
  kMetricsGet = 7,   // pull one node's metrics snapshot (DESIGN.md §12)
  kTraceGet = 8,     // pull spans / flight-recorder events from a node
  kMarkDead = 9,     // replace a node's dead-set view (DESIGN.md §13)
  // Query-server vocabulary (DESIGN.md §15). All four are idempotent:
  // queries are keyed by a client-generated id, result chunks are
  // fetched by (query id, seq), and Cancel of an unknown or finished
  // query acknowledges without effect — so RPC retries and
  // fault-injected duplicates are safe like every other message here.
  kQuery = 10,       // submit one AQL statement under a client query id
  kResultChunk = 11, // pull one buffered result chunk by sequence number
  kQueryDone = 12,   // poll completion; response carries status + schema
  kCancel = 13,      // abort a running query / release a finished one
};

// True if `t` is one of the enumerators above. Decoding rejects anything
// else so handlers never see an out-of-vocabulary type.
bool IsValidMessageType(uint8_t t);

// "ChunkPut", "Ack", ... for logs and traces.
const char* MessageTypeName(MessageType t);

struct Frame {
  MessageType type = MessageType::kAck;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  // Carried iff trace.trace_id != 0; EncodeFrame derives the flag bit from
  // this field (see the wire-format comment above).
  TraceContext trace;
  std::vector<uint8_t> payload;
};

// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) over `n` bytes.
// Exposed for tests; frame encode/decode use it internally.
uint32_t Crc32(const uint8_t* data, size_t n);

// Serializes header + payload into a contiguous buffer.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

// Decodes exactly one frame from `data`. Returns Corruption for a bad
// magic, version, type, length, or checksum, and for trailing garbage
// (`size` must equal the frame's encoded size). `DecodeFramePrefix`
// relaxes the trailing check for stream use and reports bytes consumed.
Result<Frame> DecodeFrame(const uint8_t* data, size_t size);
Result<Frame> DecodeFrame(const std::vector<uint8_t>& data);

// Stream reassembly for the TCP transport: feed arbitrary byte spans in
// arrival order, pull complete frames out. Corruption is sticky — a
// stream that ever fails to parse cannot resynchronize (there are no
// frame boundaries to hunt for once the length field is untrusted).
class FrameAssembler {
 public:
  // Appends raw bytes received from the peer.
  void Append(const uint8_t* data, size_t n);

  // If a complete frame is buffered, moves it into `out` and returns
  // true. Returns false if more bytes are needed. Returns Corruption if
  // the buffered prefix is not a valid frame.
  Result<bool> Next(Frame* out);

  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  // prefix already handed out as frames
  bool corrupt_ = false;
};

}  // namespace net
}  // namespace scidb

#endif  // SCIDB_NET_FRAME_H_
