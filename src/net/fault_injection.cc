#include "net/fault_injection.h"

#include <cstddef>
#include <utility>

#include "common/flight_recorder.h"
#include "common/macros.h"
#include "common/metrics.h"

namespace scidb {
namespace net {

namespace {

struct FaultCounters {
  Counter* dropped;
  Counter* duplicated;
  Counter* delayed;
  Counter* reordered;
  Counter* partitioned;

  static const FaultCounters& Get() {
    static const FaultCounters c = {
        Metrics::Instance().counter("scidb.net.fault.dropped"),
        Metrics::Instance().counter("scidb.net.fault.duplicated"),
        Metrics::Instance().counter("scidb.net.fault.delayed"),
        Metrics::Instance().counter("scidb.net.fault.reordered"),
        Metrics::Instance().counter("scidb.net.fault.partitioned"),
    };
    return c;
  }
};

// Injected faults are exactly what a post-mortem flight-recorder dump
// must show (DESIGN.md §12): each decision leaves one event keyed by the
// victim frame's request id and type, attributed to the destination node.
void RecordFault(FlightEventKind kind, int dst, const Frame& frame) {
  if (!FlightRecorder::enabled()) return;
  FlightRecorder::Instance().Record(kind, dst, frame.request_id,
                                    static_cast<uint64_t>(frame.type));
}

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(Transport* inner,
                                                 FaultProfile profile,
                                                 uint64_t seed)
    : inner_(inner), profile_(profile), rng_(seed) {}

Status FaultInjectingTransport::Register(int node, FrameHandler handler) {
  return inner_->Register(node, std::move(handler));
}

Status FaultInjectingTransport::Send(int src, int dst, Frame frame) {
  // Decide the frame's fate and collect what to physically deliver
  // under mu_, then deliver outside it: inner_->Send may run the
  // destination handler inline, and that handler may Send a response
  // back through *this* transport (re-entrancy).
  std::vector<HeldFrame> deliver;
  {
    MutexLock lock(mu_);
    // Armed kills tick on the serialized send sequence; a kill that
    // reaches zero fires before this frame's fate is decided, so the
    // triggering frame already finds the node partitioned.
    for (size_t i = 0; i < pending_kills_.size();) {
      if (--pending_kills_[i].second <= 0) {
        partitioned_.insert(pending_kills_[i].first);
        pending_kills_.erase(pending_kills_.begin() +
                             static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // Frames held by *earlier* Sends; the frame held below must not be
    // flushed by its own Send or "delay" would be a no-op.
    const size_t pre_held = held_.size();
    const bool cut = partitioned_.count(src) > 0 || partitioned_.count(dst) > 0;
    if (cut) {
      ++dropped_;
      FaultCounters::Get().partitioned->Inc();
      RecordFault(FlightEventKind::kFaultPartition, dst, frame);
    } else if (rng_.NextDouble() < profile_.drop_p) {
      ++dropped_;
      FaultCounters::Get().dropped->Inc();
      RecordFault(FlightEventKind::kFaultDrop, dst, frame);
    } else {
      const bool dup = rng_.NextDouble() < profile_.dup_p;
      const bool hold = rng_.NextDouble() < profile_.delay_p ||
                        rng_.NextDouble() < profile_.reorder_p;
      if (dup) {
        ++duplicated_;
        FaultCounters::Get().duplicated->Inc();
        RecordFault(FlightEventKind::kFaultDup, dst, frame);
        deliver.push_back({src, dst, frame});
      }
      if (hold) {
        ++total_held_;
        FaultCounters::Get().delayed->Inc();
        RecordFault(FlightEventKind::kFaultHold, dst, frame);
        held_.push_back({src, dst, std::move(frame)});
      } else {
        deliver.push_back({src, dst, std::move(frame)});
      }
    }
    // Each Send flushes at most one previously-held frame (FIFO),
    // appended after the current frame, so delayed traffic re-emerges
    // behind — reordered against — later frames. Skip frames whose
    // endpoint got partitioned while held.
    size_t scanned = 0;
    while (scanned < pre_held && !held_.empty()) {
      HeldFrame h = std::move(held_.front());
      held_.erase(held_.begin());
      ++scanned;
      if (partitioned_.count(h.src) > 0 || partitioned_.count(h.dst) > 0) {
        ++dropped_;
        FaultCounters::Get().partitioned->Inc();
        RecordFault(FlightEventKind::kFaultPartition, h.dst, h.frame);
        continue;
      }
      FaultCounters::Get().reordered->Inc();
      deliver.push_back(std::move(h));
      break;
    }
  }
  for (auto& d : deliver) {
    // A delivery failure (unregistered node, shut-down inner) is
    // reported to the caller; fault drops are not (the network "ate"
    // the frame, which is exactly what the RPC layer must survive).
    RETURN_NOT_OK(inner_->Send(d.src, d.dst, std::move(d.frame)));
  }
  return Status::OK();
}

void FaultInjectingTransport::Shutdown() {
  {
    MutexLock lock(mu_);
    held_.clear();
  }
  inner_->Shutdown();
}

void FaultInjectingTransport::PartitionNode(int node) {
  MutexLock lock(mu_);
  partitioned_.insert(node);
}

void FaultInjectingTransport::HealPartition(int node) {
  MutexLock lock(mu_);
  partitioned_.erase(node);
}

void FaultInjectingTransport::KillNodeAfterSends(int node,
                                                 int64_t after_sends) {
  MutexLock lock(mu_);
  if (after_sends <= 0) {
    partitioned_.insert(node);
    return;
  }
  pending_kills_.push_back({node, after_sends});
}

Status FaultInjectingTransport::Flush() {
  std::vector<HeldFrame> deliver;
  {
    MutexLock lock(mu_);
    deliver.swap(held_);
  }
  for (auto& d : deliver) {
    RETURN_NOT_OK(inner_->Send(d.src, d.dst, std::move(d.frame)));
  }
  return Status::OK();
}

int64_t FaultInjectingTransport::frames_dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

int64_t FaultInjectingTransport::frames_duplicated() const {
  MutexLock lock(mu_);
  return duplicated_;
}

int64_t FaultInjectingTransport::frames_held() const {
  MutexLock lock(mu_);
  return total_held_;
}

}  // namespace net
}  // namespace scidb
