#ifndef SCIDB_NET_MESSAGE_H_
#define SCIDB_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/coordinates.h"
#include "array/schema.h"
#include "common/flight_recorder.h"
#include "common/result.h"
#include "common/trace.h"
#include "net/frame.h"
#include "net/wire.h"

namespace scidb {
namespace net {

// Typed payloads for the grid RPC vocabulary (frame.h MessageType).
// Each struct round-trips through EncodePayload/Decode: the encode side
// produces the frame payload bytes, the decode side parses them with
// full bounds checking. Chunk bodies use storage/chunk_serde's columnar
// codec and travel as opaque length-prefixed byte strings here — the
// schema needed to decode them lives on both ends (array manifest).

// Idempotent upsert of one chunk's cells into the destination shard.
// Applying the same ChunkPut twice leaves the shard in the same state
// (SetCell is last-writer-wins per cell and a duplicate carries the
// same cells), which is what makes the RPC safe to retry and to
// duplicate under fault injection.
struct ChunkPutRequest {
  int64_t time = 0;                  // load epoch (drives time-split)
  std::vector<uint8_t> chunk_bytes;  // SerializeChunk output

  std::vector<uint8_t> EncodePayload() const;
  static Result<ChunkPutRequest> Decode(const std::vector<uint8_t>& payload);
};

// Fetch one chunk by its origin coordinates. Response payload is the
// serialized chunk; a missing chunk is a kError response with NotFound.
struct ChunkGetRequest {
  Coordinates origin;

  std::vector<uint8_t> EncodePayload() const;
  static Result<ChunkGetRequest> Decode(const std::vector<uint8_t>& payload);
};

// Scan the destination shard, optionally filtering server-side with a
// shipped predicate (function shipping). With no predicate the response
// is the shard's chunks verbatim (data shipping, e.g. for aggregates
// whose accumulator state has no wire form).
//
// The predicate travels as opaque bytes (exec/expr_serde's EncodeExpr
// output): net/ must not know the expression model — the grid layer
// encodes on the coordinator and decodes on the serving node.
//
// Replication view (DESIGN.md §13): `view_of` and `suspect_dead` scope
// the scan to one fan-out slot's chunk set. view_of = -1 asks for the
// serving node's own slot (the chunks it is primary for); view_of = X
// is a failover read — "serve the chunks node X would have served, if
// you are their first live replica given this dead set". suspect_dead
// is the coordinator's current dead view (strictly ascending node ids;
// canonical so decode->encode stays a byte-identical fixed point, which
// fuzz_frame checks). Both default to the pre-replication behavior.
struct ScanShardRequest {
  int32_t view_of = -1;  // -1 = own slot; >= 0 = failover for that node
  std::vector<int32_t> suspect_dead;  // strictly ascending, may be empty
  std::vector<uint8_t> pred_bytes;  // empty = unfiltered full-shard scan

  std::vector<uint8_t> EncodePayload() const;
  static Result<ScanShardRequest> Decode(const std::vector<uint8_t>& payload);
};

// Replaces the destination node's view of the dead set (strictly
// ascending node ids). Idempotent by construction — the payload is the
// entire set, not a delta — so retries and fault-injected duplicates
// are safe, like every other message here. The coordinator broadcasts
// one of these to every survivor when it declares a node dead, so
// server-side scan filtering and the coordinator agree on ownership.
struct MarkDeadRequest {
  std::vector<int32_t> dead;  // strictly ascending, may be empty

  std::vector<uint8_t> EncodePayload() const;
  static Result<MarkDeadRequest> Decode(const std::vector<uint8_t>& payload);
};

// Response to ScanShard: the matching cells re-chunked on the serving
// node, in origin order (MemArray::chunks() iteration order), so the
// coordinator's merge is deterministic.
struct ScanShardResponse {
  std::vector<std::vector<uint8_t>> chunks;  // SerializeChunk outputs

  std::vector<uint8_t> EncodePayload() const;
  static Result<ScanShardResponse> Decode(const std::vector<uint8_t>& payload);
};

// Response to NodeStatsReq (the request itself has an empty payload).
// Mirrors grid NodeStats; defined here so net/ does not depend on grid/.
struct NodeStatsResponse {
  int64_t cells_stored = 0;
  int64_t bytes_stored = 0;
  int64_t cells_scanned = 0;
  int64_t bytes_scanned = 0;

  std::vector<uint8_t> EncodePayload() const;
  static Result<NodeStatsResponse> Decode(const std::vector<uint8_t>& payload);
};

// Pull one node's metrics snapshot (DESIGN.md §12). The response carries
// the snapshot as metrics-JSON bytes (common/metrics SnapshotToJson): the
// format already has a fuzz-hardened parser, and keeping it opaque here
// means net/ does not depend on the registry's entry model.
struct MetricsGetRequest {
  uint8_t include_process = 0;  // 1 = append the process-wide registry too

  std::vector<uint8_t> EncodePayload() const;
  static Result<MetricsGetRequest> Decode(const std::vector<uint8_t>& payload);
};

struct MetricsGetResponse {
  std::vector<uint8_t> json;  // SnapshotToJson bytes

  std::vector<uint8_t> EncodePayload() const;
  static Result<MetricsGetResponse> Decode(const std::vector<uint8_t>& payload);
};

// Pull finished spans for one trace — and, optionally, the node's view of
// the process flight recorder — from a node's RpcServer. This is how the
// coordinator stitches server-side handler timings into explain analyze:
// the spans genuinely cross the RPC boundary instead of being read out of
// shared process memory.
struct TraceGetRequest {
  uint64_t trace_id = 0;     // spans to fetch (0 = none, events only)
  uint8_t include_flight = 0;  // 1 = append flight-recorder events

  std::vector<uint8_t> EncodePayload() const;
  static Result<TraceGetRequest> Decode(const std::vector<uint8_t>& payload);
};

struct TraceGetResponse {
  std::vector<SpanRecord> spans;     // insertion order preserved
  std::vector<FlightEvent> events;   // oldest first

  std::vector<uint8_t> EncodePayload() const;
  static Result<TraceGetResponse> Decode(const std::vector<uint8_t>& payload);
};

// ---------------- query-server vocabulary (DESIGN.md §15) ----------------
// The client generates the query id (unique per client node, strictly
// increasing), so a retried or fault-duplicated kQuery is recognizable
// as the same submission — the server executes each (src, client_qid)
// pair at most once. Results are PULLED chunk-by-chunk with
// kResultChunk, never pushed: a lost response is simply retried, which
// both makes reassembly idempotent per query id and gives the client
// natural backpressure (it paces the fetches).

// Submit one AQL statement for asynchronous execution.
struct QueryRequest {
  uint64_t client_qid = 0;
  std::string statement;

  std::vector<uint8_t> EncodePayload() const;
  static Result<QueryRequest> Decode(const std::vector<uint8_t>& payload);
};

// Poll query completion. The request is just the id; the response says
// whether the query finished and, once done, carries everything except
// the chunk data itself: terminal status (split into raw code+message so
// the payload round-trips byte-identically), result kind, and — for
// array results — the chunk count plus the schema needed to decode the
// SerializeChunk bytes fetched afterwards.
struct QueryDoneRequest {
  uint64_t client_qid = 0;

  std::vector<uint8_t> EncodePayload() const;
  static Result<QueryDoneRequest> Decode(const std::vector<uint8_t>& payload);
};

struct QueryDoneResponse {
  // QueryResult::Kind ordinals (query/session.h); bounded by kMaxKind on
  // decode. net/ carries the byte, server/ owns the mapping.
  static constexpr uint8_t kMaxKind = 5;

  uint8_t done = 0;            // 0 = still running (all else ignored)
  uint8_t status_code = 0;     // StatusCode ordinal of the terminal status
  std::string status_message;
  uint8_t kind = 0;
  uint8_t boolean = 0;         // kBool results
  std::string message;         // kNone/kExplain results
  uint64_t n_chunks = 0;       // kArray results: chunks to fetch
  int64_t snapshot_epoch = 0;  // catalog epoch the query read from
  uint8_t has_schema = 0;
  ArraySchema schema;          // present iff has_schema

  std::vector<uint8_t> EncodePayload() const;
  static Result<QueryDoneResponse> Decode(
      const std::vector<uint8_t>& payload);
};

// Fetch one buffered result chunk of a finished query by sequence
// number (0-based, dense). Pure read — safe to retry and duplicate.
struct ResultChunkRequest {
  uint64_t client_qid = 0;
  uint64_t seq = 0;

  std::vector<uint8_t> EncodePayload() const;
  static Result<ResultChunkRequest> Decode(
      const std::vector<uint8_t>& payload);
};

struct ResultChunkResponse {
  uint8_t ready = 0;                 // 0 = query still running
  std::vector<uint8_t> chunk_bytes;  // SerializeChunk output when ready

  std::vector<uint8_t> EncodePayload() const;
  static Result<ResultChunkResponse> Decode(
      const std::vector<uint8_t>& payload);
};

// Abort a running query (it stops within one morsel) or release a
// finished one (frees its buffered result bytes). Unknown or already
// released ids acknowledge as success, which is what makes the retry
// path safe.
struct CancelRequest {
  uint64_t client_qid = 0;

  std::vector<uint8_t> EncodePayload() const;
  static Result<CancelRequest> Decode(const std::vector<uint8_t>& payload);
};

// Builds a kError frame payload from a Status, and parses one back.
std::vector<uint8_t> EncodeErrorPayload(const Status& s);
// Returns the transported status (non-OK by construction on the server
// side) or Corruption if the payload does not parse.
Status DecodeErrorPayload(const std::vector<uint8_t>& payload, Status* out);

}  // namespace net
}  // namespace scidb

#endif  // SCIDB_NET_MESSAGE_H_
