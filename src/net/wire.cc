#include "net/wire.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "types/uncertain.h"

namespace scidb {
namespace net {

namespace {

// Value type tags. Append-only: renumbering breaks cross-version decode.
enum class ValueTag : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kUncertain = 4,
  kString = 5,
  kNestedArray = 6,
};

// Expr node tags.
enum class ExprTag : uint8_t {
  kLiteral = 1,
  kRef = 2,
  kBinary = 3,
  kNot = 4,
  kCall = 5,
};

constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(StatusCode::kDeadlineExceeded);
constexpr uint8_t kMaxBinaryOp = static_cast<uint8_t>(BinaryOp::kOr);

Status DepthExceeded(const char* what) {
  return Status::Corruption(std::string(what) + " nesting exceeds wire depth cap");
}

void EncodeValueRec(const Value& v, ByteWriter* w, int depth);
Result<Value> DecodeValueRec(ByteReader* r, int depth);

void EncodeValueRec(const Value& v, ByteWriter* w, int depth) {
  if (v.is_null()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kNull));
  } else if (v.is_bool()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kBool));
    w->PutU8(v.bool_value() ? 1 : 0);
  } else if (v.is_int64()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kInt64));
    w->PutSignedVarint(v.int64_value());
  } else if (v.is_double()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kDouble));
    w->PutDouble(v.double_value());
  } else if (v.is_uncertain()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kUncertain));
    w->PutDouble(v.uncertain_value().mean);
    w->PutDouble(v.uncertain_value().stderr_);
  } else if (v.is_string()) {
    w->PutU8(static_cast<uint8_t>(ValueTag::kString));
    w->PutString(v.string_value());
  } else {
    // Nested array. A null shared_ptr is encoded as NULL — the engine
    // never stores one, but the codec must not crash on it.
    const auto& arr = v.array_value();
    if (arr == nullptr || depth + 1 >= kMaxWireDepth) {
      // Depth overflow on encode cannot happen for engine-built values
      // (parser and executor cap nesting far below the wire cap); encode
      // NULL rather than emit bytes the decoder would reject.
      w->PutU8(static_cast<uint8_t>(ValueTag::kNull));
      return;
    }
    w->PutU8(static_cast<uint8_t>(ValueTag::kNestedArray));
    w->PutVarint(arr->shape.size());
    for (int64_t s : arr->shape) w->PutSignedVarint(s);
    w->PutVarint(arr->values.size());
    for (const Value& e : arr->values) EncodeValueRec(e, w, depth + 1);
  }
}

Result<Value> DecodeValueRec(ByteReader* r, int depth) {
  if (depth >= kMaxWireDepth) return DepthExceeded("value");
  ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      return Value::Null();
    case ValueTag::kBool: {
      ASSIGN_OR_RETURN(uint8_t b, r->GetU8());
      if (b > 1) return Status::Corruption("bool value out of range");
      return Value(b != 0);
    }
    case ValueTag::kInt64: {
      ASSIGN_OR_RETURN(int64_t i, r->GetSignedVarint());
      return Value(i);
    }
    case ValueTag::kDouble: {
      ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value(d);
    }
    case ValueTag::kUncertain: {
      ASSIGN_OR_RETURN(double mean, r->GetDouble());
      ASSIGN_OR_RETURN(double se, r->GetDouble());
      return Value(Uncertain(mean, se));
    }
    case ValueTag::kString: {
      ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value(std::move(s));
    }
    case ValueTag::kNestedArray: {
      ASSIGN_OR_RETURN(uint64_t ndims, r->GetVarint());
      // A dimension costs at least one byte on the wire; anything larger
      // than the remaining input is definitionally corrupt, and this
      // check bounds the allocation below.
      if (ndims > r->remaining()) {
        return Status::Corruption("nested array dimension count too large");
      }
      auto arr = std::make_shared<NestedArray>();
      arr->shape.reserve(static_cast<size_t>(ndims));
      for (uint64_t i = 0; i < ndims; ++i) {
        ASSIGN_OR_RETURN(int64_t s, r->GetSignedVarint());
        arr->shape.push_back(s);
      }
      ASSIGN_OR_RETURN(uint64_t count, r->GetVarint());
      if (count > r->remaining()) {
        return Status::Corruption("nested array value count too large");
      }
      arr->values.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        ASSIGN_OR_RETURN(Value e, DecodeValueRec(r, depth + 1));
        arr->values.push_back(std::move(e));
      }
      return Value(std::move(arr));
    }
  }
  return Status::Corruption("unknown value tag " + std::to_string(tag));
}

void EncodeExprRec(const Expr& e, ByteWriter* w, int depth);
Result<ExprPtr> DecodeExprRec(ByteReader* r, int depth);

void EncodeExprRec(const Expr& e, ByteWriter* w, int depth) {
  // Engine-built predicates never approach the cap (the parser's own
  // recursion limit is lower); encode a NULL literal as a defensive
  // bottom rather than recursing past the decoder's limit.
  if (depth >= kMaxWireDepth) {
    w->PutU8(static_cast<uint8_t>(ExprTag::kLiteral));
    EncodeValueRec(Value::Null(), w, 0);
    return;
  }
  switch (e.kind()) {
    case Expr::Kind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kLiteral));
      EncodeValueRec(lit.value(), w, 0);
      return;
    }
    case Expr::Kind::kRef: {
      const auto& ref = static_cast<const RefExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kRef));
      w->PutString(ref.name());
      w->PutSignedVarint(ref.side());
      return;
    }
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kBinary));
      w->PutU8(static_cast<uint8_t>(bin.op()));
      EncodeExprRec(*bin.lhs(), w, depth + 1);
      EncodeExprRec(*bin.rhs(), w, depth + 1);
      return;
    }
    case Expr::Kind::kNot: {
      const auto& n = static_cast<const NotExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kNot));
      EncodeExprRec(*n.operand(), w, depth + 1);
      return;
    }
    case Expr::Kind::kCall: {
      const auto& call = static_cast<const CallExpr&>(e);
      w->PutU8(static_cast<uint8_t>(ExprTag::kCall));
      w->PutString(call.fn());
      w->PutVarint(call.args().size());
      for (const auto& a : call.args()) EncodeExprRec(*a, w, depth + 1);
      return;
    }
  }
}

Result<ExprPtr> DecodeExprRec(ByteReader* r, int depth) {
  if (depth >= kMaxWireDepth) return DepthExceeded("expression");
  ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ExprTag>(tag)) {
    case ExprTag::kLiteral: {
      ASSIGN_OR_RETURN(Value v, DecodeValueRec(r, 0));
      return Lit(std::move(v));
    }
    case ExprTag::kRef: {
      ASSIGN_OR_RETURN(std::string name, r->GetString());
      ASSIGN_OR_RETURN(int64_t side, r->GetSignedVarint());
      if (side < -1 || side > 1) {
        return Status::Corruption("expression ref side out of range");
      }
      return Ref(std::move(name), static_cast<int>(side));
    }
    case ExprTag::kBinary: {
      ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > kMaxBinaryOp) {
        return Status::Corruption("unknown binary op " + std::to_string(op));
      }
      ASSIGN_OR_RETURN(ExprPtr lhs, DecodeExprRec(r, depth + 1));
      ASSIGN_OR_RETURN(ExprPtr rhs, DecodeExprRec(r, depth + 1));
      return Bin(static_cast<BinaryOp>(op), std::move(lhs), std::move(rhs));
    }
    case ExprTag::kNot: {
      ASSIGN_OR_RETURN(ExprPtr operand, DecodeExprRec(r, depth + 1));
      return Not(std::move(operand));
    }
    case ExprTag::kCall: {
      ASSIGN_OR_RETURN(std::string fn, r->GetString());
      ASSIGN_OR_RETURN(uint64_t nargs, r->GetVarint());
      if (nargs > r->remaining()) {
        return Status::Corruption("call argument count too large");
      }
      std::vector<ExprPtr> args;
      args.reserve(static_cast<size_t>(nargs));
      for (uint64_t i = 0; i < nargs; ++i) {
        ASSIGN_OR_RETURN(ExprPtr a, DecodeExprRec(r, depth + 1));
        args.push_back(std::move(a));
      }
      return Call(std::move(fn), std::move(args));
    }
  }
  return Status::Corruption("unknown expression tag " + std::to_string(tag));
}

}  // namespace

void EncodeStatus(const Status& s, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(s.code()));
  w->PutString(s.message());
}

Status DecodeStatus(ByteReader* r, Status* out) {
  ASSIGN_OR_RETURN(uint8_t code, r->GetU8());
  if (code > kMaxStatusCode) {
    return Status::Corruption("status code out of range: " +
                              std::to_string(code));
  }
  ASSIGN_OR_RETURN(std::string msg, r->GetString());
  *out = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

void EncodeValue(const Value& v, ByteWriter* w) { EncodeValueRec(v, w, 0); }

Result<Value> DecodeValue(ByteReader* r) { return DecodeValueRec(r, 0); }

void EncodeCoordinates(const Coordinates& c, ByteWriter* w) {
  w->PutVarint(c.size());
  for (int64_t x : c) w->PutSignedVarint(x);
}

Result<Coordinates> DecodeCoordinates(ByteReader* r) {
  ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > r->remaining()) {
    return Status::Corruption("coordinate count too large");
  }
  Coordinates c;
  c.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(int64_t x, r->GetSignedVarint());
    c.push_back(x);
  }
  return c;
}

void EncodeExpr(const Expr& e, ByteWriter* w) { EncodeExprRec(e, w, 0); }

Result<ExprPtr> DecodeExpr(ByteReader* r) { return DecodeExprRec(r, 0); }

}  // namespace net
}  // namespace scidb
