#include "net/wire.h"

#include <string>
#include <utility>

#include "common/macros.h"

namespace scidb {
namespace net {

namespace {

constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(StatusCode::kCancelled);

}  // namespace

void EncodeStatus(const Status& s, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(s.code()));
  w->PutString(s.message());
}

Status DecodeStatus(ByteReader* r, Status* out) {
  ASSIGN_OR_RETURN(uint8_t code, r->GetU8());
  if (code > kMaxStatusCode) {
    return Status::Corruption("status code out of range: " +
                              std::to_string(code));
  }
  ASSIGN_OR_RETURN(std::string msg, r->GetString());
  *out = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

void EncodeCoordinates(const Coordinates& c, ByteWriter* w) {
  w->PutVarint(c.size());
  for (int64_t x : c) w->PutSignedVarint(x);
}

Result<Coordinates> DecodeCoordinates(ByteReader* r) {
  ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > r->remaining()) {
    return Status::Corruption("coordinate count too large");
  }
  Coordinates c;
  c.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(int64_t x, r->GetSignedVarint());
    c.push_back(x);
  }
  return c;
}

}  // namespace net
}  // namespace scidb
