#ifndef SCIDB_NET_WIRE_H_
#define SCIDB_NET_WIRE_H_

#include "array/coordinates.h"
#include "common/byte_io.h"
#include "common/result.h"
#include "common/status.h"

namespace scidb {
namespace net {

// Wire encodings for the transport-level types (DESIGN.md §10): Status
// (for kError responses) and Coordinates (chunk addressing). Engine
// types stay out of this layer by design — Value serde lives in
// types/value_serde and Expr serde in exec/expr_serde, and RPC messages
// carry predicates as opaque bytes — so net/ never depends on the
// compute layer (the layering manifest enforces net -> {common, array}
// only). Chunks already have a columnar codec in storage/chunk_serde
// and likewise travel as opaque byte strings.
//
// Everything decodes with bounds checks; a hostile payload yields
// Corruption, never UB. The fuzz frame harness drives these paths
// through DecodeFrame payloads.

// ---- Status ----
// Encoded as code u8 + message string. Decoding an out-of-range code is
// Corruption (codes are append-only in common/status.h, so a newer
// peer's codes are the only way to see one).
void EncodeStatus(const Status& s, ByteWriter* w);
// On success stores the decoded status (which may itself be non-OK —
// that is the point) into *out and returns OK; returns Corruption when
// the bytes do not parse.
Status DecodeStatus(ByteReader* r, Status* out);

// ---- Coordinates ----
void EncodeCoordinates(const Coordinates& c, ByteWriter* w);
Result<Coordinates> DecodeCoordinates(ByteReader* r);

}  // namespace net
}  // namespace scidb

#endif  // SCIDB_NET_WIRE_H_
