#ifndef SCIDB_NET_WIRE_H_
#define SCIDB_NET_WIRE_H_

#include "array/coordinates.h"
#include "common/byte_io.h"
#include "common/result.h"
#include "common/status.h"
#include "exec/expression.h"
#include "types/value.h"

namespace scidb {
namespace net {

// Wire encodings for the engine types that cross node boundaries
// (DESIGN.md §10). Chunks already have a columnar codec in
// storage/chunk_serde; this file covers the rest: Status (for kError
// responses), Value, Coordinates, and Expr trees (function shipping —
// a ScanShard request carries its predicate so filtering runs on the
// node that owns the data).
//
// Everything decodes with bounds checks and depth guards; a hostile
// payload yields Corruption, never UB or unbounded recursion. The fuzz
// frame harness drives these paths through DecodeFrame payloads.

// Recursion cap shared by nested-array Values and Expr trees.
inline constexpr int kMaxWireDepth = 32;

// ---- Status ----
// Encoded as code u8 + message string. Decoding an out-of-range code is
// Corruption (codes are append-only in common/status.h, so a newer
// peer's codes are the only way to see one).
void EncodeStatus(const Status& s, ByteWriter* w);
// On success stores the decoded status (which may itself be non-OK —
// that is the point) into *out and returns OK; returns Corruption when
// the bytes do not parse.
Status DecodeStatus(ByteReader* r, Status* out);

// ---- Value ----
void EncodeValue(const Value& v, ByteWriter* w);
Result<Value> DecodeValue(ByteReader* r);

// ---- Coordinates ----
void EncodeCoordinates(const Coordinates& c, ByteWriter* w);
Result<Coordinates> DecodeCoordinates(ByteReader* r);

// ---- Expr ----
// Binary structural serde (not AQL-text round-tripping): the decoded
// tree is node-for-node identical to the encoded one, so a shipped
// predicate evaluates bit-identically to the coordinator's copy.
void EncodeExpr(const Expr& e, ByteWriter* w);
Result<ExprPtr> DecodeExpr(ByteReader* r);

}  // namespace net
}  // namespace scidb

#endif  // SCIDB_NET_WIRE_H_
