#ifndef SCIDB_NET_TCP_TRANSPORT_H_
#define SCIDB_NET_TCP_TRANSPORT_H_

#include <unistd.h>

#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "net/transport.h"

namespace scidb {
namespace net {

// Frame delivery over real TCP sockets on 127.0.0.1 — the same frames,
// handlers, and RPC stack as InProcessTransport, but with genuine
// kernel buffering, partial reads, and connection failures.
//
// Register(node) binds a listening socket on an ephemeral loopback port
// and starts an accept thread; each accepted connection gets a reader
// thread that reassembles frames (net/frame.h FrameAssembler) and
// dispatches them to the node's handler. A connection starts with a
// 4-byte little-endian preamble carrying the sender's node id, since
// frames themselves do not name their source.
//
// Send(src, dst) lazily opens one connection per (src, dst) pair and
// writes the encoded frame; connection or write failure surfaces as
// Unavailable (retryable — the RPC layer re-dials via a fresh Send).
class LoopbackTcpTransport : public Transport {
 public:
  LoopbackTcpTransport();
  ~LoopbackTcpTransport() override;

  Status Register(int node, FrameHandler handler) override
      LOCKS_EXCLUDED(mu_);
  Status Send(int src, int dst, Frame frame) override LOCKS_EXCLUDED(mu_);
  void Shutdown() override LOCKS_EXCLUDED(mu_);
  const char* name() const override { return "tcp"; }

  // The ephemeral port `node` listens on; 0 if not registered.
  uint16_t port(int node) const LOCKS_EXCLUDED(mu_);

 private:
  struct Listener {
    int fd = -1;
    uint16_t port = 0;
    FrameHandler handler;
    std::thread accept_thread;
  };

  // One outbound connection. The fd is closed by the destructor, and the
  // map holds shared_ptrs, so a Send mid-write keeps its connection alive
  // even if another thread drops it from the map. write_mu serializes
  // frame writes on the stream; it is never taken while holding mu_,
  // because a write can block on full kernel buffers until the peer's
  // reader drains them — and spawning that reader needs mu_.
  struct Conn {
    explicit Conn(int fd_in) : fd(fd_in) {}
    ~Conn() {
      if (fd >= 0) ::close(fd);
    }
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;
    const int fd;
    Mutex write_mu;
  };

  void AcceptLoop(Listener* listener) LOCKS_EXCLUDED(mu_);
  void ReaderLoop(Listener* listener, int fd);
  // Shuts down and forgets the cached (src, dst) connection, if any, so
  // the next Send re-dials.
  void DropConnection(int src, int dst) LOCKS_EXCLUDED(mu_);

  mutable Mutex mu_;
  std::map<int, std::unique_ptr<Listener>> listeners_ GUARDED_BY(mu_);
  std::map<std::pair<int, int>, std::shared_ptr<Conn>> conns_ GUARDED_BY(mu_);
  std::vector<std::thread> readers_ GUARDED_BY(mu_);
  std::vector<int> reader_fds_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace net
}  // namespace scidb

#endif  // SCIDB_NET_TCP_TRANSPORT_H_
