#ifndef SCIDB_NET_RPC_H_
#define SCIDB_NET_RPC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/trace.h"
#include "net/transport.h"

namespace scidb {
namespace net {

// Request/response on top of Transport (DESIGN.md §10): request-id
// correlation, per-call deadlines on the injectable clock from
// common/trace.h, and bounded exponential backoff with jitter for
// retries. Retries are safe because every RPC in the grid vocabulary is
// idempotent (ChunkPut is a per-cell last-writer-wins upsert; the reads
// are pure); the server may therefore execute a duplicated or retried
// request twice and the outcome is unchanged.

// "This thread is willing to block for up to `ns`." The default (null)
// implementation really waits (condition variable, so an arriving
// response cuts the wait short); tests inject VirtualTime::sleep(),
// which advances a manual clock instantly — deadline and backoff tests
// never sleep for real.
using SleepFn = std::function<void(uint64_t ns)>;

// Deterministic clock/sleep pair for deadline tests: sleep advances
// virtual time by exactly the requested amount, so a full-partition
// call "consumes" its entire deadline in microseconds of real time.
class VirtualTime {
 public:
  explicit VirtualTime(uint64_t start_ns = 1) : now_ns_(start_ns) {}

  uint64_t Now() const { return now_ns_.load(); }
  void Advance(uint64_t ns) { now_ns_.fetch_add(ns); }

  TraceClock clock() {
    return [this] { return now_ns_.load(); };
  }
  SleepFn sleep() {
    return [this](uint64_t ns) { now_ns_.fetch_add(ns); };
  }

 private:
  std::atomic<uint64_t> now_ns_;
};

struct CallOptions {
  // Total budget for the call including every retry and backoff.
  uint64_t deadline_ns = 500'000'000;
  // Budget for one attempt's response wait; on expiry the attempt is
  // abandoned and (budget permitting) retried.
  uint64_t attempt_timeout_ns = 100'000'000;
  int max_attempts = 4;
  // Exponential backoff between attempts: uniformly jittered in
  // [base/2, base], doubling up to the cap.
  uint64_t backoff_base_ns = 1'000'000;
  uint64_t backoff_cap_ns = 50'000'000;
  // When active, the call is distributed-traced (DESIGN.md §12): the
  // context rides on every request frame (span_id rewritten to this
  // call's span, parent = trace.span_id), the server records a handler
  // span, and the client records one rpc.* span covering all attempts
  // into Options::spans.
  TraceContext trace;
};

// Dispatches request frames to per-MessageType handlers and replies
// with kAck (payload = handler result) or kError (payload = wire-coded
// Status), echoing the request id. Thread-safe; handlers run on the
// transport's delivery thread.
class RpcServer {
 public:
  // `payload` is the request payload; the returned bytes become the Ack
  // payload. A non-OK result is shipped back verbatim as kError.
  using Handler = std::function<Result<std::vector<uint8_t>>(
      int src, const std::vector<uint8_t>& payload)>;

  struct Options {
    // Null = SteadyNowNs. Handler spans and flight-recorder events read
    // this clock, so virtual-time tests get deterministic timings.
    TraceClock clock;
    // Bound on buffered server-side handler spans (oldest dropped).
    size_t max_spans = 4096;
  };

  RpcServer(Transport* transport, int node);
  RpcServer(Transport* transport, int node, Options opts);

  void Handle(MessageType type, Handler handler) LOCKS_EXCLUDED(mu_);

  // Frame entry point; wired up by BindNode. A traced request frame
  // (frame.trace.active()) gets its handler timed into a server.* span,
  // and the reply echoes the request's trace context.
  void OnFrame(int src, Frame frame) LOCKS_EXCLUDED(mu_);

  // Removes and returns the handler spans of one trace, in execution
  // order. Served over the wire by the grid's TraceGet handler, so the
  // coordinator's stitch crosses the RPC boundary like any other read.
  std::vector<SpanRecord> TakeSpans(uint64_t trace_id) {
    return spans_.Take(trace_id);
  }

 private:
  Transport* const transport_;
  const int node_;
  const TraceClock clock_;
  Mutex mu_;
  std::map<uint8_t, Handler> handlers_ GUARDED_BY(mu_);
  SpanStore spans_;  // NOLINT(lock-coverage): internally synchronized
};

// Issues correlated calls from one node. Thread-safe: concurrent Calls
// from different threads multiplex over the same transport.
class RpcClient {
 public:
  struct Options {
    // Null = SteadyNowNs. Deadlines, backoff, and the latency
    // histogram all read this clock.
    TraceClock clock;
    // Null = real condition-variable waits.
    SleepFn sleep;
    uint64_t jitter_seed = 1;
    // Destination for client-side rpc.* spans of traced calls (one span
    // per Call, covering every attempt). Null = spans not recorded even
    // when the call carries a TraceContext. Must outlive the client.
    SpanStore* spans = nullptr;
  };

  // Two-arg form = default Options (an `= {}` default argument would
  // need Options' member initializers before the enclosing class is
  // complete, which the language does not allow).
  RpcClient(Transport* transport, int node);
  RpcClient(Transport* transport, int node, Options opts);

  // Sends `payload` as a `type` request to `dst` and waits for the
  // matching response. Retries on Unavailable and attempt timeouts with
  // jittered exponential backoff while the deadline allows; returns the
  // Ack payload, the server's error Status, DeadlineExceeded when the
  // budget ran out, or Unavailable when every attempt failed to reach
  // the peer. Never blocks past the deadline (plus one scheduling
  // quantum) — a full partition yields a clean error, not a hang.
  Result<std::vector<uint8_t>> Call(int dst, MessageType type,
                                    std::vector<uint8_t> payload,
                                    const CallOptions& opts = {})
      LOCKS_EXCLUDED(mu_);

  // Frame entry point; wired up by BindNode.
  void OnFrame(int src, Frame frame) LOCKS_EXCLUDED(mu_);

 private:
  struct Pending {
    bool done = false;
    bool is_error = false;
    std::vector<uint8_t> payload;
    Status error;
  };

  // True if the response arrived before `deadline_ns`.
  bool WaitForResponse(Pending* slot, uint64_t deadline_ns)
      LOCKS_EXCLUDED(mu_);
  void SleepNs(uint64_t ns) LOCKS_EXCLUDED(mu_);

  Transport* const transport_;
  const int node_;
  const TraceClock clock_;
  const SleepFn sleep_;
  SpanStore* const spans_;

  Mutex mu_;
  CondVar cv_;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, Pending*> pending_ GUARDED_BY(mu_);
  Rng jitter_ GUARDED_BY(mu_);
};

// Registers `node` on the transport with a demultiplexer: kAck/kError
// frames go to `client`, request frames to `server`. Either may be
// null (a pure coordinator has no server; a pure worker no client).
Status BindNode(Transport* transport, int node, RpcServer* server,
                RpcClient* client);

}  // namespace net
}  // namespace scidb

#endif  // SCIDB_NET_RPC_H_
