#include "net/frame.h"

#include <array>
#include <cstring>

#include "common/byte_io.h"
#include "common/macros.h"

namespace scidb {
namespace net {

namespace {

// CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320,
// computed once at first use (function-local static, thread-safe init).
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return kTable;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  const auto& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool IsValidMessageType(uint8_t t) {
  return t >= static_cast<uint8_t>(MessageType::kChunkPut) &&
         t <= static_cast<uint8_t>(MessageType::kCancel);
}

const char* MessageTypeName(MessageType t) {
  switch (t) {
    case MessageType::kChunkPut:
      return "ChunkPut";
    case MessageType::kChunkGet:
      return "ChunkGet";
    case MessageType::kScanShard:
      return "ScanShard";
    case MessageType::kNodeStatsReq:
      return "NodeStatsReq";
    case MessageType::kAck:
      return "Ack";
    case MessageType::kError:
      return "Error";
    case MessageType::kMetricsGet:
      return "MetricsGet";
    case MessageType::kTraceGet:
      return "TraceGet";
    case MessageType::kMarkDead:
      return "MarkDead";
    case MessageType::kQuery:
      return "Query";
    case MessageType::kResultChunk:
      return "ResultChunk";
    case MessageType::kQueryDone:
      return "QueryDone";
    case MessageType::kCancel:
      return "Cancel";
  }
  return "Unknown";
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  // The payload region is [trace context if traced] + payload; both the
  // length field and the CRC cover the whole region. The trace flag is
  // derived from frame.trace, never trusted from frame.flags, so encoding
  // is canonical (flag set iff trace_id != 0).
  const bool traced = frame.trace.active();
  uint16_t flags = frame.flags;
  if (traced) {
    flags |= kFrameFlagTrace;
  } else {
    flags &= static_cast<uint16_t>(~kFrameFlagTrace);
  }
  ByteWriter body;
  if (traced) {
    body.PutU64(frame.trace.trace_id);
    body.PutU64(frame.trace.span_id);
    body.PutU64(frame.trace.parent_span_id);
  }
  body.PutBytes(frame.payload.data(), frame.payload.size());
  const std::vector<uint8_t> region = body.Release();

  ByteWriter w;
  w.PutU32(kFrameMagic);
  w.PutU8(kFrameVersion);
  w.PutU8(static_cast<uint8_t>(frame.type));
  w.PutU8(static_cast<uint8_t>(flags & 0xFF));
  w.PutU8(static_cast<uint8_t>(flags >> 8));
  w.PutU64(frame.request_id);
  w.PutU32(static_cast<uint32_t>(region.size()));
  w.PutU32(Crc32(region.data(), region.size()));
  w.PutBytes(region.data(), region.size());
  return w.Release();
}

namespace {

// Decodes one frame from the front of [data, data+size). On success sets
// `*consumed` to the frame's total encoded size. Incomplete input (header
// or payload not fully present) is distinguished from corruption: it
// returns OutOfRange so stream callers can wait for more bytes, while
// genuinely malformed input returns Corruption.
Result<Frame> DecodeFramePrefix(const uint8_t* data, size_t size,
                                size_t* consumed) {
  if (size < kFrameHeaderSize) {
    return Status::OutOfRange("frame header incomplete");
  }
  ByteReader r(data, size);
  ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kFrameMagic) return Status::Corruption("bad frame magic");
  ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kFrameVersion) {
    return Status::Corruption("unsupported frame version " +
                              std::to_string(version));
  }
  ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  if (!IsValidMessageType(type)) {
    return Status::Corruption("unknown message type " + std::to_string(type));
  }
  ASSIGN_OR_RETURN(uint8_t flags_lo, r.GetU8());
  ASSIGN_OR_RETURN(uint8_t flags_hi, r.GetU8());
  ASSIGN_OR_RETURN(uint64_t request_id, r.GetU64());
  ASSIGN_OR_RETURN(uint32_t payload_len, r.GetU32());
  ASSIGN_OR_RETURN(uint32_t expected_crc, r.GetU32());
  if (payload_len > kMaxFramePayload) {
    return Status::Corruption("frame payload length " +
                              std::to_string(payload_len) + " exceeds cap");
  }
  if (size - kFrameHeaderSize < payload_len) {
    return Status::OutOfRange("frame payload incomplete");
  }
  const uint8_t* region = data + kFrameHeaderSize;
  if (Crc32(region, payload_len) != expected_crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  Frame f;
  f.type = static_cast<MessageType>(type);
  f.flags = static_cast<uint16_t>(flags_lo) |
            (static_cast<uint16_t>(flags_hi) << 8);
  f.request_id = request_id;
  size_t payload_off = 0;
  if ((f.flags & kFrameFlagTrace) != 0) {
    if (payload_len < kTraceContextWireSize) {
      return Status::Corruption("traced frame shorter than trace context");
    }
    ByteReader tr(region, kTraceContextWireSize);
    ASSIGN_OR_RETURN(f.trace.trace_id, tr.GetU64());
    ASSIGN_OR_RETURN(f.trace.span_id, tr.GetU64());
    ASSIGN_OR_RETURN(f.trace.parent_span_id, tr.GetU64());
    if (f.trace.trace_id == 0) {
      // Encode derives the flag from trace_id != 0; accepting this form
      // would break the decode->encode fixed point fuzz_frame relies on.
      return Status::Corruption("traced frame with zero trace id");
    }
    payload_off = kTraceContextWireSize;
  }
  f.payload.assign(region + payload_off, region + payload_len);
  *consumed = kFrameHeaderSize + payload_len;
  return f;
}

}  // namespace

Result<Frame> DecodeFrame(const uint8_t* data, size_t size) {
  size_t consumed = 0;
  Result<Frame> r = DecodeFramePrefix(data, size, &consumed);
  if (!r.ok()) {
    // A whole-buffer decode treats "incomplete" as corruption: the caller
    // claimed this was the entire frame.
    if (r.status().IsOutOfRange()) {
      return Status::Corruption("truncated frame: " + r.status().message());
    }
    return r.status();
  }
  if (consumed != size) {
    return Status::Corruption("trailing bytes after frame");
  }
  return r;
}

Result<Frame> DecodeFrame(const std::vector<uint8_t>& data) {
  return DecodeFrame(data.data(), data.size());
}

void FrameAssembler::Append(const uint8_t* data, size_t n) {
  // Compact lazily: drop the consumed prefix once it dominates the buffer
  // so long-lived connections do not grow without bound.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

Result<bool> FrameAssembler::Next(Frame* out) {
  if (corrupt_) return Status::Corruption("frame stream already corrupt");
  size_t consumed = 0;
  Result<Frame> r =
      DecodeFramePrefix(buf_.data() + consumed_, buf_.size() - consumed_,
                        &consumed);
  if (!r.ok()) {
    if (r.status().IsOutOfRange()) return false;  // need more bytes
    corrupt_ = true;
    return r.status();
  }
  consumed_ += consumed;
  *out = std::move(r).value();
  return true;
}

}  // namespace net
}  // namespace scidb
