#ifndef SCIDB_NET_TRANSPORT_H_
#define SCIDB_NET_TRANSPORT_H_

#include <functional>

#include "common/status.h"
#include "net/frame.h"

namespace scidb {
namespace net {

// Invoked for every frame delivered to a registered node. `src` is the
// sending node id. Runs on a transport-defined thread: the sender's own
// thread for InProcessTransport's inline mode, a delivery thread
// otherwise — handlers must do their own locking.
using FrameHandler = std::function<void(int src, Frame frame)>;

// Node-to-node frame delivery (DESIGN.md §10). Implementations:
//
//   InProcessTransport   queues between simulated nodes in one process
//   LoopbackTcpTransport real sockets on 127.0.0.1
//   FaultInjectingTransport  wrapper that drops/delays/duplicates/
//                            reorders/partitions under a seeded RNG
//
// Delivery is best-effort: Send returning OK means the frame was
// accepted for delivery, not that it arrived (a faulty or partitioned
// path may eat it). Reliability is the RPC layer's job (net/rpc.h).
class Transport {
 public:
  virtual ~Transport() = default;

  // Registers `node` as a destination. Must be called for every node
  // before the first Send touching it; registering a node twice is
  // AlreadyExists.
  [[nodiscard]] virtual Status Register(int node, FrameHandler handler) = 0;

  // Sends `frame` from `src` to `dst`. Unavailable when `dst` is not
  // registered or the transport is shut down.
  [[nodiscard]] virtual Status Send(int src, int dst, Frame frame) = 0;

  // Stops delivery and joins any transport-owned threads. After
  // Shutdown returns, no handler is running or will run again.
  virtual void Shutdown() = 0;

  // "inprocess", "tcp", ... for logs and benchmarks.
  virtual const char* name() const = 0;
};

// Bumps scidb.net.frames_sent / scidb.net.bytes_sent for one physical
// frame delivery. Called by the concrete transports (not by wrappers,
// so fault-injected duplicates count and drops do not).
void RecordFrameSent(const Frame& frame);

}  // namespace net
}  // namespace scidb

#endif  // SCIDB_NET_TRANSPORT_H_
