#ifndef SCIDB_NET_INPROCESS_TRANSPORT_H_
#define SCIDB_NET_INPROCESS_TRANSPORT_H_

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "net/transport.h"

namespace scidb {
namespace net {

// Frame delivery between simulated nodes sharing one process.
//
// Two modes:
//   kInline   Send invokes the destination handler on the calling
//             thread, synchronously. Zero threads, fully deterministic
//             — the default for the grid simulation and for every
//             fault/deadline test driven by a manual clock.
//   kThreaded One delivery thread per node draining a mutex+cv queue,
//             so handlers run concurrently with senders. Models the
//             asynchrony of a real network inside one process; the
//             TSan net job runs the transport tests in this mode.
//
// (The ISSUE sketched building this on common/thread_pool, but the pool
// is a blocking morsel executor — one ParallelFor at a time — which
// cannot host long-lived per-node delivery loops; dedicated threads
// match the lifecycle, and src/net/ is the lint-sanctioned home for
// them.)
class InProcessTransport : public Transport {
 public:
  enum class Mode { kInline, kThreaded };

  explicit InProcessTransport(Mode mode = Mode::kInline);
  ~InProcessTransport() override;

  Status Register(int node, FrameHandler handler) override
      LOCKS_EXCLUDED(mu_);
  Status Send(int src, int dst, Frame frame) override LOCKS_EXCLUDED(mu_);
  void Shutdown() override LOCKS_EXCLUDED(mu_);
  const char* name() const override { return "inprocess"; }

 private:
  struct Node {
    // Written once under InProcessTransport::mu_ when the node registers
    // and read-only afterwards; Register() is the happens-before edge.
    FrameHandler handler;  // NOLINT(lock-coverage): set once at Register
    // kThreaded state; unused in kInline mode. The worker thread object
    // itself is only touched by the registering/shutdown thread.
    std::thread worker;  // NOLINT(lock-coverage): owner-thread only
    Mutex mu;
    CondVar cv;
    std::vector<std::pair<int, Frame>> queue GUARDED_BY(mu);
    bool stop GUARDED_BY(mu) = false;
  };

  void DeliveryLoop(Node* node);

  const Mode mode_;
  mutable Mutex mu_;
  // unique_ptr: Node addresses must be stable across map growth — the
  // delivery threads hold raw pointers into it.
  std::map<int, std::unique_ptr<Node>> nodes_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace net
}  // namespace scidb

#endif  // SCIDB_NET_INPROCESS_TRANSPORT_H_
