#include "net/rpc.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "net/message.h"

namespace scidb {
namespace net {

namespace {

struct RpcMetrics {
  Counter* retries;
  Counter* timeouts;
  Counter* stale;
  Counter* errors;
  Histogram* latency_us;
  // Retries-per-successful-call distribution: a call that succeeds after
  // N retries records N, so p99 here answers "how often does the grid
  // need more than one shot" — the aggregate `retries` counter cannot.
  Histogram* retries_per_call;

  static const RpcMetrics& Get() {
    static const RpcMetrics m = {
        Metrics::Instance().counter("scidb.net.retries"),
        Metrics::Instance().counter("scidb.net.timeouts"),
        Metrics::Instance().counter("scidb.net.stale_responses"),
        Metrics::Instance().counter("scidb.net.rpc_errors"),
        Metrics::Instance().histogram("scidb.net.rpc_latency_us"),
        Metrics::Instance().histogram("scidb.net.rpc_retries"),
    };
    return m;
  }
};

bool IsRetryable(const Status& s) {
  return s.IsUnavailable() || s.IsDeadlineExceeded();
}

}  // namespace

RpcServer::RpcServer(Transport* transport, int node)
    : RpcServer(transport, node, Options()) {}

RpcServer::RpcServer(Transport* transport, int node, Options opts)
    : transport_(transport),
      node_(node),
      clock_(opts.clock ? std::move(opts.clock) : TraceClock(SteadyNowNs)),
      spans_(opts.max_spans) {}

void RpcServer::Handle(MessageType type, Handler handler) {
  MutexLock lock(mu_);
  handlers_[static_cast<uint8_t>(type)] = std::move(handler);
}

void RpcServer::OnFrame(int src, Frame frame) {
  if (FlightRecorder::enabled()) {
    FlightRecorder::Instance().RecordAt(
        clock_(), FlightEventKind::kRpcRecv, node_, frame.request_id,
        static_cast<uint64_t>(frame.type));
  }
  Handler handler;
  {
    MutexLock lock(mu_);
    auto it = handlers_.find(static_cast<uint8_t>(frame.type));
    if (it != handlers_.end()) handler = it->second;
  }
  const bool traced = frame.trace.active();
  const uint64_t handler_start_ns = traced ? clock_() : 0;
  Frame reply;
  reply.request_id = frame.request_id;
  bool ok = false;
  if (!handler) {
    reply.type = MessageType::kError;
    reply.payload = EncodeErrorPayload(Status::NotImplemented(
        std::string("no handler for ") + MessageTypeName(frame.type)));
  } else {
    Result<std::vector<uint8_t>> r = handler(src, frame.payload);
    if (r.ok()) {
      ok = true;
      reply.type = MessageType::kAck;
      reply.payload = std::move(r).value();
    } else {
      reply.type = MessageType::kError;
      reply.payload = EncodeErrorPayload(r.status());
    }
  }
  if (traced) {
    // One handler span per delivered request frame; a duplicated or
    // retried request therefore yields multiple spans, which is the
    // truth worth surfacing (the duplicate really did execute).
    SpanRecord span;
    span.trace_id = frame.trace.trace_id;
    span.span_id = NextSpanId();
    span.parent_span_id = frame.trace.span_id;
    span.node = node_;
    span.label = std::string("server.") + MessageTypeName(frame.type);
    span.start_ns = handler_start_ns;
    span.wall_ns = clock_() - handler_start_ns;
    span.AddNote("src", src);
    span.AddNote("ok", ok ? 1 : 0);
    spans_.Add(std::move(span));
    // Echo the request's context so the reply frame is traceable too.
    reply.trace = frame.trace;
  }
  (void)transport_->Send(  // status-ignored: a failed reply send is
      node_, src,          // indistinguishable from a lost reply to the
      std::move(reply));   // caller, whose retry/deadline machinery owns it
}

RpcClient::RpcClient(Transport* transport, int node)
    : RpcClient(transport, node, Options()) {}

RpcClient::RpcClient(Transport* transport, int node, Options opts)
    : transport_(transport),
      node_(node),
      clock_(opts.clock ? std::move(opts.clock) : TraceClock(SteadyNowNs)),
      sleep_(std::move(opts.sleep)),
      spans_(opts.spans),
      jitter_(opts.jitter_seed) {}

void RpcClient::OnFrame(int src, Frame frame) {
  (void)src;
  {
    MutexLock lock(mu_);
    auto it = pending_.find(frame.request_id);
    if (it != pending_.end()) {
      Pending* slot = it->second;
      if (!slot->done) {
        if (frame.type == MessageType::kError) {
          Status transported = Status::OK();
          Status parse = DecodeErrorPayload(frame.payload, &transported);
          slot->is_error = true;
          slot->error = parse.ok() ? transported : parse;
        } else {
          slot->payload = std::move(frame.payload);
        }
        slot->done = true;
      }
      // A second response for a still-pending id (fault-injected dup)
      // is simply ignored; the slot already holds the answer.
    } else {
      // Response to an abandoned attempt (the call retried or gave up).
      RpcMetrics::Get().stale->Inc();
    }
  }
  cv_.notify_all();
}

bool RpcClient::WaitForResponse(Pending* slot, uint64_t deadline_ns) {
  if (sleep_) {
    // Virtual-time path: between checks the injected sleep advances the
    // manual clock (it must advance by the requested amount, or this
    // loop could spin forever).
    while (true) {
      {
        MutexLock lock(mu_);
        if (slot->done) return true;
      }
      uint64_t now = clock_();
      if (now >= deadline_ns) {
        MutexLock lock(mu_);
        return slot->done;
      }
      sleep_(deadline_ns - now);
    }
  }
  MutexLock lock(mu_);
  while (!slot->done) {
    uint64_t now = clock_();
    if (now >= deadline_ns) return slot->done;
    cv_.wait_for(mu_, std::chrono::nanoseconds(deadline_ns - now));
  }
  return true;
}

void RpcClient::SleepNs(uint64_t ns) {
  if (ns == 0) return;
  if (sleep_) {
    sleep_(ns);
    return;
  }
  // Real-time backoff. Waking early on an (unrelated) response signal
  // only shortens the backoff, which is harmless.
  MutexLock lock(mu_);
  cv_.wait_for(mu_, std::chrono::nanoseconds(ns));
}

Result<std::vector<uint8_t>> RpcClient::Call(int dst, MessageType type,
                                             std::vector<uint8_t> payload,
                                             const CallOptions& opts) {
  const RpcMetrics& metrics = RpcMetrics::Get();
  const uint64_t start_ns = clock_();
  const uint64_t deadline_ns = start_ns + opts.deadline_ns;
  const int max_attempts = std::max(1, opts.max_attempts);
  uint64_t backoff_ns = std::max<uint64_t>(1, opts.backoff_base_ns);
  Status last = Status::Unavailable("rpc made no attempts");

  // Distributed tracing (DESIGN.md §12): one client span per Call, named
  // rpc.<Type>, covering every attempt. Each request frame carries the
  // caller's trace with span_id rewritten to this call's span, so the
  // server-side handler spans parent onto it.
  const bool trace_wire = opts.trace.active();
  const uint64_t call_span_id = trace_wire ? NextSpanId() : 0;
  int sends = 0;                  // attempts actually put on the wire
  uint64_t backoff_spent_ns = 0;  // total time slept between attempts
  uint64_t wire_wait_ns = 0;      // total time waiting on responses
  auto record_span = [&](bool call_ok) {
    if (!trace_wire || spans_ == nullptr) return;
    SpanRecord span;
    span.trace_id = opts.trace.trace_id;
    span.span_id = call_span_id;
    span.parent_span_id = opts.trace.span_id;
    span.node = node_;
    span.label = std::string("rpc.") + MessageTypeName(type);
    span.start_ns = start_ns;
    span.wall_ns = clock_() - start_ns;
    span.AddNote("dst", dst);
    span.AddNote("attempts", sends);
    span.AddNote("retries", sends > 0 ? sends - 1 : 0);
    span.AddNote("backoff_us", static_cast<double>(backoff_spent_ns / 1000));
    span.AddNote("wire_us", static_cast<double>(wire_wait_ns / 1000));
    if (!call_ok) span.AddNote("err", 1);
    spans_->Add(std::move(span));
  };

  // One shared response slot for the whole call. Every attempt registers
  // a fresh request id, but all of them resolve to this slot and stay
  // registered until the call ends: a late response to an *earlier*
  // attempt of a still-running call (a partition healing mid-call can
  // release one right as the retry goes out) completes the call instead
  // of being discarded as stale — discarding it both wasted the answer
  // and double-counted the call in scidb.net.rpc_retries. Stale
  // accounting now means what it says: a response nobody is waiting for.
  Pending slot;
  std::vector<uint64_t> call_ids;
  auto forget_ids = [&]() {
    MutexLock lock(mu_);
    for (uint64_t id : call_ids) pending_.erase(id);
    call_ids.clear();
  };

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      uint64_t jitter_ns;
      {
        MutexLock lock(mu_);
        jitter_ns = backoff_ns / 2 + jitter_.Uniform(backoff_ns / 2 + 1);
      }
      uint64_t backoff_now = clock_();
      if (backoff_now >= deadline_ns) break;
      const uint64_t sleep_ns = std::min(jitter_ns, deadline_ns - backoff_now);
      SleepNs(sleep_ns);
      backoff_spent_ns += sleep_ns;
      backoff_ns = std::min(backoff_ns * 2, opts.backoff_cap_ns);
    }
    // An earlier attempt's response may have arrived during the backoff;
    // skip straight to consuming it rather than resending (and rather
    // than counting a retry that never went on the wire).
    bool have_response;
    {
      MutexLock lock(mu_);
      have_response = slot.done;
    }
    uint64_t id = 0;
    if (!have_response) {
      uint64_t now = clock_();
      if (now >= deadline_ns) break;
      if (attempt > 0) {
        // Counted here — after the deadline checks and the arrived-late
        // check — so the counter only moves for retries actually sent.
        metrics.retries->Inc();
        if (FlightRecorder::enabled()) {
          FlightRecorder::Instance().RecordAt(
              clock_(), FlightEventKind::kRpcRetry, node_,
              static_cast<uint64_t>(attempt), static_cast<uint64_t>(type));
        }
      }
      // Fresh request id per attempt: responses stay attributable to the
      // attempt that solicited them even when the network duplicates.
      {
        MutexLock lock(mu_);
        id = next_id_++;
        pending_[id] = &slot;
        call_ids.push_back(id);
      }
      Frame frame;
      frame.type = type;
      frame.request_id = id;
      if (trace_wire) {
        frame.trace.trace_id = opts.trace.trace_id;
        frame.trace.span_id = call_span_id;
        frame.trace.parent_span_id = opts.trace.span_id;
      }
      frame.payload = payload;  // copied: later attempts resend it
      ++sends;
      if (FlightRecorder::enabled()) {
        FlightRecorder::Instance().RecordAt(
            clock_(), FlightEventKind::kRpcSend, node_, id,
            static_cast<uint64_t>(type));
      }
      Status sent = transport_->Send(node_, dst, std::move(frame));
      if (!sent.ok()) {
        last = sent;
        if (!IsRetryable(sent)) {
          forget_ids();
          metrics.errors->Inc();
          record_span(false);
          return sent;
        }
        continue;
      }
      const uint64_t wait_start_ns = clock_();
      const uint64_t attempt_deadline_ns =
          std::min(deadline_ns, wait_start_ns + opts.attempt_timeout_ns);
      const bool got = WaitForResponse(&slot, attempt_deadline_ns);
      wire_wait_ns += clock_() - wait_start_ns;
      if (!got) {
        // The id stays registered: if the response shows up while a
        // later attempt is in flight (or backing off), it completes the
        // call. Only call end abandons the ids.
        metrics.timeouts->Inc();
        if (FlightRecorder::enabled()) {
          FlightRecorder::Instance().RecordAt(
              clock_(), FlightEventKind::kRpcTimeout, node_, id,
              static_cast<uint64_t>(type));
        }
        last = Status::DeadlineExceeded(
            std::string("rpc ") + MessageTypeName(type) + " to node " +
            std::to_string(dst) + " timed out");
        continue;
      }
    }
    bool is_error;
    Status error;
    {
      MutexLock lock(mu_);
      is_error = slot.is_error;
      error = slot.error;
    }
    if (is_error) {
      last = error;
      if (!IsRetryable(error)) {
        forget_ids();
        metrics.errors->Inc();
        record_span(false);
        return error;
      }
      // Retrying after a server-delivered retryable error: the error
      // answered every outstanding id (the server is reachable), so
      // abandon them and arm the slot for the next attempt. Without the
      // reset a duplicate of the error reply could shadow the retry's
      // real answer.
      forget_ids();
      {
        MutexLock lock(mu_);
        slot.done = false;
        slot.is_error = false;
        slot.error = Status::OK();
        slot.payload.clear();
      }
      continue;
    }
    forget_ids();
    metrics.latency_us->Record(
        static_cast<int64_t>((clock_() - start_ns) / 1000));
    // A call that succeeded after N retries records N — traceable to a
    // query via the span note, aggregated across queries here.
    metrics.retries_per_call->Record(sends - 1);
    record_span(true);
    return std::move(slot.payload);
  }

  forget_ids();
  metrics.errors->Inc();
  record_span(false);
  if (clock_() >= deadline_ns && !last.IsDeadlineExceeded()) {
    return Status::DeadlineExceeded(
        std::string("rpc ") + MessageTypeName(type) + " to node " +
        std::to_string(dst) + " exceeded its deadline; last error: " +
        last.ToString());
  }
  return last;
}

Status BindNode(Transport* transport, int node, RpcServer* server,
                RpcClient* client) {
  return transport->Register(
      node, [server, client](int src, Frame frame) {
        const bool is_response = frame.type == MessageType::kAck ||
                                 frame.type == MessageType::kError;
        if (is_response) {
          if (client != nullptr) client->OnFrame(src, std::move(frame));
        } else if (server != nullptr) {
          server->OnFrame(src, std::move(frame));
        }
      });
}

}  // namespace net
}  // namespace scidb
