#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/macros.h"

namespace scidb {
namespace net {

namespace {

// Full send() loop: handles partial writes and EINTR. MSG_NOSIGNAL so a
// peer that vanished mid-write yields EPIPE instead of killing the
// process with SIGPIPE.
Status SendAll(int fd, const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send failed: ") +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status RecvExact(int fd, uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv failed: ") +
                                 std::strerror(errno));
    }
    if (r == 0) return Status::Unavailable("peer closed connection");
    off += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

LoopbackTcpTransport::LoopbackTcpTransport() = default;

LoopbackTcpTransport::~LoopbackTcpTransport() { Shutdown(); }

Status LoopbackTcpTransport::Register(int node, FrameHandler handler) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    Status s = Status::IOError(std::string("bind/listen failed: ") +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status s = Status::IOError(std::string("getsockname failed: ") +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }

  MutexLock lock(mu_);
  if (shutdown_) {
    ::close(fd);
    return Status::Unavailable("transport is shut down");
  }
  auto [it, inserted] = listeners_.emplace(node, std::make_unique<Listener>());
  if (!inserted) {
    ::close(fd);
    return Status::AlreadyExists("node " + std::to_string(node) +
                                 " already registered");
  }
  Listener* l = it->second.get();
  l->fd = fd;
  l->port = ntohs(addr.sin_port);
  l->handler = std::move(handler);
  l->accept_thread = std::thread([this, l] { AcceptLoop(l); });
  return Status::OK();
}

void LoopbackTcpTransport::AcceptLoop(Listener* listener) {
  while (true) {
    int fd = ::accept(listener->fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener was shut down
    }
    MutexLock lock(mu_);
    if (shutdown_) {
      ::close(fd);
      return;
    }
    reader_fds_.push_back(fd);
    readers_.emplace_back(
        [this, listener, fd] { ReaderLoop(listener, fd); });
  }
}

void LoopbackTcpTransport::ReaderLoop(Listener* listener, int fd) {
  // Connection preamble: the peer's node id (frames carry no source).
  uint8_t preamble[4];
  if (!RecvExact(fd, preamble, sizeof(preamble)).ok()) return;
  const int src = static_cast<int>(
      static_cast<uint32_t>(preamble[0]) |
      (static_cast<uint32_t>(preamble[1]) << 8) |
      (static_cast<uint32_t>(preamble[2]) << 16) |
      (static_cast<uint32_t>(preamble[3]) << 24));

  FrameAssembler assembler;
  uint8_t buf[64 * 1024];
  while (true) {
    ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return;  // EOF, error, or shutdown
    assembler.Append(buf, static_cast<size_t>(r));
    while (true) {
      Frame frame;
      Result<bool> got = assembler.Next(&frame);
      if (!got.ok()) return;  // corrupt stream: drop the connection
      if (!*got) break;
      listener->handler(src, std::move(frame));
    }
  }
}

Status LoopbackTcpTransport::Send(int src, int dst, Frame frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  std::shared_ptr<Conn> conn;
  {
    MutexLock lock(mu_);
    if (shutdown_) return Status::Unavailable("transport is shut down");
    auto existing = conns_.find({src, dst});
    if (existing != conns_.end()) {
      conn = existing->second;
    } else {
      auto it = listeners_.find(dst);
      if (it == listeners_.end()) {
        return Status::Unavailable("node " + std::to_string(dst) +
                                   " is not registered");
      }
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        return Status::Unavailable(std::string("socket failed: ") +
                                   std::strerror(errno));
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(it->second->port);
      // connect/preamble stay under mu_: a loopback handshake completes
      // in the listen backlog without userspace accept, and the 4-byte
      // preamble fits an empty socket buffer, so neither can park.
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),  // NOLINT(blocking-under-lock): loopback, see above
                    sizeof(addr)) != 0) {
        Status s = Status::Unavailable(std::string("connect failed: ") +
                                       std::strerror(errno));
        ::close(fd);
        return s;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const uint8_t preamble[4] = {
          static_cast<uint8_t>(src), static_cast<uint8_t>(src >> 8),
          static_cast<uint8_t>(src >> 16), static_cast<uint8_t>(src >> 24)};
      Status s = SendAll(fd, preamble, sizeof(preamble));  // NOLINT(blocking-under-lock): 4 bytes, empty buffer
      if (!s.ok()) {
        ::close(fd);
        return s;
      }
      conn = std::make_shared<Conn>(fd);
      conns_[{src, dst}] = conn;
    }
  }
  // The payload write runs outside mu_: a frame larger than the kernel's
  // socket buffers blocks until the peer's reader drains them, and that
  // reader is spawned by AcceptLoop, which needs mu_ — holding mu_ here
  // would deadlock. write_mu still keeps concurrent senders from
  // interleaving frames on the shared stream.
  Status s;
  {
    MutexLock wlock(conn->write_mu);
    // write_mu exists precisely to hold across this write: it serializes
    // whole frames onto the shared stream and is taken under no other
    // lock, so a slow peer stalls only rival senders to the same node.
    s = SendAll(conn->fd, bytes.data(), bytes.size());  // NOLINT(blocking-under-lock)
  }
  if (!s.ok()) {
    MutexLock lock(mu_);
    auto it = conns_.find({src, dst});
    if (it != conns_.end() && it->second == conn) conns_.erase(it);
    ::shutdown(conn->fd, SHUT_RDWR);  // closed by the last shared_ptr
    return s;
  }
  RecordFrameSent(frame);
  return Status::OK();
}

void LoopbackTcpTransport::DropConnection(int src, int dst) {
  MutexLock lock(mu_);
  auto it = conns_.find({src, dst});
  if (it != conns_.end()) {
    ::shutdown(it->second->fd, SHUT_RDWR);
    conns_.erase(it);  // fd closes when in-flight writers drop their refs
  }
}

uint16_t LoopbackTcpTransport::port(int node) const {
  MutexLock lock(mu_);
  auto it = listeners_.find(node);
  return it == listeners_.end() ? 0 : it->second->port;
}

void LoopbackTcpTransport::Shutdown() {
  std::vector<std::thread> accepts;
  std::vector<std::thread> readers;
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    // shutdown(2) wakes the threads blocked in accept/recv; the fds are
    // closed only after the joins so no fd number can be reused while a
    // thread still reads it.
    for (auto& [id, l] : listeners_) {
      ::shutdown(l->fd, SHUT_RDWR);
      accepts.push_back(std::move(l->accept_thread));
    }
    for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& [key, conn] : conns_) ::shutdown(conn->fd, SHUT_RDWR);
    readers.swap(readers_);
  }
  for (auto& t : accepts) {
    if (t.joinable()) t.join();
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  MutexLock lock(mu_);
  for (auto& [id, l] : listeners_) ::close(l->fd);
  for (int fd : reader_fds_) ::close(fd);
  reader_fds_.clear();
  conns_.clear();  // Conn dtors close the outbound fds
  listeners_.clear();
}

}  // namespace net
}  // namespace scidb
