#include "provenance/provenance.h"

#include <deque>

#include "common/macros.h"

namespace scidb {

LineageFns CellwiseLineage(const std::string& input_array,
                           const std::string& output_array) {
  LineageFns fns;
  fns.back = [input_array](const Coordinates& out) {
    return std::vector<CellRef>{{input_array, out}};
  };
  fns.fwd = [output_array](const CellRef& in) {
    return std::vector<CellRef>{{output_array, in.coords}};
  };
  return fns;
}

LineageFns RegridLineage(const std::string& input_array,
                         const std::string& output_array,
                         const ArraySchema& input_schema,
                         std::vector<int64_t> factors) {
  std::vector<int64_t> lows;
  for (const auto& d : input_schema.dims()) lows.push_back(d.low);
  LineageFns fns;
  fns.back = [input_array, lows, factors](const Coordinates& out) {
    // Output block g covers inputs [low + (g-low)*f, low + (g-low+1)*f - 1].
    std::vector<CellRef> cells;
    Box block;
    block.low.resize(out.size());
    block.high.resize(out.size());
    for (size_t d = 0; d < out.size(); ++d) {
      block.low[d] = lows[d] + (out[d] - lows[d]) * factors[d];
      block.high[d] = block.low[d] + factors[d] - 1;
    }
    Coordinates c = block.low;
    do {
      cells.push_back({input_array, c});
    } while (NextInBox(block, &c));
    return cells;
  };
  fns.fwd = [output_array, lows, factors](const CellRef& in) {
    Coordinates g(in.coords.size());
    for (size_t d = 0; d < g.size(); ++d) {
      g[d] = lows[d] + (in.coords[d] - lows[d]) / factors[d];
    }
    return std::vector<CellRef>{{output_array, g}};
  };
  return fns;
}

LineageFns AggregateLineage(const std::string& input_array,
                            const std::string& output_array,
                            std::shared_ptr<const MemArray> input,
                            std::vector<size_t> group_dim_indices) {
  LineageFns fns;
  fns.back = [input_array, input, group_dim_indices](const Coordinates& out) {
    std::vector<CellRef> cells;
    input->ForEachCell(
        [&](const Coordinates& c, const Chunk&, int64_t) {
          for (size_t i = 0; i < group_dim_indices.size(); ++i) {
            if (c[group_dim_indices[i]] != out[i]) return true;
          }
          cells.push_back({input_array, c});
          return true;
        });
    return cells;
  };
  fns.fwd = [output_array, group_dim_indices](const CellRef& in) {
    Coordinates g;
    g.reserve(group_dim_indices.size());
    for (size_t d : group_dim_indices) g.push_back(in.coords[d]);
    return std::vector<CellRef>{{output_array, g}};
  };
  return fns;
}

int64_t ProvenanceLog::Record(LoggedCommand cmd) {
  cmd.id = static_cast<int64_t>(log_.size()) + 1;
  log_.push_back(std::move(cmd));
  return log_.back().id;
}

Result<const LoggedCommand*> ProvenanceLog::Find(int64_t id) const {
  if (id < 1 || id > static_cast<int64_t>(log_.size())) {
    return Status::NotFound("no command with id " + std::to_string(id));
  }
  return &log_[static_cast<size_t>(id - 1)];
}

Result<std::vector<ProvenanceLog::BackStep>> ProvenanceLog::TraceBack(
    const CellRef& d, int max_depth) const {
  std::vector<BackStep> steps;
  std::deque<CellRef> frontier{d};
  std::set<CellRef> visited{d};
  int depth = 0;
  while (!frontier.empty() && depth < max_depth) {
    std::deque<CellRef> next;
    for (const CellRef& cell : frontier) {
      // The command that produced this cell's array: the LAST log entry
      // writing that array (update time identifies the producing command).
      const LoggedCommand* producer = nullptr;
      for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
        if (it->output == cell.array) {
          producer = &*it;
          break;
        }
      }
      if (producer == nullptr) continue;  // source data — trace ends

      std::vector<CellRef> contributors;
      auto cached = back_cache_.find(producer->id);
      if (cached != back_cache_.end()) {
        auto hit = cached->second.find(cell.coords);
        if (hit != cached->second.end()) contributors = hit->second;
      } else if (producer->lineage.back) {
        contributors = producer->lineage.back(cell.coords);
      } else {
        return Status::NotImplemented(
            "command " + std::to_string(producer->id) +
            " has no backward lineage (external program? check the "
            "metadata repository)");
      }
      steps.push_back(BackStep{producer->id, contributors});
      for (const CellRef& c : contributors) {
        if (visited.insert(c).second) next.push_back(c);
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  return steps;
}

Result<std::vector<CellRef>> ProvenanceLog::TraceForward(
    const CellRef& d, int max_depth) const {
  std::vector<CellRef> affected;
  std::deque<CellRef> frontier{d};
  std::set<CellRef> visited{d};
  int depth = 0;
  // "run subsequent commands in the provenance log in a modified form ...
  // iterated forward until there is no further activity."
  while (!frontier.empty() && depth < max_depth) {
    std::deque<CellRef> next;
    for (const CellRef& cell : frontier) {
      for (const LoggedCommand& cmd : log_) {
        bool consumes = false;
        for (const std::string& in : cmd.inputs) {
          if (in == cell.array) {
            consumes = true;
            break;
          }
        }
        if (!consumes) continue;

        std::vector<CellRef> outs;
        auto cached = fwd_cache_.find(cmd.id);
        if (cached != fwd_cache_.end()) {
          auto hit = cached->second.find(cell);
          if (hit != cached->second.end()) outs = hit->second;
        } else if (cmd.lineage.fwd) {
          outs = cmd.lineage.fwd(cell);
        } else {
          return Status::NotImplemented(
              "command " + std::to_string(cmd.id) +
              " has no forward lineage");
        }
        for (const CellRef& o : outs) {
          if (visited.insert(o).second) {
            affected.push_back(o);
            next.push_back(o);
          }
        }
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  return affected;
}

Status ProvenanceLog::CacheLineage(int64_t id,
                                   const std::vector<Coordinates>& out_cells) {
  ASSIGN_OR_RETURN(const LoggedCommand* cmd, Find(id));
  if (!cmd->lineage.back) {
    return Status::NotImplemented("command has no backward lineage to cache");
  }
  auto& back = back_cache_[id];
  auto& fwd = fwd_cache_[id];
  for (const Coordinates& out : out_cells) {
    std::vector<CellRef> contributors = cmd->lineage.back(out);
    for (const CellRef& c : contributors) {
      fwd[c].push_back({cmd->output, out});
    }
    back[out] = std::move(contributors);
  }
  return Status::OK();
}

void ProvenanceLog::DropCache(int64_t id) {
  back_cache_.erase(id);
  fwd_cache_.erase(id);
}

size_t ProvenanceLog::CacheBytes() const {
  size_t bytes = 0;
  auto ref_bytes = [](const CellRef& r) {
    return r.array.size() + r.coords.size() * sizeof(int64_t) +
           sizeof(CellRef);
  };
  for (const auto& [id, m] : back_cache_) {
    for (const auto& [out, cells] : m) {
      bytes += out.size() * sizeof(int64_t);
      for (const auto& c : cells) bytes += ref_bytes(c);
    }
  }
  for (const auto& [id, m] : fwd_cache_) {
    for (const auto& [in, cells] : m) {
      bytes += ref_bytes(in);
      for (const auto& c : cells) bytes += ref_bytes(c);
    }
  }
  return bytes;
}

Result<MemArray> ProvenanceLog::Rerun(int64_t id) const {
  ASSIGN_OR_RETURN(const LoggedCommand* cmd, Find(id));
  if (!cmd->rerun) {
    return Status::NotImplemented("command " + std::to_string(id) +
                                  " is not re-runnable in-engine");
  }
  return cmd->rerun();
}

int64_t MetadataRepository::Record(ProgramRun run) {
  run.id = static_cast<int64_t>(runs_.size()) + 1;
  runs_.push_back(std::move(run));
  return runs_.back().id;
}

Result<const MetadataRepository::ProgramRun*> MetadataRepository::Find(
    int64_t id) const {
  if (id < 1 || id > static_cast<int64_t>(runs_.size())) {
    return Status::NotFound("no program run with id " + std::to_string(id));
  }
  return &runs_[static_cast<size_t>(id - 1)];
}

std::vector<const MetadataRepository::ProgramRun*>
MetadataRepository::RunsProducing(const std::string& array) const {
  std::vector<const ProgramRun*> out;
  for (const auto& run : runs_) {
    for (const auto& a : run.output_arrays) {
      if (a == array) {
        out.push_back(&run);
        break;
      }
    }
  }
  return out;
}

std::vector<const MetadataRepository::ProgramRun*>
MetadataRepository::RunsOfProgram(const std::string& program) const {
  std::vector<const ProgramRun*> out;
  for (const auto& run : runs_) {
    if (run.program == program) out.push_back(&run);
  }
  return out;
}

}  // namespace scidb
