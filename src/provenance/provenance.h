#ifndef SCIDB_PROVENANCE_PROVENANCE_H_
#define SCIDB_PROVENANCE_PROVENANCE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/result.h"

namespace scidb {

// A reference to one data element: (array name, cell coordinates).
struct CellRef {
  std::string array;
  Coordinates coords;

  bool operator<(const CellRef& o) const {
    if (array != o.array) return array < o.array;
    return coords < o.coords;
  }
  bool operator==(const CellRef& o) const {
    return array == o.array && coords == o.coords;
  }
  std::string ToString() const { return array + CoordsToString(coords); }
};

// Lineage of one derivation step, queried in both directions:
//  - Back(out_cell): the input cells that contributed to an output cell —
//    what the paper's "special executor mode that will record all items
//    that contributed" produces when re-running the command.
//  - Fwd(in_cell): the output cells affected by an input cell — what
//    re-running the command with the added "dimension-1 = V1 and ..."
//    qualification produces.
struct LineageFns {
  std::function<std::vector<CellRef>(const Coordinates& out)> back;
  std::function<std::vector<CellRef>(const CellRef& in)> fwd;
};

// Standard lineage builders for the engine's operators.
// Cell-wise ops (Filter, Apply, Project, Subsample): out[c] <- in[c].
LineageFns CellwiseLineage(const std::string& input_array,
                           const std::string& output_array);
// Regrid with per-dimension factors: out[g] <- the factor-box of inputs.
LineageFns RegridLineage(const std::string& input_array,
                         const std::string& output_array,
                         const ArraySchema& input_schema,
                         std::vector<int64_t> factors);
// Aggregate over grouping dims: out[g] <- every input cell matching g.
// Needs the input array contents to enumerate group members.
LineageFns AggregateLineage(const std::string& input_array,
                            const std::string& output_array,
                            std::shared_ptr<const MemArray> input,
                            std::vector<size_t> group_dim_indices);

// One entry of the provenance log (paper: "one merely needs to record a
// log of the commands that were run").
struct LoggedCommand {
  int64_t id = 0;
  std::string text;                       // human-readable command
  std::vector<std::string> inputs;        // input array names
  std::string output;                     // output array name
  std::map<std::string, std::string> params;  // run-time parameters
  LineageFns lineage;
  // Re-derivation hook (paper: "rerun (a portion of) the derivation to
  // generate a replacement value"). May be empty for external programs.
  std::function<Result<MemArray>()> rerun;
};

// The provenance log + Trio-style lineage cache. Two operating points
// (paper §2.12): with no cache, traces re-derive lineage through the
// registered callbacks ("no extra space at all, but substantial running
// time"); CacheLineage(id) materializes a command's cell-level lineage
// (the Trio item-level structure) so later traces are lookups.
class ProvenanceLog {
 public:
  // Appends a command; returns its id.
  int64_t Record(LoggedCommand cmd);

  const std::vector<LoggedCommand>& commands() const { return log_; }
  Result<const LoggedCommand*> Find(int64_t id) const;

  // Requirement 1: "For a given data element D, find the collection of
  // processing steps that created it from input data." Returns the chain
  // of (command id, contributing cells) ending at source data, tracing
  // backwards through every command whose output contains D.
  struct BackStep {
    int64_t command_id;
    std::vector<CellRef> contributors;
  };
  Result<std::vector<BackStep>> TraceBack(const CellRef& d,
                                          int max_depth = 64) const;

  // Requirement 2: "For a given data element D, find all the downstream
  // data elements whose value is impacted by the value of D."
  Result<std::vector<CellRef>> TraceForward(const CellRef& d,
                                            int max_depth = 64) const;

  // Materializes the cell-level lineage of command `id` over `out_cells`
  // so traces touching it become hash lookups. Space cost is visible via
  // CacheBytes() — the knob benchmarked in EXP-PROV.
  Status CacheLineage(int64_t id, const std::vector<Coordinates>& out_cells);
  void DropCache(int64_t id);
  size_t CacheBytes() const;
  [[nodiscard]] bool IsCached(int64_t id) const {
    return back_cache_.count(id) > 0;
  }

  // Re-derivation of a command's output (does not overwrite anything; the
  // caller commits the result as new history / a named version).
  Result<MemArray> Rerun(int64_t id) const;

 private:
  std::vector<LoggedCommand> log_;
  // command id -> (output coords -> contributors), and the inverse.
  std::map<int64_t, std::map<Coordinates, std::vector<CellRef>>> back_cache_;
  std::map<int64_t, std::map<CellRef, std::vector<CellRef>>> fwd_cache_;
};

// Metadata repository (paper: "for arrays that are loaded externally,
// scientists want a metadata repository in which they can enter programs
// that were run along with their run-time parameters").
class MetadataRepository {
 public:
  struct ProgramRun {
    int64_t id = 0;
    std::string program;
    std::string version;
    std::map<std::string, std::string> params;
    std::vector<std::string> input_files;
    std::vector<std::string> output_arrays;
    int64_t timestamp_micros = 0;
  };

  int64_t Record(ProgramRun run);
  Result<const ProgramRun*> Find(int64_t id) const;
  // All runs that produced `array` (how external data entered the system).
  std::vector<const ProgramRun*> RunsProducing(const std::string& array)
      const;
  std::vector<const ProgramRun*> RunsOfProgram(const std::string& program)
      const;
  size_t size() const { return runs_.size(); }

 private:
  std::vector<ProgramRun> runs_;
};

}  // namespace scidb

#endif  // SCIDB_PROVENANCE_PROVENANCE_H_
