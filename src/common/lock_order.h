#ifndef SCIDB_COMMON_LOCK_ORDER_H_
#define SCIDB_COMMON_LOCK_ORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace scidb {

// Lock-acquisition-order graph with cycle detection (DESIGN.md §9).
//
// Every Mutex is a node; observing a thread acquire lock B while holding
// lock A records the directed edge A -> B ("A is taken before B"). A
// well-ordered program's graph is acyclic; a cycle means two code paths
// acquire the same pair of locks in opposite orders — the classic
// deadlock recipe, reported deterministically even when the interleaving
// that would actually deadlock never happens in the test run.
//
// The graph itself is build-type independent and directly unit-testable.
// The process-wide instance wired into common/mutex.h is active only when
// SCIDB_LOCK_ORDER_CHECKS is 1 (debug builds, or -DSCIDB_LOCK_ORDER=ON);
// release builds compile the hooks out entirely.
class LockOrderGraph {
 public:
  LockOrderGraph() = default;
  LockOrderGraph(const LockOrderGraph&) = delete;
  LockOrderGraph& operator=(const LockOrderGraph&) = delete;

  // Registers a lock; `name` is kept for diagnostics (may be null).
  // Returned ids are unique for the lifetime of the graph, never reused.
  uint64_t AddNode(const char* name);

  // Forgets a destroyed lock and every edge touching it. Ids are never
  // reused, so a stale edge could not misfire — this only bounds memory.
  void RemoveNode(uint64_t id);

  // Records "about to acquire `acquiring` while holding `held`". Returns
  // an empty string when the order is consistent with every acquisition
  // seen so far, otherwise a human-readable description of the cycle the
  // new edge would close (the inverted pair plus the path between them).
  [[nodiscard]] std::string RecordEdge(uint64_t held, uint64_t acquiring);

  // Number of distinct edges recorded (test introspection).
  size_t EdgeCount() const;

 private:
  struct Node {
    std::string name;
    std::unordered_set<uint64_t> out;  // ids acquired while holding this
  };

  // True when `to` is reachable from `from` over out-edges.
  bool Reachable(uint64_t from, uint64_t to,
                 std::unordered_set<uint64_t>* seen) const;
  std::string NodeLabel(uint64_t id) const;

  // A raw std::mutex, deliberately: the detector must not instrument its
  // own synchronization. It also carries no capability attribute, so the
  // members it guards opt out of lock-coverage instead of GUARDED_BY.
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Node> nodes_;  // NOLINT(lock-coverage): mu_
  uint64_t next_id_ = 1;  // NOLINT(lock-coverage): guarded by raw mu_
};

// Hooks called by scidb::Mutex when SCIDB_LOCK_ORDER_CHECKS is on. They
// maintain a per-thread stack of held lock ids and feed the process-wide
// LockOrderGraph; PreAcquire prints the offending cycle to stderr and
// aborts when an acquisition inverts the established order.
namespace lock_order_internal {

uint64_t OnCreate(const char* name);
void OnDestroy(uint64_t id);
// Before blocking on the lock: checks every currently held lock -> `id`
// edge for a cycle. Aborting *before* the deadlock leaves a clean stack.
void PreAcquire(uint64_t id);
// After the lock is held (lock() success or try_lock() returning true).
void PostAcquire(uint64_t id);
void OnRelease(uint64_t id);

}  // namespace lock_order_internal

}  // namespace scidb

#endif  // SCIDB_COMMON_LOCK_ORDER_H_
