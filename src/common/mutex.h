#ifndef SCIDB_COMMON_MUTEX_H_
#define SCIDB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace scidb {

// std::mutex with Clang thread-safety annotations. libstdc++'s std::mutex
// carries no capability attributes, so -Wthread-safety cannot see through
// it; this thin wrapper is what GUARDED_BY(mu_) declarations in the
// engine refer to. It satisfies BasicLockable, so CondVar (a
// std::condition_variable_any) waits on it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Scoped lock over Mutex, the project's std::lock_guard replacement for
// annotated code paths.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable that waits on the annotated Mutex. wait_for takes
// the Mutex itself (BasicLockable); the lock is held on entry and on
// return, which matches what the thread-safety analysis assumes for a
// function that neither acquires nor releases.
using CondVar = std::condition_variable_any;

}  // namespace scidb

#endif  // SCIDB_COMMON_MUTEX_H_
