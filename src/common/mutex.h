#ifndef SCIDB_COMMON_MUTEX_H_
#define SCIDB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

// Debug lock-order detection (DESIGN.md §9): when SCIDB_LOCK_ORDER_CHECKS
// is 1, every Mutex registers with the process-wide LockOrderGraph and
// each acquisition is checked against the established acquisition order;
// an inverted order (a cycle in the graph) aborts with the offending
// cycle. Defaults to on in debug builds and off (zero code, zero bytes)
// under NDEBUG; -DSCIDB_LOCK_ORDER=ON forces it on for any build type.
#if !defined(SCIDB_LOCK_ORDER_CHECKS)
#if defined(NDEBUG)
#define SCIDB_LOCK_ORDER_CHECKS 0
#else
#define SCIDB_LOCK_ORDER_CHECKS 1
#endif
#endif

#if SCIDB_LOCK_ORDER_CHECKS
#include "common/lock_order.h"
#endif

namespace scidb {

// std::mutex with Clang thread-safety annotations. libstdc++'s std::mutex
// carries no capability attributes, so -Wthread-safety cannot see through
// it; this thin wrapper is what GUARDED_BY(mu_) declarations in the
// engine refer to. It satisfies BasicLockable, so CondVar (a
// std::condition_variable_any) waits on it directly.
//
// The optional name is used only by the lock-order detector's diagnostics
// ("lock#7 (Session::mu_)" beats "lock#7"); it must be a string literal or
// otherwise outlive the Mutex.
class CAPABILITY("mutex") Mutex {
 public:
#if SCIDB_LOCK_ORDER_CHECKS
  Mutex() : order_id_(lock_order_internal::OnCreate(nullptr)) {}
  explicit Mutex(const char* name)
      : order_id_(lock_order_internal::OnCreate(name)) {}
  ~Mutex() { lock_order_internal::OnDestroy(order_id_); }
#else
  Mutex() = default;
  explicit Mutex(const char* /*name*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if SCIDB_LOCK_ORDER_CHECKS
    lock_order_internal::PreAcquire(order_id_);
    mu_.lock();
    lock_order_internal::PostAcquire(order_id_);
#else
    mu_.lock();
#endif
  }
  void unlock() RELEASE() {
    mu_.unlock();
#if SCIDB_LOCK_ORDER_CHECKS
    lock_order_internal::OnRelease(order_id_);
#endif
  }
  bool try_lock() TRY_ACQUIRE(true) {
    // try_lock cannot block, so it establishes no ordering edge (the
    // caller has a non-deadlocking fallback by construction); it only
    // joins the held stack so later lock() calls see it as held.
    bool acquired = mu_.try_lock();
#if SCIDB_LOCK_ORDER_CHECKS
    if (acquired) lock_order_internal::PostAcquire(order_id_);
#endif
    return acquired;
  }

 private:
  std::mutex mu_;
#if SCIDB_LOCK_ORDER_CHECKS
  const uint64_t order_id_;
#endif
};

// Scoped lock over Mutex, the project's std::lock_guard replacement for
// annotated code paths.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable that waits on the annotated Mutex. wait_for takes
// the Mutex itself (BasicLockable); the lock is held on entry and on
// return, which matches what the thread-safety analysis assumes for a
// function that neither acquires nor releases. The lock-order hooks fire
// on the internal unlock/relock too, so a wait cannot hide an inversion.
using CondVar = std::condition_variable_any;

}  // namespace scidb

#endif  // SCIDB_COMMON_MUTEX_H_
