#include "common/flight_recorder.h"

#include <cstdio>
#include <sstream>

#include "common/trace.h"

namespace scidb {

namespace flight_internal {
std::atomic<bool> g_enabled{true};
}  // namespace flight_internal

bool IsValidFlightEventKind(uint8_t k) {
  return k >= static_cast<uint8_t>(FlightEventKind::kRpcSend) &&
         k <= static_cast<uint8_t>(FlightEventKind::kRereplicate);
}

const char* FlightEventKindName(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kRpcSend:
      return "RpcSend";
    case FlightEventKind::kRpcRecv:
      return "RpcRecv";
    case FlightEventKind::kRpcRetry:
      return "RpcRetry";
    case FlightEventKind::kRpcTimeout:
      return "RpcTimeout";
    case FlightEventKind::kFaultDrop:
      return "FaultDrop";
    case FlightEventKind::kFaultDup:
      return "FaultDup";
    case FlightEventKind::kFaultHold:
      return "FaultHold";
    case FlightEventKind::kFaultPartition:
      return "FaultPartition";
    case FlightEventKind::kCacheEvict:
      return "CacheEvict";
    case FlightEventKind::kMergePass:
      return "MergePass";
    case FlightEventKind::kShardScan:
      return "ShardScan";
    case FlightEventKind::kParallelFor:
      return "ParallelFor";
    case FlightEventKind::kMark:
      return "Mark";
    case FlightEventKind::kFailoverRead:
      return "FailoverRead";
    case FlightEventKind::kNodeDead:
      return "NodeDead";
    case FlightEventKind::kRereplicate:
      return "Rereplicate";
  }
  return "Unknown";
}

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_enabled(bool on) {
  flight_internal::g_enabled.store(on, std::memory_order_relaxed);  // relaxed-ok: kill switch; stale reads only skip/keep events
}

void FlightRecorder::Record(FlightEventKind kind, int32_t node, uint64_t a,
                            uint64_t b) {
  // Check the kill switch before reading the clock: a disabled Record
  // must cost one relaxed load, not a steady_clock syscall.
  if (!flight_internal::Enabled()) return;
  RecordAt(SteadyNowNs(), kind, node, a, b);
}

void FlightRecorder::RecordAt(uint64_t t_ns, FlightEventKind kind,
                              int32_t node, uint64_t a, uint64_t b) {
  if (!flight_internal::Enabled()) return;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: slot ownership only needs a unique value
  Slot& slot = ring_[seq & (kRingSize - 1)];
  const uint64_t meta =
      static_cast<uint64_t>(static_cast<uint8_t>(kind)) |
      (static_cast<uint64_t>(static_cast<uint32_t>(node)) << 32);
  slot.t_ns.store(t_ns, std::memory_order_relaxed);  // relaxed-ok: published by the stamp's release store below
  slot.meta.store(meta, std::memory_order_relaxed);  // relaxed-ok: published by the stamp's release store below
  slot.a.store(a, std::memory_order_relaxed);        // relaxed-ok: published by the stamp's release store below
  slot.b.store(b, std::memory_order_relaxed);        // relaxed-ok: published by the stamp's release store below
  slot.stamp.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Dump() const {
  const uint64_t n = next_.load(std::memory_order_acquire);
  const uint64_t start = n > kRingSize ? n - kRingSize : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<size_t>(n - start));
  for (uint64_t seq = start; seq < n; ++seq) {
    const Slot& slot = ring_[seq & (kRingSize - 1)];
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    FlightEvent e;
    e.seq = seq;
    e.t_ns = slot.t_ns.load(std::memory_order_relaxed);  // relaxed-ok: stamp re-check below rejects torn reads
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);  // relaxed-ok: stamp re-check below rejects torn reads
    e.a = slot.a.load(std::memory_order_relaxed);  // relaxed-ok: stamp re-check below rejects torn reads
    e.b = slot.b.load(std::memory_order_relaxed);  // relaxed-ok: stamp re-check below rejects torn reads
    const uint8_t raw_kind = static_cast<uint8_t>(meta & 0xFF);
    if (!IsValidFlightEventKind(raw_kind)) continue;
    e.kind = static_cast<FlightEventKind>(raw_kind);
    e.node = static_cast<int32_t>(static_cast<uint32_t>(meta >> 32));
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::DumpToString() const {
  const std::vector<FlightEvent> events = Dump();
  std::ostringstream out;
  out << "flight recorder: " << events.size()
      << " event(s), oldest first (ring " << kRingSize << ")\n";
  for (const FlightEvent& e : events) {
    out << "  seq=" << e.seq << " t=" << e.t_ns << "ns "
        << FlightEventKindName(e.kind) << " node=" << e.node << " a=" << e.a
        << " b=" << e.b << "\n";
  }
  return out.str();
}

void FlightRecorder::DumpToStderr() const {
  const std::string text = DumpToString();
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

void FlightRecorder::Clear() {
  next_.store(0, std::memory_order_relaxed);  // relaxed-ok: test-only reset, callers quiesce writers first
  for (Slot& slot : ring_) {
    slot.stamp.store(0, std::memory_order_relaxed);  // relaxed-ok: test-only reset, callers quiesce writers first
  }
}

}  // namespace scidb
