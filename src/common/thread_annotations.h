#ifndef SCIDB_COMMON_THREAD_ANNOTATIONS_H_
#define SCIDB_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (compile with
// -Wthread-safety). Under GCC (which has no such analysis) every macro
// expands to nothing, so annotated code builds identically everywhere.
// Usage mirrors Abseil/LLVM: annotate shared state with GUARDED_BY(mu)
// and the functions that touch it with EXCLUSIVE_LOCKS_REQUIRED(mu) /
// LOCKS_EXCLUDED(mu); see common/mutex.h for the annotated lock types.

#if defined(__clang__)
#define SCIDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SCIDB_THREAD_ANNOTATION(x)
#endif

// On data members: readable/writable only while holding capability `x`.
#define GUARDED_BY(x) SCIDB_THREAD_ANNOTATION(guarded_by(x))
// On pointer members: the pointee (not the pointer) is protected by `x`.
#define PT_GUARDED_BY(x) SCIDB_THREAD_ANNOTATION(pt_guarded_by(x))

// On functions: caller must hold the capability exclusively / shared.
#define EXCLUSIVE_LOCKS_REQUIRED(...) \
  SCIDB_THREAD_ANNOTATION(exclusive_locks_required(__VA_ARGS__))
#define SHARED_LOCKS_REQUIRED(...) \
  SCIDB_THREAD_ANNOTATION(shared_locks_required(__VA_ARGS__))
// On functions: caller must NOT hold the capability (non-reentrant locks).
#define LOCKS_EXCLUDED(...) SCIDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On lock types and their members.
#define CAPABILITY(x) SCIDB_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY SCIDB_THREAD_ANNOTATION(scoped_lockable)
#define ACQUIRE(...) SCIDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SCIDB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RELEASE(...) SCIDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SCIDB_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) SCIDB_THREAD_ANNOTATION(lock_returned(x))

// Lock-ordering documentation.
#define ACQUIRED_BEFORE(...) \
  SCIDB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SCIDB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Escape hatch for code the analysis cannot model (condition-variable
// wait loops, lock handoff across threads). Use sparingly; justify with
// a comment at every use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  SCIDB_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SCIDB_COMMON_THREAD_ANNOTATIONS_H_
