#ifndef SCIDB_COMMON_TRACE_H_
#define SCIDB_COMMON_TRACE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace scidb {

// Per-query tracing (DESIGN.md §7): `explain analyze` executes a query
// with one TraceNode per operator, each timed by an RAII TraceSpan. The
// clock source is injectable so tests can assert exact timings; the
// default is the monotonic steady clock.

// Nanoseconds from an arbitrary epoch, monotone non-decreasing.
using TraceClock = std::function<uint64_t()>;

// The default clock: std::chrono::steady_clock in nanoseconds.
uint64_t SteadyNowNs();

// One node of the annotated operator tree. `label` matches the plain
// `explain` plan line for the same operator so the two outputs are
// shape-comparable; `notes` carries per-operator measurements (cells
// visited, chunk-cache hits, ...) in insertion order.
struct TraceNode {
  std::string label;
  uint64_t wall_ns = 0;
  int64_t out_cells = -1;  // -1 = no array output (e.g. boolean Exists)
  std::vector<std::pair<std::string, double>> notes;
  std::vector<std::unique_ptr<TraceNode>> children;

  TraceNode* AddChild() {
    children.push_back(std::make_unique<TraceNode>());
    return children.back().get();
  }
  void AddNote(std::string key, double value) {
    notes.push_back({std::move(key), value});
  }
  const double* FindNote(const std::string& key) const {
    for (const auto& [k, v] : notes) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

// The full record of one traced statement: phase timings (parse ->
// optimize -> execute) plus the per-operator tree.
struct QueryTrace {
  std::string statement;
  uint64_t parse_ns = 0;
  uint64_t optimize_ns = 0;
  uint64_t execute_ns = 0;
  TraceNode root;

  // Renders the annotated tree ("explain analyze" output). When
  // `analyze` is false only the tree shape (labels + indentation) is
  // printed — identical to what plain `explain` shows.
  std::string ToString(bool analyze = true) const;
};

// RAII span: stamps `node->wall_ns` with the elapsed clock time on
// destruction. The clock reference must outlive the span.
class TraceSpan {
 public:
  TraceSpan(const TraceClock& clock, TraceNode* node)
      : clock_(&clock), node_(node), start_((*clock_)()) {}
  ~TraceSpan() { node_->wall_ns = (*clock_)() - start_; }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const TraceClock* clock_;
  TraceNode* node_;
  uint64_t start_;
};

// "1.234 ms" / "56.7 us" / "890 ns" — human-scaled duration.
std::string FormatDurationNs(uint64_t ns);

// ----- Distributed tracing (DESIGN.md §12) ---------------------------------
//
// A TraceContext names one query-scoped trace and one position in its span
// tree. It is carried on every RPC frame (net/frame encodes it as a 24-byte
// prefix of the payload region, gated by a header flag) so client-side RPC
// spans and server-side handler spans can be stitched back into a single
// QueryTrace tree after the query completes.

struct TraceContext {
  uint64_t trace_id = 0;        // 0 = not traced
  uint64_t span_id = 0;         // span that emitted the message
  uint64_t parent_span_id = 0;  // 0 = root span of the trace

  bool active() const { return trace_id != 0; }
};

// Process-unique, monotonically increasing ids. Never returns 0 (0 is the
// "absent" sentinel throughout).
uint64_t NextTraceId();
uint64_t NextSpanId();

// One finished span, as recorded by the RPC layer. `notes` mirrors
// TraceNode::notes so spans graft directly onto an explain-analyze tree.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  int32_t node = -1;  // transport node id that recorded the span
  std::string label;
  uint64_t start_ns = 0;
  uint64_t wall_ns = 0;
  std::vector<std::pair<std::string, double>> notes;

  void AddNote(std::string key, double value) {
    notes.push_back({std::move(key), value});
  }
  const double* FindNote(const std::string& key) const {
    for (const auto& [k, v] : notes) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

// Bounded, thread-safe store of finished spans. Each RpcServer owns one
// (server-side handler spans, fetched over the wire via TraceGet) and the
// coordinator owns one for client-side call spans. Oldest spans are dropped
// once `max_spans` is reached; `dropped()` exposes how many, so tests can
// assert nothing was lost.
class SpanStore {
 public:
  explicit SpanStore(size_t max_spans = 4096) : max_spans_(max_spans) {}
  SpanStore(const SpanStore&) = delete;
  SpanStore& operator=(const SpanStore&) = delete;

  void Add(SpanRecord span);

  // Removes and returns every span of `trace_id`, in insertion order.
  std::vector<SpanRecord> Take(uint64_t trace_id);

  size_t size() const;
  int64_t dropped() const;

 private:
  mutable Mutex mu_{"SpanStore::mu_"};
  const size_t max_spans_;
  std::deque<SpanRecord> spans_ GUARDED_BY(mu_);
  int64_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace scidb

#endif  // SCIDB_COMMON_TRACE_H_
