#include "common/trace.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace scidb {

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: unique-id counter, no ordering needed
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: unique-id counter, no ordering needed
}

void SpanStore::Add(SpanRecord span) {
  MutexLock lock(mu_);
  if (spans_.size() >= max_spans_) {
    spans_.pop_front();
    ++dropped_;
  }
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> SpanStore::Take(uint64_t trace_id) {
  MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  for (auto it = spans_.begin(); it != spans_.end();) {
    if (it->trace_id == trace_id) {
      out.push_back(std::move(*it));
      it = spans_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

size_t SpanStore::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

int64_t SpanStore::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatDurationNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f s",
                  static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f ms",
                  static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1f us",
                  static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu ns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

namespace {

// One note value, trimmed: integers print bare, ratios keep 3 decimals.
std::string FormatNoteValue(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void RenderNode(const TraceNode& node, int depth, bool analyze,
                std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << node.label;
  if (analyze) {
    *out << "  (wall " << FormatDurationNs(node.wall_ns);
    if (node.out_cells >= 0) *out << ", out " << node.out_cells << " cells";
    for (const auto& [key, value] : node.notes) {
      *out << ", " << key << " " << FormatNoteValue(value);
    }
    *out << ")";
  }
  *out << "\n";
  for (const auto& child : node.children) {
    RenderNode(*child, depth + 1, analyze, out);
  }
}

}  // namespace

std::string QueryTrace::ToString(bool analyze) const {
  std::ostringstream out;
  if (analyze) {
    if (!statement.empty()) out << "query: " << statement << "\n";
    out << "parse:    " << FormatDurationNs(parse_ns) << "\n";
    out << "optimize: " << FormatDurationNs(optimize_ns) << "\n";
    out << "execute:  " << FormatDurationNs(execute_ns) << "\n";
  }
  RenderNode(root, 0, analyze, &out);
  return out.str();
}

}  // namespace scidb
