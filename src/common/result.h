#ifndef SCIDB_COMMON_RESULT_H_
#define SCIDB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace scidb {

// Result<T> carries either a value of type T or a non-OK Status.
// Idiomatic use together with the macros in macros.h:
//
//   Result<Chunk> chunk = store.Read(key);
//   ASSIGN_OR_RETURN(Chunk c, store.Read(key));
//
// [[nodiscard]] at class level: ignoring a Result silently drops both the
// value and the error; callers must consume it (or explicitly cast to
// void with a justification comment).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an error status keeps call
  // sites terse (`return value;` / `return Status::Invalid(...)`).
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    SCIDB_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    SCIDB_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SCIDB_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SCIDB_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or crashes with the error; for tests and examples.
  T ValueOrDie() && { return std::move(*this).value(); }
  T ValueOrDie() const& { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace scidb

#endif  // SCIDB_COMMON_RESULT_H_
