#include "common/status.h"

namespace scidb {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(rep_->code);
  out += ": ";
  out += rep_->message;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(rep_->code, context + ": " + rep_->message);
}

}  // namespace scidb
