#ifndef SCIDB_COMMON_LOGGING_H_
#define SCIDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace scidb {
namespace internal {

// Accumulates a fatal-error message and aborts the process when destroyed.
// Used by SCIDB_CHECK; invariant violations are programming errors and the
// engine terminates rather than attempting to limp on (the no-exception
// policy means there is no recovery channel for logic bugs).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "FATAL " << file << ":" << line << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace scidb

#define SCIDB_CHECK(cond)                                       \
  (cond) ? (void)0                                              \
         : ::scidb::internal::FatalLogMessageVoidify() &        \
               ::scidb::internal::FatalLogMessage(__FILE__, __LINE__) \
                   .stream()                                    \
               << "Check failed: " #cond " "

#define SCIDB_DCHECK(cond) SCIDB_CHECK(cond)

namespace scidb {
namespace internal {
// Allows the ternary in SCIDB_CHECK to have void type on both branches.
struct FatalLogMessageVoidify {
  void operator&(std::ostream&) {}
};
}  // namespace internal
}  // namespace scidb

#endif  // SCIDB_COMMON_LOGGING_H_
