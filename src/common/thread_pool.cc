#include "common/thread_pool.h"

#include <utility>

#include "common/macros.h"

namespace scidb {

namespace {

// True while this thread is executing morsels (worker or participating
// owner). Nested ParallelFor calls observe it and run inline instead of
// deadlocking on the one-job-at-a-time pool.
thread_local bool tls_running_morsels = false;

}  // namespace

ThreadPool::ThreadPool(int parallelism)
    : parallelism_(parallelism < 1 ? 1 : parallelism) {
  workers_.reserve(static_cast<size_t>(parallelism_ - 1));
  for (int w = 1; w < parallelism_; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    shutdown_ = true;
    cv_.notify_all();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::RunMorsels(Job* job) {
  bool prev = tls_running_morsels;
  tls_running_morsels = true;
  for (;;) {
    // A failure elsewhere cancels the job: unclaimed indices are skipped.
    if (job->cancelled.load(std::memory_order_acquire)) break;
    int64_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) break;
    Status st = (*job->body)(i);
    if (!st.ok()) {
      MutexLock lk(job->mu);
      // Keep the lowest failing index: with increasing-order claiming and
      // claimed morsels running to completion, that is exactly the index a
      // serial loop would have failed on first.
      if (job->failed_index < 0 || i < job->failed_index) {
        job->failed_index = i;
        job->error = std::move(st);
      }
      job->cancelled.store(true, std::memory_order_release);
    }
  }
  tls_running_morsels = prev;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lk(mu_);
      while (!shutdown_ && (job_ == nullptr || generation_ == seen)) {
        cv_.wait(mu_);
      }
      if (shutdown_) return;
      job = job_;
      seen = generation_;
      // Per-job worker cap: claim a slot or sit this job out (the
      // generation is marked seen either way, so the worker sleeps
      // until the next publish instead of spinning).
      if (job->extra_slots.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
        continue;
      }
      ++workers_inside_;
    }
    RunMorsels(job);
    {
      MutexLock lk(mu_);
      if (--workers_inside_ == 0) done_cv_.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(int64_t n,
                               const std::function<Status(int64_t)>& body,
                               int max_workers) {
  if (n <= 0) return Status::OK();
  // Serial fast path: width-1 pools (by construction or by cap),
  // single-morsel jobs, and nested calls from inside a running morsel.
  // This IS the pre-pool engine — same loop, same first-error-wins
  // semantics.
  if (workers_.empty() || n == 1 || max_workers == 1 ||
      tls_running_morsels) {
    for (int64_t i = 0; i < n; ++i) {
      RETURN_NOT_OK(body(i));
    }
    return Status::OK();
  }

  Job job;
  job.n = n;
  job.body = &body;
  // Slots for background workers; the owner participates outside the cap
  // accounting, so a cap of k means k threads total touch the job.
  job.extra_slots.store(
      max_workers <= 0 ? parallelism_ - 1 : max_workers - 1,
      std::memory_order_relaxed);
  {
    MutexLock lk(mu_);
    job_ = &job;
    ++generation_;
    cv_.notify_all();
  }
  // The owner is worker zero: it claims morsels like everyone else, so a
  // width-N pool applies N threads with N-1 spawned.
  RunMorsels(&job);
  {
    MutexLock lk(mu_);
    while (workers_inside_ > 0) done_cv_.wait(mu_);
    job_ = nullptr;  // late wakers see no job; the stack Job stays private
  }
  MutexLock lk(job.mu);
  return job.error;
}

}  // namespace scidb
