#ifndef SCIDB_COMMON_THREAD_POOL_H_
#define SCIDB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace scidb {

// Fixed-width morsel executor (DESIGN.md §8). A pool of `parallelism - 1`
// background workers plus the calling thread cooperate on ParallelFor:
// indices [0, n) are claimed one at a time from a shared atomic counter —
// no work stealing, no per-morsel queues — and the body runs once per
// index. A pool of width 1 owns no threads at all and ParallelFor
// degenerates to a plain serial loop, so the parallelism=1 path is
// byte-for-byte the pre-pool engine.
//
// Error model: the body returns Status, never throws. On failure the job
// is cancelled — unclaimed indices are skipped — and ParallelFor returns
// the Status of the LOWEST failing index. Because indices are claimed in
// increasing order and a claimed morsel always runs to completion, the
// lowest failing index is the same index a serial loop would have failed
// on first, making the returned Status deterministic across pool widths
// (assuming a deterministic body).
//
// Nested ParallelFor calls from inside a worker run serially inline
// (morsel bodies may reuse code that itself tries to parallelize).
class ThreadPool {
 public:
  // `parallelism` is the total concurrency including the caller; values
  // below 1 are clamped to 1.
  explicit ThreadPool(int parallelism);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int parallelism() const { return parallelism_; }

  // Runs body(i) for every i in [0, n), spread over the pool. Blocks until
  // every claimed morsel finished. Not reentrant from two owner threads at
  // once: one job at a time (the engine issues one ParallelFor per
  // operator invocation).
  //
  // `max_workers` caps the threads applied to THIS job, owner included
  // (0 or >= parallelism() = the full pool). The query server uses it to
  // hold each query to its per-query share of the shared pool without
  // rebuilding pools per session; excess workers simply skip the job and
  // go back to sleep. max_workers == 1 is the serial fast path.
  [[nodiscard]] Status ParallelFor(
      int64_t n, const std::function<Status(int64_t)>& body,
      int max_workers = 0) LOCKS_EXCLUDED(mu_);

 private:
  // One in-flight ParallelFor. Lives on the owner's stack; workers only
  // touch it between the publish and the teardown barrier in ParallelFor.
  struct Job {
    // n and body are written once by the owner before the job is
    // published under ThreadPool::mu_ and read-only afterwards; the
    // publish is the happens-before edge, not Job::mu.
    int64_t n = 0;  // NOLINT(lock-coverage): immutable after publish
    // NOLINT on the declaration line below: immutable after publish.
    const std::function<Status(int64_t)>* body = nullptr;  // NOLINT(lock-coverage)
    std::atomic<int64_t> next{0};         // next unclaimed index
    std::atomic<bool> cancelled{false};   // set on first failure
    // Worker-cap slots beyond the owner: each background worker claims
    // one before touching the job; at 0 it skips the job entirely.
    std::atomic<int> extra_slots{0};
    Mutex mu;
    int64_t failed_index GUARDED_BY(mu) = -1;
    Status error GUARDED_BY(mu);
  };

  void WorkerLoop() LOCKS_EXCLUDED(mu_);
  // Claims and runs morsels until the job is exhausted or cancelled.
  static void RunMorsels(Job* job);

  const int parallelism_;
  // Populated in the constructor before any worker can observe it and
  // joined in the destructor; never touched in between.
  std::vector<std::thread> workers_;  // NOLINT(lock-coverage): ctor/dtor

  Mutex mu_;
  CondVar cv_;        // workers: "a job was published" / "shut down"
  CondVar done_cv_;   // owner: "the last worker left the job"
  Job* job_ GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ GUARDED_BY(mu_) = 0;  // bumps per published job
  int workers_inside_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace scidb

#endif  // SCIDB_COMMON_THREAD_POOL_H_
