#ifndef SCIDB_COMMON_STATUS_H_
#define SCIDB_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace scidb {

// Error categories used across the engine. Mirrors the coarse taxonomy of
// Arrow/RocksDB status objects: a code plus a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kIOError,
  kCorruption,
  kTypeMismatch,
  kInternal,
  // Networking outcomes (src/net/, DESIGN.md §10). Unavailable = the peer
  // cannot be reached right now (refused, partitioned, shut down) and the
  // call is safe to retry; DeadlineExceeded = the caller's time budget ran
  // out (retrying with the same deadline cannot succeed).
  kUnavailable,
  kDeadlineExceeded,
  // Query-server outcomes (src/server/, DESIGN.md §15). Busy = the
  // admission controller rejected the query because the server is at its
  // concurrency or queued-bytes bound — typed so clients can back off and
  // resubmit instead of treating it as a hard failure. Cancelled = the
  // query was aborted by an explicit client Cancel; retrying verbatim is
  // pointless (the caller asked for the abort).
  kBusy,
  kCancelled,
};

// Returns a stable human-readable name ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// Status is the library-wide error carrier. Library code does not throw;
// every fallible operation returns Status (or Result<T>, see result.h).
// The OK state is represented by a null rep so that passing around OK
// statuses costs a single pointer.
//
// The class-level [[nodiscard]] makes every function returning Status by
// value warn when the result is ignored; the lint gate (tools/lint.py)
// compiles a probe with -Werror=unused-result to keep this enforced.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return rep_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return rep_ ? rep_->code : StatusCode::kOk;
  }
  [[nodiscard]] const std::string& message() const;

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsTypeMismatch() const { return code() == StatusCode::kTypeMismatch; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsBusy() const { return code() == StatusCode::kBusy; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  // "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

  // Returns a copy of this status with `context` prepended to the message.
  // No-op for OK statuses.
  Status WithContext(const std::string& context) const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

}  // namespace scidb

#endif  // SCIDB_COMMON_STATUS_H_
