#ifndef SCIDB_COMMON_BYTE_IO_H_
#define SCIDB_COMMON_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace scidb {

// Append-only little-endian byte sink used by the chunk codecs, the
// self-describing on-disk format and the external-format writers.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutBytes(const void* data, size_t n) {
    // resize + memcpy rather than vector::insert: identical behavior,
    // but insert's pointer-range path trips a GCC 12 -Wstringop-overflow
    // false positive when inlined into fresh-buffer writers. The n == 0
    // guard keeps memcpy away from null `data` (UB even for 0 bytes).
    if (n == 0) return;
    const size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, data, n);
  }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(v); }
  void PutDouble(double v) { PutFixed(v); }
  void PutFloat(float v) { PutFixed(v); }

  // LEB128 unsigned varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }
  // ZigZag-encoded signed varint.
  void PutSignedVarint(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }
  void PutString(const std::string& s) {
    PutVarint(s.size());
    PutBytes(s.data(), s.size());
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    uint8_t tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));
    PutBytes(tmp, sizeof(T));
  }

  std::vector<uint8_t> buf_;
};

// Bounds-checked reader over a byte span. All getters return Status-bearing
// results: truncated or corrupt inputs surface as kCorruption, never UB.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  Result<uint8_t> GetU8() {
    if (remaining() < 1) return Truncated("u8");
    return data_[pos_++];
  }
  Result<uint32_t> GetU32() { return GetFixed<uint32_t>("u32"); }
  Result<uint64_t> GetU64() { return GetFixed<uint64_t>("u64"); }
  Result<int64_t> GetI64() { return GetFixed<int64_t>("i64"); }
  Result<double> GetDouble() { return GetFixed<double>("double"); }
  Result<float> GetFloat() { return GetFixed<float>("float"); }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (remaining() < 1) return Truncated("varint");
      uint8_t b = data_[pos_++];
      if (shift >= 63 && (b & 0x7E) != 0) {
        return Status::Corruption("varint overflow");
      }
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }
  Result<int64_t> GetSignedVarint() {
    ASSIGN_OR_RETURN(uint64_t u, GetVarint());
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }
  Result<std::string> GetString() {
    ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    if (remaining() < n) return Truncated("string");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }
  Status GetBytes(void* out, size_t n) {
    if (remaining() < n) return Truncated("bytes");
    // n == 0 must not reach memcpy: an empty buffer's data() may be null,
    // and memcpy's arguments are declared nonnull (UBSan trips even for
    // zero-length copies).
    if (n > 0) {
      std::memcpy(out, data_ + pos_, n);
      pos_ += n;
    }
    return Status::OK();
  }
  Status Skip(size_t n) {
    if (remaining() < n) return Truncated("skip");
    pos_ += n;
    return Status::OK();
  }

 private:
  template <typename T>
  Result<T> GetFixed(const char* what) {
    if (remaining() < sizeof(T)) return Truncated(what);
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  static Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated input reading ") + what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace scidb

#endif  // SCIDB_COMMON_BYTE_IO_H_
