#include "common/metrics.h"

#include <cctype>
#include <sstream>

#include "common/macros.h"

namespace scidb {

namespace metrics_internal {
std::atomic<bool> g_enabled{true};
}  // namespace metrics_internal

// ------------------------------------------------------------- Histogram

int64_t Histogram::Percentile(double p) const {
  int64_t n = count();
  if (n <= 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target sample, 1-based.
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return BucketLowerBound(i);
  }
  return BucketLowerBound(kNumBuckets - 1);
}

// --------------------------------------------------------------- Metrics

Metrics& Metrics::Instance() {
  static auto* const instance = new Metrics();
  return *instance;
}

Counter* Metrics::counter(const std::string& name) {
  MutexLock lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* Metrics::gauge(const std::string& name) {
  MutexLock lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Metrics::histogram(const std::string& name) {
  MutexLock lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lk(mu_);
  for (const auto& [name, c] : counters_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kCounter;
    e.value = c->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kGauge;
    e.value = g->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kHistogram;
    e.count = h->count();
    e.sum = h->sum();
    e.p50 = h->Percentile(50);
    e.p90 = h->Percentile(90);
    e.p99 = h->Percentile(99);
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      int64_t n = h->bucket_count(i);
      if (n != 0) e.buckets.push_back({Histogram::BucketLowerBound(i), n});
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void Metrics::Reset() {
  MutexLock lk(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

// ------------------------------------------------------- MetricsSnapshot

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

namespace {

const char* KindName(MetricsSnapshot::Kind k) {
  switch (k) {
    case MetricsSnapshot::Kind::kCounter:
      return "counter";
    case MetricsSnapshot::Kind::kGauge:
      return "gauge";
    case MetricsSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// Metric names are [a-z0-9._-] by convention, but escape defensively so
// the exporter can never emit invalid JSON.
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string SnapshotToText(const MetricsSnapshot& snap) {
  std::ostringstream out;
  for (const auto& e : snap.entries) {
    switch (e.kind) {
      case MetricsSnapshot::Kind::kCounter:
        out << e.name << " counter " << e.value << "\n";
        break;
      case MetricsSnapshot::Kind::kGauge:
        out << e.name << " gauge " << e.value << "\n";
        break;
      case MetricsSnapshot::Kind::kHistogram: {
        out << e.name << " histogram count=" << e.count << " sum=" << e.sum;
        double mean = e.count > 0
                          ? static_cast<double>(e.sum) /
                                static_cast<double>(e.count)
                          : 0.0;
        out << " mean=" << mean;
        out << " p50=" << e.p50 << " p90=" << e.p90 << " p99=" << e.p99;
        for (const auto& [low, n] : e.buckets) {
          out << " ge" << low << ":" << n;
        }
        out << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string SnapshotToJson(const MetricsSnapshot& snap) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& e : snap.entries) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendJsonString(e.name, &out);
    out += ",\"kind\":\"";
    out += KindName(e.kind);
    out += "\"";
    if (e.kind == MetricsSnapshot::Kind::kHistogram) {
      out += ",\"count\":" + std::to_string(e.count);
      out += ",\"sum\":" + std::to_string(e.sum);
      out += ",\"p50\":" + std::to_string(e.p50);
      out += ",\"p90\":" + std::to_string(e.p90);
      out += ",\"p99\":" + std::to_string(e.p99);
      out += ",\"buckets\":[";
      bool bfirst = true;
      for (const auto& [low, n] : e.buckets) {
        if (!bfirst) out.push_back(',');
        bfirst = false;
        out += "[" + std::to_string(low) + "," + std::to_string(n) + "]";
      }
      out += "]";
    } else {
      out += ",\"value\":" + std::to_string(e.value);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// ----------------------------------------------- minimal JSON re-reader
// Parses exactly the subset SnapshotToJson emits (objects, arrays,
// strings with the escapes above, signed integers). Deliberately not a
// general JSON library: its only job is proving the export round-trips
// and letting scrapers/tests validate dumps without a dependency.

namespace {

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Accept(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Accept(c)) {
      return Status::Corruption("metrics json: expected '" +
                                std::string(1, c) + "' at offset " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<std::string> ParseString() {
    RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char esc = s_[pos_++];
        switch (esc) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            out.push_back(esc);  // \" and \\ and anything else literal
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= s_.size()) {
      return Status::Corruption("metrics json: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<int64_t> ParseInt() {
    SkipWs();
    size_t start = pos_;
    bool neg = pos_ < s_.size() && s_[pos_] == '-';
    if (neg) ++pos_;
    // Manual accumulation: std::stoll throws on overflow, and exceptions
    // are banned in library code. Saturating is fine for telemetry.
    int64_t v = 0;
    bool any = false;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      any = true;
      int digit = s_[pos_] - '0';
      if (v > (INT64_MAX - digit) / 10) {
        v = INT64_MAX;
      } else {
        v = v * 10 + digit;
      }
      ++pos_;
    }
    if (!any) {
      return Status::Corruption("metrics json: expected integer at offset " +
                                std::to_string(start));
    }
    return neg ? -v : v;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

Result<MetricsSnapshot::Entry> ParseEntry(JsonCursor* c) {
  MetricsSnapshot::Entry e;
  RETURN_NOT_OK(c->Expect('{'));
  bool first = true;
  while (!c->Accept('}')) {
    if (!first) RETURN_NOT_OK(c->Expect(','));
    first = false;
    ASSIGN_OR_RETURN(std::string key, c->ParseString());
    RETURN_NOT_OK(c->Expect(':'));
    if (key == "name") {
      ASSIGN_OR_RETURN(e.name, c->ParseString());
    } else if (key == "kind") {
      ASSIGN_OR_RETURN(std::string kind, c->ParseString());
      if (kind == "counter") {
        e.kind = MetricsSnapshot::Kind::kCounter;
      } else if (kind == "gauge") {
        e.kind = MetricsSnapshot::Kind::kGauge;
      } else if (kind == "histogram") {
        e.kind = MetricsSnapshot::Kind::kHistogram;
      } else {
        return Status::Corruption("metrics json: unknown kind '" + kind +
                                  "'");
      }
    } else if (key == "value") {
      ASSIGN_OR_RETURN(e.value, c->ParseInt());
    } else if (key == "count") {
      ASSIGN_OR_RETURN(e.count, c->ParseInt());
    } else if (key == "sum") {
      ASSIGN_OR_RETURN(e.sum, c->ParseInt());
    } else if (key == "p50") {
      ASSIGN_OR_RETURN(e.p50, c->ParseInt());
    } else if (key == "p90") {
      ASSIGN_OR_RETURN(e.p90, c->ParseInt());
    } else if (key == "p99") {
      ASSIGN_OR_RETURN(e.p99, c->ParseInt());
    } else if (key == "buckets") {
      RETURN_NOT_OK(c->Expect('['));
      bool bfirst = true;
      while (!c->Accept(']')) {
        if (!bfirst) RETURN_NOT_OK(c->Expect(','));
        bfirst = false;
        RETURN_NOT_OK(c->Expect('['));
        ASSIGN_OR_RETURN(int64_t low, c->ParseInt());
        RETURN_NOT_OK(c->Expect(','));
        ASSIGN_OR_RETURN(int64_t n, c->ParseInt());
        RETURN_NOT_OK(c->Expect(']'));
        e.buckets.push_back({low, n});
      }
    } else {
      return Status::Corruption("metrics json: unknown key '" + key + "'");
    }
  }
  if (e.name.empty()) {
    return Status::Corruption("metrics json: entry without a name");
  }
  return e;
}

}  // namespace

Result<MetricsSnapshot> SnapshotFromJson(const std::string& json) {
  JsonCursor c(json);
  MetricsSnapshot snap;
  RETURN_NOT_OK(c.Expect('{'));
  ASSIGN_OR_RETURN(std::string key, c.ParseString());
  if (key != "metrics") {
    return Status::Corruption("metrics json: expected top-level 'metrics'");
  }
  RETURN_NOT_OK(c.Expect(':'));
  RETURN_NOT_OK(c.Expect('['));
  bool first = true;
  while (!c.Accept(']')) {
    if (!first) RETURN_NOT_OK(c.Expect(','));
    first = false;
    ASSIGN_OR_RETURN(MetricsSnapshot::Entry e, ParseEntry(&c));
    snap.entries.push_back(std::move(e));
  }
  RETURN_NOT_OK(c.Expect('}'));
  if (!c.AtEnd()) {
    return Status::Corruption("metrics json: trailing input");
  }
  return snap;
}

}  // namespace scidb
