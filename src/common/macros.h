#ifndef SCIDB_COMMON_MACROS_H_
#define SCIDB_COMMON_MACROS_H_

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// Propagates a non-OK Status to the caller.
#define RETURN_NOT_OK(expr)                \
  do {                                     \
    ::scidb::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (false)

#define SCIDB_CONCAT_IMPL(x, y) x##y
#define SCIDB_CONCAT(x, y) SCIDB_CONCAT_IMPL(x, y)

// Evaluates a Result<T> expression; on error returns the Status, otherwise
// binds the value to `lhs` (which may include a type declaration).
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(SCIDB_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                          \
  if (!tmp.ok()) return tmp.status();          \
  lhs = std::move(tmp).value();

#endif  // SCIDB_COMMON_MACROS_H_
