#ifndef SCIDB_COMMON_RNG_H_
#define SCIDB_COMMON_RNG_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

namespace scidb {

// Deterministic xorshift128+ generator. All synthetic workloads in tests,
// examples and benchmarks draw from this so results are reproducible
// across runs and machines (std::mt19937 distributions are not guaranteed
// to be portable across standard library implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // SplitMix64 seeding to avoid correlated low-entropy states.
    uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
    for (uint64_t* s : {&s0_, &s1_}) {
      z += 0x9E3779B97F4A7C15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      *s = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    has_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
  }

  // Zipf-distributed value in [0, n) with skew parameter s. Used for the
  // eBay clickstream and El Nino style skewed access workloads.
  // Precomputes the CDF on first use for a given (n, s).
  int64_t Zipf(int64_t n, double s) {
    if (n != zipf_n_ || s != zipf_s_) {
      zipf_cdf_.resize(static_cast<size_t>(n));
      double sum = 0;
      for (int64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        zipf_cdf_[static_cast<size_t>(i)] = sum;
      }
      for (auto& v : zipf_cdf_) v /= sum;
      zipf_n_ = n;
      zipf_s_ = s;
    }
    double u = NextDouble();
    auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    if (it == zipf_cdf_.end()) return n - 1;
    return static_cast<int64_t>(it - zipf_cdf_.begin());
  }

 private:
  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
  bool has_spare_ = false;
  double spare_ = 0;
  int64_t zipf_n_ = -1;
  double zipf_s_ = 0;
  std::vector<double> zipf_cdf_;
};

// Combines a base seed with a per-case salt without the correlation a
// plain xor would give adjacent salts (SplitMix64 finalizer over the sum).
inline uint64_t MixSeed(uint64_t base, uint64_t salt) {
  uint64_t x = base + 0x9E3779B97F4A7C15ULL * (salt + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// The single knob behind every randomized test and benchmark. With
// SCIDB_TEST_SEED unset (or 0/unparseable) this returns `fallback`
// verbatim, so default runs are bit-identical to the hand-picked seeds
// they always used. With the env var set (any nonzero uint64, base 10)
// every call site gets a distinct stream derived from the env seed with
// its fallback as the salt — one env var repositions the whole suite:
//   SCIDB_TEST_SEED=<n> ctest -R <suite>
inline uint64_t TestSeed(uint64_t fallback = 42) {
  // getenv is not thread-safe against setenv, but tests set the variable
  // before main; cache the first read so repeated calls are stable even
  // if the environment later mutates.
  static const uint64_t seed = [] {
    const char* env = std::getenv("SCIDB_TEST_SEED");
    if (env == nullptr || *env == '\0') return uint64_t{0};
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    return (end != nullptr && *end == '\0') ? static_cast<uint64_t>(v)
                                            : uint64_t{0};
  }();
  return seed != 0 ? MixSeed(seed, fallback) : fallback;
}

}  // namespace scidb

#endif  // SCIDB_COMMON_RNG_H_
