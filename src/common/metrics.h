#ifndef SCIDB_COMMON_METRICS_H_
#define SCIDB_COMMON_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"

namespace scidb {

// Process-wide observability registry (DESIGN.md §7). Every module exports
// named counters, gauges, and latency histograms through the singleton
// `Metrics::Instance()`; the AQL `explain analyze` path and
// tools/metrics_dump read them back as structured snapshots.
//
// Naming scheme: `scidb.<module>.<name>`, lower case, dot-separated
// (e.g. "scidb.storage.cache.hits", "scidb.exec.op.filter").
//
// Hot-path contract: registration (the name -> handle lookup) takes a
// mutex and is expected once per call site (cache the returned pointer,
// typically in a function-local static). Increments/records on the
// returned handles are lock-free relaxed atomics, safe from any thread,
// and become no-ops when the registry is disabled via
// `Metrics::set_enabled(false)` (one relaxed atomic load + branch).

namespace metrics_internal {
// Global enable flag, read on every increment. Relaxed is correct: the
// flag only gates best-effort accounting, never synchronizes data.
extern std::atomic<bool> g_enabled;
inline bool Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}
}  // namespace metrics_internal

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(int64_t n = 1) {
    if (!metrics_internal::Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Instantaneous level (cache residency bytes, open arrays, ...).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!metrics_internal::Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    if (!metrics_internal::Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-linear-bucket histogram for latencies and sizes: each power of two
// is subdivided into 4 linear sub-buckets (HdrHistogram-style), so the
// relative bucket width is bounded by 25% at any magnitude while the whole
// int64 range fits in kNumBuckets fixed slots. Values are non-negative;
// negative inputs clamp to 0.
class Histogram {
 public:
  static constexpr int kSubBits = 2;                 // 4 sub-buckets/octave
  static constexpr int kSubCount = 1 << kSubBits;
  static constexpr int kNumBuckets = (63 - kSubBits) * kSubCount + kSubCount;

  // Bucket index for a value: identity below kSubCount, log-linear above.
  static int BucketIndex(int64_t v) {
    if (v < 0) v = 0;
    if (v < kSubCount) return static_cast<int>(v);
    int exp = 63 - std::countl_zero(static_cast<uint64_t>(v));
    int sub = static_cast<int>((v >> (exp - kSubBits)) & (kSubCount - 1));
    return (exp - kSubBits + 1) * kSubCount + sub;
  }

  // Smallest value that lands in bucket `i` (inclusive lower bound).
  static int64_t BucketLowerBound(int i) {
    if (i < kSubCount) return i;
    int group = i / kSubCount;
    int sub = i % kSubCount;
    int exp = group + kSubBits - 1;
    return static_cast<int64_t>(kSubCount + sub) << (exp - kSubBits);
  }

  void Record(int64_t v) {
    if (!metrics_internal::Enabled()) return;
    if (v < 0) v = 0;
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Approximate p-th percentile (0..100): the lower bound of the bucket
  // holding the p-th ranked sample. 0 when empty.
  int64_t Percentile(double p) const;

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

// Point-in-time copy of every registered metric, detached from the live
// atomics so it can be serialized, diffed, and shipped across threads.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    int64_t value = 0;           // counter / gauge
    int64_t count = 0;           // histogram
    int64_t sum = 0;             // histogram
    // Histogram quantiles (Histogram::Percentile at snapshot time):
    // lower bound of the bucket holding the ranked sample, so exact-value
    // tests on seeded distributions are meaningful (DESIGN.md §12).
    int64_t p50 = 0;
    int64_t p90 = 0;
    int64_t p99 = 0;
    // Non-empty histogram buckets as {lower_bound, count} pairs.
    std::vector<std::pair<int64_t, int64_t>> buckets;
  };
  std::vector<Entry> entries;

  // nullptr when no metric has that name.
  const Entry* find(const std::string& name) const;
};

std::string SnapshotToText(const MetricsSnapshot& snap);
std::string SnapshotToJson(const MetricsSnapshot& snap);
// Inverse of SnapshotToJson; Invalid/Corruption on malformed input. Used
// by tests to prove the JSON export is lossless and by external scrapers.
Result<MetricsSnapshot> SnapshotFromJson(const std::string& json);

// The process-wide registry. Handles returned by counter()/gauge()/
// histogram() are owned by the registry and stay valid for the process
// lifetime (Reset() zeroes values but never invalidates handles).
class Metrics {
 public:
  static Metrics& Instance();

  Counter* counter(const std::string& name) LOCKS_EXCLUDED(mu_);
  Gauge* gauge(const std::string& name) LOCKS_EXCLUDED(mu_);
  Histogram* histogram(const std::string& name) LOCKS_EXCLUDED(mu_);

  // Process-wide kill switch for all increments (ablation / overhead
  // benchmarks). Registration and snapshots still work when disabled.
  static void set_enabled(bool on) {
    metrics_internal::g_enabled.store(on, std::memory_order_relaxed);
  }
  static bool enabled() { return metrics_internal::Enabled(); }

  MetricsSnapshot Snapshot() const LOCKS_EXCLUDED(mu_);
  std::string TextSnapshot() const { return SnapshotToText(Snapshot()); }
  std::string JsonSnapshot() const { return SnapshotToJson(Snapshot()); }

  // Zeroes every value; registrations (and handle pointers) survive.
  void Reset() LOCKS_EXCLUDED(mu_);

 private:
  Metrics() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace scidb

#endif  // SCIDB_COMMON_METRICS_H_
