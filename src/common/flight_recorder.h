#ifndef SCIDB_COMMON_FLIGHT_RECORDER_H_
#define SCIDB_COMMON_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scidb {

// Process-wide flight recorder (DESIGN.md §12): a fixed-size lock-free ring
// of structured events written from the hottest paths in the system (RPC
// send/recv/retry, injected faults, cache evictions, merger passes, shard
// scans). Writers never block and never allocate; a write is a relaxed
// fetch_add plus five relaxed/release stores, so the recorder is safe to
// call from fault-injection and abort paths. The ring keeps the newest
// kRingSize events — older ones are overwritten silently (crash forensics
// want the *end* of the timeline, not the beginning).
//
// Readers (Dump) are best-effort under concurrent writes: a slot whose
// sequence stamp does not match the expected value — mid-write or already
// overwritten — is skipped. At quiescence Dump is exact.

// Event vocabulary. Tracked by the staticcheck protocol-drift pass
// (tools/staticcheck/protocol.manifest): every switch over this enum must
// name every enumerator, so adding a kind cannot silently miss a site.
enum class FlightEventKind : uint8_t {
  kRpcSend = 1,         // client sent a request frame (a=request id, b=type)
  kRpcRecv = 2,         // server received a request (a=request id, b=type)
  kRpcRetry = 3,        // client re-sent after a failed attempt (a=attempt)
  kRpcTimeout = 4,      // client attempt timed out (a=request id)
  kFaultDrop = 5,       // injected drop (a=request id, b=type)
  kFaultDup = 6,        // injected duplicate (a=request id, b=type)
  kFaultHold = 7,       // frame held for delay/reorder (a=request id, b=type)
  kFaultPartition = 8,  // frame eaten by a partition (a=request id, b=type)
  kCacheEvict = 9,      // chunk-cache LRU eviction (a=bytes freed)
  kMergePass = 10,      // background merger pass (a=chunks merged)
  kShardScan = 11,      // grid shard scan (a=cells, b=bytes)
  kParallelFor = 12,    // morsel fan-out (a=morsels, b=width)
  kMark = 13,           // free-form user marker
  kFailoverRead = 14,   // read degraded to replicas (a=slot, b=dead count)
  kNodeDead = 15,       // node declared dead (a=consecutive failures)
  kRereplicate = 16,    // recovery copied a chunk (a=source, b=target)
};

// True if `k` names one of the enumerators above; wire decode rejects the
// rest so Dump consumers never see an out-of-vocabulary kind.
bool IsValidFlightEventKind(uint8_t k);

// "RpcSend", "FaultDrop", ... for dumps and logs.
const char* FlightEventKindName(FlightEventKind k);

struct FlightEvent {
  uint64_t seq = 0;   // global sequence number, 0-based, gap-free per writer
  uint64_t t_ns = 0;  // timestamp (steady clock, or injected via RecordAt)
  FlightEventKind kind = FlightEventKind::kMark;
  int32_t node = -1;  // transport node id, -1 = not node-scoped
  uint64_t a = 0;     // kind-specific payload (see enum comments)
  uint64_t b = 0;
};

namespace flight_internal {
// Kill switch, mirroring the metrics registry's: one relaxed atomic load on
// the hot path, so a disabled recorder costs single-digit nanoseconds
// (bench_trace measures it).
extern std::atomic<bool> g_enabled;
inline bool Enabled() {
  return g_enabled.load(std::memory_order_relaxed);  // relaxed-ok: kill switch; stale reads only skip/keep events
}
}  // namespace flight_internal

class FlightRecorder {
 public:
  // Ring capacity; power of two so the slot index is a mask, not a modulo.
  static constexpr size_t kRingSize = 4096;

  static FlightRecorder& Instance();

  static void set_enabled(bool on);
  static bool enabled() { return flight_internal::Enabled(); }

  // Records one event stamped with the steady clock. No-op when disabled.
  void Record(FlightEventKind kind, int32_t node, uint64_t a = 0,
              uint64_t b = 0);

  // Records one event with a caller-supplied timestamp — the hook for
  // sites that run on an injectable clock (RPC layer, grid), so virtual-
  // time tests get deterministic timelines.
  void RecordAt(uint64_t t_ns, FlightEventKind kind, int32_t node,
                uint64_t a = 0, uint64_t b = 0);

  // Snapshot of the surviving events, oldest first. Best-effort under
  // concurrent writes (see file comment); exact at quiescence.
  std::vector<FlightEvent> Dump() const;

  // "seq=.. t=..ns Kind node=..." lines, oldest first, with a header.
  std::string DumpToString() const;

  // Dump straight to stderr — called from the lock-order detector's abort
  // path so a deadlock report comes with the event timeline that led to it.
  void DumpToStderr() const;

  // Forgets all events. Test-only: not safe against concurrent writers.
  void Clear();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder() = default;

  // Seqlock-style slot: `stamp` holds seq+1 of the event occupying the
  // slot; a reader accepts the fields only if the stamp matches before and
  // after reading them.
  struct Slot {
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> t_ns{0};
    std::atomic<uint64_t> meta{0};  // kind in low 8 bits, node in high 32
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  std::atomic<uint64_t> next_{0};  // next sequence number to allocate
  Slot ring_[kRingSize];
};

}  // namespace scidb

#endif  // SCIDB_COMMON_FLIGHT_RECORDER_H_
