#include "common/lock_order.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/flight_recorder.h"

namespace scidb {

uint64_t LockOrderGraph::AddNode(const char* name) {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t id = next_id_++;
  Node& n = nodes_[id];
  if (name != nullptr) n.name = name;
  return id;
}

void LockOrderGraph::RemoveNode(uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  nodes_.erase(id);
  for (auto& [other, node] : nodes_) {
    (void)other;
    node.out.erase(id);
  }
}

bool LockOrderGraph::Reachable(uint64_t from, uint64_t to,
                               std::unordered_set<uint64_t>* seen) const {
  if (from == to) return true;
  if (!seen->insert(from).second) return false;
  auto it = nodes_.find(from);
  if (it == nodes_.end()) return false;
  for (uint64_t next : it->second.out) {
    if (Reachable(next, to, seen)) return true;
  }
  return false;
}

std::string LockOrderGraph::NodeLabel(uint64_t id) const {
  auto it = nodes_.find(id);
  std::string label = "lock#" + std::to_string(id);
  if (it != nodes_.end() && !it->second.name.empty()) {
    label += " (" + it->second.name + ")";
  }
  return label;
}

std::string LockOrderGraph::RecordEdge(uint64_t held, uint64_t acquiring) {
  if (held == acquiring) {
    // Relocking the lock you hold is self-deadlock for a non-recursive
    // mutex; report it through the same channel.
    std::lock_guard<std::mutex> lk(mu_);
    return "lock-order violation: " + NodeLabel(held) +
           " acquired while already held (self-deadlock)";
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto held_it = nodes_.find(held);
  if (held_it == nodes_.end()) return "";  // destroyed concurrently; ignore
  if (held_it->second.out.count(acquiring) > 0) return "";  // known-good edge
  // Adding held -> acquiring closes a cycle iff `held` is already
  // reachable from `acquiring` — i.e. some path says acquiring-before-held
  // while this thread is doing held-before-acquiring.
  std::unordered_set<uint64_t> seen;
  if (Reachable(acquiring, held, &seen)) {
    return "lock-order violation: acquiring " + NodeLabel(acquiring) +
           " while holding " + NodeLabel(held) + ", but " +
           NodeLabel(acquiring) + " was previously established as " +
           "acquired-before " + NodeLabel(held) +
           " (cycle in the acquisition-order graph)";
  }
  held_it->second.out.insert(acquiring);
  return "";
}

size_t LockOrderGraph::EdgeCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [id, node] : nodes_) {
    (void)id;
    n += node.out.size();
  }
  return n;
}

namespace lock_order_internal {

namespace {

LockOrderGraph& Graph() {
  static auto* const g = new LockOrderGraph();
  return *g;
}

// Currently held lock ids, innermost last. A plain vector: lock nests are
// shallow (2-3 deep) and release order may be non-LIFO, so erase-by-value.
std::vector<uint64_t>& HeldStack() {
  thread_local std::vector<uint64_t> held;
  return held;
}

}  // namespace

uint64_t OnCreate(const char* name) { return Graph().AddNode(name); }

void OnDestroy(uint64_t id) { Graph().RemoveNode(id); }

void PreAcquire(uint64_t id) {
  for (uint64_t held : HeldStack()) {
    std::string cycle = Graph().RecordEdge(held, id);
    if (!cycle.empty()) {
      std::fprintf(stderr, "scidb lock-order detector: %s\n", cycle.c_str());
      std::fflush(stderr);
      // Dump the flight-recorder timeline before dying: the sequence of
      // RPC/fault/cache events leading up to the inversion is usually the
      // diagnosis (DESIGN.md §12). FlightRecorder is lock-free, so this
      // cannot re-enter the detector.
      FlightRecorder::Instance().DumpToStderr();
      std::abort();
    }
  }
}

void PostAcquire(uint64_t id) { HeldStack().push_back(id); }

void OnRelease(uint64_t id) {
  std::vector<uint64_t>& held = HeldStack();
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1] == id) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

}  // namespace lock_order_internal

}  // namespace scidb
