#ifndef SCIDB_RELATIONAL_ARRAY_ON_TABLE_H_
#define SCIDB_RELATIONAL_ARRAY_ON_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "relational/table.h"

namespace scidb {

// Simulates an array on top of the relational engine, exactly the design
// the ASAP study measured (paper §2.1): one row per cell with the
// dimension values as leading integer columns and the attributes behind
// them, plus an index on the dimension columns. EXP-ASAP benchmarks this
// adapter against the native chunked array engine.
class ArrayOnTable {
 public:
  explicit ArrayOnTable(const ArraySchema& schema);

  const ArraySchema& schema() const { return schema_; }
  const Table& table() const { return table_; }
  int64_t CellCount() const { return static_cast<int64_t>(table_.nrows()); }

  Status SetCell(const Coordinates& c, const std::vector<Value>& values);
  // Bulk import from a native array (to benchmark identical data).
  Status LoadFrom(const MemArray& array);

  // Point lookup via the dimension index.
  std::optional<std::vector<Value>> GetCell(const Coordinates& c) const;

  // Array operations simulated with relational plans:
  // Subsample as an index range scan on the leading dimension + residual
  // predicate on the rest.
  Result<ArrayOnTable> Subsample(const Box& window) const;
  // Aggregate(group dims, agg over one attribute) as GROUP BY.
  Result<Table> Aggregate(const std::vector<std::string>& group_dims,
                          const std::string& agg,
                          const std::string& attr) const;
  // Regrid as GROUP BY over computed block columns.
  Result<Table> Regrid(const std::vector<int64_t>& factors,
                       const std::string& agg,
                       const std::string& attr) const;

  size_t ByteSize() const { return table_.ByteSize(); }

 private:
  ArraySchema schema_;
  Table table_;
};

}  // namespace scidb

#endif  // SCIDB_RELATIONAL_ARRAY_ON_TABLE_H_
