#include "relational/table.h"

#include <algorithm>

#include "common/macros.h"

namespace scidb {

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return i;
  }
  return Status::NotFound("table '" + name_ + "' has no column '" + name +
                          "'");
}

Status Table::Append(std::vector<Value> row) {
  if (row.size() != cols_.size()) {
    return Status::Invalid("row arity " + std::to_string(row.size()) +
                           " != column count " +
                           std::to_string(cols_.size()));
  }
  rows_.push_back(std::move(row));
  if (!index_cols_.empty()) {
    // Keep the index live on append (B-tree style insert).
    std::vector<Value> key;
    key.reserve(index_cols_.size());
    for (size_t c : index_cols_) key.push_back(rows_.back()[c]);
    index_[std::move(key)].push_back(rows_.size() - 1);
  }
  return Status::OK();
}

Status Table::BuildIndex(std::vector<size_t> key_cols) {
  for (size_t c : key_cols) {
    if (c >= cols_.size()) return Status::Invalid("index column out of range");
  }
  index_cols_ = std::move(key_cols);
  index_.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    std::vector<Value> key;
    key.reserve(index_cols_.size());
    for (size_t c : index_cols_) key.push_back(rows_[i][c]);
    index_[std::move(key)].push_back(i);
  }
  return Status::OK();
}

std::vector<size_t> Table::IndexLookup(const std::vector<Value>& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return {};
  return it->second;
}

std::vector<size_t> Table::IndexRangeLookup(const Value& lo,
                                            const Value& hi) const {
  std::vector<size_t> out;
  auto first = index_.lower_bound({lo});
  for (auto it = first; it != index_.end(); ++it) {
    if (hi.LessThan(it->first[0])) break;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

size_t Table::ByteSize() const {
  size_t bytes = 0;
  for (const auto& row : rows_) {
    bytes += sizeof(row) + row.size() * sizeof(Value);
    for (const auto& v : row) {
      if (v.is_string()) bytes += v.string_value().size();
    }
  }
  for (const auto& [key, rows] : index_) {
    bytes += key.size() * sizeof(Value) + rows.size() * sizeof(size_t);
  }
  return bytes;
}

Table Select(const Table& t, const RowPredicate& pred) {
  Table out(t.name() + "_sel", t.columns());
  t.ForEachRow([&](const std::vector<Value>& row) {
    if (pred(row)) SCIDB_CHECK(out.Append(row).ok());
    return true;
  });
  return out;
}

Result<Table> ProjectColumns(const Table& t,
                             const std::vector<std::string>& cols) {
  std::vector<size_t> idx;
  std::vector<ColumnDesc> out_cols;
  for (const auto& c : cols) {
    ASSIGN_OR_RETURN(size_t i, t.ColumnIndex(c));
    idx.push_back(i);
    out_cols.push_back(t.columns()[i]);
  }
  Table out(t.name() + "_proj", std::move(out_cols));
  t.ForEachRow([&](const std::vector<Value>& row) {
    std::vector<Value> r;
    r.reserve(idx.size());
    for (size_t i : idx) r.push_back(row[i]);
    SCIDB_CHECK(out.Append(std::move(r)).ok());
    return true;
  });
  return out;
}

Result<Table> HashJoin(const Table& a, const std::string& a_col,
                       const Table& b, const std::string& b_col) {
  ASSIGN_OR_RETURN(size_t ai, a.ColumnIndex(a_col));
  ASSIGN_OR_RETURN(size_t bi, b.ColumnIndex(b_col));
  std::vector<ColumnDesc> cols = a.columns();
  for (ColumnDesc c : b.columns()) {
    for (const auto& existing : a.columns()) {
      if (existing.name == c.name) {
        c.name += "_2";
        break;
      }
    }
    cols.push_back(std::move(c));
  }
  Table out(a.name() + "_join", std::move(cols));

  // Build side: hash B by join key (string key from ToString: Values are
  // heterogeneous, map<Value> needs the custom comparator; the string key
  // is the classic cheap trick and keeps this comparator honest).
  std::multimap<std::string, size_t> build;
  for (size_t i = 0; i < b.nrows(); ++i) {
    build.emplace(b.row(i)[bi].ToString(), i);
  }
  Status st;
  bool failed = false;
  a.ForEachRow([&](const std::vector<Value>& row) {
    auto [first, last] = build.equal_range(row[ai].ToString());
    for (auto it = first; it != last; ++it) {
      if (!row[ai].EqualsForJoin(b.row(it->second)[bi])) continue;
      std::vector<Value> r = row;
      const auto& brow = b.row(it->second);
      r.insert(r.end(), brow.begin(), brow.end());
      st = out.Append(std::move(r));
      if (!st.ok()) {
        failed = true;
        return false;
      }
    }
    return true;
  });
  if (failed) return st;
  return out;
}

Result<Table> GroupBy(const Table& t,
                      const std::vector<std::string>& group_cols,
                      const std::string& agg, const std::string& agg_col) {
  std::vector<size_t> gidx;
  std::vector<ColumnDesc> out_cols;
  for (const auto& c : group_cols) {
    ASSIGN_OR_RETURN(size_t i, t.ColumnIndex(c));
    gidx.push_back(i);
    out_cols.push_back(t.columns()[i]);
  }
  ASSIGN_OR_RETURN(size_t aidx, t.ColumnIndex(agg_col));
  out_cols.push_back({agg, agg == "count" ? DataType::kInt64
                                          : DataType::kDouble});
  Table out(t.name() + "_grp", std::move(out_cols));

  struct Acc {
    double sum = 0;
    int64_t count = 0;
    double mn = 1e300, mx = -1e300;
    std::vector<Value> key;
  };
  std::map<std::string, Acc> groups;
  Status st;
  bool failed = false;
  t.ForEachRow([&](const std::vector<Value>& row) {
    std::string key;
    std::vector<Value> key_vals;
    for (size_t i : gidx) {
      key += row[i].ToString();
      key += '\x1f';
      key_vals.push_back(row[i]);
    }
    Acc& acc = groups[key];
    if (acc.key.empty()) acc.key = std::move(key_vals);
    const Value& v = row[aidx];
    if (!v.is_null()) {
      auto d = v.AsDouble();
      if (!d.ok()) {
        st = d.status();
        failed = true;
        return false;
      }
      acc.sum += d.value();
      ++acc.count;
      acc.mn = std::min(acc.mn, d.value());
      acc.mx = std::max(acc.mx, d.value());
    }
    return true;
  });
  if (failed) return st;

  for (auto& [key, acc] : groups) {
    std::vector<Value> row = acc.key;
    if (agg == "sum") {
      row.emplace_back(acc.sum);
    } else if (agg == "count") {
      row.emplace_back(acc.count);
    } else if (agg == "avg") {
      row.emplace_back(acc.count ? acc.sum / acc.count : 0.0);
    } else if (agg == "min") {
      row.emplace_back(acc.mn);
    } else if (agg == "max") {
      row.emplace_back(acc.mx);
    } else {
      return Status::NotImplemented("GroupBy aggregate '" + agg + "'");
    }
    RETURN_NOT_OK(out.Append(std::move(row)));
  }
  return out;
}

}  // namespace scidb
