#ifndef SCIDB_RELATIONAL_TABLE_H_
#define SCIDB_RELATIONAL_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"

namespace scidb {

// A deliberately conventional row-store: tuples of boxed values, optional
// sorted secondary index, tuple-at-a-time operators. This is the
// comparator for EXP-ASAP — the paper's claim that simulating arrays on
// top of tables costs around two orders of magnitude (§2.1, citing the
// ASAP study). It is implemented honestly (hash/sorted index lookups, not
// strawman scans) but with classic RDBMS per-tuple overheads.
struct ColumnDesc {
  std::string name;
  DataType type = DataType::kDouble;
};

class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<ColumnDesc> cols)
      : name_(std::move(name)), cols_(std::move(cols)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDesc>& columns() const { return cols_; }
  size_t ncols() const { return cols_.size(); }
  size_t nrows() const { return rows_.size(); }
  Result<size_t> ColumnIndex(const std::string& name) const;

  Status Append(std::vector<Value> row);
  const std::vector<Value>& row(size_t i) const { return rows_[i]; }

  // Builds a sorted unique index over the given columns (typically the
  // dimension columns of an array-on-table). Invalidated by Append.
  Status BuildIndex(std::vector<size_t> key_cols);
  bool has_index() const { return !index_.empty(); }
  // Rows whose key columns equal `key` (usually 0 or 1 for dim keys).
  std::vector<size_t> IndexLookup(const std::vector<Value>& key) const;
  // Rows whose FIRST key column lies in [lo, hi] (range scan on the
  // index's leading column); remaining columns unconstrained.
  std::vector<size_t> IndexRangeLookup(const Value& lo, const Value& hi)
      const;

  size_t ByteSize() const;

  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (!fn(rows_[i])) return;
    }
  }

 private:
  struct KeyLess {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const {
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        if (a[i].LessThan(b[i])) return true;
        if (b[i].LessThan(a[i])) return false;
      }
      return a.size() < b.size();
    }
  };

  std::string name_;
  std::vector<ColumnDesc> cols_;
  std::vector<std::vector<Value>> rows_;
  std::vector<size_t> index_cols_;
  std::map<std::vector<Value>, std::vector<size_t>, KeyLess> index_;
};

// ---- tuple-at-a-time relational operators ----

using RowPredicate = std::function<bool(const std::vector<Value>&)>;

Table Select(const Table& t, const RowPredicate& pred);
Result<Table> ProjectColumns(const Table& t,
                             const std::vector<std::string>& cols);
// Hash equi-join on one column pair.
Result<Table> HashJoin(const Table& a, const std::string& a_col,
                       const Table& b, const std::string& b_col);
// Group by `group_cols`, aggregating `agg` ("sum"|"count"|"avg"|"min"|
// "max") over `agg_col`.
Result<Table> GroupBy(const Table& t,
                      const std::vector<std::string>& group_cols,
                      const std::string& agg, const std::string& agg_col);

}  // namespace scidb

#endif  // SCIDB_RELATIONAL_TABLE_H_
