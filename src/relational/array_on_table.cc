#include "relational/array_on_table.h"

#include "common/macros.h"

namespace scidb {

ArrayOnTable::ArrayOnTable(const ArraySchema& schema) : schema_(schema) {
  std::vector<ColumnDesc> cols;
  for (const auto& d : schema.dims()) {
    cols.push_back({d.name, DataType::kInt64});
  }
  for (const auto& a : schema.attrs()) {
    cols.push_back({a.name, a.type});
  }
  table_ = Table(schema.name() + "_tab", std::move(cols));
  std::vector<size_t> dim_cols;
  for (size_t d = 0; d < schema.ndims(); ++d) dim_cols.push_back(d);
  SCIDB_CHECK(table_.BuildIndex(std::move(dim_cols)).ok());
}

Status ArrayOnTable::SetCell(const Coordinates& c,
                             const std::vector<Value>& values) {
  if (c.size() != schema_.ndims() || values.size() != schema_.nattrs()) {
    return Status::Invalid("cell arity mismatch");
  }
  std::vector<Value> row;
  row.reserve(c.size() + values.size());
  for (int64_t d : c) row.emplace_back(d);
  row.insert(row.end(), values.begin(), values.end());
  return table_.Append(std::move(row));
}

Status ArrayOnTable::LoadFrom(const MemArray& array) {
  Status st;
  bool failed = false;
  std::vector<Value> cell;
  array.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                        int64_t rank) {
    cell.clear();
    for (size_t a = 0; a < chunk.nattrs(); ++a) {
      cell.push_back(chunk.block(a).Get(rank));
    }
    st = SetCell(c, cell);
    if (!st.ok()) {
      failed = true;
      return false;
    }
    return true;
  });
  if (failed) return st;
  return Status::OK();
}

std::optional<std::vector<Value>> ArrayOnTable::GetCell(
    const Coordinates& c) const {
  std::vector<Value> key;
  key.reserve(c.size());
  for (int64_t d : c) key.emplace_back(d);
  auto rows = table_.IndexLookup(key);
  if (rows.empty()) return std::nullopt;
  const auto& row = table_.row(rows.back());  // last write wins
  return std::vector<Value>(row.begin() + static_cast<int64_t>(c.size()),
                            row.end());
}

Result<ArrayOnTable> ArrayOnTable::Subsample(const Box& window) const {
  if (window.ndims() != schema_.ndims()) {
    return Status::Invalid("window arity mismatch");
  }
  ArrayOnTable out(schema_);
  // Index range scan on the leading dimension, residual filter on the
  // rest — what a sensible RDBMS plan does for a box predicate.
  auto rows = table_.IndexRangeLookup(Value(window.low[0]),
                                      Value(window.high[0]));
  for (size_t r : rows) {
    const auto& row = table_.row(r);
    bool inside = true;
    for (size_t d = 1; d < schema_.ndims(); ++d) {
      auto v = row[d].AsInt64();
      if (!v.ok() || v.value() < window.low[d] ||
          v.value() > window.high[d]) {
        inside = false;
        break;
      }
    }
    if (inside) {
      RETURN_NOT_OK(out.table_.Append(row));
    }
  }
  return out;
}

Result<Table> ArrayOnTable::Aggregate(
    const std::vector<std::string>& group_dims, const std::string& agg,
    const std::string& attr) const {
  std::string target = attr;
  if (target == "*") target = schema_.attr(0).name;
  return GroupBy(table_, group_dims, agg, target);
}

Result<Table> ArrayOnTable::Regrid(const std::vector<int64_t>& factors,
                                   const std::string& agg,
                                   const std::string& attr) const {
  if (factors.size() != schema_.ndims()) {
    return Status::Invalid("Regrid: need one factor per dimension");
  }
  std::string target = attr;
  if (target == "*") target = schema_.attr(0).name;

  // Materialize block-id columns, then GROUP BY them — the standard SQL
  // formulation SELECT (d1-lo)/f1, ..., agg(v) ... GROUP BY 1, ...
  std::vector<ColumnDesc> cols;
  std::vector<std::string> block_names;
  for (size_t d = 0; d < schema_.ndims(); ++d) {
    block_names.push_back("blk_" + schema_.dim(d).name);
    cols.push_back({block_names.back(), DataType::kInt64});
  }
  for (const auto& c : table_.columns()) cols.push_back(c);
  Table widened(table_.name() + "_blk", std::move(cols));
  Status st;
  bool failed = false;
  table_.ForEachRow([&](const std::vector<Value>& row) {
    std::vector<Value> r;
    r.reserve(row.size() + schema_.ndims());
    for (size_t d = 0; d < schema_.ndims(); ++d) {
      auto v = row[d].AsInt64();
      if (!v.ok()) {
        st = v.status();
        failed = true;
        return false;
      }
      r.emplace_back(schema_.dim(d).low +
                     (v.value() - schema_.dim(d).low) / factors[d]);
    }
    r.insert(r.end(), row.begin(), row.end());
    st = widened.Append(std::move(r));
    if (!st.ok()) {
      failed = true;
      return false;
    }
    return true;
  });
  if (failed) return st;
  return GroupBy(widened, block_names, agg, target);
}

}  // namespace scidb
