#include "cook/cooking.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/macros.h"

namespace scidb {

Result<MemArray> Calibrate(const ExecContext& ctx, const MemArray& raw,
                           const std::string& attr, double gain,
                           double offset) {
  ASSIGN_OR_RETURN(size_t ai, raw.schema().AttrIndex(attr));
  (void)ai;
  return Apply(ctx, raw, attr + "_cal", DataType::kDouble,
               Add(Mul(Ref(attr), Lit(gain)), Lit(offset)));
}

Result<MemArray> Composite(const std::vector<const MemArray*>& passes,
                           const std::string& criterion_attr) {
  if (passes.empty()) {
    return Status::Invalid("Composite: need at least one pass");
  }
  const ArraySchema& schema = passes[0]->schema();
  for (const MemArray* p : passes) {
    if (p == nullptr) return Status::Invalid("Composite: null pass");
    if (!(p->schema() == schema)) {
      return Status::Invalid("Composite: pass schemas differ");
    }
  }
  ASSIGN_OR_RETURN(size_t crit, schema.AttrIndex(criterion_attr));

  MemArray out(schema);
  out.mutable_schema()->set_name(schema.name() + "_composite");

  // For each cell present in any pass, keep the tuple with the minimal
  // criterion. Passes are scanned in order; ties keep the earlier pass
  // (deterministic).
  Status st;
  bool failed = false;
  std::vector<Value> cell;
  for (const MemArray* p : passes) {
    p->ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                       int64_t rank) {
      Value candidate = chunk.block(crit).Get(rank);
      auto existing = out.GetCell(c);
      if (existing.has_value()) {
        const Value& best = (*existing)[crit];
        // NULL criterion never wins over a real one.
        if (candidate.is_null()) return true;
        if (!best.is_null() && !candidate.LessThan(best)) return true;
      } else if (candidate.is_null()) {
        // First sighting with NULL criterion: keep it until a real one.
      }
      cell.clear();
      for (size_t a = 0; a < chunk.nattrs(); ++a) {
        cell.push_back(chunk.block(a).Get(rank));
      }
      st = out.SetCell(c, cell);
      if (!st.ok()) {
        failed = true;
        return false;
      }
      return true;
    });
    if (failed) return st;
  }
  return out;
}

Result<std::vector<Detection>> DetectSources(const MemArray& image,
                                             const std::string& attr,
                                             double threshold) {
  if (image.schema().ndims() != 2) {
    return Status::Invalid("DetectSources expects a 2-D image");
  }
  ASSIGN_OR_RETURN(size_t ai, image.schema().AttrIndex(attr));

  // Collect above-threshold pixels.
  std::map<Coordinates, double> bright;
  image.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                        int64_t rank) {
    if (chunk.block(ai).IsNull(rank)) return true;
    double v = chunk.block(ai).GetDouble(rank);
    if (v > threshold) bright.emplace(c, v);
    return true;
  });

  // Connected components by BFS over 4-neighbours.
  std::vector<Detection> detections;
  std::set<Coordinates> visited;
  for (const auto& [seed, seed_v] : bright) {
    if (visited.count(seed)) continue;
    Detection det;
    det.peak = seed;
    det.peak_value = seed_v;
    det.bbox = Box(seed, seed);
    std::deque<Coordinates> frontier{seed};
    visited.insert(seed);
    while (!frontier.empty()) {
      Coordinates c = frontier.front();
      frontier.pop_front();
      double v = bright.at(c);
      det.total_flux += v;
      ++det.npix;
      det.bbox.ExpandToInclude(Box(c, c));
      if (v > det.peak_value) {
        det.peak_value = v;
        det.peak = c;
      }
      static constexpr int64_t kOffsets[4][2] = {
          {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
      for (const auto& off : kOffsets) {
        Coordinates n = {c[0] + off[0], c[1] + off[1]};
        if (visited.count(n) || !bright.count(n)) continue;
        visited.insert(n);
        frontier.push_back(n);
      }
    }
    detections.push_back(std::move(det));
  }
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              if (a.peak_value != b.peak_value) {
                return a.peak_value > b.peak_value;
              }
              return a.peak < b.peak;
            });
  return detections;
}

}  // namespace scidb
