#ifndef SCIDB_COOK_COOKING_H_
#define SCIDB_COOK_COOKING_H_

#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/result.h"
#include "exec/operators.h"

namespace scidb {

// In-engine cooking (paper §2.10): raw sensor readings become finished
// information inside the DBMS — calibration, composite selection across
// satellite passes, and detection. Running these inside the engine is
// what makes the §2.12 provenance story possible: each step is a logged
// command over arrays.

// value' = gain * value + offset applied to `attr` in place of a separate
// calibrated attribute named `attr`_cal.
Result<MemArray> Calibrate(const ExecContext& ctx, const MemArray& raw,
                           const std::string& attr, double gain,
                           double offset);

// Composite selection (paper §2.11's named-version use case): several
// passes observe the same grid; each cell of the output takes the
// observation from the pass minimizing `criterion_attr` — "least cloud
// cover" with criterion "cloud", "closest to directly overhead" with
// criterion "nadir". All passes must share one schema.
Result<MemArray> Composite(const std::vector<const MemArray*>& passes,
                           const std::string& criterion_attr);

// One detected source in a cooked image.
struct Detection {
  Coordinates peak;      // brightest pixel
  double peak_value = 0;
  double total_flux = 0;
  int64_t npix = 0;
  Box bbox;
};

// Threshold + 2-D connected components (4-connectivity) over `attr` —
// the "detect" task of the science benchmark (§2.15). Detections are
// returned brightest-first.
Result<std::vector<Detection>> DetectSources(const MemArray& image,
                                             const std::string& attr,
                                             double threshold);

}  // namespace scidb

#endif  // SCIDB_COOK_COOKING_H_
