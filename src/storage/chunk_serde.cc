#include "storage/chunk_serde.h"

#include "common/byte_io.h"
#include "common/macros.h"

namespace scidb {

namespace {
constexpr uint32_t kChunkMagic = 0x53434448;  // "SCDH"
}  // namespace

std::vector<uint8_t> SerializeChunk(const Chunk& chunk) {
  ByteWriter w;
  w.PutU32(kChunkMagic);
  const Box& box = chunk.box();
  w.PutVarint(box.ndims());
  for (size_t d = 0; d < box.ndims(); ++d) {
    w.PutSignedVarint(box.low[d]);
    w.PutSignedVarint(box.high[d]);
  }
  w.PutVarint(chunk.nattrs());

  // Present bitmap: one byte per cell (block codec shrinks the runs).
  const int64_t cells = chunk.cell_capacity();
  w.PutVarint(static_cast<uint64_t>(cells));
  std::vector<int64_t> present_ranks;
  for (int64_t rank = 0; rank < cells; ++rank) {
    bool p = chunk.IsPresent(rank);
    w.PutU8(p ? 1 : 0);
    if (p) present_ranks.push_back(rank);
  }

  for (size_t a = 0; a < chunk.nattrs(); ++a) {
    const AttributeBlock& b = chunk.block(a);
    w.PutU8(static_cast<uint8_t>(b.type()));
    w.PutU8(b.uncertain() ? 1 : 0);
    // Null flags for present cells.
    for (int64_t rank : present_ranks) {
      w.PutU8(b.IsNull(rank) ? 1 : 0);
    }
    // Values of present, non-null cells.
    int64_t prev_i64 = 0;
    for (int64_t rank : present_ranks) {
      if (b.IsNull(rank)) continue;
      Value v = b.Get(rank);
      switch (b.type()) {
        case DataType::kBool:
          w.PutU8(v.bool_value() ? 1 : 0);
          break;
        case DataType::kInt64: {
          int64_t x = b.GetInt64(rank);
          w.PutSignedVarint(x - prev_i64);  // delta coding
          prev_i64 = x;
          break;
        }
        case DataType::kFloat:
          w.PutFloat(static_cast<float>(b.GetDouble(rank)));
          break;
        case DataType::kDouble:
          w.PutDouble(b.GetDouble(rank));
          break;
        case DataType::kString:
          w.PutString(v.is_string() ? v.string_value() : std::string());
          break;
        case DataType::kArray: {
          // Nested arrays: shape + double payload (nested numeric arrays;
          // deeper nesting is flattened by the writer).
          if (!v.is_array()) {
            w.PutVarint(0);
            break;
          }
          const auto& na = *v.array_value();
          w.PutVarint(na.shape.size());
          for (int64_t s : na.shape) w.PutSignedVarint(s);
          w.PutVarint(na.values.size());
          for (const Value& nv : na.values) {
            auto d = nv.AsDouble();
            w.PutDouble(d.ok() ? d.value() : 0.0);
          }
          break;
        }
      }
    }
    if (b.uncertain()) {
      if (b.has_constant_stderr()) {
        w.PutU8(1);
        // One shared error bar — the §2.13 negligible-space encoding.
        w.PutDouble(present_ranks.empty() ? 0.0
                                          : b.GetStderr(present_ranks[0]));
      } else {
        w.PutU8(0);
        for (int64_t rank : present_ranks) {
          if (!b.IsNull(rank)) w.PutDouble(b.GetStderr(rank));
        }
      }
    }
  }
  return w.Release();
}

Result<Chunk> DeserializeChunk(const std::vector<uint8_t>& bytes,
                               const std::vector<AttributeDesc>& attrs) {
  ByteReader r(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kChunkMagic) {
    return Status::Corruption("bad chunk magic");
  }
  ASSIGN_OR_RETURN(uint64_t ndims, r.GetVarint());
  if (ndims == 0 || ndims > 64) return Status::Corruption("bad chunk ndims");
  Box box;
  box.low.resize(ndims);
  box.high.resize(ndims);
  for (size_t d = 0; d < ndims; ++d) {
    ASSIGN_OR_RETURN(box.low[d], r.GetSignedVarint());
    ASSIGN_OR_RETURN(box.high[d], r.GetSignedVarint());
    if (box.high[d] < box.low[d]) {
      return Status::Corruption("inverted chunk box");
    }
  }
  ASSIGN_OR_RETURN(uint64_t nattrs, r.GetVarint());
  if (nattrs != attrs.size()) {
    return Status::Corruption("chunk attr count mismatch: file has " +
                              std::to_string(nattrs) + ", manifest has " +
                              std::to_string(attrs.size()));
  }

  // Validate the box's cell capacity BEFORE constructing the Chunk:
  // Box::CellCount() multiplies extents unchecked, so a hostile box like
  // [INT64_MIN, INT64_MAX]^64 is signed-overflow UB and/or a multi-GB
  // allocation (found by fuzz_chunk_serde). Extents are computed in
  // uint64 (exact since high >= low; the +1 wraps to 0 only for the
  // full-int64 range, which the == 0 check rejects), and the running
  // product is capped by the payload size: the format stores at least one
  // present-bitmap byte per cell, so capacity can never legitimately
  // exceed the bytes remaining in the buffer.
  uint64_t capacity = 1;
  const uint64_t max_cells = r.remaining();
  for (size_t d = 0; d < ndims; ++d) {
    uint64_t extent = static_cast<uint64_t>(box.high[d]) -
                      static_cast<uint64_t>(box.low[d]) + 1;
    if (extent == 0 || extent > max_cells || capacity > max_cells / extent) {
      return Status::Corruption("chunk box larger than payload");
    }
    capacity *= extent;
  }
  ASSIGN_OR_RETURN(uint64_t cells, r.GetVarint());
  if (cells != capacity) {
    return Status::Corruption("chunk cell count mismatch");
  }
  if (cells > r.remaining()) {
    return Status::Corruption("chunk cell count exceeds payload");
  }

  Chunk chunk(box, attrs);
  if (static_cast<int64_t>(cells) != chunk.cell_capacity()) {
    return Status::Corruption("chunk cell count mismatch");
  }
  std::vector<int64_t> present_ranks;
  for (uint64_t rank = 0; rank < cells; ++rank) {
    ASSIGN_OR_RETURN(uint8_t p, r.GetU8());
    if (p) {
      chunk.MarkPresent(static_cast<int64_t>(rank));
      present_ranks.push_back(static_cast<int64_t>(rank));
    }
  }

  for (size_t a = 0; a < attrs.size(); ++a) {
    ASSIGN_OR_RETURN(uint8_t type_tag, r.GetU8());
    ASSIGN_OR_RETURN(uint8_t unc_tag, r.GetU8());
    if (static_cast<DataType>(type_tag) != attrs[a].type ||
        (unc_tag != 0) != attrs[a].uncertain) {
      return Status::Corruption("chunk attribute descriptor mismatch");
    }
    AttributeBlock& b = chunk.block(a);
    std::vector<uint8_t> nulls(present_ranks.size());
    for (size_t i = 0; i < present_ranks.size(); ++i) {
      ASSIGN_OR_RETURN(nulls[i], r.GetU8());
    }
    int64_t prev_i64 = 0;
    std::vector<size_t> value_positions;  // indices into present_ranks
    // Uncertain attributes: means are buffered and written together with
    // their error bars, so the constant-stderr collapse survives a
    // round trip (writing mean-then-stderr separately would adopt 0.0 as
    // the constant and immediately materialize the column).
    std::vector<double> means;
    const bool uncertain = attrs[a].uncertain;
    for (size_t i = 0; i < present_ranks.size(); ++i) {
      int64_t rank = present_ranks[i];
      if (nulls[i]) {
        b.Set(rank, Value::Null());
        continue;
      }
      value_positions.push_back(i);
      switch (attrs[a].type) {
        case DataType::kBool: {
          ASSIGN_OR_RETURN(uint8_t v, r.GetU8());
          b.Set(rank, Value(v != 0));
          break;
        }
        case DataType::kInt64: {
          ASSIGN_OR_RETURN(int64_t delta, r.GetSignedVarint());
          prev_i64 += delta;
          if (uncertain) {
            means.push_back(static_cast<double>(prev_i64));
          } else {
            b.Set(rank, Value(prev_i64));
          }
          break;
        }
        case DataType::kFloat: {
          ASSIGN_OR_RETURN(float v, r.GetFloat());
          if (uncertain) {
            means.push_back(static_cast<double>(v));
          } else {
            b.Set(rank, Value(static_cast<double>(v)));
          }
          break;
        }
        case DataType::kDouble: {
          ASSIGN_OR_RETURN(double v, r.GetDouble());
          if (uncertain) {
            means.push_back(v);
          } else {
            b.Set(rank, Value(v));
          }
          break;
        }
        case DataType::kString: {
          ASSIGN_OR_RETURN(std::string s, r.GetString());
          b.Set(rank, Value(std::move(s)));
          break;
        }
        case DataType::kArray: {
          ASSIGN_OR_RETURN(uint64_t nd, r.GetVarint());
          if (nd == 0) {
            b.Set(rank, Value::Null());
            break;
          }
          // Each shape entry is at least one varint byte, so a declared
          // rank beyond the remaining payload is corruption — checked
          // before resize() so a 5-byte varint cannot demand a 2^60-entry
          // allocation (found by fuzz_chunk_serde).
          if (nd > r.remaining()) {
            return Status::Corruption("nested array rank exceeds payload");
          }
          auto na = std::make_shared<NestedArray>();
          na->shape.resize(nd);
          for (uint64_t d = 0; d < nd; ++d) {
            ASSIGN_OR_RETURN(na->shape[d], r.GetSignedVarint());
          }
          ASSIGN_OR_RETURN(uint64_t nv, r.GetVarint());
          // Values are 8 bytes each; same declared-size-vs-payload guard.
          if (nv > r.remaining() / sizeof(double)) {
            return Status::Corruption("nested array size exceeds payload");
          }
          na->values.reserve(nv);
          for (uint64_t k = 0; k < nv; ++k) {
            ASSIGN_OR_RETURN(double v, r.GetDouble());
            na->values.emplace_back(v);
          }
          b.Set(rank, Value(std::move(na)));
          break;
        }
      }
    }
    if (attrs[a].uncertain) {
      ASSIGN_OR_RETURN(uint8_t is_const, r.GetU8());
      if (is_const) {
        ASSIGN_OR_RETURN(double s, r.GetDouble());
        for (size_t k = 0; k < value_positions.size(); ++k) {
          b.Set(present_ranks[value_positions[k]],
                Value(Uncertain(means[k], s)));
        }
      } else {
        for (size_t k = 0; k < value_positions.size(); ++k) {
          ASSIGN_OR_RETURN(double s, r.GetDouble());
          b.Set(present_ranks[value_positions[k]],
                Value(Uncertain(means[k], s)));
        }
      }
    }
  }
  return chunk;
}

}  // namespace scidb
