#include "storage/storage_manager.h"

#include <sys/stat.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "array/schema_serde.h"
#include "common/byte_io.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "storage/chunk_serde.h"

namespace scidb {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kManifestMagic = 0x53434D46;  // "SCMF"

// Process-wide storage metrics (naming per DESIGN.md §7), registered once.
struct StorageMetrics {
  Counter* buckets_written;
  Counter* buckets_read;
  Counter* bytes_written;
  Counter* bytes_read;
  Counter* bytes_logical;
  Histogram* bucket_read_latency_us;

  static const StorageMetrics& Get() {
    static auto* const m = new StorageMetrics{
        Metrics::Instance().counter("scidb.storage.buckets_written"),
        Metrics::Instance().counter("scidb.storage.buckets_read"),
        Metrics::Instance().counter("scidb.storage.bytes_written"),
        Metrics::Instance().counter("scidb.storage.bytes_read"),
        Metrics::Instance().counter("scidb.storage.bytes_logical"),
        Metrics::Instance().histogram(
            "scidb.storage.bucket_read_latency_us"),
    };
    return *m;
  }
};

// Manifest schema blocks use the shared canonical codec (DESIGN.md §15:
// the query server ships result schemas over the wire in the same
// format). Kept as thin local names so manifest read/write sites below
// stay unchanged.
void WriteSchemaTo(ByteWriter* w, const ArraySchema& s) {
  EncodeSchema(s, w);
}

Result<ArraySchema> ReadSchemaFrom(ByteReader* r) { return DecodeSchema(r); }

}  // namespace

// ------------------------------------------------------------- DiskArray

DiskArray::~DiskArray() {
  // Persist the manifest on teardown; never for a shell object that failed
  // to open (no schema), which must not leave a stray manifest behind.
  // Destructors have no error channel, so a failed flush is reported to
  // stderr instead of silently discarded; callers needing a hard
  // guarantee call Flush() themselves and check the Status.
  if (schema_.ndims() > 0) {
    Status st = Flush();
    if (!st.ok()) {
      std::cerr << "WARN DiskArray::~DiskArray flush failed: "
                << st.ToString() << std::endl;
    }
  }
}

Status DiskArray::AppendPayload(const std::vector<uint8_t>& payload,
                                uint64_t* offset) {
  std::ofstream f(data_path_, std::ios::binary | std::ios::app);
  if (!f) return Status::IOError("cannot open " + data_path_);
  *offset = data_end_;
  f.write(reinterpret_cast<const char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  if (!f) return Status::IOError("short write to " + data_path_);
  data_end_ += payload.size();
  return Status::OK();
}

Status DiskArray::WriteBucket(const Chunk& chunk) {
  if (chunk.present_count() == 0) return Status::OK();  // nothing to store
  std::vector<uint8_t> raw = SerializeChunk(chunk);
  std::vector<uint8_t> payload = Compress(codec_, raw);
  uint64_t offset = 0;
  RETURN_NOT_OK(AppendPayload(payload, &offset));

  BucketMeta meta;
  meta.id = next_id_++;
  meta.box = chunk.box();
  meta.offset = offset;
  meta.size = payload.size();
  meta.cells = chunk.present_count();
  rtree_.Insert(meta.box, meta.id);
  buckets_.emplace(meta.id, std::move(meta));

  {
    MutexLock lk(stats_mu_);
    ++stats_.buckets_written;
    stats_.bytes_written += static_cast<int64_t>(payload.size());
    stats_.bytes_logical += static_cast<int64_t>(raw.size());
  }
  const StorageMetrics& m = StorageMetrics::Get();
  m.buckets_written->Inc();
  m.bytes_written->Inc(static_cast<int64_t>(payload.size()));
  m.bytes_logical->Inc(static_cast<int64_t>(raw.size()));
  return Status::OK();
}

Status DiskArray::WriteAll(const MemArray& array) {
  if (!(array.schema() == schema_)) {
    return Status::Invalid("array schema does not match DiskArray '" +
                           schema_.name() + "'");
  }
  for (const auto& [origin, chunk] : array.chunks()) {
    RETURN_NOT_OK(WriteBucket(*chunk));
  }
  return Status::OK();
}

void DiskArray::EnableCache(size_t byte_budget) {
  if (byte_budget == 0) {
    cache_.reset();
    return;
  }
  cache_ = std::make_unique<ChunkCache>(byte_budget);
}

Result<std::shared_ptr<const Chunk>> DiskArray::ReadBucket(
    const BucketMeta& meta) const {
  if (cache_ != nullptr) {
    if (auto hit = cache_->Get(meta.id); hit != nullptr) return hit;
  }
  uint64_t t0 = SteadyNowNs();
  std::ifstream f(data_path_, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + data_path_);
  f.seekg(static_cast<std::streamoff>(meta.offset));
  std::vector<uint8_t> payload(meta.size);
  f.read(reinterpret_cast<char*>(payload.data()),
         static_cast<std::streamsize>(meta.size));
  if (!f) return Status::IOError("short read from " + data_path_);
  {
    MutexLock lk(stats_mu_);
    ++stats_.buckets_read;
    stats_.bytes_read += static_cast<int64_t>(meta.size);
  }
  const StorageMetrics& m = StorageMetrics::Get();
  m.buckets_read->Inc();
  m.bytes_read->Inc(static_cast<int64_t>(meta.size));
  m.bucket_read_latency_us->Record(
      static_cast<int64_t>((SteadyNowNs() - t0) / 1000));
  ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Decompress(payload));
  ASSIGN_OR_RETURN(Chunk chunk, DeserializeChunk(raw, schema_.attrs()));
  auto shared = std::make_shared<const Chunk>(std::move(chunk));
  if (cache_ != nullptr) cache_->Put(meta.id, shared);
  return shared;
}

Result<MemArray> DiskArray::ReadRegion(const Box& query) const {
  if (query.ndims() != schema_.ndims()) {
    return Status::Invalid("query box arity mismatch");
  }
  MemArray out(schema_);
  for (uint64_t id : rtree_.Search(query)) {
    auto it = buckets_.find(id);
    if (it == buckets_.end()) {
      return Status::Internal("r-tree references missing bucket " +
                              std::to_string(id));
    }
    ASSIGN_OR_RETURN(std::shared_ptr<const Chunk> chunk,
                     ReadBucket(it->second));
    if (!chunk->box().Intersects(query)) continue;
    Box want = chunk->box().Intersect(query);
    Coordinates c = want.low;
    std::vector<Value> cell;
    do {
      int64_t rank = RankInBox(chunk->box(), c);
      if (!chunk->IsPresent(rank)) continue;
      cell.clear();
      for (size_t a = 0; a < chunk->nattrs(); ++a) {
        cell.push_back(chunk->block(a).Get(rank));
      }
      RETURN_NOT_OK(out.SetCell(c, cell));
    } while (NextInBox(want, &c));
  }
  return out;
}

Result<MemArray> DiskArray::ReadAll(ThreadPool* pool) const {
  // Phase 1 (parallel when a pool is supplied): read + decompress +
  // deserialize every bucket into an id-ordered slot vector. ReadBucket
  // is safe concurrently — each call has a private ifstream, the stat
  // counters are mutex-guarded, and the cache synchronizes itself.
  std::vector<const BucketMeta*> metas;
  metas.reserve(buckets_.size());
  for (const auto& [id, meta] : buckets_) metas.push_back(&meta);
  std::vector<std::shared_ptr<const Chunk>> slots(metas.size());
  auto read_one = [&](int64_t i) -> Status {
    ASSIGN_OR_RETURN(slots[static_cast<size_t>(i)],
                     ReadBucket(*metas[static_cast<size_t>(i)]));
    return Status::OK();
  };
  if (pool != nullptr) {
    RETURN_NOT_OK(pool->ParallelFor(static_cast<int64_t>(metas.size()),
                                    read_one));
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(metas.size()); ++i) {
      RETURN_NOT_OK(read_one(i));
    }
  }

  // Phase 2 (always single-threaded): scatter cells in bucket-id order,
  // so overlapping buckets resolve last-writer-wins identically at every
  // pool width.
  MemArray out(schema_);
  std::vector<Value> cell;
  for (const std::shared_ptr<const Chunk>& chunk : slots) {
    for (Chunk::CellIterator it(*chunk); it.valid(); it.Next()) {
      cell.clear();
      for (size_t a = 0; a < chunk->nattrs(); ++a) {
        cell.push_back(chunk->block(a).Get(it.rank()));
      }
      RETURN_NOT_OK(out.SetCell(it.coords(), cell));
    }
  }
  return out;
}

Result<std::optional<std::vector<Value>>> DiskArray::ReadCell(
    const Coordinates& c) const {
  Box point(c, c);
  for (uint64_t id : rtree_.Search(point)) {
    auto it = buckets_.find(id);
    if (it == buckets_.end()) continue;
    ASSIGN_OR_RETURN(std::shared_ptr<const Chunk> chunk,
                     ReadBucket(it->second));
    if (chunk->IsPresentAt(c)) {
      return std::optional<std::vector<Value>>(chunk->GetCell(c));
    }
  }
  return std::optional<std::vector<Value>>(std::nullopt);
}

Result<int> DiskArray::MergeSmallBuckets(int64_t small_bytes) {
  // Plan: group small buckets into pairs that are box-adjacent along one
  // dimension and identical along the others ("combine buckets into
  // larger ones", §2.8).
  auto adjacent = [](const Box& a, const Box& b) -> int {
    int join_dim = -1;
    for (size_t d = 0; d < a.ndims(); ++d) {
      if (a.low[d] == b.low[d] && a.high[d] == b.high[d]) continue;
      if (join_dim >= 0) return -1;  // differs in two dims
      if (a.high[d] + 1 == b.low[d] || b.high[d] + 1 == a.low[d]) {
        join_dim = static_cast<int>(d);
      } else {
        return -1;
      }
    }
    return join_dim;
  };

  int merges = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    const BucketMeta* first = nullptr;
    const BucketMeta* second = nullptr;
    for (auto it = buckets_.begin(); it != buckets_.end() && !second; ++it) {
      if (static_cast<int64_t>(it->second.size) > small_bytes) continue;
      for (auto jt = std::next(it); jt != buckets_.end(); ++jt) {
        if (static_cast<int64_t>(jt->second.size) > small_bytes) continue;
        if (adjacent(it->second.box, jt->second.box) >= 0) {
          first = &it->second;
          second = &jt->second;
          break;
        }
      }
    }
    if (second == nullptr) break;

    ASSIGN_OR_RETURN(std::shared_ptr<const Chunk> a, ReadBucket(*first));
    ASSIGN_OR_RETURN(std::shared_ptr<const Chunk> b, ReadBucket(*second));
    Box merged_box = a->box();
    merged_box.ExpandToInclude(b->box());
    Chunk merged(merged_box, schema_.attrs());
    for (const Chunk* src : {a.get(), b.get()}) {
      for (Chunk::CellIterator it(*src); it.valid(); it.Next()) {
        Coordinates c = it.coords();
        int64_t rank = RankInBox(merged_box, c);
        for (size_t at = 0; at < merged.nattrs(); ++at) {
          merged.block(at).Set(rank, src->block(at).Get(it.rank()));
        }
        merged.MarkPresent(rank);
      }
    }
    uint64_t id_a = first->id;
    uint64_t id_b = second->id;
    // A bucket the manifest knows about must be indexed; failure here
    // means the R-tree and bucket table have diverged (index corruption).
    SCIDB_CHECK(rtree_.Remove(first->box, id_a))
        << "bucket " << id_a << " missing from R-tree";
    SCIDB_CHECK(rtree_.Remove(second->box, id_b))
        << "bucket " << id_b << " missing from R-tree";
    buckets_.erase(id_a);
    buckets_.erase(id_b);
    if (cache_ != nullptr) {
      cache_->Invalidate(id_a);
      cache_->Invalidate(id_b);
    }
    RETURN_NOT_OK(WriteBucket(merged));
    ++merges;
    {
      MutexLock lk(stats_mu_);
      ++stats_.merges;
    }
    progress = true;
  }

  // Reclaim dead space when more than half the data file is garbage.
  int64_t live = LiveBytes();
  if (merges > 0 && data_end_ > 0 &&
      live * 2 < static_cast<int64_t>(data_end_)) {
    RETURN_NOT_OK(CompactDataFile());
  }
  if (merges > 0) RETURN_NOT_OK(Flush());
  return merges;
}

int64_t DiskArray::LiveBytes() const {
  int64_t live = 0;
  for (const auto& [id, meta] : buckets_) {
    live += static_cast<int64_t>(meta.size);
  }
  return live;
}

Status DiskArray::CompactDataFile() {
  std::string tmp = data_path_ + ".compact";
  {
    std::ifstream in(data_path_, std::ios::binary);
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!in || !out) return Status::IOError("compaction open failed");
    uint64_t new_off = 0;
    for (auto& [id, meta] : buckets_) {
      std::vector<char> buf(meta.size);
      in.seekg(static_cast<std::streamoff>(meta.offset));
      in.read(buf.data(), static_cast<std::streamsize>(meta.size));
      if (!in) return Status::IOError("compaction read failed");
      out.write(buf.data(), static_cast<std::streamsize>(meta.size));
      if (!out) return Status::IOError("compaction write failed");
      meta.offset = new_off;
      new_off += meta.size;
    }
    data_end_ = new_off;
  }
  std::error_code ec;
  fs::rename(tmp, data_path_, ec);
  if (ec) return Status::IOError("compaction rename failed: " + ec.message());
  return Status::OK();
}

Status DiskArray::Flush() {
  ByteWriter w;
  w.PutU32(kManifestMagic);
  WriteSchemaTo(&w, schema_);
  w.PutU8(static_cast<uint8_t>(codec_));
  w.PutU64(next_id_);
  w.PutU64(data_end_);
  w.PutVarint(buckets_.size());
  for (const auto& [id, meta] : buckets_) {
    w.PutU64(meta.id);
    w.PutVarint(meta.box.ndims());
    for (size_t d = 0; d < meta.box.ndims(); ++d) {
      w.PutSignedVarint(meta.box.low[d]);
      w.PutSignedVarint(meta.box.high[d]);
    }
    w.PutU64(meta.offset);
    w.PutU64(meta.size);
    w.PutSignedVarint(meta.cells);
  }
  std::string tmp = manifest_path_ + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return Status::IOError("cannot open " + tmp);
    f.write(reinterpret_cast<const char*>(w.data().data()),
            static_cast<std::streamsize>(w.size()));
    if (!f) return Status::IOError("short manifest write");
  }
  std::error_code ec;
  fs::rename(tmp, manifest_path_, ec);
  if (ec) return Status::IOError("manifest rename failed: " + ec.message());
  return Status::OK();
}

Status DiskArray::LoadManifest() {
  std::ifstream f(manifest_path_, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + manifest_path_);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                             std::istreambuf_iterator<char>());
  ByteReader r(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kManifestMagic) return Status::Corruption("bad manifest");
  ASSIGN_OR_RETURN(schema_, ReadSchemaFrom(&r));
  ASSIGN_OR_RETURN(uint8_t codec, r.GetU8());
  codec_ = static_cast<CodecType>(codec);
  ASSIGN_OR_RETURN(next_id_, r.GetU64());
  ASSIGN_OR_RETURN(data_end_, r.GetU64());
  ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    BucketMeta meta;
    ASSIGN_OR_RETURN(meta.id, r.GetU64());
    ASSIGN_OR_RETURN(uint64_t ndims, r.GetVarint());
    meta.box.low.resize(ndims);
    meta.box.high.resize(ndims);
    for (uint64_t d = 0; d < ndims; ++d) {
      ASSIGN_OR_RETURN(meta.box.low[d], r.GetSignedVarint());
      ASSIGN_OR_RETURN(meta.box.high[d], r.GetSignedVarint());
    }
    ASSIGN_OR_RETURN(meta.offset, r.GetU64());
    ASSIGN_OR_RETURN(meta.size, r.GetU64());
    ASSIGN_OR_RETURN(meta.cells, r.GetSignedVarint());
    rtree_.Insert(meta.box, meta.id);
    buckets_.emplace(meta.id, std::move(meta));
  }
  return Status::OK();
}

// -------------------------------------------------------- StorageManager

StorageManager::StorageManager(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

StorageManager::~StorageManager() {
  // Same policy as ~DiskArray: report, don't drop.
  Status st = FlushAll();
  if (!st.ok()) {
    std::cerr << "WARN StorageManager::~StorageManager flush failed: "
              << st.ToString() << std::endl;
  }
}

Result<DiskArray*> StorageManager::CreateArray(const ArraySchema& schema,
                                               CodecType codec) {
  RETURN_NOT_OK(schema.Validate());
  if (arrays_.count(schema.name())) {
    return Status::AlreadyExists("array '" + schema.name() +
                                 "' already open");
  }
  auto arr = std::unique_ptr<DiskArray>(new DiskArray());
  arr->schema_ = schema;
  arr->dir_ = dir_;
  arr->data_path_ = dir_ + "/" + schema.name() + ".data";
  arr->manifest_path_ = dir_ + "/" + schema.name() + ".manifest";
  arr->codec_ = codec;
  if (fs::exists(arr->manifest_path_)) {
    return Status::AlreadyExists("array '" + schema.name() +
                                 "' exists on disk; use OpenArray");
  }
  // Truncate any stale data file.
  std::ofstream(arr->data_path_, std::ios::binary | std::ios::trunc);
  DiskArray* ptr = arr.get();
  arrays_.emplace(schema.name(), std::move(arr));
  return ptr;
}

Result<DiskArray*> StorageManager::OpenArray(const std::string& name) {
  auto it = arrays_.find(name);
  if (it != arrays_.end()) return it->second.get();
  if (!fs::exists(dir_ + "/" + name + ".manifest")) {
    return Status::NotFound("no array '" + name + "' in " + dir_);
  }
  auto arr = std::unique_ptr<DiskArray>(new DiskArray());
  arr->dir_ = dir_;
  arr->data_path_ = dir_ + "/" + name + ".data";
  arr->manifest_path_ = dir_ + "/" + name + ".manifest";
  RETURN_NOT_OK(arr->LoadManifest());
  DiskArray* ptr = arr.get();
  arrays_.emplace(name, std::move(arr));
  return ptr;
}

Result<DiskArray*> StorageManager::OpenOrCreateArray(
    const ArraySchema& schema, CodecType codec) {
  auto opened = OpenArray(schema.name());
  if (opened.ok()) return opened;
  return CreateArray(schema, codec);
}

Status StorageManager::DropArray(const std::string& name) {
  auto it = arrays_.find(name);
  std::string data = dir_ + "/" + name + ".data";
  std::string manifest = dir_ + "/" + name + ".manifest";
  if (it == arrays_.end() && !fs::exists(manifest)) {
    return Status::NotFound("no array '" + name + "'");
  }
  arrays_.erase(name);
  std::error_code ec;
  fs::remove(data, ec);
  fs::remove(manifest, ec);
  return Status::OK();
}

std::vector<std::string> StorageManager::ArrayNames() const {
  std::vector<std::string> names;
  for (const auto& [name, arr] : arrays_) names.push_back(name);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::string fn = entry.path().filename().string();
    const std::string suffix = ".manifest";
    if (fn.size() > suffix.size() &&
        fn.substr(fn.size() - suffix.size()) == suffix) {
      std::string name = fn.substr(0, fn.size() - suffix.size());
      if (!arrays_.count(name)) names.push_back(name);
    }
  }
  return names;
}

Status StorageManager::FlushAll() {
  for (auto& [name, arr] : arrays_) {
    RETURN_NOT_OK(arr->Flush());
  }
  return Status::OK();
}

// ---------------------------------------------------------- StreamLoader

StreamLoader::StreamLoader(DiskArray* target, size_t memory_budget)
    : target_(target), memory_budget_(memory_budget),
      buffer_(target->schema()) {}

Status StreamLoader::Append(const Coordinates& c,
                            const std::vector<Value>& values) {
  if (finished_) return Status::Invalid("loader already finished");
  RETURN_NOT_OK(buffer_.SetCell(c, values));
  if (buffer_.ByteSize() >= memory_budget_) {
    RETURN_NOT_OK(FlushBuffer());
  }
  return Status::OK();
}

Status StreamLoader::FlushBuffer() {
  if (buffer_.CellCount() == 0) return Status::OK();
  RETURN_NOT_OK(target_->WriteAll(buffer_));
  buffer_ = MemArray(target_->schema());
  ++flushes_;
  return Status::OK();
}

Status StreamLoader::Finish() {
  if (finished_) return Status::Invalid("loader already finished");
  finished_ = true;
  RETURN_NOT_OK(FlushBuffer());
  return target_->Flush();
}

}  // namespace scidb
