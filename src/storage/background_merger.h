#ifndef SCIDB_STORAGE_BACKGROUND_MERGER_H_
#define SCIDB_STORAGE_BACKGROUND_MERGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "storage/storage_manager.h"

namespace scidb {

// Background thread that periodically combines small buckets into larger
// ones (paper §2.8: "In a style similar to that employed by Vertica, a
// background thread can combine buckets into larger ones as an
// optimization"). DiskArray is not internally synchronized, so the merger
// owns an external mutex that foreground readers share via WithLock().
class BackgroundMerger {
 public:
  BackgroundMerger(DiskArray* array, int64_t small_bytes,
                   std::chrono::milliseconds interval)
      : array_(array), small_bytes_(small_bytes), interval_(interval) {}

  ~BackgroundMerger() { Stop(); }
  BackgroundMerger(const BackgroundMerger&) = delete;
  BackgroundMerger& operator=(const BackgroundMerger&) = delete;

  void Start() {
    if (running_.exchange(true)) return;
    thread_ = std::thread([this] { Run(); });
  }

  void Stop() {
    if (!running_.exchange(false)) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
  }

  // Runs one merge pass synchronously (also usable without Start()).
  Result<int> RunOnce() {
    std::lock_guard<std::mutex> lk(mu_);
    return array_->MergeSmallBuckets(small_bytes_);
  }

  int64_t total_merges() const { return total_merges_.load(); }

  // Foreground access to the array under the merger's lock.
  template <typename Fn>
  auto WithLock(Fn&& fn) {
    std::lock_guard<std::mutex> lk(mu_);
    return fn(array_);
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lk(mu_);
    while (running_.load()) {
      auto merged = array_->MergeSmallBuckets(small_bytes_);
      if (merged.ok()) total_merges_ += merged.value();
      cv_.wait_for(lk, interval_, [this] { return !running_.load(); });
    }
  }

  DiskArray* array_;
  int64_t small_bytes_;
  std::chrono::milliseconds interval_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> total_merges_{0};
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace scidb

#endif  // SCIDB_STORAGE_BACKGROUND_MERGER_H_
