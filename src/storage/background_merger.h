#ifndef SCIDB_STORAGE_BACKGROUND_MERGER_H_
#define SCIDB_STORAGE_BACKGROUND_MERGER_H_

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/trace.h"
#include "storage/storage_manager.h"

namespace scidb {

// Background thread that periodically combines small buckets into larger
// ones (paper §2.8: "In a style similar to that employed by Vertica, a
// background thread can combine buckets into larger ones as an
// optimization"). DiskArray is not internally synchronized, so the merger
// owns an external mutex that foreground readers share via WithLock().
//
// Thread-safety discipline (checked by clang -Wthread-safety):
//   - mu_ guards the DiskArray and all merger state flags. running_ is a
//     plain bool under mu_ rather than an atomic: the stop signal must be
//     observed inside the cv wait under the same lock, and an atomic read
//     outside it would be exactly the unsynchronized-flag pattern TSan
//     flags.
//   - Start()/Stop() manage thread_ and must be called from the owning
//     thread (they are lifecycle operations, like ~BackgroundMerger).
//   - total_merges_ stays atomic so perf counters never contend with a
//     merge pass in flight.
class BackgroundMerger {
 public:
  BackgroundMerger(DiskArray* array, int64_t small_bytes,
                   std::chrono::milliseconds interval)
      : array_(array), small_bytes_(small_bytes), interval_(interval) {}

  ~BackgroundMerger() { Stop(); }
  BackgroundMerger(const BackgroundMerger&) = delete;
  BackgroundMerger& operator=(const BackgroundMerger&) = delete;

  void Start() LOCKS_EXCLUDED(mu_) {
    {
      MutexLock lk(mu_);
      if (running_) return;
      running_ = true;
    }
    thread_ = std::thread([this] { Run(); });
  }

  void Stop() LOCKS_EXCLUDED(mu_) {
    {
      MutexLock lk(mu_);
      if (!running_) return;
      running_ = false;
      cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
  }

  // Runs one merge pass synchronously (also usable without Start()).
  // Merging does disk I/O under mu_ by design: DiskArray is not
  // internally synchronized, so the array lock must span the whole
  // read-merge-write pass; foreground readers know WithLock() can stall
  // behind one.
  Result<int> RunOnce() LOCKS_EXCLUDED(mu_) {
    MutexLock lk(mu_);
    return TimedMergePass();  // NOLINT(blocking-under-lock): see above
  }

  int64_t total_merges() const { return total_merges_.load(); }

  // The most recent merge-pass failure, or OK. Background errors must
  // not vanish: the Run loop cannot return a Status to anyone, so it
  // parks failures here for the foreground to inspect.
  Status last_error() const LOCKS_EXCLUDED(mu_) {
    MutexLock lk(mu_);
    return last_error_;
  }

  // Foreground access to the array under the merger's lock.
  template <typename Fn>
  auto WithLock(Fn&& fn) LOCKS_EXCLUDED(mu_) {
    MutexLock lk(mu_);
    return fn(array_);
  }

 private:
  // One MergeSmallBuckets pass with observability: pass latency lands in
  // the scidb.storage.merge.latency_us histogram, merged-pair counts in
  // scidb.storage.merge.merges, and the post-pass bucket count in the
  // scidb.storage.merge.bucket_count gauge (the "delta-chain length" of
  // the bucket table — how fragmented the array currently is).
  Result<int> TimedMergePass() EXCLUSIVE_LOCKS_REQUIRED(mu_) {
    static auto* const latency_us =
        Metrics::Instance().histogram("scidb.storage.merge.latency_us");
    static auto* const passes =
        Metrics::Instance().counter("scidb.storage.merge.passes");
    static auto* const merges =
        Metrics::Instance().counter("scidb.storage.merge.merges");
    static auto* const bucket_count =
        Metrics::Instance().gauge("scidb.storage.merge.bucket_count");
    uint64_t t0 = SteadyNowNs();
    // Bucket I/O under mu_ is the contract (see RunOnce): the array
    // lock spans the read-merge-write pass because DiskArray has no
    // internal synchronization.
    Result<int> merged = array_->MergeSmallBuckets(small_bytes_);  // NOLINT(blocking-under-lock)
    latency_us->Record(static_cast<int64_t>((SteadyNowNs() - t0) / 1000));
    passes->Inc();
    if (merged.ok()) {
      merges->Inc(merged.value());
      bucket_count->Set(static_cast<int64_t>(array_->bucket_count()));
      if (FlightRecorder::enabled()) {
        FlightRecorder::Instance().Record(
            FlightEventKind::kMergePass, /*node=*/-1,
            static_cast<uint64_t>(merged.value()),
            static_cast<uint64_t>(array_->bucket_count()));
      }
    }
    return merged;
  }

  void Run() LOCKS_EXCLUDED(mu_) {
    mu_.lock();
    while (running_) {
      Result<int> merged = TimedMergePass();  // NOLINT(blocking-under-lock): array lock spans the pass, see RunOnce
      if (merged.ok()) {
        total_merges_ += merged.value();
      } else {
        last_error_ = merged.status();
      }
      cv_.wait_for(mu_, interval_,
                   [this]() NO_THREAD_SAFETY_ANALYSIS { return !running_; });
    }
    mu_.unlock();
  }

  DiskArray* const array_ PT_GUARDED_BY(mu_);
  const int64_t small_bytes_;
  const std::chrono::milliseconds interval_;
  std::atomic<int64_t> total_merges_{0};
  // Owner-thread only (Start/Stop/dtor), never touched by the loop.
  std::thread thread_;  // NOLINT(lock-coverage): owner-thread only
  mutable Mutex mu_;
  CondVar cv_;
  bool running_ GUARDED_BY(mu_) = false;
  Status last_error_ GUARDED_BY(mu_);
};

}  // namespace scidb

#endif  // SCIDB_STORAGE_BACKGROUND_MERGER_H_
