#include "storage/codec.h"

#include <cstring>

#include "common/byte_io.h"
#include "common/macros.h"

namespace scidb {

const char* CodecTypeName(CodecType t) {
  switch (t) {
    case CodecType::kNone:
      return "none";
    case CodecType::kRle:
      return "rle";
    case CodecType::kLz:
      return "lz";
  }
  return "unknown";
}

namespace {

// ---- byte RLE: runs of >= 4 identical bytes are encoded as
// <0xFF, count(varint), byte>; literal stretches as <len(varint), bytes>.
// 0xFF never begins a literal (literals of length >= 0xFF are split).

void RleEncode(const std::vector<uint8_t>& in, ByteWriter* w) {
  size_t i = 0;
  const size_t n = in.size();
  while (i < n) {
    // Measure the run at i.
    size_t run = 1;
    while (i + run < n && in[i + run] == in[i] && run < (1u << 30)) ++run;
    if (run >= 4) {
      w->PutU8(0xFF);
      w->PutVarint(run);
      w->PutU8(in[i]);
      i += run;
      continue;
    }
    // Literal stretch: until the next long run (or end).
    size_t start = i;
    while (i < n) {
      size_t r = 1;
      while (i + r < n && in[i + r] == in[i] && r < 4) ++r;
      if (r >= 4) break;
      i += r;
    }
    size_t len = i - start;
    while (len > 0) {
      size_t piece = std::min<size_t>(len, 0xFE);
      w->PutU8(static_cast<uint8_t>(piece));
      w->PutBytes(in.data() + start, piece);
      start += piece;
      len -= piece;
    }
  }
}

Status RleDecode(ByteReader* r, std::vector<uint8_t>* out) {
  while (r->remaining() > 0) {
    ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
    if (tag == 0xFF) {
      ASSIGN_OR_RETURN(uint64_t count, r->GetVarint());
      ASSIGN_OR_RETURN(uint8_t b, r->GetU8());
      if (count > (1ull << 32)) return Status::Corruption("rle run too long");
      out->insert(out->end(), static_cast<size_t>(count), b);
    } else {
      size_t len = tag;
      size_t off = out->size();
      out->resize(off + len);
      RETURN_NOT_OK(r->GetBytes(out->data() + off, len));
    }
  }
  return Status::OK();
}

// ---- LZ77-lite: greedy hash-chain matcher, 64KB window, 4-byte min
// match. Tokens: <0x00, len(varint), bytes> literal; <0x01, dist(varint),
// len(varint)> match.

constexpr size_t kMinMatch = 4;
constexpr size_t kWindow = 1 << 16;
constexpr size_t kHashSize = 1 << 15;

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;
}

void LzEncode(const std::vector<uint8_t>& in, ByteWriter* w) {
  const size_t n = in.size();
  std::vector<int64_t> head(kHashSize, -1);
  size_t i = 0;
  size_t lit_start = 0;

  auto flush_literals = [&](size_t end) {
    size_t start = lit_start;
    while (start < end) {
      size_t piece = std::min<size_t>(end - start, 1 << 20);
      w->PutU8(0x00);
      w->PutVarint(piece);
      w->PutBytes(in.data() + start, piece);
      start += piece;
    }
    lit_start = end;
  };

  while (i + kMinMatch <= n) {
    uint32_t h = Hash4(in.data() + i) & (kHashSize - 1);
    int64_t cand = head[h];
    head[h] = static_cast<int64_t>(i);
    if (cand >= 0 && i - static_cast<size_t>(cand) <= kWindow &&
        std::memcmp(in.data() + cand, in.data() + i, kMinMatch) == 0) {
      size_t len = kMinMatch;
      size_t max_len = n - i;
      while (len < max_len &&
             in[static_cast<size_t>(cand) + len] == in[i + len]) {
        ++len;
      }
      flush_literals(i);
      w->PutU8(0x01);
      w->PutVarint(i - static_cast<size_t>(cand));
      w->PutVarint(len);
      // Index a few positions inside the match so later data can refer in.
      size_t step = len > 64 ? 8 : 1;
      for (size_t k = 1; k < len && i + k + kMinMatch <= n; k += step) {
        head[Hash4(in.data() + i + k) & (kHashSize - 1)] =
            static_cast<int64_t>(i + k);
      }
      i += len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(n);
}

Status LzDecode(ByteReader* r, std::vector<uint8_t>* out) {
  while (r->remaining() > 0) {
    ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
    if (tag == 0x00) {
      ASSIGN_OR_RETURN(uint64_t len, r->GetVarint());
      size_t off = out->size();
      out->resize(off + static_cast<size_t>(len));
      RETURN_NOT_OK(r->GetBytes(out->data() + off, static_cast<size_t>(len)));
    } else if (tag == 0x01) {
      ASSIGN_OR_RETURN(uint64_t dist, r->GetVarint());
      ASSIGN_OR_RETURN(uint64_t len, r->GetVarint());
      if (dist == 0 || dist > out->size()) {
        return Status::Corruption("lz match distance out of range");
      }
      size_t src = out->size() - static_cast<size_t>(dist);
      // Byte-at-a-time: matches may overlap their own output.
      for (uint64_t k = 0; k < len; ++k) {
        out->push_back((*out)[src + static_cast<size_t>(k)]);
      }
    } else {
      return Status::Corruption("unknown lz token");
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> Compress(CodecType codec,
                              const std::vector<uint8_t>& input) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(codec));
  switch (codec) {
    case CodecType::kNone:
      w.PutBytes(input.data(), input.size());
      break;
    case CodecType::kRle:
      RleEncode(input, &w);
      break;
    case CodecType::kLz:
      LzEncode(input, &w);
      break;
  }
  return w.Release();
}

Result<std::vector<uint8_t>> Decompress(const std::vector<uint8_t>& input) {
  ByteReader r(input);
  ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  std::vector<uint8_t> out;
  switch (static_cast<CodecType>(tag)) {
    case CodecType::kNone: {
      out.resize(r.remaining());
      RETURN_NOT_OK(r.GetBytes(out.data(), out.size()));
      return out;
    }
    case CodecType::kRle:
      RETURN_NOT_OK(RleDecode(&r, &out));
      return out;
    case CodecType::kLz:
      RETURN_NOT_OK(LzDecode(&r, &out));
      return out;
  }
  return Status::Corruption("unknown codec tag " + std::to_string(tag));
}

}  // namespace scidb
