#ifndef SCIDB_STORAGE_CHUNK_CACHE_H_
#define SCIDB_STORAGE_CHUNK_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>

#include "array/chunk.h"

namespace scidb {

// LRU cache of decompressed buckets, keyed by bucket id. §2.8's storage
// manager reads buckets through here so repeated region reads skip both
// the disk seek and the decompress+deserialize work. Byte-budgeted:
// inserting past the budget evicts least-recently-used entries (a bucket
// larger than the whole budget is simply not cached).
class ChunkCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t bytes = 0;  // current residency
  };

  explicit ChunkCache(size_t byte_budget) : budget_(byte_budget) {}
  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  size_t budget() const { return budget_; }
  size_t size() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

  // Shared ownership so a cached chunk stays valid across evictions.
  std::shared_ptr<const Chunk> Get(uint64_t id) {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.chunk;
  }

  void Put(uint64_t id, std::shared_ptr<const Chunk> chunk) {
    size_t bytes = chunk->ByteSize();
    if (bytes > budget_) return;  // would evict everything for one entry
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      stats_.bytes -= static_cast<int64_t>(it->second.bytes);
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
    }
    while (static_cast<size_t>(stats_.bytes) + bytes > budget_ &&
           !lru_.empty()) {
      EvictLru();
    }
    lru_.push_front(id);
    entries_.emplace(id, Entry{std::move(chunk), bytes, lru_.begin()});
    stats_.bytes += static_cast<int64_t>(bytes);
  }

  // Drops one entry (bucket rewritten or deleted by a merge pass).
  void Invalidate(uint64_t id) {
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    stats_.bytes -= static_cast<int64_t>(it->second.bytes);
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }

  void Clear() {
    entries_.clear();
    lru_.clear();
    stats_.bytes = 0;
  }

 private:
  struct Entry {
    std::shared_ptr<const Chunk> chunk;
    size_t bytes;
    std::list<uint64_t>::iterator lru_pos;
  };

  void EvictLru() {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    stats_.bytes -= static_cast<int64_t>(it->second.bytes);
    entries_.erase(it);
    ++stats_.evictions;
  }

  size_t budget_;
  std::map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // front = MRU
  Stats stats_;
};

}  // namespace scidb

#endif  // SCIDB_STORAGE_CHUNK_CACHE_H_
