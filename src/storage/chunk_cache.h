#ifndef SCIDB_STORAGE_CHUNK_CACHE_H_
#define SCIDB_STORAGE_CHUNK_CACHE_H_

#include <cassert>
#include <cstdint>
#include <list>
#include <map>
#include <memory>

#include "array/chunk.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/mutex.h"

namespace scidb {

// LRU cache of decompressed buckets, keyed by bucket id. §2.8's storage
// manager reads buckets through here so repeated region reads skip both
// the disk seek and the decompress+deserialize work. Byte-budgeted:
// inserting past the budget evicts least-recently-used entries (a bucket
// larger than the whole budget is simply not cached).
//
// Internally synchronized: parallel chunk reads (DESIGN.md §8 morsel
// execution) hit Get/Put from every pool worker, so one mutex guards the
// entry map, the LRU list, and the local stats. stats() returns a copy —
// a reference would race with concurrent mutation. The process-wide
// metrics it exports are atomic and safe regardless.
class ChunkCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    size_t bytes = 0;  // current residency; never underflows (asserted)

    // Fraction of lookups served from the cache; 0 when no lookups yet.
    double hit_ratio() const {
      int64_t lookups = hits + misses;
      return lookups > 0
                 ? static_cast<double>(hits) / static_cast<double>(lookups)
                 : 0.0;
    }
  };

  explicit ChunkCache(size_t byte_budget)
      : budget_(byte_budget),
        m_hits_(Metrics::Instance().counter("scidb.storage.cache.hits")),
        m_misses_(Metrics::Instance().counter("scidb.storage.cache.misses")),
        m_evictions_(
            Metrics::Instance().counter("scidb.storage.cache.evictions")),
        m_bytes_(Metrics::Instance().gauge("scidb.storage.cache.bytes")) {}
  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;
  ~ChunkCache() { m_bytes_->Add(-static_cast<int64_t>(stats_.bytes)); }

  size_t budget() const { return budget_; }
  size_t size() const LOCKS_EXCLUDED(mu_) {
    MutexLock lk(mu_);
    return entries_.size();
  }
  Stats stats() const LOCKS_EXCLUDED(mu_) {
    MutexLock lk(mu_);
    return stats_;
  }

  // Shared ownership so a cached chunk stays valid across evictions.
  std::shared_ptr<const Chunk> Get(uint64_t id) LOCKS_EXCLUDED(mu_) {
    MutexLock lk(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      ++stats_.misses;
      m_misses_->Inc();
      return nullptr;
    }
    ++stats_.hits;
    m_hits_->Inc();
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.chunk;
  }

  void Put(uint64_t id, std::shared_ptr<const Chunk> chunk)
      LOCKS_EXCLUDED(mu_) {
    size_t bytes = chunk->ByteSize();
    if (bytes > budget_) return;  // would evict everything for one entry
    MutexLock lk(mu_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      RemoveBytes(it->second.bytes);
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
    }
    while (stats_.bytes + bytes > budget_ && !lru_.empty()) {
      EvictLru();
    }
    lru_.push_front(id);
    entries_.emplace(id, Entry{std::move(chunk), bytes, lru_.begin()});
    stats_.bytes += bytes;
    m_bytes_->Add(static_cast<int64_t>(bytes));
  }

  // Drops one entry (bucket rewritten or deleted by a merge pass).
  void Invalidate(uint64_t id) LOCKS_EXCLUDED(mu_) {
    MutexLock lk(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    RemoveBytes(it->second.bytes);
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }

  void Clear() LOCKS_EXCLUDED(mu_) {
    MutexLock lk(mu_);
    m_bytes_->Add(-static_cast<int64_t>(stats_.bytes));
    entries_.clear();
    lru_.clear();
    stats_.bytes = 0;
  }

 private:
  struct Entry {
    std::shared_ptr<const Chunk> chunk;
    size_t bytes;
    std::list<uint64_t>::iterator lru_pos;
  };

  // All residency decrements funnel through here: the assert (active in
  // the Debug/ASan presets) proves the unsigned accounting can never
  // underflow — an entry's recorded size is always <= total residency.
  void RemoveBytes(size_t bytes) EXCLUSIVE_LOCKS_REQUIRED(mu_) {
    assert(stats_.bytes >= bytes && "chunk cache byte accounting underflow");
    stats_.bytes -= bytes;
    m_bytes_->Add(-static_cast<int64_t>(bytes));
  }

  void EvictLru() EXCLUSIVE_LOCKS_REQUIRED(mu_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (FlightRecorder::enabled()) {
      FlightRecorder::Instance().Record(FlightEventKind::kCacheEvict,
                                        /*node=*/-1,
                                        static_cast<uint64_t>(it->second.bytes),
                                        victim);
    }
    RemoveBytes(it->second.bytes);
    entries_.erase(it);
    ++stats_.evictions;
    m_evictions_->Inc();
  }

  const size_t budget_;
  mutable Mutex mu_;
  std::map<uint64_t, Entry> entries_ GUARDED_BY(mu_);
  std::list<uint64_t> lru_ GUARDED_BY(mu_);  // front = MRU
  Stats stats_ GUARDED_BY(mu_);
  // Process-wide counters, owned by the registry (see common/metrics.h).
  Counter* const m_hits_;
  Counter* const m_misses_;
  Counter* const m_evictions_;
  Gauge* const m_bytes_;
};

}  // namespace scidb

#endif  // SCIDB_STORAGE_CHUNK_CACHE_H_
