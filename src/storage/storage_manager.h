#ifndef SCIDB_STORAGE_STORAGE_MANAGER_H_
#define SCIDB_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "array/schema.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/chunk_cache.h"
#include "storage/codec.h"
#include "storage/rtree.h"

namespace scidb {

// Storage statistics for EXP-CHUNK and the loader/merger benchmarks.
struct StorageStats {
  int64_t buckets_written = 0;
  int64_t buckets_read = 0;
  int64_t bytes_written = 0;
  int64_t bytes_read = 0;
  int64_t bytes_logical = 0;  // uncompressed payload bytes written
  int64_t merges = 0;
};

// One array persisted on disk as a sequence of compressed rectangular
// buckets (paper §2.8). Buckets are appended to `<name>.data`; the bucket
// table and schema live in `<name>.manifest`, rewritten on Flush(). An
// R-tree indexes bucket boxes for region reads and merge planning.
class DiskArray {
 public:
  ~DiskArray();
  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  const ArraySchema& schema() const { return schema_; }
  size_t bucket_count() const { return buckets_.size(); }
  // By value: parallel reads mutate the counters concurrently, so a
  // reference would race with the readers it is trying to observe.
  StorageStats stats() const LOCKS_EXCLUDED(stats_mu_) {
    MutexLock lk(stats_mu_);
    return stats_;
  }
  CodecType codec() const { return codec_; }
  void set_codec(CodecType c) { codec_ = c; }

  // Appends one bucket holding `chunk`'s cells.
  Status WriteBucket(const Chunk& chunk);

  // Persists every chunk of `array` as a bucket.
  Status WriteAll(const MemArray& array);

  // Reads the cells intersecting `query` into a grid-aligned MemArray.
  Result<MemArray> ReadRegion(const Box& query) const;

  // Reads the whole array. With a pool, bucket read+decompress+decode
  // runs chunk-parallel (one bucket per morsel); the scatter into the
  // output array stays single-threaded in bucket-id order, so the result
  // is identical at every pool width (DESIGN.md §8).
  Result<MemArray> ReadAll(ThreadPool* pool = nullptr) const;

  // Single cell lookup (empty optional when absent).
  Result<std::optional<std::vector<Value>>> ReadCell(
      const Coordinates& c) const;

  // One merge pass (the paper's Vertica-style background combine): merges
  // box-adjacent bucket pairs whose payloads are both below
  // `small_bytes`. Returns the number of merges performed. Reclaims the
  // dead bytes by rewriting the data file when fragmentation exceeds 50%.
  Result<int> MergeSmallBuckets(int64_t small_bytes);

  // Rewrites the manifest (schema + bucket table). Called by the storage
  // manager on close; callers needing crash-consistency call it directly.
  Status Flush();

  // Total size on disk (data file bytes in live buckets).
  int64_t LiveBytes() const;

  // Enables an LRU cache of decompressed buckets (0 disables). Repeated
  // region reads then skip disk + decompression for resident buckets.
  void EnableCache(size_t byte_budget);
  const ChunkCache* cache() const { return cache_.get(); }

 private:
  friend class StorageManager;
  DiskArray() = default;

  struct BucketMeta {
    uint64_t id = 0;
    Box box;
    uint64_t offset = 0;
    uint64_t size = 0;
    int64_t cells = 0;
  };

  Result<std::shared_ptr<const Chunk>> ReadBucket(const BucketMeta& meta)
      const;
  Status AppendPayload(const std::vector<uint8_t>& payload,
                       uint64_t* offset);
  Status LoadManifest();
  Status CompactDataFile();

  // Single-writer state (DESIGN.md Â§7): the write path is exercised by
  // one thread at a time, and bucket metadata is never mutated while
  // reads are in flight, so none of this is under stats_mu_.
  ArraySchema schema_;      // NOLINT(lock-coverage): single-writer
  std::string dir_;         // NOLINT(lock-coverage): single-writer
  std::string data_path_;   // NOLINT(lock-coverage): single-writer
  std::string manifest_path_;         // NOLINT(lock-coverage): single-writer
  CodecType codec_ = CodecType::kLz;  // NOLINT(lock-coverage): single-writer
  uint64_t next_id_ = 1;              // NOLINT(lock-coverage): single-writer
  uint64_t data_end_ = 0;  // append offset NOLINT(lock-coverage)
  std::map<uint64_t, BucketMeta> buckets_;  // NOLINT(lock-coverage)
  RTree<uint64_t> rtree_;                   // NOLINT(lock-coverage)
  // Guards only the stat counters; the cache synchronizes itself.
  mutable Mutex stats_mu_;
  mutable StorageStats stats_ GUARDED_BY(stats_mu_);
  mutable std::unique_ptr<ChunkCache> cache_;  // NOLINT(lock-coverage)
};

// Engine-wide storage: a directory of DiskArrays.
class StorageManager {
 public:
  explicit StorageManager(std::string dir);
  ~StorageManager();
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  Result<DiskArray*> CreateArray(const ArraySchema& schema,
                                 CodecType codec = CodecType::kLz);
  Result<DiskArray*> OpenArray(const std::string& name);
  // Creates if missing, opens (from manifest) if present on disk.
  Result<DiskArray*> OpenOrCreateArray(const ArraySchema& schema,
                                       CodecType codec = CodecType::kLz);
  Status DropArray(const std::string& name);
  std::vector<std::string> ArrayNames() const;
  Status FlushAll();

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::map<std::string, std::unique_ptr<DiskArray>> arrays_;
};

// Streaming bulk loader (paper §2.8): cells arrive ordered by a dominant
// dimension (often time); they buffer in memory and flush to disk as
// rectangular buckets when the buffer exceeds `memory_budget` bytes.
class StreamLoader {
 public:
  StreamLoader(DiskArray* target, size_t memory_budget);

  Status Append(const Coordinates& c, const std::vector<Value>& values);
  // Flushes the residue; the loader is unusable afterwards.
  Status Finish();

  int64_t flushes() const { return flushes_; }

 private:
  Status FlushBuffer();

  DiskArray* target_;
  size_t memory_budget_;
  MemArray buffer_;
  int64_t flushes_ = 0;
  bool finished_ = false;
};

}  // namespace scidb

#endif  // SCIDB_STORAGE_STORAGE_MANAGER_H_
