#ifndef SCIDB_STORAGE_CHUNK_SERDE_H_
#define SCIDB_STORAGE_CHUNK_SERDE_H_

#include <vector>

#include "array/chunk.h"
#include "array/schema.h"
#include "common/result.h"

namespace scidb {

// Serializes a chunk into the on-disk bucket payload (before block
// compression). The layout is columnar per attribute; int64 columns are
// delta+zigzag-varint coded, doubles/floats raw little-endian, strings
// length-prefixed; constant stderr columns collapse to one double.
std::vector<uint8_t> SerializeChunk(const Chunk& chunk);

// Rebuilds the chunk; `attrs` must be the attribute descriptors the chunk
// was created with (the storage manager keeps them in the array manifest).
Result<Chunk> DeserializeChunk(const std::vector<uint8_t>& bytes,
                               const std::vector<AttributeDesc>& attrs);

}  // namespace scidb

#endif  // SCIDB_STORAGE_CHUNK_SERDE_H_
