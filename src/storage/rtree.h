#ifndef SCIDB_STORAGE_RTREE_H_
#define SCIDB_STORAGE_RTREE_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "array/coordinates.h"
#include "common/logging.h"

namespace scidb {

// In-memory R-tree over boxes (paper §2.8: "An R-tree keeps track of the
// size of the various buckets"). Values are small ids (bucket ids).
// Quadratic split, linear choose-subtree by minimal margin enlargement.
// The tree tolerates overlapping boxes — merged buckets may briefly
// coexist with their sources during a merge pass.
template <typename T>
class RTree {
 public:
  static constexpr size_t kMaxEntries = 8;
  static constexpr size_t kMinEntries = 3;

  RTree() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Insert(const Box& box, T value) {
    if (root_ == nullptr) {
      root_ = std::make_unique<Node>(/*leaf=*/true);
    }
    Node* leaf = ChooseLeaf(root_.get(), box);
    leaf->entries.push_back(Entry{box, std::move(value), nullptr});
    ++size_;
    SplitUpward(leaf);
    Recompute(leaf);
  }

  // All values whose boxes intersect `query`.
  std::vector<T> Search(const Box& query) const {
    std::vector<T> out;
    if (root_) SearchNode(*root_, query, &out);
    return out;
  }

  // Removes one entry with exactly this box and value; false if absent.
  // (No re-insertion compaction: storage deletes are rare — merge passes —
  // and underfull nodes only cost a little extra fanout.)
  [[nodiscard]] bool Remove(const Box& box, const T& value) {
    if (root_ == nullptr) return false;
    bool removed = RemoveRec(root_.get(), box, value);
    if (removed) {
      --size_;
      // Collapse degenerate roots so later inserts see a usable tree.
      if (root_->entries.empty()) {
        root_.reset();
      } else if (!root_->leaf && root_->entries.size() == 1) {
        auto child = std::move(root_->entries[0].child);
        child->parent = nullptr;
        root_ = std::move(child);
      }
    }
    return removed;
  }

  // Visits every (box, value) pair.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (root_) ForEachNode(*root_, fn);
  }

 private:
  struct Node;
  struct Entry {
    Box box;
    T value;                      // leaf entries only
    std::unique_ptr<Node> child;  // inner entries only
  };
  struct Node {
    explicit Node(bool l) : leaf(l) {}
    bool leaf;
    Node* parent = nullptr;
    std::vector<Entry> entries;

    Box Mbr() const {
      SCIDB_DCHECK(!entries.empty());
      Box b = entries[0].box;
      for (size_t i = 1; i < entries.size(); ++i) {
        b.ExpandToInclude(entries[i].box);
      }
      return b;
    }
  };

  static int64_t Enlargement(const Box& mbr, const Box& add) {
    Box grown = mbr;
    grown.ExpandToInclude(add);
    return grown.Margin() - mbr.Margin();
  }

  Node* ChooseLeaf(Node* node, const Box& box) {
    while (!node->leaf) {
      Entry* best = nullptr;
      int64_t best_enl = 0;
      for (Entry& e : node->entries) {
        int64_t enl = Enlargement(e.box, box);
        if (best == nullptr || enl < best_enl ||
            (enl == best_enl && e.box.Margin() < best->box.Margin())) {
          best = &e;
          best_enl = enl;
        }
      }
      best->box.ExpandToInclude(box);  // maintain MBR on the way down
      node = best->child.get();
    }
    return node;
  }

  void SplitUpward(Node* node) {
    while (node != nullptr && node->entries.size() > kMaxEntries) {
      Node* parent = node->parent;
      auto sibling = Split(node);
      if (parent == nullptr) {
        // Grow a new root.
        auto new_root = std::make_unique<Node>(/*leaf=*/false);
        auto old_root = std::move(root_);
        old_root->parent = new_root.get();
        sibling->parent = new_root.get();
        new_root->entries.push_back(
            Entry{old_root->Mbr(), T{}, std::move(old_root)});
        new_root->entries.push_back(
            Entry{sibling->Mbr(), T{}, std::move(sibling)});
        root_ = std::move(new_root);
        return;
      }
      sibling->parent = parent;
      parent->entries.push_back(
          Entry{sibling->Mbr(), T{}, std::move(sibling)});
      // Refresh this node's MBR in the parent.
      for (Entry& e : parent->entries) {
        if (e.child.get() == node) e.box = node->Mbr();
      }
      node = parent;
    }
  }

  // Quadratic split: pick the pair wasting the most margin as seeds.
  std::unique_ptr<Node> Split(Node* node) {
    auto& es = node->entries;
    size_t seed_a = 0, seed_b = 1;
    int64_t worst = -1;
    for (size_t i = 0; i < es.size(); ++i) {
      for (size_t j = i + 1; j < es.size(); ++j) {
        Box u = es[i].box;
        u.ExpandToInclude(es[j].box);
        int64_t waste = u.Margin() - es[i].box.Margin() -
                        es[j].box.Margin();
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    auto sibling = std::make_unique<Node>(node->leaf);
    std::vector<Entry> pool;
    pool.swap(es);
    // Seed the two groups.
    es.push_back(std::move(pool[seed_a]));
    sibling->entries.push_back(std::move(pool[seed_b]));
    Box mbr_a = es[0].box;
    Box mbr_b = sibling->entries[0].box;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (i == seed_a || i == seed_b) continue;
      Entry& e = pool[i];
      // Force balance when one side must take the remainder.
      size_t remaining = 0;
      for (size_t j = i; j < pool.size(); ++j) {
        if (j != seed_a && j != seed_b) ++remaining;
      }
      if (es.size() + remaining <= kMinEntries) {
        mbr_a.ExpandToInclude(e.box);
        es.push_back(std::move(e));
        continue;
      }
      if (sibling->entries.size() + remaining <= kMinEntries) {
        mbr_b.ExpandToInclude(e.box);
        sibling->entries.push_back(std::move(e));
        continue;
      }
      if (Enlargement(mbr_a, e.box) <= Enlargement(mbr_b, e.box)) {
        mbr_a.ExpandToInclude(e.box);
        es.push_back(std::move(e));
      } else {
        mbr_b.ExpandToInclude(e.box);
        sibling->entries.push_back(std::move(e));
      }
    }
    if (!node->leaf) {
      for (Entry& e : es) e.child->parent = node;
      for (Entry& e : sibling->entries) e.child->parent = sibling.get();
    }
    return sibling;
  }

  void Recompute(Node* node) {
    // Tighten MBRs up the path (after inserts the path was only expanded,
    // after removals it may shrink).
    while (node != nullptr && node->parent != nullptr) {
      for (Entry& e : node->parent->entries) {
        if (e.child.get() == node) e.box = node->Mbr();
      }
      node = node->parent;
    }
  }

  void SearchNode(const Node& node, const Box& query,
                  std::vector<T>* out) const {
    for (const Entry& e : node.entries) {
      if (!e.box.Intersects(query)) continue;
      if (node.leaf) {
        out->push_back(e.value);
      } else {
        SearchNode(*e.child, query, out);
      }
    }
  }

  bool RemoveRec(Node* node, const Box& box, const T& value) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      Entry& e = node->entries[i];
      if (!e.box.Intersects(box)) continue;
      if (node->leaf) {
        if (e.box == box && e.value == value) {
          node->entries.erase(node->entries.begin() +
                              static_cast<int64_t>(i));
          if (!node->entries.empty()) Recompute(node);
          return true;
        }
      } else {
        if (RemoveRec(e.child.get(), box, value)) {
          if (e.child->entries.empty()) {
            node->entries.erase(node->entries.begin() +
                                static_cast<int64_t>(i));
          }
          if (!node->entries.empty()) Recompute(node);
          return true;
        }
      }
    }
    return false;
  }

  template <typename Fn>
  void ForEachNode(const Node& node, Fn&& fn) const {
    for (const Entry& e : node.entries) {
      if (node.leaf) {
        fn(e.box, e.value);
      } else {
        ForEachNode(*e.child, fn);
      }
    }
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace scidb

#endif  // SCIDB_STORAGE_RTREE_H_
