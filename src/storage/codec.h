#ifndef SCIDB_STORAGE_CODEC_H_
#define SCIDB_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace scidb {

// Block compression applied to serialized chunk payloads before they hit
// disk (paper §2.8: "compress the bucket and write it to disk"; "what
// compression algorithms to employ" is one of the storage research knobs,
// hence the codec is pluggable and benchmarked in EXP-CHUNK).
enum class CodecType : uint8_t {
  kNone = 0,
  kRle = 1,   // byte-level run-length; wins on constant/sparse payloads
  kLz = 2,    // LZ77-style window matcher; wins on repetitive structure
};

const char* CodecTypeName(CodecType t);

// Encodes `input`; output begins with a 1-byte codec tag so Decompress is
// self-describing.
std::vector<uint8_t> Compress(CodecType codec,
                              const std::vector<uint8_t>& input);

Result<std::vector<uint8_t>> Decompress(const std::vector<uint8_t>& input);

}  // namespace scidb

#endif  // SCIDB_STORAGE_CODEC_H_
