#ifndef SCIDB_SERVER_QUERY_CLIENT_H_
#define SCIDB_SERVER_QUERY_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/mutex.h"
#include "common/result.h"
#include "net/message.h"
#include "net/rpc.h"

namespace scidb {
namespace server {

// Client-side driver of the query protocol (DESIGN.md §15): Submit one
// AQL statement under a locally generated monotone query id, poll
// completion, pull result chunks one RPC at a time, reassemble the
// array, and release the server-side buffers. Every request is
// idempotent, so the RPC layer's retries (and a fault-injecting
// transport's duplicated frames) cannot duplicate or lose work:
// reassembly keys chunks by sequence number and rejects an origin
// collision outright.
//
// One QueryClient is NOT thread-safe — it models one client connection
// with one outstanding statement at a time. Concurrent load (the
// bench, the fairness tests) uses one QueryClient per thread, each
// bound to its own transport node.
class QueryClient {
 public:
  struct Options {
    // Per-RPC behavior (deadlines, retries, backoff).
    net::CallOptions call;
    // Injectable sleep for the Done-poll loop; null = real wait.
    net::SleepFn sleep;
    // Pause between kQueryDone polls while the query runs.
    uint64_t poll_interval_ns = 200'000;  // 200us
  };

  // The terminal result of one statement.
  struct Outcome {
    Status status;  // the query's own status (Busy/Cancelled are typed)
    uint8_t kind = 0;
    bool boolean = false;
    std::string message;
    std::shared_ptr<MemArray> array;  // kind == kArray
    int64_t snapshot_epoch = 0;
    uint64_t chunks_fetched = 0;
  };

  // `node` is this client's transport address; `server_node` the
  // query server's. Call Bind() once before the first Submit.
  QueryClient(net::Transport* transport, int node, int server_node);
  QueryClient(net::Transport* transport, int node, int server_node,
              Options opts);

  Status Bind();

  // Submits a statement; returns the query id to Await/Cancel on, or
  // the server's typed rejection (Status::Busy under admission
  // pressure — back off and resubmit).
  Result<uint64_t> Submit(const std::string& statement);

  // One completion poll, without fetching or releasing anything.
  // response.done == 0 while the query runs.
  Result<net::QueryDoneResponse> Poll(uint64_t qid);

  // Polls until done, fetches every result chunk, releases the query
  // server-side, and returns the outcome. The outcome's `status` is the
  // query's terminal status; a non-OK Result means the conversation
  // itself failed (transport down, protocol error).
  Result<Outcome> Await(uint64_t qid);

  // Aborts a running query (or releases a finished one). Idempotent.
  Status Cancel(uint64_t qid);

  // Submit + Await in one call.
  Result<Outcome> Execute(const std::string& statement);

 private:
  void SleepNs(uint64_t ns);

  net::Transport* const transport_;
  const int node_;
  const int server_node_;
  const Options opts_;
  net::RpcClient rpc_;
  uint64_t next_qid_ = 1;  // monotone: the server's watermark relies on it
};

}  // namespace server
}  // namespace scidb

#endif  // SCIDB_SERVER_QUERY_CLIENT_H_
