#ifndef SCIDB_SERVER_FAIR_SCHEDULER_H_
#define SCIDB_SERVER_FAIR_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "exec/slice_gate.h"

namespace scidb {
namespace server {

// Time-slices the server's one shared morsel pool across concurrent
// queries (DESIGN.md §15). Each admitted query gets a SliceGate; the
// engine acquires the gate, runs at most slice_morsels() morsels, and
// releases it (exec/parallel.cc). Grants are strict FIFO — a ticket
// queue, not a bare condition variable — so a cheap query behind a
// heavy one waits for at most one slice per queued competitor, which is
// the fairness bound the EXP-SRV latency experiment measures.
//
// Cancellation: a waiter whose cancel flag is set abandons its ticket
// and returns Cancelled. The flag is observed at wakeups, so after
// setting it call Poke() to force one.
class FairScheduler {
 public:
  struct Options {
    // Width of the shared morsel pool (total worker threads including
    // each query's own driver when it participates).
    int pool_width = 4;
    // Morsels granted per gate acquisition. Smaller = fairer + more
    // scheduling overhead; 1 degenerates to round-robin per morsel.
    int64_t slice_morsels = 4;
  };

  explicit FairScheduler(Options opts);

  ThreadPool* pool() { return &pool_; }
  int64_t slice_morsels() const { return opts_.slice_morsels; }

  // A gate for one query. `cancel` may be null (never cancelled); when
  // non-null it must outlive the gate. Gates are cheap; one per query.
  std::unique_ptr<SliceGate> MakeGate(const std::atomic<bool>* cancel);

  // Wakes every queued Acquire so it can observe its cancel flag.
  void Poke() LOCKS_EXCLUDED(mu_);

 private:
  class Gate;

  Status AcquireSlice(const std::atomic<bool>* cancel) LOCKS_EXCLUDED(mu_);
  void ReleaseSlice() LOCKS_EXCLUDED(mu_);

  const Options opts_;
  ThreadPool pool_;  // NOLINT(lock-coverage): internally synchronized
  Counter* const slices_;  // scidb.server.scheduler_slices

  Mutex mu_{"server.scheduler"};
  CondVar cv_;
  bool busy_ GUARDED_BY(mu_) = false;
  uint64_t next_ticket_ GUARDED_BY(mu_) = 1;
  std::deque<uint64_t> queue_ GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace scidb

#endif  // SCIDB_SERVER_FAIR_SCHEDULER_H_
