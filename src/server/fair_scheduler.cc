#include "server/fair_scheduler.h"

#include <algorithm>

namespace scidb {
namespace server {

// The SliceGate the engine sees: thin forwarding onto the scheduler,
// carrying the query's cancel flag so a queued acquire can abort.
class FairScheduler::Gate : public SliceGate {
 public:
  Gate(FairScheduler* sched, const std::atomic<bool>* cancel)
      : sched_(sched), cancel_(cancel) {}

  Status Acquire() override { return sched_->AcquireSlice(cancel_); }
  void Release() override { sched_->ReleaseSlice(); }
  int64_t slice_morsels() const override { return sched_->slice_morsels(); }

 private:
  FairScheduler* const sched_;
  const std::atomic<bool>* const cancel_;
};

FairScheduler::FairScheduler(Options opts)
    : opts_(opts),
      pool_(opts.pool_width),
      slices_(Metrics::Instance().counter("scidb.server.scheduler_slices")) {}

std::unique_ptr<SliceGate> FairScheduler::MakeGate(
    const std::atomic<bool>* cancel) {
  return std::make_unique<Gate>(this, cancel);
}

Status FairScheduler::AcquireSlice(const std::atomic<bool>* cancel) {
  MutexLock lk(mu_);
  const uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  for (;;) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      // Abandon the ticket wherever it sits; whoever is behind it moves
      // up, so a cancelled waiter never stalls the queue.
      queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
      cv_.notify_all();
      return Status::Cancelled("query cancelled");
    }
    if (!busy_ && queue_.front() == ticket) break;
    cv_.wait(mu_);
  }
  queue_.pop_front();
  busy_ = true;
  slices_->Inc();
  return Status::OK();
}

void FairScheduler::ReleaseSlice() {
  MutexLock lk(mu_);
  busy_ = false;
  cv_.notify_all();
}

void FairScheduler::Poke() {
  MutexLock lk(mu_);
  cv_.notify_all();
}

}  // namespace server
}  // namespace scidb
