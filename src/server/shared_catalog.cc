#include "server/shared_catalog.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace scidb {
namespace server {

Status SharedCatalog::Define(ArraySchema schema) {
  RETURN_NOT_OK(schema.Validate());
  MutexLock lk(mu_);
  const std::string name = schema.name();
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("array already defined in shared catalog: " +
                                 name);
  }
  entries_.emplace(name, Entry(std::move(schema)));
  return Status::OK();
}

bool SharedCatalog::Has(const std::string& name) const {
  MutexLock lk(mu_);
  return entries_.count(name) > 0;
}

Result<int64_t> SharedCatalog::CommitCells(
    const std::string& name, const std::vector<CellUpdate>& updates) {
  MutexLock lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no shared array named " + name);
  }
  const int64_t next_epoch = epoch_ + 1;
  ASSIGN_OR_RETURN(int64_t history,
                   it->second.history.Commit(updates, next_epoch));
  (void)history;  // == commit_epochs.size() + 1 by construction
  epoch_ = next_epoch;
  it->second.commit_epochs.push_back(next_epoch);
  return next_epoch;
}

int64_t SharedCatalog::epoch() const {
  MutexLock lk(mu_);
  return epoch_;
}

Result<MemArray> SharedCatalog::SnapshotAt(const std::string& name,
                                           int64_t epoch) const {
  MutexLock lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no shared array named " + name);
  }
  // Largest history index whose commit epoch is <= `epoch`. The vector
  // is strictly increasing, so upper_bound lands one past the cut.
  const std::vector<int64_t>& epochs = it->second.commit_epochs;
  auto cut = std::upper_bound(epochs.begin(), epochs.end(), epoch);
  const int64_t history = static_cast<int64_t>(cut - epochs.begin());
  return it->second.history.SnapshotAt(history);
}

Result<MemArray> SharedCatalog::SnapshotLatest(const std::string& name) const {
  MutexLock lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no shared array named " + name);
  }
  return it->second.history.SnapshotLatest();
}

}  // namespace server
}  // namespace scidb
