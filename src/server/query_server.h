#ifndef SCIDB_SERVER_QUERY_SERVER_H_
#define SCIDB_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "array/schema.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/trace.h"
#include "net/message.h"
#include "net/rpc.h"
#include "query/session.h"
#include "server/fair_scheduler.h"
#include "server/shared_catalog.h"

namespace scidb {
namespace server {

// The concurrent multi-session query server (DESIGN.md §15): multiplexes
// many clients over one transport node, each with a private Session for
// catalog/knob isolation, all sharing one morsel pool (fair-scheduled)
// and one SharedCatalog of updatable arrays (snapshot reads).
//
// Protocol (net/message.h): the client submits kQuery under a
// client-generated query id, polls kQueryDone, pulls buffered result
// chunks one at a time with kResultChunk, and finally sends kCancel —
// which doubles as abort (running query) and release (finished query).
// Every request is idempotent, so the RPC layer's retries and the
// transport's duplicated/delayed frames are harmless:
//   - a duplicate kQuery for a live or already-released id is a no-op;
//   - kQueryDone/kResultChunk are pure reads of buffered state;
//   - a duplicate kCancel of a released id is a no-op.
// Released ids are remembered per client as a high-watermark, so even a
// maximally delayed duplicate kQuery cannot resurrect a finished query
// (client ids must be monotonically increasing, which QueryClient
// guarantees).
//
// Admission control: at most max_concurrent_queries queries run at
// once, and at most max_queued_result_bytes of finished-but-unfetched
// results are buffered. Beyond either bound a kQuery is REJECTED with
// Status::Busy — never queued — so clients see typed backpressure they
// can retry against instead of an unbounded server-side queue.
//
// Execution: each admitted query runs on its own driver thread (this
// file is on the no-raw-thread allowlist; the drivers participate in
// the shared pool as morsel workers, they do not compute outside it
// beyond parse/serialize). The session's effective parallelism is
// min(set parallelism, per_query_parallelism, pool width) — the server
// cap wins, see README "Parallelism precedence".
//
// Snapshot reads: at execution start the query pins the SharedCatalog's
// global epoch; array references not found in the session's private
// catalog resolve to the shared array's state as of that epoch. Writers
// never block these reads (no-overwrite storage), and the pinned epoch
// is reported back in QueryDoneResponse::snapshot_epoch.
class QueryServer {
 public:
  struct Options {
    // Admission bounds. Queries beyond max_concurrent_queries, or
    // arriving while finished-result buffers exceed
    // max_queued_result_bytes, are rejected with Status::Busy.
    int max_concurrent_queries = 4;
    size_t max_queued_result_bytes = 64u << 20;
    // Server-side cap on any one query's pool workers.
    int per_query_parallelism = 2;
    // Shared pool + slicing (FairScheduler::Options).
    int pool_width = 4;
    int64_t slice_morsels = 4;
    // Clock for the query latency histogram; null = SteadyNowNs.
    TraceClock clock;
  };

  QueryServer(net::Transport* transport, int node, Options opts);
  ~QueryServer();

  // Registers the four query handlers and binds the node on the
  // transport. Call once before any client connects.
  Status Start();

  // Cancels every in-flight query, joins all drivers, and rejects new
  // work with Unavailable. Idempotent; also run by the destructor.
  void Shutdown();

  // The shared catalog of updatable arrays; define arrays here to make
  // them visible (and insertable) to every client. Thread-safe.
  SharedCatalog* catalog() { return &catalog_; }

  FairScheduler* scheduler() { return &scheduler_; }

 private:
  // One submitted query. Lifetime: created at admission, erased at
  // release (kCancel) or shutdown; shared_ptr so handlers can read the
  // buffered result without holding the registry lock.
  struct QueryState {
    QueryState(int client, uint64_t qid) : client(client), qid(qid) {}

    const int client;
    const uint64_t qid;
    std::atomic<bool> cancel{false};

    Mutex mu{"server.query"};
    CondVar done_cv;
    // Driver-thread handoff: the submit handler spawns the thread, then
    // stores the handle and flips driver_set under mu. The reaper waits
    // for done && driver_set, moves the handle out under mu, and joins
    // with no lock held (join is a blocking root).
    std::thread driver GUARDED_BY(mu);
    bool driver_set GUARDED_BY(mu) = false;
    bool done GUARDED_BY(mu) = false;
    // Result payload, written once by the driver before done flips.
    Status status GUARDED_BY(mu);
    uint8_t kind GUARDED_BY(mu) = 0;
    uint8_t boolean GUARDED_BY(mu) = 0;
    std::string message GUARDED_BY(mu);
    std::vector<std::vector<uint8_t>> chunks GUARDED_BY(mu);
    bool has_schema GUARDED_BY(mu) = false;
    ArraySchema schema GUARDED_BY(mu);
    int64_t snapshot_epoch GUARDED_BY(mu) = 0;
    size_t result_bytes GUARDED_BY(mu) = 0;
  };

  // One client's session. Statements from the same client run one at a
  // time (busy flag + condvar, NOT a mutex held across Execute — the
  // engine blocks on the pool inside); different clients interleave.
  struct ClientState {
    explicit ClientState(std::unique_ptr<Session> s)
        : session(std::move(s)) {}

    // Owned by whichever driver holds the busy flag below.
    std::unique_ptr<Session> session;  // NOLINT(lock-coverage): busy-gated
    Mutex mu{"server.client"};
    CondVar cv;
    bool busy GUARDED_BY(mu) = false;
  };

  using QueryKey = std::pair<int, uint64_t>;  // (client node, client qid)

  Result<std::vector<uint8_t>> HandleQuery(int src,
                                           const std::vector<uint8_t>& payload)
      LOCKS_EXCLUDED(mu_);
  Result<std::vector<uint8_t>> HandleDone(int src,
                                          const std::vector<uint8_t>& payload)
      LOCKS_EXCLUDED(mu_);
  Result<std::vector<uint8_t>> HandleChunk(int src,
                                           const std::vector<uint8_t>& payload)
      LOCKS_EXCLUDED(mu_);
  Result<std::vector<uint8_t>> HandleCancel(int src,
                                            const std::vector<uint8_t>& payload)
      LOCKS_EXCLUDED(mu_);

  // Driver-thread body: runs `statement` on the client's session with
  // the snapshot resolver + cancel/gate controls installed, then
  // publishes the buffered result and flips done.
  void RunQuery(std::shared_ptr<ClientState> cs, std::shared_ptr<QueryState> qs,
                std::string statement) LOCKS_EXCLUDED(mu_);

  // Executes one statement on the session (serialized per client).
  // `epoch` carries the pinned read epoch in; a shared-catalog commit
  // overwrites it with the commit epoch.
  Result<QueryResult> ExecuteOnSession(ClientState* cs, QueryState* qs,
                                       int64_t* epoch,
                                       const std::string& statement);

  // Removes the query from the registry, updates admission accounting
  // and the released-id watermark. Returns the state if this caller won
  // the removal race (and must join the driver), null otherwise.
  std::shared_ptr<QueryState> Reap(const QueryKey& key) LOCKS_EXCLUDED(mu_);

  net::Transport* const transport_;
  const int node_;
  const Options opts_;
  const TraceClock clock_;

  SharedCatalog catalog_;    // NOLINT(lock-coverage): internally synchronized
  FairScheduler scheduler_;  // NOLINT(lock-coverage): internally synchronized
  net::RpcServer rpc_;       // NOLINT(lock-coverage): internally synchronized

  Counter* const queries_;            // scidb.server.queries
  Counter* const admission_rejects_;  // scidb.server.admission_rejects
  Counter* const cancels_;            // scidb.server.cancels
  Gauge* const active_queries_;       // scidb.server.active_queries
  Gauge* const queued_bytes_gauge_;   // scidb.server.queued_result_bytes
  Histogram* const latency_us_;       // scidb.server.query_latency_us

  Mutex mu_{"server.registry"};
  bool shutdown_ GUARDED_BY(mu_) = false;
  int active_ GUARDED_BY(mu_) = 0;
  size_t queued_bytes_ GUARDED_BY(mu_) = 0;
  std::map<QueryKey, std::shared_ptr<QueryState>> queries_live_
      GUARDED_BY(mu_);
  std::map<int, std::shared_ptr<ClientState>> sessions_ GUARDED_BY(mu_);
  // Highest released qid per client: the idempotency watermark that
  // keeps delayed duplicate kQuery frames from resubmitting.
  std::map<int, uint64_t> released_ GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace scidb

#endif  // SCIDB_SERVER_QUERY_SERVER_H_
