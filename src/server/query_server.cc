#include "server/query_server.h"

#include <utility>

#include "common/macros.h"
#include "query/parse_tree.h"
#include "query/parser.h"
#include "storage/chunk_serde.h"

namespace scidb {
namespace server {

namespace {

Metrics& M() { return Metrics::Instance(); }

}  // namespace

QueryServer::QueryServer(net::Transport* transport, int node, Options opts)
    : transport_(transport),
      node_(node),
      opts_(opts),
      clock_(opts.clock ? opts.clock : TraceClock([] { return SteadyNowNs(); })),
      scheduler_(FairScheduler::Options{opts.pool_width, opts.slice_morsels}),
      rpc_(transport, node),
      queries_(M().counter("scidb.server.queries")),
      admission_rejects_(M().counter("scidb.server.admission_rejects")),
      cancels_(M().counter("scidb.server.cancels")),
      active_queries_(M().gauge("scidb.server.active_queries")),
      queued_bytes_gauge_(M().gauge("scidb.server.queued_result_bytes")),
      latency_us_(M().histogram("scidb.server.query_latency_us")) {}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  rpc_.Handle(net::MessageType::kQuery,
              [this](int src, const std::vector<uint8_t>& p) {
                return HandleQuery(src, p);
              });
  rpc_.Handle(net::MessageType::kQueryDone,
              [this](int src, const std::vector<uint8_t>& p) {
                return HandleDone(src, p);
              });
  rpc_.Handle(net::MessageType::kResultChunk,
              [this](int src, const std::vector<uint8_t>& p) {
                return HandleChunk(src, p);
              });
  rpc_.Handle(net::MessageType::kCancel,
              [this](int src, const std::vector<uint8_t>& p) {
                return HandleCancel(src, p);
              });
  return net::BindNode(transport_, node_, &rpc_, nullptr);
}

Result<std::vector<uint8_t>> QueryServer::HandleQuery(
    int src, const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::QueryRequest req, net::QueryRequest::Decode(payload));
  std::shared_ptr<ClientState> cs;
  std::shared_ptr<QueryState> qs;
  {
    MutexLock lk(mu_);
    if (shutdown_) {
      return Status::Unavailable("query server shutting down");
    }
    const QueryKey key(src, req.client_qid);
    // Idempotency: a duplicated/retried submit of a live id, or of an id
    // at or below the client's released watermark, acks without
    // resubmitting — the first copy's execution is the execution.
    auto wm = released_.find(src);
    if ((wm != released_.end() && req.client_qid <= wm->second) ||
        queries_live_.count(key) > 0) {
      return std::vector<uint8_t>{};
    }
    // Admission control: reject (typed Busy), never queue. The two
    // bounds cap server memory from both directions — running queries
    // and finished-but-unfetched result buffers.
    if (active_ >= opts_.max_concurrent_queries) {
      admission_rejects_->Inc();
      return Status::Busy("admission: " + std::to_string(active_) +
                          " queries already running");
    }
    if (queued_bytes_ >= opts_.max_queued_result_bytes) {
      admission_rejects_->Inc();
      return Status::Busy(
          "admission: " + std::to_string(queued_bytes_) +
          " result bytes queued; fetch or release finished queries");
    }
    auto sit = sessions_.find(src);
    if (sit == sessions_.end()) {
      // First statement from this client: a private Session (its own
      // catalog and knobs — the isolation boundary) wired onto the
      // shared pool under the server's per-query cap.
      auto session = std::make_unique<Session>();
      session->UseSharedPool(scheduler_.pool(), opts_.per_query_parallelism);
      sit = sessions_
                .emplace(src,
                         std::make_shared<ClientState>(std::move(session)))
                .first;
    }
    cs = sit->second;
    qs = std::make_shared<QueryState>(src, req.client_qid);
    queries_live_.emplace(key, qs);
    ++active_;
    active_queries_->Set(active_);
  }
  // Spawn the driver outside the registry lock, then hand the handle
  // over under qs->mu (see QueryState::driver).
  std::thread driver(
      [this, cs, qs, stmt = std::move(req.statement)]() mutable {
        RunQuery(std::move(cs), std::move(qs), std::move(stmt));
      });
  {
    MutexLock lk(qs->mu);
    qs->driver = std::move(driver);
    qs->driver_set = true;
    qs->done_cv.notify_all();
  }
  return std::vector<uint8_t>{};
}

Result<QueryResult> QueryServer::ExecuteOnSession(
    ClientState* cs, QueryState* qs, int64_t* epoch,
    const std::string& statement) {
  ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  // Inserts into shared-catalog arrays commit globally (advancing the
  // epoch); everything else — including inserts into the session's own
  // arrays — runs on the private session.
  if (stmt.kind == Statement::Kind::kInsert &&
      catalog_.Has(stmt.insert_array)) {
    ASSIGN_OR_RETURN(
        int64_t commit_epoch,
        catalog_.CommitCells(stmt.insert_array,
                             {CellUpdate::Set(stmt.insert_coords,
                                              stmt.insert_values)}));
    *epoch = commit_epoch;
    QueryResult r;
    r.kind = QueryResult::Kind::kNone;
    r.message = "inserted into shared array " + stmt.insert_array +
                " (epoch " + std::to_string(commit_epoch) + ")";
    return r;
  }
  Session* session = cs->session.get();
  // Snapshot reads: shared arrays resolve to their state as of the
  // pinned epoch for the whole statement. Concurrent commits land in
  // later epochs and are invisible — the result is bit-identical to a
  // serial run against epoch `pinned`.
  const int64_t pinned = *epoch;
  session->set_array_resolver(
      [this, pinned](const std::string& name) -> Result<MemArray> {
        return catalog_.SnapshotAt(name, pinned);
      });
  std::unique_ptr<SliceGate> gate = scheduler_.MakeGate(&qs->cancel);
  Session::QueryControls controls;
  controls.cancel = &qs->cancel;
  controls.gate = gate.get();
  session->set_query_controls(controls);
  Result<QueryResult> result = session->Execute(stmt);
  session->set_query_controls(Session::QueryControls{});
  session->set_array_resolver(nullptr);
  return result;
}

void QueryServer::RunQuery(std::shared_ptr<ClientState> cs,
                           std::shared_ptr<QueryState> qs,
                           std::string statement) {
  queries_->Inc();
  const uint64_t t0 = clock_();
  // Statements from one client run one at a time; the busy flag (not a
  // mutex held across Execute — the engine blocks on the pool inside)
  // serializes them while letting other clients' drivers interleave.
  {
    MutexLock lk(cs->mu);
    while (cs->busy) cs->cv.wait(cs->mu);
    cs->busy = true;
  }
  int64_t epoch = catalog_.epoch();
  Result<QueryResult> result =
      ExecuteOnSession(cs.get(), qs.get(), &epoch, statement);
  {
    MutexLock lk(cs->mu);
    cs->busy = false;
    cs->cv.notify_all();
  }

  // Serialize the result into wire chunks outside every lock.
  Status st = result.ok() ? Status::OK() : result.status();
  uint8_t kind = 0;
  uint8_t boolean = 0;
  std::string message;
  std::vector<std::vector<uint8_t>> chunks;
  bool has_schema = false;
  ArraySchema schema;
  size_t bytes = 0;
  if (result.ok()) {
    const QueryResult& r = result.value();
    kind = static_cast<uint8_t>(r.kind);
    boolean = r.boolean ? 1 : 0;
    message = r.message;
    if (r.kind == QueryResult::Kind::kArray && r.array != nullptr) {
      has_schema = true;
      schema = r.array->schema();
      for (const auto& [origin, chunk] : r.array->chunks()) {
        (void)origin;  // chunk bytes carry the box; origin is rederived
        chunks.push_back(SerializeChunk(*chunk));
        bytes += chunks.back().size();
      }
    } else if (r.kind == QueryResult::Kind::kCells ||
               r.kind == QueryResult::Kind::kValues) {
      // Provenance cells / enhanced-read values are session-local
      // diagnostics; only their summary message crosses the wire.
      if (message.empty()) {
        message = std::to_string(r.kind == QueryResult::Kind::kCells
                                     ? r.cells.size()
                                     : r.values.size()) +
                  " results (not transported; see README)";
      }
    }
  }
  // Registry accounting BEFORE done flips: a release (Reap) can only
  // run after observing done, so the bytes it subtracts were always
  // added first — the ordering that keeps queued_bytes_ from
  // underflowing.
  {
    MutexLock lk(mu_);
    --active_;
    queued_bytes_ += bytes;
    active_queries_->Set(active_);
    queued_bytes_gauge_->Set(static_cast<int64_t>(queued_bytes_));
  }
  {
    MutexLock lk(qs->mu);
    qs->status = std::move(st);
    qs->kind = kind;
    qs->boolean = boolean;
    qs->message = std::move(message);
    qs->chunks = std::move(chunks);
    qs->has_schema = has_schema;
    qs->schema = std::move(schema);
    qs->snapshot_epoch = epoch;
    qs->result_bytes = bytes;
    qs->done = true;
    qs->done_cv.notify_all();
  }
  latency_us_->Record(static_cast<int64_t>((clock_() - t0) / 1000));
}

Result<std::vector<uint8_t>> QueryServer::HandleDone(
    int src, const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::QueryDoneRequest req,
                   net::QueryDoneRequest::Decode(payload));
  std::shared_ptr<QueryState> qs;
  {
    MutexLock lk(mu_);
    auto it = queries_live_.find(QueryKey(src, req.client_qid));
    if (it == queries_live_.end()) {
      auto wm = released_.find(src);
      if (wm != released_.end() && req.client_qid <= wm->second) {
        // Released id (cancelled, or a delayed duplicate poll after
        // release — the RPC layer discards stale duplicates anyway).
        net::QueryDoneResponse resp;
        resp.done = 1;
        resp.status_code =
            static_cast<uint8_t>(StatusCode::kCancelled);
        resp.status_message = "query cancelled or released";
        return resp.EncodePayload();
      }
      return Status::NotFound("unknown query id " +
                              std::to_string(req.client_qid));
    }
    qs = it->second;
  }
  net::QueryDoneResponse resp;
  {
    MutexLock lk(qs->mu);
    if (!qs->done) {
      resp.done = 0;
      return resp.EncodePayload();
    }
    resp.done = 1;
    resp.status_code = static_cast<uint8_t>(qs->status.code());
    resp.status_message = qs->status.message();
    resp.kind = qs->kind;
    resp.boolean = qs->boolean;
    resp.message = qs->message;
    resp.n_chunks = qs->chunks.size();
    resp.snapshot_epoch = qs->snapshot_epoch;
    resp.has_schema = qs->has_schema ? 1 : 0;
    if (qs->has_schema) resp.schema = qs->schema;
  }
  return resp.EncodePayload();
}

Result<std::vector<uint8_t>> QueryServer::HandleChunk(
    int src, const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::ResultChunkRequest req,
                   net::ResultChunkRequest::Decode(payload));
  std::shared_ptr<QueryState> qs;
  {
    MutexLock lk(mu_);
    auto it = queries_live_.find(QueryKey(src, req.client_qid));
    if (it == queries_live_.end()) {
      return Status::NotFound("unknown query id " +
                              std::to_string(req.client_qid));
    }
    qs = it->second;
  }
  net::ResultChunkResponse resp;
  MutexLock lk(qs->mu);
  if (!qs->done) {
    resp.ready = 0;
    return resp.EncodePayload();
  }
  if (req.seq >= qs->chunks.size()) {
    return Status::OutOfRange("chunk seq " + std::to_string(req.seq) +
                              " past result of " +
                              std::to_string(qs->chunks.size()) + " chunks");
  }
  resp.ready = 1;
  // A copy per fetch: re-fetching seq k (RPC retry) returns the same
  // bytes — the reassembly idempotency the fault-injection suite checks.
  resp.chunk_bytes = qs->chunks[static_cast<size_t>(req.seq)];
  return resp.EncodePayload();
}

std::shared_ptr<QueryServer::QueryState> QueryServer::Reap(
    const QueryKey& key) {
  MutexLock lk(mu_);
  auto it = queries_live_.find(key);
  if (it == queries_live_.end()) return nullptr;
  std::shared_ptr<QueryState> qs = it->second;
  queries_live_.erase(it);
  {
    MutexLock qlk(qs->mu);
    queued_bytes_ -= qs->result_bytes;
  }
  queued_bytes_gauge_->Set(static_cast<int64_t>(queued_bytes_));
  uint64_t& wm = released_[key.first];
  if (key.second > wm) wm = key.second;
  return qs;
}

Result<std::vector<uint8_t>> QueryServer::HandleCancel(
    int src, const std::vector<uint8_t>& payload) {
  ASSIGN_OR_RETURN(net::CancelRequest req, net::CancelRequest::Decode(payload));
  const QueryKey key(src, req.client_qid);
  std::shared_ptr<QueryState> qs;
  {
    MutexLock lk(mu_);
    auto it = queries_live_.find(key);
    if (it == queries_live_.end()) {
      return std::vector<uint8_t>{};  // already released: no-op
    }
    qs = it->second;
  }
  // Abort if still running: the engine polls the flag before every
  // morsel, and Poke() wakes a gate-queued acquire so it observes it.
  {
    MutexLock lk(qs->mu);
    if (!qs->done) cancels_->Inc();
  }
  qs->cancel.store(true, std::memory_order_release);
  scheduler_.Poke();
  // Wait for the driver to publish, take its handle, and reap. Another
  // concurrent Cancel may win the Reap race; only the winner joins.
  std::thread driver;
  {
    MutexLock lk(qs->mu);
    while (!qs->done || !qs->driver_set) qs->done_cv.wait(qs->mu);
    driver = std::move(qs->driver);
  }
  (void)Reap(key);  // null if a concurrent Cancel already reaped
  if (driver.joinable()) driver.join();
  return std::vector<uint8_t>{};
}

void QueryServer::Shutdown() {
  std::vector<std::pair<QueryKey, std::shared_ptr<QueryState>>> live;
  {
    MutexLock lk(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    live.assign(queries_live_.begin(), queries_live_.end());
  }
  for (auto& [key, qs] : live) {
    (void)key;
    qs->cancel.store(true, std::memory_order_release);
  }
  scheduler_.Poke();
  for (auto& [key, qs] : live) {
    std::thread driver;
    {
      MutexLock lk(qs->mu);
      while (!qs->done || !qs->driver_set) qs->done_cv.wait(qs->mu);
      driver = std::move(qs->driver);
    }
    (void)Reap(key);
    if (driver.joinable()) driver.join();
  }
}

}  // namespace server
}  // namespace scidb
