#ifndef SCIDB_SERVER_SHARED_CATALOG_H_
#define SCIDB_SERVER_SHARED_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "array/mem_array.h"
#include "common/mutex.h"
#include "common/result.h"
#include "version/history.h"

namespace scidb {
namespace server {

// The server-wide catalog of updatable arrays shared across client
// sessions (DESIGN.md §15). Every array is a no-overwrite HistoryArray
// (paper §2.5), and every commit anywhere in the catalog advances one
// global epoch counter; the pair (array history index, commit epoch) is
// recorded per commit. A snapshot read at epoch E therefore sees, for
// each array, exactly the commits with epoch <= E — a consistent
// cross-array cut that never blocks writers, because old state is never
// overwritten (snapshot isolation for free, the reason the paper wants
// no-overwrite storage).
//
// All methods are thread-safe. Everything under the single mutex is
// compute-only (map lookups, delta-layer overlays) — no I/O, no RPC, no
// pool dispatch — so the lock is never held across a blocking call.
class SharedCatalog {
 public:
  // Registers a new updatable array. The schema's declared dimensions
  // are the logical (history-less) shape; the history dimension is
  // implicit in HistoryArray.
  Status Define(ArraySchema schema) LOCKS_EXCLUDED(mu_);

  bool Has(const std::string& name) const LOCKS_EXCLUDED(mu_);

  // Applies one transaction to `name` and advances the global epoch;
  // returns the new epoch. The epoch doubles as the commit timestamp of
  // the underlying HistoryArray (strictly increasing, so "as of time t"
  // addressing stays available).
  Result<int64_t> CommitCells(const std::string& name,
                              const std::vector<CellUpdate>& updates)
      LOCKS_EXCLUDED(mu_);

  // The current global epoch (0 before the first commit). A query pins
  // this once at execution start; every snapshot read inside the query
  // then uses the pinned value.
  int64_t epoch() const LOCKS_EXCLUDED(mu_);

  // Materializes the state of `name` as of global epoch `epoch`:
  // the overlay of exactly those commits with commit epoch <= epoch.
  Result<MemArray> SnapshotAt(const std::string& name, int64_t epoch) const
      LOCKS_EXCLUDED(mu_);

  // Convenience for tests/benchmarks: latest state.
  Result<MemArray> SnapshotLatest(const std::string& name) const
      LOCKS_EXCLUDED(mu_);

 private:
  struct Entry {
    explicit Entry(ArraySchema schema) : history(std::move(schema)) {}
    HistoryArray history;
    // commit_epochs[h-1] = global epoch of history index h; strictly
    // increasing, so the snapshot cut is a binary search.
    std::vector<int64_t> commit_epochs;
  };

  mutable Mutex mu_{"server.catalog"};
  int64_t epoch_ GUARDED_BY(mu_) = 0;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace scidb

#endif  // SCIDB_SERVER_SHARED_CATALOG_H_
