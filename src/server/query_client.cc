#include "server/query_client.h"

#include <chrono>
#include <utility>

#include "common/macros.h"
#include "net/frame.h"
#include "storage/chunk_serde.h"

namespace scidb {
namespace server {

QueryClient::QueryClient(net::Transport* transport, int node, int server_node)
    : QueryClient(transport, node, server_node, Options{}) {}

QueryClient::QueryClient(net::Transport* transport, int node, int server_node,
                         Options opts)
    : transport_(transport),
      node_(node),
      server_node_(server_node),
      opts_(std::move(opts)),
      rpc_(transport, node) {}

Status QueryClient::Bind() {
  return net::BindNode(transport_, node_, nullptr, &rpc_);
}

void QueryClient::SleepNs(uint64_t ns) {
  if (opts_.sleep) {
    opts_.sleep(ns);
    return;
  }
  // Real wait without a raw sleep call: a private condvar nobody
  // signals, timed. Mirrors RpcClient::SleepNs.
  Mutex mu;
  CondVar cv;
  MutexLock lk(mu);
  cv.wait_for(mu, std::chrono::nanoseconds(ns));
}

Result<uint64_t> QueryClient::Submit(const std::string& statement) {
  const uint64_t qid = next_qid_++;
  net::QueryRequest req;
  req.client_qid = qid;
  req.statement = statement;
  ASSIGN_OR_RETURN(std::vector<uint8_t> ack,
                   rpc_.Call(server_node_, net::MessageType::kQuery,
                             req.EncodePayload(), opts_.call));
  (void)ack;  // empty
  return qid;
}

Status QueryClient::Cancel(uint64_t qid) {
  net::CancelRequest req;
  req.client_qid = qid;
  Result<std::vector<uint8_t>> ack = rpc_.Call(
      server_node_, net::MessageType::kCancel, req.EncodePayload(),
      opts_.call);
  return ack.ok() ? Status::OK() : ack.status();
}

Result<net::QueryDoneResponse> QueryClient::Poll(uint64_t qid) {
  net::QueryDoneRequest req;
  req.client_qid = qid;
  ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                   rpc_.Call(server_node_, net::MessageType::kQueryDone,
                             req.EncodePayload(), opts_.call));
  return net::QueryDoneResponse::Decode(raw);
}

Result<QueryClient::Outcome> QueryClient::Await(uint64_t qid) {
  // Poll completion. The server answers done=0 instantly while the
  // query runs; the pause between polls is the client's only busy-wait.
  net::QueryDoneResponse done;
  for (;;) {
    ASSIGN_OR_RETURN(done, Poll(qid));
    if (done.done != 0) break;
    SleepNs(opts_.poll_interval_ns);
  }

  Outcome out;
  out.status = Status(static_cast<StatusCode>(done.status_code),
                      done.status_message);
  out.kind = done.kind;
  out.boolean = done.boolean != 0;
  out.message = done.message;
  out.snapshot_epoch = done.snapshot_epoch;

  if (out.status.ok() && done.has_schema != 0) {
    // Pull the buffered chunks one at a time and reassemble. Sequence
    // numbers make fetches idempotent; origins must be unique — a
    // duplicate origin means the server buffered a chunk twice, which
    // the fault-injection suite treats as corruption.
    auto arr = std::make_shared<MemArray>(done.schema);
    for (uint64_t seq = 0; seq < done.n_chunks; ++seq) {
      net::ResultChunkRequest creq;
      creq.client_qid = qid;
      creq.seq = seq;
      ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                       rpc_.Call(server_node_, net::MessageType::kResultChunk,
                                 creq.EncodePayload(), opts_.call));
      ASSIGN_OR_RETURN(net::ResultChunkResponse resp,
                       net::ResultChunkResponse::Decode(raw));
      if (resp.ready == 0) {
        return Status::Internal("server lost a finished query's chunks");
      }
      ASSIGN_OR_RETURN(Chunk chunk, DeserializeChunk(resp.chunk_bytes,
                                                     done.schema.attrs()));
      Coordinates origin = arr->ChunkOriginFor(chunk.box().low);
      auto [it, inserted] = arr->mutable_chunks()->emplace(
          std::move(origin), std::make_shared<Chunk>(std::move(chunk)));
      (void)it;
      if (!inserted) {
        return Status::Corruption("duplicated result chunk for seq " +
                                  std::to_string(seq));
      }
      ++out.chunks_fetched;
    }
    out.array = std::move(arr);
  }

  // Release the server-side buffers; on a finished query this is pure
  // release, not abort.
  RETURN_NOT_OK(Cancel(qid));
  return out;
}

Result<QueryClient::Outcome> QueryClient::Execute(
    const std::string& statement) {
  ASSIGN_OR_RETURN(uint64_t qid, Submit(statement));
  return Await(qid);
}

}  // namespace server
}  // namespace scidb
