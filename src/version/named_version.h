#ifndef SCIDB_VERSION_NAMED_VERSION_H_
#define SCIDB_VERSION_NAMED_VERSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "version/history.h"

namespace scidb {

// Named versions (paper §2.11): hanging off a base array is a tree of
// versions, each stored as a delta off its parent. At creation a version
// is identical to its parent (and consumes essentially no space); reads
// walk the delta chain — "if there is no value in V, it will then look
// for the most recent value along the history dimension in A", repeating
// until the base array is reached.
class VersionTree {
 public:
  // The base array name is "" (reads with version "" address the base).
  explicit VersionTree(ArraySchema base_schema);

  HistoryArray& base() { return *base_; }
  const HistoryArray& base() const { return *base_; }

  // "At a specific time T, a user will be able to construct a version V
  //  from a base array A." parent = "" for the base. The creation time is
  //  pinned to the parent's current history index: later base commits are
  //  invisible to V (V diverged at T).
  Status CreateVersion(const std::string& name, const std::string& parent);

  [[nodiscard]] bool HasVersion(const std::string& name) const;
  std::vector<std::string> VersionNames() const;
  // Children of `parent` ("" = base) — the version tree structure.
  std::vector<std::string> ChildrenOf(const std::string& parent) const;

  // Commits a transaction against a version ("" = base).
  Result<int64_t> Commit(const std::string& version,
                         const std::vector<CellUpdate>& updates,
                         int64_t timestamp_micros);

  // Reads a cell from a version at its latest state, walking the chain
  // through parents to the base.
  Result<std::optional<std::vector<Value>>> GetCell(
      const std::string& version, const Coordinates& c) const;

  // Full state of a version (chain-collapsed).
  Result<MemArray> Snapshot(const std::string& version) const;

  // Space consumed by one version's own deltas (the paper's "essentially
  // no space" claim is measured on this in EXP-VER).
  Result<size_t> VersionByteSize(const std::string& version) const;

  // The delta store behind a version ("" = base) for layer-level
  // inspection (e.g. serialized-size accounting).
  Result<const HistoryArray*> VersionHistory(const std::string& version)
      const;

  // Collapses a version's chain into a materialized copy so reads stop
  // walking parents (the delta-vs-copy ablation of DESIGN.md §5).
  // The version keeps its identity; its parent link is cut.
  Status MaterializeVersion(const std::string& name);

  // Chain length from version to base (0 for the base itself).
  Result<int> ChainDepth(const std::string& version) const;

 private:
  struct NamedVersion {
    std::string name;
    std::string parent;     // "" = base
    int64_t parent_history; // parent state at creation time T
    std::unique_ptr<HistoryArray> deltas;
    bool materialized = false;
  };

  Result<const NamedVersion*> Find(const std::string& name) const;
  Result<NamedVersion*> Find(const std::string& name);
  Result<MemArray> SnapshotVersionAt(const NamedVersion& v,
                                     int64_t history) const;

  ArraySchema schema_;
  std::unique_ptr<HistoryArray> base_;
  std::map<std::string, NamedVersion> versions_;
};

}  // namespace scidb

#endif  // SCIDB_VERSION_NAMED_VERSION_H_
