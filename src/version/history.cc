#include "version/history.h"

#include "common/macros.h"

namespace scidb {

HistoryArray::HistoryArray(ArraySchema schema) : schema_(std::move(schema)) {
  schema_.set_updatable(true);
}

Result<int64_t> HistoryArray::Commit(const std::vector<CellUpdate>& updates,
                                     int64_t timestamp_micros) {
  if (updates.empty()) {
    return Status::Invalid("empty transaction");
  }
  if (clock_.recorded() > 0) {
    auto last = clock_.Forward({clock_.recorded()});
    if (last.ok() && timestamp_micros < last.value()[0].int64_value()) {
      return Status::Invalid("commit timestamps must be non-decreasing");
    }
  }
  Layer layer;
  layer.delta = MemArray(schema_);
  for (const CellUpdate& u : updates) {
    if (u.deleted) {
      if (!schema_.ContainsCoords(u.coords)) {
        return Status::OutOfRange("delete outside array bounds at " +
                                  CoordsToString(u.coords));
      }
      layer.deletions.insert(u.coords);
    } else {
      RETURN_NOT_OK(layer.delta.SetCell(u.coords, u.values));
      layer.deletions.erase(u.coords);  // set-after-delete within one txn
    }
  }
  layers_.push_back(std::move(layer));
  clock_.RecordTimestamp(timestamp_micros);
  return current_history();
}

std::optional<CellVersion> HistoryArray::FindLocal(const Coordinates& c,
                                                   int64_t history) const {
  int64_t h = std::min<int64_t>(history, current_history());
  for (; h >= 1; --h) {
    const Layer& layer = layers_[static_cast<size_t>(h - 1)];
    if (layer.deletions.count(c)) {
      return CellVersion{h, /*deleted=*/true, {}};
    }
    auto cell = layer.delta.GetCell(c);
    if (cell.has_value()) {
      return CellVersion{h, /*deleted=*/false, std::move(*cell)};
    }
  }
  return std::nullopt;
}

Result<std::optional<std::vector<Value>>> HistoryArray::GetCellAt(
    const Coordinates& c, int64_t history) const {
  if (history < 1 || history > current_history()) {
    return Status::OutOfRange("history index " + std::to_string(history) +
                              " outside [1, " +
                              std::to_string(current_history()) + "]");
  }
  auto found = FindLocal(c, history);
  if (!found.has_value() || found->deleted) {
    return std::optional<std::vector<Value>>(std::nullopt);
  }
  return std::optional<std::vector<Value>>(std::move(found->values));
}

std::optional<std::vector<Value>> HistoryArray::GetCellLatest(
    const Coordinates& c) const {
  if (current_history() == 0) return std::nullopt;
  auto r = GetCellAt(c, current_history());
  if (!r.ok()) return std::nullopt;
  return r.value();
}

Result<std::optional<std::vector<Value>>> HistoryArray::GetCellAsOf(
    const Coordinates& c, int64_t timestamp_micros) const {
  ASSIGN_OR_RETURN(Coordinates h,
                   clock_.Inverse({Value(timestamp_micros)}));
  return GetCellAt(c, h[0]);
}

std::vector<CellVersion> HistoryArray::CellHistory(
    const Coordinates& c) const {
  std::vector<CellVersion> out;
  for (int64_t h = 1; h <= current_history(); ++h) {
    const Layer& layer = layers_[static_cast<size_t>(h - 1)];
    if (layer.deletions.count(c)) {
      out.push_back(CellVersion{h, true, {}});
      continue;
    }
    auto cell = layer.delta.GetCell(c);
    if (cell.has_value()) {
      out.push_back(CellVersion{h, false, std::move(*cell)});
    }
  }
  return out;
}

Result<MemArray> HistoryArray::SnapshotAt(int64_t history) const {
  if (history < 0 || history > current_history()) {
    return Status::OutOfRange("history index " + std::to_string(history) +
                              " outside [0, " +
                              std::to_string(current_history()) + "]");
  }
  MemArray out(schema_);
  // Apply layers oldest-to-newest; later layers overwrite.
  for (int64_t h = 1; h <= history; ++h) {
    const Layer& layer = layers_[static_cast<size_t>(h - 1)];
    Status st;
    bool failed = false;
    std::vector<Value> cell;
    layer.delta.ForEachCell(
        [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          st = out.SetCell(c, cell);
          if (!st.ok()) {
            failed = true;
            return false;
          }
          return true;
        });
    if (failed) return st;
    for (const Coordinates& c : layer.deletions) {
      (void)out.DeleteCell(c);  // status-ignored: deleting a never-present
                                // cell is a no-op at snapshot level
    }
  }
  return out;
}

size_t HistoryArray::ByteSize() const {
  size_t bytes = 0;
  for (const Layer& layer : layers_) {
    bytes += layer.delta.ByteSize();
    bytes += layer.deletions.size() * sizeof(Coordinates);
  }
  return bytes;
}

}  // namespace scidb
