#ifndef SCIDB_VERSION_HISTORY_H_
#define SCIDB_VERSION_HISTORY_H_

#include <optional>
#include <set>
#include <vector>

#include "array/mem_array.h"
#include "common/result.h"
#include "udf/enhancement.h"

namespace scidb {

// One update inside a transaction: a new cell value or a deletion flag
// (paper §2.5: "one would insert a deletion-flag as the delta, indicating
// the value has been deleted").
struct CellUpdate {
  Coordinates coords;
  std::vector<Value> values;  // ignored when deleted
  bool deleted = false;

  static CellUpdate Set(Coordinates c, std::vector<Value> v) {
    return {std::move(c), std::move(v), false};
  }
  static CellUpdate Delete(Coordinates c) { return {std::move(c), {}, true}; }
};

// The state of a cell at one history index.
struct CellVersion {
  int64_t history = 0;
  bool deleted = false;
  std::vector<Value> values;  // empty when deleted
};

// No-overwrite updatable array (paper §2.5): every transaction appends a
// delta layer at the next history index; nothing is ever modified in
// place. Logically this is the paper's extra history dimension — cell
// [x, y, history=h] — implemented as layered deltas so that "the same
// value as h-1" costs nothing.
//
// A wall-clock enhancement maps history indices to commit timestamps so
// the array "can be addressed using conventional time".
class HistoryArray {
 public:
  // `schema` is the logical (history-less) schema; it is implicitly
  // updatable (the paper: declaring an array updatable adds the history
  // dimension automatically).
  explicit HistoryArray(ArraySchema schema);

  const ArraySchema& schema() const { return schema_; }
  // Highest committed history index; 0 when nothing committed yet.
  int64_t current_history() const {
    return static_cast<int64_t>(layers_.size());
  }

  // Applies one transaction; returns the new history index (1-based).
  // Timestamps must be non-decreasing across commits.
  Result<int64_t> Commit(const std::vector<CellUpdate>& updates,
                         int64_t timestamp_micros);

  // Value of a cell as of history index `history` (inclusive overlay of
  // layers 1..history). nullopt == absent or deleted.
  Result<std::optional<std::vector<Value>>> GetCellAt(const Coordinates& c,
                                                      int64_t history) const;
  std::optional<std::vector<Value>> GetCellLatest(const Coordinates& c) const;

  // Value of a cell as of wall-clock time t (paper: address via time).
  Result<std::optional<std::vector<Value>>> GetCellAsOf(
      const Coordinates& c, int64_t timestamp_micros) const;

  // The full trajectory of a cell along the history dimension — the
  // paper's "travels along the history dimension" starting at [c, 1].
  // Only history indices where the cell changed appear.
  std::vector<CellVersion> CellHistory(const Coordinates& c) const;

  // Materializes the array state as of `history`.
  Result<MemArray> SnapshotAt(int64_t history) const;
  Result<MemArray> SnapshotLatest() const {
    return SnapshotAt(current_history());
  }

  // In-memory delta bytes (chunk-capacity granular) — versioning space
  // accounting for EXP-VER/HIST. Persisted cost is what SerializeChunk
  // produces per layer; iterate layers via the accessors below to
  // measure it.
  size_t ByteSize() const;

  // Read-only access to the delta layers (1-based history index).
  const MemArray& layer_delta(int64_t h) const {
    return layers_[static_cast<size_t>(h - 1)].delta;
  }
  const std::set<Coordinates>& layer_deletions(int64_t h) const {
    return layers_[static_cast<size_t>(h - 1)].deletions;
  }

  const WallClockEnhancement& wall_clock() const { return clock_; }

 private:
  friend class VersionTree;

  struct Layer {
    MemArray delta;
    std::set<Coordinates> deletions;
  };

  // Looks up the most recent change to `c` in layers 1..history of THIS
  // array only (no parent-version fallthrough). nullopt = never touched.
  std::optional<CellVersion> FindLocal(const Coordinates& c,
                                       int64_t history) const;

  ArraySchema schema_;
  std::vector<Layer> layers_;  // layers_[h-1] = history index h
  WallClockEnhancement clock_;
};

}  // namespace scidb

#endif  // SCIDB_VERSION_HISTORY_H_
