#include "version/named_version.h"

#include "common/macros.h"

namespace scidb {

VersionTree::VersionTree(ArraySchema base_schema)
    : schema_(std::move(base_schema)),
      base_(std::make_unique<HistoryArray>(schema_)) {}

Status VersionTree::CreateVersion(const std::string& name,
                                  const std::string& parent) {
  if (name.empty()) return Status::Invalid("version name must be non-empty");
  if (versions_.count(name)) {
    return Status::AlreadyExists("version '" + name + "' already exists");
  }
  int64_t parent_history = 0;
  if (parent.empty()) {
    parent_history = base_->current_history();
  } else {
    ASSIGN_OR_RETURN(const NamedVersion* p, Find(parent));
    parent_history = p->deltas->current_history();
  }
  NamedVersion v;
  v.name = name;
  v.parent = parent;
  v.parent_history = parent_history;
  v.deltas = std::make_unique<HistoryArray>(schema_);
  versions_.emplace(name, std::move(v));
  return Status::OK();
}

bool VersionTree::HasVersion(const std::string& name) const {
  return versions_.count(name) > 0;
}

std::vector<std::string> VersionTree::VersionNames() const {
  std::vector<std::string> out;
  for (const auto& [name, v] : versions_) out.push_back(name);
  return out;
}

std::vector<std::string> VersionTree::ChildrenOf(
    const std::string& parent) const {
  std::vector<std::string> out;
  for (const auto& [name, v] : versions_) {
    if (v.parent == parent) out.push_back(name);
  }
  return out;
}

Result<const VersionTree::NamedVersion*> VersionTree::Find(
    const std::string& name) const {
  auto it = versions_.find(name);
  if (it == versions_.end()) {
    return Status::NotFound("no version named '" + name + "'");
  }
  return &it->second;
}

Result<VersionTree::NamedVersion*> VersionTree::Find(
    const std::string& name) {
  auto it = versions_.find(name);
  if (it == versions_.end()) {
    return Status::NotFound("no version named '" + name + "'");
  }
  return &it->second;
}

Result<int64_t> VersionTree::Commit(const std::string& version,
                                    const std::vector<CellUpdate>& updates,
                                    int64_t timestamp_micros) {
  if (version.empty()) return base_->Commit(updates, timestamp_micros);
  ASSIGN_OR_RETURN(NamedVersion* v, Find(version));
  return v->deltas->Commit(updates, timestamp_micros);
}

Result<std::optional<std::vector<Value>>> VersionTree::GetCell(
    const std::string& version, const Coordinates& c) const {
  // Walk the chain: most recent local delta wins; a deletion flag hides
  // parent values; otherwise fall through to the parent at the pinned
  // creation history.
  const std::string* cur = &version;
  int64_t history_limit = -1;  // -1 = latest
  while (!cur->empty()) {
    ASSIGN_OR_RETURN(const NamedVersion* v, Find(*cur));
    int64_t h = history_limit >= 0 ? history_limit
                                   : v->deltas->current_history();
    auto found = v->deltas->FindLocal(c, h);
    if (found.has_value()) {
      if (found->deleted) {
        return std::optional<std::vector<Value>>(std::nullopt);
      }
      return std::optional<std::vector<Value>>(found->values);
    }
    if (v->materialized) {
      // Chain was cut: the version's deltas are the whole state.
      return std::optional<std::vector<Value>>(std::nullopt);
    }
    history_limit = v->parent_history;
    cur = &v->parent;
  }
  // Base array.
  int64_t h = history_limit >= 0 ? history_limit : base_->current_history();
  if (h == 0) return std::optional<std::vector<Value>>(std::nullopt);
  auto found = base_->FindLocal(c, h);
  if (!found.has_value() || found->deleted) {
    return std::optional<std::vector<Value>>(std::nullopt);
  }
  return std::optional<std::vector<Value>>(found->values);
}

Result<MemArray> VersionTree::SnapshotVersionAt(const NamedVersion& v,
                                                int64_t history) const {
  MemArray out(schema_);
  if (!v.materialized) {
    if (v.parent.empty()) {
      ASSIGN_OR_RETURN(out, base_->SnapshotAt(v.parent_history));
    } else {
      ASSIGN_OR_RETURN(const NamedVersion* p, Find(v.parent));
      ASSIGN_OR_RETURN(out, SnapshotVersionAt(*p, v.parent_history));
    }
  }
  // Overlay this version's own layers, oldest to newest, sets before
  // deletion flags within each layer (a delete-then-set transaction keeps
  // the set: Commit() removed the coordinate from the deletion list).
  int64_t h = std::min<int64_t>(history, v.deltas->current_history());
  for (int64_t i = 1; i <= h; ++i) {
    const auto& layer = v.deltas->layers_[static_cast<size_t>(i - 1)];
    Status st;
    bool failed = false;
    std::vector<Value> cell;
    layer.delta.ForEachCell(
        [&](const Coordinates& c, const Chunk& chunk, int64_t rank) {
          cell.clear();
          for (size_t a = 0; a < chunk.nattrs(); ++a) {
            cell.push_back(chunk.block(a).Get(rank));
          }
          st = out.SetCell(c, cell);
          if (!st.ok()) {
            failed = true;
            return false;
          }
          return true;
        });
    if (failed) return st;
    for (const Coordinates& c : layer.deletions) {
      (void)out.DeleteCell(c);  // status-ignored: deleting a never-present
                                // cell is a no-op at snapshot level
    }
  }
  return out;
}

Result<MemArray> VersionTree::Snapshot(const std::string& version) const {
  if (version.empty()) return base_->SnapshotLatest();
  ASSIGN_OR_RETURN(const NamedVersion* v, Find(version));
  return SnapshotVersionAt(*v, v->deltas->current_history());
}

Result<const HistoryArray*> VersionTree::VersionHistory(
    const std::string& version) const {
  if (version.empty()) return base_.get();
  ASSIGN_OR_RETURN(const NamedVersion* v, Find(version));
  return v->deltas.get();
}

Result<size_t> VersionTree::VersionByteSize(
    const std::string& version) const {
  if (version.empty()) return base_->ByteSize();
  ASSIGN_OR_RETURN(const NamedVersion* v, Find(version));
  return v->deltas->ByteSize();
}

Status VersionTree::MaterializeVersion(const std::string& name) {
  ASSIGN_OR_RETURN(NamedVersion* v, Find(name));
  if (v->materialized) return Status::OK();
  ASSIGN_OR_RETURN(MemArray full, Snapshot(name));
  // Rebuild the version as a single-layer materialized copy.
  auto fresh = std::make_unique<HistoryArray>(schema_);
  std::vector<CellUpdate> updates;
  std::vector<Value> cell;
  full.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                       int64_t rank) {
    cell.clear();
    for (size_t a = 0; a < chunk.nattrs(); ++a) {
      cell.push_back(chunk.block(a).Get(rank));
    }
    updates.push_back(CellUpdate::Set(c, cell));
    return true;
  });
  if (!updates.empty()) {
    int64_t ts = 0;
    if (v->deltas->wall_clock().recorded() > 0) {
      auto t = v->deltas->wall_clock().Forward(
          {v->deltas->wall_clock().recorded()});
      if (t.ok()) ts = t.value()[0].int64_value();
    }
    RETURN_NOT_OK(fresh->Commit(updates, ts).status());
  }
  v->deltas = std::move(fresh);
  v->materialized = true;
  v->parent.clear();
  v->parent_history = 0;
  return Status::OK();
}

Result<int> VersionTree::ChainDepth(const std::string& version) const {
  if (version.empty()) return 0;
  ASSIGN_OR_RETURN(const NamedVersion* v, Find(version));
  if (v->materialized) return 1;
  ASSIGN_OR_RETURN(int parent_depth, ChainDepth(v->parent));
  return parent_depth + 1;
}

}  // namespace scidb
