#include "array/chunk.h"

namespace scidb {

AttributeBlock::AttributeBlock(DataType type, bool uncertain, int64_t cells)
    : type_(type), uncertain_(uncertain), cells_(cells) {
  nulls_.assign(static_cast<size_t>(cells), 1);  // cells start null
  size_t n = static_cast<size_t>(cells);
  switch (type_) {
    case DataType::kBool:
      bools_.assign(n, 0);
      break;
    case DataType::kInt64:
      i64_.assign(n, 0);
      break;
    case DataType::kFloat:
      f32_.assign(n, 0.0f);
      break;
    case DataType::kDouble:
      f64_.assign(n, 0.0);
      break;
    case DataType::kString:
      strs_.assign(n, std::string());
      break;
    case DataType::kArray:
      arrays_.assign(n, nullptr);
      break;
  }
}

void AttributeBlock::MaterializeStderr() {
  if (!stderr_is_const_) return;
  stderrs_.assign(static_cast<size_t>(cells_), const_stderr_);
  stderr_is_const_ = false;
}

void AttributeBlock::Set(int64_t idx, const Value& v) {
  size_t i = static_cast<size_t>(idx);
  if (v.is_null()) {
    nulls_[i] = 1;
    return;
  }
  nulls_[i] = 0;
  switch (type_) {
    case DataType::kBool:
      bools_[i] = v.is_bool() ? (v.bool_value() ? 1 : 0)
                              : (v.AsInt64().ok() && v.AsInt64().value() != 0);
      break;
    case DataType::kInt64:
      i64_[i] = v.AsInt64().ok() ? v.AsInt64().value() : 0;
      break;
    case DataType::kFloat:
      f32_[i] = static_cast<float>(v.AsDouble().ok() ? v.AsDouble().value() : 0);
      break;
    case DataType::kDouble:
      f64_[i] = v.AsDouble().ok() ? v.AsDouble().value() : 0;
      break;
    case DataType::kString:
      strs_[i] = v.is_string() ? v.string_value() : v.ToString();
      break;
    case DataType::kArray:
      arrays_[i] = v.is_array() ? v.array_value() : nullptr;
      break;
  }
  if (uncertain_) {
    double s = v.is_uncertain() ? v.uncertain_value().stderr_ : 0.0;
    SetStderr(idx, s);
  }
}

Value AttributeBlock::Get(int64_t idx) const {
  size_t i = static_cast<size_t>(idx);
  if (nulls_[i]) return Value::Null();
  switch (type_) {
    case DataType::kBool:
      return Value(bools_[i] != 0);
    case DataType::kInt64:
      if (uncertain_) {
        return Value(Uncertain(static_cast<double>(i64_[i]), GetStderr(idx)));
      }
      return Value(i64_[i]);
    case DataType::kFloat:
      if (uncertain_) {
        return Value(Uncertain(static_cast<double>(f32_[i]), GetStderr(idx)));
      }
      return Value(static_cast<double>(f32_[i]));
    case DataType::kDouble:
      if (uncertain_) return Value(Uncertain(f64_[i], GetStderr(idx)));
      return Value(f64_[i]);
    case DataType::kString:
      return Value(strs_[i]);
    case DataType::kArray:
      return arrays_[i] ? Value(arrays_[i]) : Value::Null();
  }
  return Value::Null();
}

void AttributeBlock::SetDouble(int64_t i, double v) {
  SCIDB_DCHECK(type_ == DataType::kDouble);
  nulls_[static_cast<size_t>(i)] = 0;
  f64_[static_cast<size_t>(i)] = v;
}

double AttributeBlock::GetDouble(int64_t i) const {
  switch (type_) {
    case DataType::kDouble:
      return f64_[static_cast<size_t>(i)];
    case DataType::kFloat:
      return static_cast<double>(f32_[static_cast<size_t>(i)]);
    case DataType::kInt64:
      return static_cast<double>(i64_[static_cast<size_t>(i)]);
    case DataType::kBool:
    case DataType::kString:
    case DataType::kArray:
      // Non-numeric blocks have no double view; callers gate on type()
      // (and the kDouble-only setters DCHECK). Explicit cases so a new
      // DataType enumerator is a compile error here, not a silent 0.0.
      return 0.0;
  }
  return 0.0;
}

void AttributeBlock::SetInt64(int64_t i, int64_t v) {
  SCIDB_DCHECK(type_ == DataType::kInt64);
  nulls_[static_cast<size_t>(i)] = 0;
  i64_[static_cast<size_t>(i)] = v;
}

int64_t AttributeBlock::GetInt64(int64_t i) const {
  SCIDB_DCHECK(type_ == DataType::kInt64);
  return i64_[static_cast<size_t>(i)];
}

void AttributeBlock::SetStderr(int64_t i, double s) {
  if (stderr_is_const_) {
    if (!stderr_seen_) {
      // Adopt the first observed error bar as the shared constant.
      const_stderr_ = s;
      stderr_seen_ = true;
      return;
    }
    if (s == const_stderr_) return;
    // First deviating error bar: fall back to a full column.
    MaterializeStderr();
  }
  stderrs_[static_cast<size_t>(i)] = s;
}

double AttributeBlock::GetStderr(int64_t i) const {
  if (stderr_is_const_) return const_stderr_;
  return stderrs_[static_cast<size_t>(i)];
}

size_t AttributeBlock::ByteSize() const {
  size_t bytes = nulls_.size();
  bytes += bools_.size();
  bytes += i64_.size() * sizeof(int64_t);
  bytes += f32_.size() * sizeof(float);
  bytes += f64_.size() * sizeof(double);
  for (const auto& s : strs_) bytes += s.size() + sizeof(std::string);
  bytes += arrays_.size() * sizeof(void*);
  bytes += stderrs_.size() * sizeof(double);
  return bytes;
}

Chunk::Chunk(Box box, const std::vector<AttributeDesc>& attrs)
    : box_(std::move(box)) {
  int64_t cells = box_.CellCount();
  present_.assign(static_cast<size_t>(cells), 0);
  blocks_.reserve(attrs.size());
  for (const auto& a : attrs) {
    blocks_.emplace_back(a.type, a.uncertain, cells);
  }
}

void Chunk::MarkPresent(int64_t rank) {
  uint8_t& p = present_[static_cast<size_t>(rank)];
  if (!p) {
    p = 1;
    ++present_count_;
  }
}

void Chunk::MarkAbsent(int64_t rank) {
  uint8_t& p = present_[static_cast<size_t>(rank)];
  if (p) {
    p = 0;
    --present_count_;
  }
}

void Chunk::SetCell(const Coordinates& c, const std::vector<Value>& values) {
  SCIDB_DCHECK(box_.Contains(c)) << "cell " << CoordsToString(c)
                                 << " outside chunk " << box_.ToString();
  SCIDB_DCHECK(values.size() == blocks_.size());
  int64_t rank = RankInBox(box_, c);
  for (size_t a = 0; a < blocks_.size(); ++a) {
    blocks_[a].Set(rank, values[a]);
  }
  MarkPresent(rank);
}

std::vector<Value> Chunk::GetCell(const Coordinates& c) const {
  std::vector<Value> out(blocks_.size());
  if (!box_.Contains(c)) return out;
  int64_t rank = RankInBox(box_, c);
  if (!IsPresent(rank)) return out;
  for (size_t a = 0; a < blocks_.size(); ++a) {
    out[a] = blocks_[a].Get(rank);
  }
  return out;
}

size_t Chunk::ByteSize() const {
  size_t bytes = present_.size();
  for (const auto& b : blocks_) bytes += b.ByteSize();
  return bytes;
}

}  // namespace scidb
