#ifndef SCIDB_ARRAY_COORDINATES_H_
#define SCIDB_ARRAY_COORDINATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace scidb {

// A cell address: one integer per dimension. Paper §2.1 dimensions run
// 1..N; the engine itself is agnostic to the origin and supports any
// int64 bounds (enhancement functions translate/scale freely).
using Coordinates = std::vector<int64_t>;

std::string CoordsToString(const Coordinates& c);

// An axis-aligned box of cells, [low[d], high[d]] inclusive per dimension.
// Chunks, subsample windows and R-tree entries are all boxes.
struct Box {
  Coordinates low;
  Coordinates high;

  Box() = default;
  Box(Coordinates l, Coordinates h) : low(std::move(l)), high(std::move(h)) {
    SCIDB_DCHECK(low.size() == high.size());
  }

  size_t ndims() const { return low.size(); }

  [[nodiscard]] bool Contains(const Coordinates& c) const {
    for (size_t d = 0; d < low.size(); ++d) {
      if (c[d] < low[d] || c[d] > high[d]) return false;
    }
    return true;
  }

  [[nodiscard]] bool Intersects(const Box& o) const {
    for (size_t d = 0; d < low.size(); ++d) {
      if (o.high[d] < low[d] || o.low[d] > high[d]) return false;
    }
    return true;
  }

  // Intersection; valid only when Intersects(o).
  Box Intersect(const Box& o) const {
    Box r(low, high);
    for (size_t d = 0; d < low.size(); ++d) {
      r.low[d] = std::max(low[d], o.low[d]);
      r.high[d] = std::min(high[d], o.high[d]);
    }
    return r;
  }

  // Grows this box to cover `o` (used by R-tree node MBRs).
  void ExpandToInclude(const Box& o) {
    for (size_t d = 0; d < low.size(); ++d) {
      low[d] = std::min(low[d], o.low[d]);
      high[d] = std::max(high[d], o.high[d]);
    }
  }

  int64_t CellCount() const {
    int64_t n = 1;
    for (size_t d = 0; d < low.size(); ++d) n *= (high[d] - low[d] + 1);
    return n;
  }

  // Sum over dims of side lengths; the R-tree split heuristic minimizes
  // this ("margin") rather than volume, which degenerates in high dims.
  int64_t Margin() const {
    int64_t m = 0;
    for (size_t d = 0; d < low.size(); ++d) m += (high[d] - low[d] + 1);
    return m;
  }

  bool operator==(const Box& o) const { return low == o.low && high == o.high; }

  std::string ToString() const;
};

// Row-major linearization of `c` within `box`; inverse of Unrank.
int64_t RankInBox(const Box& box, const Coordinates& c);
Coordinates UnrankInBox(const Box& box, int64_t rank);

// Odometer-style iteration over all cells of a box in row-major order
// (last dimension fastest). Returns false when iteration wraps past the
// end. `c` must start at box.low.
[[nodiscard]] bool NextInBox(const Box& box, Coordinates* c);

}  // namespace scidb

#endif  // SCIDB_ARRAY_COORDINATES_H_
