#include "array/coordinates.h"

#include <algorithm>
#include <sstream>

namespace scidb {

std::string CoordsToString(const Coordinates& c) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < c.size(); ++i) {
    if (i) os << ",";
    os << c[i];
  }
  os << "]";
  return os.str();
}

std::string Box::ToString() const {
  return CoordsToString(low) + ".." + CoordsToString(high);
}

int64_t RankInBox(const Box& box, const Coordinates& c) {
  SCIDB_DCHECK(c.size() == box.ndims());
  int64_t rank = 0;
  for (size_t d = 0; d < c.size(); ++d) {
    int64_t extent = box.high[d] - box.low[d] + 1;
    rank = rank * extent + (c[d] - box.low[d]);
  }
  return rank;
}

Coordinates UnrankInBox(const Box& box, int64_t rank) {
  Coordinates c(box.ndims());
  for (size_t i = box.ndims(); i-- > 0;) {
    int64_t extent = box.high[i] - box.low[i] + 1;
    c[i] = box.low[i] + rank % extent;
    rank /= extent;
  }
  return c;
}

bool NextInBox(const Box& box, Coordinates* c) {
  for (size_t i = box.ndims(); i-- > 0;) {
    if ((*c)[i] < box.high[i]) {
      ++(*c)[i];
      return true;
    }
    (*c)[i] = box.low[i];
  }
  return false;
}

}  // namespace scidb
