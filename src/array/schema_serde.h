#ifndef SCIDB_ARRAY_SCHEMA_SERDE_H_
#define SCIDB_ARRAY_SCHEMA_SERDE_H_

#include "array/schema.h"
#include "common/byte_io.h"
#include "common/result.h"

namespace scidb {

// Canonical byte codec for ArraySchema, shared by the storage manifest
// (storage/storage_manager.cc) and the query-server wire protocol
// (net/message.cc QueryDoneResponse): result chunks travel as opaque
// SerializeChunk bytes, so the schema needed to decode them must cross
// the wire alongside.
//
// Layout: name, updatable u8, dim count + per-dim name/low/high/
// chunk_interval (signed varints), attr count + per-attr name/type u8/
// nullable u8/uncertain u8. Encoding is canonical — every field is
// written unconditionally in a fixed order and boolean bytes are
// strictly 0/1 — so decode -> encode is a byte-identical fixed point
// (fuzz_frame checks this through the message layer).
void EncodeSchema(const ArraySchema& s, ByteWriter* w);

// Bounds-checked parse. Rejects out-of-vocabulary DataType bytes and
// non-canonical boolean bytes (> 1) as Corruption; does NOT run
// ArraySchema::Validate — storage reloads historical manifests whose
// semantic rules may evolve, and wire callers validate at use.
Result<ArraySchema> DecodeSchema(ByteReader* r);

}  // namespace scidb

#endif  // SCIDB_ARRAY_SCHEMA_SERDE_H_
