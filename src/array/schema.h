#ifndef SCIDB_ARRAY_SCHEMA_H_
#define SCIDB_ARRAY_SCHEMA_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "array/coordinates.h"
#include "common/result.h"
#include "types/data_type.h"

namespace scidb {

// Paper §2.1: "create My_remote_2 as Remote [*, *]" — unbounded dims grow
// without restriction; the high-water mark is tracked by the storage layer.
inline constexpr int64_t kUnboundedDim = std::numeric_limits<int64_t>::max();

// One named integer dimension of a basic array.
struct DimensionDesc {
  std::string name;
  int64_t low = 1;               // paper dimensions start at 1
  int64_t high = kUnboundedDim;  // inclusive; kUnboundedDim == '*'
  int64_t chunk_interval = 64;   // storage stride along this dimension

  bool unbounded() const { return high == kUnboundedDim; }
  int64_t extent() const { return unbounded() ? kUnboundedDim : high - low + 1; }

  bool operator==(const DimensionDesc& o) const {
    return name == o.name && low == o.low && high == o.high;
  }
};

// One named value component of a cell ("s1 = float").
struct AttributeDesc {
  std::string name;
  DataType type = DataType::kDouble;
  bool nullable = true;
  // Paper §2.13: `uncertain x` — the attribute stores (mean, stderr).
  bool uncertain = false;

  bool operator==(const AttributeDesc& o) const {
    return name == o.name && type == o.type && nullable == o.nullable &&
           uncertain == o.uncertain;
  }
};

// The logical definition of an array type / instance. Covers the paper's
// two-step "define ArrayType (...)(...)" + "create X as ArrayType [..]"
// protocol: ArrayDef catalog entries hold a schema with unresolved bounds,
// Create() stamps out a schema with concrete high-water marks.
class ArraySchema {
 public:
  ArraySchema() = default;
  ArraySchema(std::string name, std::vector<DimensionDesc> dims,
              std::vector<AttributeDesc> attrs, bool updatable = false)
      : name_(std::move(name)),
        dims_(std::move(dims)),
        attrs_(std::move(attrs)),
        updatable_(updatable) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  size_t ndims() const { return dims_.size(); }
  size_t nattrs() const { return attrs_.size(); }
  const std::vector<DimensionDesc>& dims() const { return dims_; }
  const std::vector<AttributeDesc>& attrs() const { return attrs_; }
  const DimensionDesc& dim(size_t i) const { return dims_[i]; }
  const AttributeDesc& attr(size_t i) const { return attrs_[i]; }
  std::vector<DimensionDesc>* mutable_dims() { return &dims_; }

  // Paper §2.5: updatable arrays get a history dimension; our storage
  // keeps history as layered deltas (see version/), flagged here.
  bool updatable() const { return updatable_; }
  void set_updatable(bool u) { updatable_ = u; }

  Result<size_t> DimIndex(const std::string& name) const;
  Result<size_t> AttrIndex(const std::string& name) const;

  // The full logical box [low, high] per dimension. Invalid for schemas
  // with unbounded dimensions (callers use the storage high-water mark).
  Result<Box> Bounds() const;
  [[nodiscard]] bool HasUnboundedDim() const;

  // Validates shape invariants: nonempty dims/attrs, unique names,
  // positive chunk intervals, low <= high.
  Status Validate() const;

  // True when `c` lies inside the declared bounds (unbounded dims accept
  // any coordinate >= low).
  [[nodiscard]] bool ContainsCoords(const Coordinates& c) const;

  // "define Remote (s1=float,s2=float) (I,J)" style rendering.
  std::string ToString() const;

  bool operator==(const ArraySchema& o) const {
    return dims_ == o.dims_ && attrs_ == o.attrs_;
  }

 private:
  std::string name_;
  std::vector<DimensionDesc> dims_;
  std::vector<AttributeDesc> attrs_;
  bool updatable_ = false;
};

}  // namespace scidb

#endif  // SCIDB_ARRAY_SCHEMA_H_
