#ifndef SCIDB_ARRAY_CHUNK_H_
#define SCIDB_ARRAY_CHUNK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/coordinates.h"
#include "array/schema.h"
#include "common/result.h"
#include "types/uncertain.h"
#include "types/value.h"

namespace scidb {

// Columnar storage for one attribute inside one chunk. Values are dense in
// row-major order over the chunk box; a validity flag per cell marks which
// cells are present ("empty" cells are how sparse arrays and the Filter
// operator's NULL results are represented).
//
// Uncertain attributes carry a parallel stderr column. When every cell has
// the same error bar the column collapses to a single constant — the paper's
// §2.13 requirement that "arrays with the same error bounds for all values
// will require negligible extra space".
class AttributeBlock {
 public:
  AttributeBlock() = default;
  AttributeBlock(DataType type, bool uncertain, int64_t cells);

  DataType type() const { return type_; }
  bool uncertain() const { return uncertain_; }
  int64_t size() const { return cells_; }

  void Set(int64_t i, const Value& v);
  Value Get(int64_t i) const;

  bool IsNull(int64_t i) const { return nulls_[static_cast<size_t>(i)] != 0; }

  // Typed fast paths for hot operator loops; only valid for the matching
  // DataType (checked in debug builds).
  void SetDouble(int64_t i, double v);
  double GetDouble(int64_t i) const;
  void SetInt64(int64_t i, int64_t v);
  int64_t GetInt64(int64_t i) const;
  void SetStderr(int64_t i, double s);
  double GetStderr(int64_t i) const;

  // Direct access to the dense payload for vectorized loops.
  std::vector<double>* mutable_doubles() { return &f64_; }
  const std::vector<double>& doubles() const { return f64_; }
  const std::vector<int64_t>& int64s() const { return i64_; }

  // True when the stderr column is a single constant (space optimization).
  bool has_constant_stderr() const { return stderr_is_const_; }

  // Approximate in-memory footprint, used by the loader's memory-pressure
  // flush and the space-accounting benchmarks.
  size_t ByteSize() const;

 private:
  DataType type_ = DataType::kDouble;
  bool uncertain_ = false;
  int64_t cells_ = 0;
  std::vector<uint8_t> nulls_;  // 1 == null

  // Exactly one of these is populated, per type_.
  std::vector<uint8_t> bools_;
  std::vector<int64_t> i64_;
  std::vector<float> f32_;
  std::vector<double> f64_;
  std::vector<std::string> strs_;
  std::vector<std::shared_ptr<NestedArray>> arrays_;

  // stderr column for uncertain attributes; constant-collapsed when all
  // cells share one error bar.
  bool stderr_is_const_ = true;
  bool stderr_seen_ = false;
  double const_stderr_ = 0.0;
  std::vector<double> stderrs_;

  void MaterializeStderr();
};

// A chunk is one variable-size rectangular bucket of the array (paper
// §2.8): a box of cells with per-attribute columnar blocks plus a shared
// presence bitmap. Chunks are the unit of storage, compression, R-tree
// indexing, partitioning and parallel execution.
class Chunk {
 public:
  Chunk() = default;
  Chunk(Box box, const std::vector<AttributeDesc>& attrs);

  const Box& box() const { return box_; }
  size_t nattrs() const { return blocks_.size(); }
  int64_t cell_capacity() const { return box_.CellCount(); }
  int64_t present_count() const { return present_count_; }
  double density() const {
    return cell_capacity() == 0
               ? 0.0
               : static_cast<double>(present_count_) / cell_capacity();
  }

  AttributeBlock& block(size_t attr) { return blocks_[attr]; }
  const AttributeBlock& block(size_t attr) const { return blocks_[attr]; }

  bool IsPresent(int64_t rank) const {
    return present_[static_cast<size_t>(rank)] != 0;
  }
  bool IsPresentAt(const Coordinates& c) const {
    return box_.Contains(c) && IsPresent(RankInBox(box_, c));
  }
  void MarkPresent(int64_t rank);
  void MarkAbsent(int64_t rank);

  // Cell-level convenience API (operators use rank + block fast paths).
  void SetCell(const Coordinates& c, const std::vector<Value>& values);
  std::vector<Value> GetCell(const Coordinates& c) const;

  size_t ByteSize() const;

  // Iterates the ranks of present cells in row-major order.
  class CellIterator {
   public:
    explicit CellIterator(const Chunk& chunk) : chunk_(chunk) { Advance(0); }
    bool valid() const { return rank_ < chunk_.cell_capacity(); }
    int64_t rank() const { return rank_; }
    Coordinates coords() const { return UnrankInBox(chunk_.box(), rank_); }
    void Next() { Advance(rank_ + 1); }

   private:
    void Advance(int64_t from) {
      rank_ = from;
      while (rank_ < chunk_.cell_capacity() && !chunk_.IsPresent(rank_)) {
        ++rank_;
      }
    }
    const Chunk& chunk_;
    int64_t rank_ = 0;
  };

 private:
  Box box_;
  std::vector<AttributeBlock> blocks_;
  std::vector<uint8_t> present_;
  int64_t present_count_ = 0;
};

}  // namespace scidb

#endif  // SCIDB_ARRAY_CHUNK_H_
