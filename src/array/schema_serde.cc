#include "array/schema_serde.h"

#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "types/data_type.h"

namespace scidb {

namespace {

// A boolean on the wire is exactly 0 or 1; anything else is either
// corruption or a non-canonical encoding that would break the
// decode -> encode fixed point.
Result<bool> GetBool(ByteReader* r, const char* field) {
  ASSIGN_OR_RETURN(uint8_t b, r->GetU8());
  if (b > 1) {
    return Status::Corruption(std::string("schema ") + field +
                              " byte out of range: " + std::to_string(b));
  }
  return b != 0;
}

}  // namespace

void EncodeSchema(const ArraySchema& s, ByteWriter* w) {
  w->PutString(s.name());
  w->PutU8(s.updatable() ? 1 : 0);
  w->PutVarint(s.ndims());
  for (const auto& d : s.dims()) {
    w->PutString(d.name);
    w->PutSignedVarint(d.low);
    w->PutSignedVarint(d.high);
    w->PutSignedVarint(d.chunk_interval);
  }
  w->PutVarint(s.nattrs());
  for (const auto& a : s.attrs()) {
    w->PutString(a.name);
    w->PutU8(static_cast<uint8_t>(a.type));
    w->PutU8(a.nullable ? 1 : 0);
    w->PutU8(a.uncertain ? 1 : 0);
  }
}

Result<ArraySchema> DecodeSchema(ByteReader* r) {
  ASSIGN_OR_RETURN(std::string name, r->GetString());
  ASSIGN_OR_RETURN(bool updatable, GetBool(r, "updatable"));
  ASSIGN_OR_RETURN(uint64_t ndims, r->GetVarint());
  // Each dimension costs at least 4 payload bytes; a count beyond the
  // remaining bytes is a hostile length field, not a schema.
  if (ndims > r->remaining()) {
    return Status::Corruption("schema dimension count too large");
  }
  std::vector<DimensionDesc> dims;
  dims.reserve(static_cast<size_t>(ndims));
  for (uint64_t i = 0; i < ndims; ++i) {
    DimensionDesc d;
    ASSIGN_OR_RETURN(d.name, r->GetString());
    ASSIGN_OR_RETURN(d.low, r->GetSignedVarint());
    ASSIGN_OR_RETURN(d.high, r->GetSignedVarint());
    ASSIGN_OR_RETURN(d.chunk_interval, r->GetSignedVarint());
    dims.push_back(std::move(d));
  }
  ASSIGN_OR_RETURN(uint64_t nattrs, r->GetVarint());
  if (nattrs > r->remaining()) {
    return Status::Corruption("schema attribute count too large");
  }
  std::vector<AttributeDesc> attrs;
  attrs.reserve(static_cast<size_t>(nattrs));
  for (uint64_t i = 0; i < nattrs; ++i) {
    AttributeDesc a;
    ASSIGN_OR_RETURN(a.name, r->GetString());
    ASSIGN_OR_RETURN(uint8_t t, r->GetU8());
    if (t > static_cast<uint8_t>(DataType::kArray)) {
      return Status::Corruption("schema attribute type out of range: " +
                                std::to_string(t));
    }
    a.type = static_cast<DataType>(t);
    ASSIGN_OR_RETURN(a.nullable, GetBool(r, "nullable"));
    ASSIGN_OR_RETURN(a.uncertain, GetBool(r, "uncertain"));
    attrs.push_back(std::move(a));
  }
  return ArraySchema(std::move(name), std::move(dims), std::move(attrs),
                     updatable);
}

}  // namespace scidb
