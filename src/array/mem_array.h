#ifndef SCIDB_ARRAY_MEM_ARRAY_H_
#define SCIDB_ARRAY_MEM_ARRAY_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "array/chunk.h"
#include "array/coordinates.h"
#include "array/schema.h"
#include "common/result.h"

namespace scidb {

// In-memory chunked array: the operand/result representation of the
// executor. Chunks are laid out on a regular grid (stride = per-dimension
// chunk_interval, anchored at each dimension's low bound); the storage
// manager additionally persists irregular merged buckets, but the exec
// layer always sees grid-aligned chunks.
class MemArray {
 public:
  MemArray() = default;
  explicit MemArray(ArraySchema schema) : schema_(std::move(schema)) {}

  const ArraySchema& schema() const { return schema_; }
  ArraySchema* mutable_schema() { return &schema_; }

  // Origin of the chunk containing `c` on the chunk grid.
  Coordinates ChunkOriginFor(const Coordinates& c) const;
  // The box covered by the chunk anchored at `origin` (clipped to declared
  // bounds for bounded dimensions).
  Box ChunkBoxFor(const Coordinates& origin) const;

  Chunk* GetOrCreateChunk(const Coordinates& origin);
  const Chunk* FindChunk(const Coordinates& origin) const;

  // Cell API. SetCell validates bounds (OutOfRange on violation; unbounded
  // dimensions accept any coordinate >= low, paper §2.1's '*' marker).
  Status SetCell(const Coordinates& c, const std::vector<Value>& values);
  Status SetCell(const Coordinates& c, const Value& v);  // 1-attribute arrays
  // Empty optional when the cell is absent ("Exists? == false").
  std::optional<std::vector<Value>> GetCell(const Coordinates& c) const;
  [[nodiscard]] bool Exists(const Coordinates& c) const;
  Status DeleteCell(const Coordinates& c);

  int64_t CellCount() const;
  size_t ChunkCount() const { return chunks_.size(); }
  size_t ByteSize() const;

  // Tight bounding box of present cells — the high-water mark of unbounded
  // arrays. NotFound when the array is empty.
  Result<Box> HighWaterMark() const;

  const std::map<Coordinates, std::shared_ptr<Chunk>>& chunks() const {
    return chunks_;
  }
  std::map<Coordinates, std::shared_ptr<Chunk>>* mutable_chunks() {
    return &chunks_;
  }

  // Iterates every present cell in (chunk, row-major) order and invokes
  // fn(coords, chunk, rank). Stops early if fn returns false. Coordinates
  // are advanced odometer-style in a reused buffer — no per-cell
  // allocation (this loop is the hot path of every operator).
  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    Coordinates c;
    for (const auto& [origin, chunk] : chunks_) {
      const Box& box = chunk->box();
      const int64_t cap = chunk->cell_capacity();
      c = box.low;
      for (int64_t rank = 0; rank < cap; ++rank) {
        // rank < cap guarantees the odometer has not wrapped, so the
        // has-more result carries no information here.
        if (rank > 0) (void)NextInBox(box, &c);
        if (!chunk->IsPresent(rank)) continue;
        if (!fn(c, *chunk, rank)) return;
      }
    }
  }

 private:
  ArraySchema schema_;
  std::map<Coordinates, std::shared_ptr<Chunk>> chunks_;
};

}  // namespace scidb

#endif  // SCIDB_ARRAY_MEM_ARRAY_H_
