#include "array/schema.h"

#include <set>
#include <sstream>

namespace scidb {

Result<size_t> ArraySchema::DimIndex(const std::string& name) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].name == name) return i;
  }
  return Status::NotFound("no dimension named '" + name + "' in array '" +
                          name_ + "'");
}

Result<size_t> ArraySchema::AttrIndex(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "' in array '" +
                          name_ + "'");
}

Result<Box> ArraySchema::Bounds() const {
  Box b;
  b.low.reserve(dims_.size());
  b.high.reserve(dims_.size());
  for (const auto& d : dims_) {
    if (d.unbounded()) {
      return Status::Invalid("array '" + name_ +
                             "' has an unbounded dimension ('" + d.name +
                             "'); use the storage high-water mark");
    }
    b.low.push_back(d.low);
    b.high.push_back(d.high);
  }
  return b;
}

bool ArraySchema::HasUnboundedDim() const {
  for (const auto& d : dims_) {
    if (d.unbounded()) return true;
  }
  return false;
}

Status ArraySchema::Validate() const {
  if (dims_.empty()) return Status::Invalid("array must have >= 1 dimension");
  if (attrs_.empty()) return Status::Invalid("array must have >= 1 attribute");
  std::set<std::string> names;
  for (const auto& d : dims_) {
    if (d.name.empty()) return Status::Invalid("empty dimension name");
    if (!names.insert(d.name).second) {
      return Status::Invalid("duplicate dimension name: " + d.name);
    }
    if (!d.unbounded() && d.high < d.low) {
      return Status::Invalid("dimension '" + d.name + "' has high < low");
    }
    if (d.chunk_interval <= 0) {
      return Status::Invalid("dimension '" + d.name +
                             "' has non-positive chunk interval");
    }
  }
  for (const auto& a : attrs_) {
    if (a.name.empty()) return Status::Invalid("empty attribute name");
    if (!names.insert(a.name).second) {
      return Status::Invalid("duplicate attribute/dimension name: " + a.name);
    }
    if (a.uncertain && !IsNumeric(a.type)) {
      return Status::Invalid("attribute '" + a.name +
                             "': only numeric types can be uncertain");
    }
  }
  return Status::OK();
}

bool ArraySchema::ContainsCoords(const Coordinates& c) const {
  if (c.size() != dims_.size()) return false;
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (c[d] < dims_[d].low) return false;
    if (!dims_[d].unbounded() && c[d] > dims_[d].high) return false;
  }
  return true;
}

std::string ArraySchema::ToString() const {
  std::ostringstream os;
  os << "define ";
  if (updatable_) os << "updatable ";
  os << name_ << " (";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i) os << ", ";
    os << attrs_[i].name << " = ";
    if (attrs_[i].uncertain) os << "uncertain ";
    os << DataTypeName(attrs_[i].type);
  }
  os << ") (";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i].name;
    if (dims_[i].low != 1 || !dims_[i].unbounded()) {
      os << "=" << dims_[i].low << ":";
      if (dims_[i].unbounded()) {
        os << "*";
      } else {
        os << dims_[i].high;
      }
    }
  }
  os << ")";
  return os.str();
}

}  // namespace scidb
