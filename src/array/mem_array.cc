#include "array/mem_array.h"

#include <algorithm>

namespace scidb {

Coordinates MemArray::ChunkOriginFor(const Coordinates& c) const {
  Coordinates origin(c.size());
  for (size_t d = 0; d < c.size(); ++d) {
    const DimensionDesc& dim = schema_.dim(d);
    int64_t off = c[d] - dim.low;
    // Floor-divide also for negative offsets (cells below dim.low are
    // rejected by SetCell, but enhancement-mapped reads may probe there).
    int64_t q = off >= 0 ? off / dim.chunk_interval
                         : -((-off + dim.chunk_interval - 1) /
                             dim.chunk_interval);
    origin[d] = dim.low + q * dim.chunk_interval;
  }
  return origin;
}

Box MemArray::ChunkBoxFor(const Coordinates& origin) const {
  Box b;
  b.low = origin;
  b.high.resize(origin.size());
  for (size_t d = 0; d < origin.size(); ++d) {
    const DimensionDesc& dim = schema_.dim(d);
    int64_t hi = origin[d] + dim.chunk_interval - 1;
    if (!dim.unbounded()) hi = std::min(hi, dim.high);
    b.high[d] = hi;
  }
  return b;
}

Chunk* MemArray::GetOrCreateChunk(const Coordinates& origin) {
  auto it = chunks_.find(origin);
  if (it == chunks_.end()) {
    auto chunk = std::make_shared<Chunk>(ChunkBoxFor(origin), schema_.attrs());
    it = chunks_.emplace(origin, std::move(chunk)).first;
  } else if (it->second.use_count() > 1) {
    // Copy-on-write: MemArray copies are shallow (chunks shared), so a
    // mutation must not write through a chunk another array still sees
    // (e.g. `store A into B` then `insert B` must leave A intact).
    it->second = std::make_shared<Chunk>(*it->second);
  }
  return it->second.get();
}

const Chunk* MemArray::FindChunk(const Coordinates& origin) const {
  auto it = chunks_.find(origin);
  return it == chunks_.end() ? nullptr : it->second.get();
}

Status MemArray::SetCell(const Coordinates& c,
                         const std::vector<Value>& values) {
  if (c.size() != schema_.ndims()) {
    return Status::Invalid("coordinate arity " + std::to_string(c.size()) +
                           " != ndims " + std::to_string(schema_.ndims()));
  }
  if (!schema_.ContainsCoords(c)) {
    return Status::OutOfRange("cell " + CoordsToString(c) +
                              " outside bounds of array '" + schema_.name() +
                              "'");
  }
  if (values.size() != schema_.nattrs()) {
    return Status::Invalid("value arity " + std::to_string(values.size()) +
                           " != nattrs " + std::to_string(schema_.nattrs()));
  }
  GetOrCreateChunk(ChunkOriginFor(c))->SetCell(c, values);
  return Status::OK();
}

Status MemArray::SetCell(const Coordinates& c, const Value& v) {
  return SetCell(c, std::vector<Value>{v});
}

std::optional<std::vector<Value>> MemArray::GetCell(
    const Coordinates& c) const {
  if (c.size() != schema_.ndims()) return std::nullopt;
  auto it = chunks_.find(ChunkOriginFor(c));
  if (it == chunks_.end()) return std::nullopt;
  const Chunk& chunk = *it->second;
  if (!chunk.IsPresentAt(c)) return std::nullopt;
  return chunk.GetCell(c);
}

bool MemArray::Exists(const Coordinates& c) const {
  if (c.size() != schema_.ndims()) return false;
  auto it = chunks_.find(ChunkOriginFor(c));
  return it != chunks_.end() && it->second->IsPresentAt(c);
}

Status MemArray::DeleteCell(const Coordinates& c) {
  auto it = chunks_.find(ChunkOriginFor(c));
  if (it == chunks_.end() || !it->second->IsPresentAt(c)) {
    return Status::NotFound("cell " + CoordsToString(c) + " not present");
  }
  // Copy-on-write, as in GetOrCreateChunk.
  if (it->second.use_count() > 1) {
    it->second = std::make_shared<Chunk>(*it->second);
  }
  it->second->MarkAbsent(RankInBox(it->second->box(), c));
  return Status::OK();
}

int64_t MemArray::CellCount() const {
  int64_t n = 0;
  for (const auto& [origin, chunk] : chunks_) n += chunk->present_count();
  return n;
}

size_t MemArray::ByteSize() const {
  size_t bytes = 0;
  for (const auto& [origin, chunk] : chunks_) bytes += chunk->ByteSize();
  return bytes;
}

Result<Box> MemArray::HighWaterMark() const {
  bool found = false;
  Box hwm;
  ForEachCell([&](const Coordinates& c, const Chunk&, int64_t) {
    if (!found) {
      hwm = Box(c, c);
      found = true;
    } else {
      hwm.ExpandToInclude(Box(c, c));
    }
    return true;
  });
  if (!found) {
    return Status::NotFound("array '" + schema_.name() + "' is empty");
  }
  return hwm;
}

}  // namespace scidb
