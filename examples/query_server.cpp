// The concurrent query server over loopback TCP (DESIGN.md §15): two
// clients with isolated sessions, a shared updatable array read at a
// pinned snapshot epoch while a writer commits, a typed Busy rejection
// from admission control, and a cancel that stops a heavy query within
// one morsel.
//
//   $ ./build/examples/example_query_server
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp_transport.h"
#include "server/query_client.h"
#include "server/query_server.h"
#include "server/shared_catalog.h"
#include "version/history.h"

using namespace scidb;
using server::QueryClient;
using server::QueryServer;

namespace {

constexpr int kServerNode = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::abort();
  }
}

}  // namespace

int main() {
  net::LoopbackTcpTransport transport;

  QueryServer::Options opts;
  // One byte of result buffering: the first finished-but-unfetched
  // result deterministically trips admission for the demo below.
  opts.max_queued_result_bytes = 1;
  QueryServer server(&transport, kServerNode, opts);
  Check(server.Start().ok(), "server start");

  // A shared updatable array, visible to every client; three commits,
  // each advancing the global epoch.
  Check(server.catalog()
            ->Define(ArraySchema("G", {{"i", 1, 8, 8}},
                                 {{"v", DataType::kDouble, true, false}},
                                 /*updatable=*/true))
            .ok(),
        "define shared G");
  for (int commit = 0; commit < 3; ++commit) {
    std::vector<CellUpdate> batch;
    for (int64_t i = 1; i <= 8; ++i) {
      batch.push_back(
          CellUpdate::Set({i}, {Value(static_cast<double>(commit * 10 + i))}));
    }
    auto epoch = server.catalog()->CommitCells("G", batch);
    Check(epoch.ok(), "commit to G");
    std::printf("writer:  committed batch %d at epoch %lld\n", commit + 1,
                static_cast<long long>(epoch.value()));
  }

  // Two clients: private sessions (Alice's define is invisible to Bob),
  // shared reads of G pinned to the epoch current at execution start.
  QueryClient alice(&transport, 1, kServerNode);
  QueryClient bob(&transport, 2, kServerNode);
  Check(alice.Bind().ok() && bob.Bind().ok(), "client bind");

  Check(alice.Execute("define Vec (v = double) (x)").value().status.ok(),
        "alice define");
  auto bob_sees = bob.Execute("create A as Vec [4]").value();
  std::printf("isolate: bob's `create A as Vec` -> %s\n",
              bob_sees.status.ToString().c_str());

  auto read = alice.Execute("select Filter(G, v > 20.0)").value();
  Check(read.status.ok(), "alice snapshot read");
  std::printf("read:    Filter(G, v > 20.0) = %lld cells at epoch %lld\n",
              static_cast<long long>(read.array->CellCount()),
              static_cast<long long>(read.snapshot_epoch));

  // Admission control: run a query to completion but do not fetch its
  // result. Its buffered bytes exceed the (1-byte) cap, so the next
  // submit is rejected with a typed Busy — never queued. Releasing the
  // first result re-opens admission.
  uint64_t q1 = alice.Submit("select Filter(G, v > 0.0)").value();
  while (!alice.Poll(q1).value().done) {
  }
  auto rejected = bob.Submit("select Filter(G, v > 0.0)");
  std::printf("admit:   submit with result buffers full -> %s\n",
              rejected.ok() ? "admitted?!" : rejected.status().ToString().c_str());
  Check(alice.Await(q1).value().status.ok(), "fetch + release q1");
  Check(bob.Execute("select Filter(G, v > 0.0)").value().status.ok(),
        "bob retries after release");
  std::printf("admit:   after release, the retry ran fine\n");

  // kCancel doubles as abort (running query, observed within one
  // morsel) and release (finished query); either way the id is dead and
  // replays are no-ops.
  uint64_t heavy = bob.Submit("select Window(G, [2], avg(v))").value();
  Check(bob.Cancel(heavy).ok(), "cancel heavy");
  auto done = bob.Poll(heavy).value();
  std::printf("cancel:  polled after cancel -> %s\n",
              Status(static_cast<StatusCode>(done.status_code),
                     done.status_message)
                  .ToString()
                  .c_str());

  server.Shutdown();
  std::printf("server:  shut down, all drivers joined\n");
  return 0;
}
