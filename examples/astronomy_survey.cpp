// LSST-style sky survey (the paper's lead lighthouse customer):
//  1. synthesize a raw focal-plane image with point sources,
//  2. cook it (calibrate) inside the engine (§2.10),
//  3. detect sources and regrid a sky map (§2.2/§2.15 tasks),
//  4. record provenance and trace a suspicious detection back to raw
//     pixels (§2.12),
//  5. distribute the image over a simulated shared-nothing grid and run
//     the same aggregate in parallel (§2.7).
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "cook/cooking.h"
#include "grid/cluster.h"
#include "provenance/provenance.h"

using namespace scidb;

int main() {
  const int64_t kSide = 256;
  FunctionRegistry functions;
  AggregateRegistry aggregates;
  ExecContext ctx{&functions, &aggregates, true, nullptr};

  // --- 1. raw image: sky background + noise + gaussian point sources ---
  ArraySchema raw_schema("raw", {{"x", 1, kSide, 32}, {"y", 1, kSide, 32}},
                         {{"adu", DataType::kDouble, true, false}});
  auto raw = std::make_shared<MemArray>(raw_schema);
  Rng rng(TestSeed(20090101));
  struct Star {
    double x, y, amp;
  };
  std::vector<Star> stars;
  for (int s = 0; s < 40; ++s) {
    stars.push_back({1 + rng.NextDouble() * (kSide - 1),
                     1 + rng.NextDouble() * (kSide - 1),
                     200 + rng.NextDouble() * 800});
  }
  for (int64_t i = 1; i <= kSide; ++i) {
    for (int64_t j = 1; j <= kSide; ++j) {
      double v = 100.0 + rng.NextGaussian() * 3.0;  // bias + read noise
      for (const Star& s : stars) {
        double dx = i - s.x, dy = j - s.y;
        double d2 = dx * dx + dy * dy;
        if (d2 < 40) v += s.amp * std::exp(-d2 / 4.0);
      }
      if (!raw->SetCell({i, j}, Value(v)).ok()) return 1;
    }
  }
  std::printf("raw image: %lldx%lld, %lld pixels\n",
              (long long)kSide, (long long)kSide,
              (long long)raw->CellCount());

  // --- 2. cook: calibrate ADU -> flux (gain 1.7, bias -100) ---
  auto cooked = std::make_shared<MemArray>(
      Calibrate(ctx, *raw, "adu", 1.7, -170.0).ValueOrDie());
  cooked->mutable_schema()->set_name("cooked");

  // --- provenance: log the cooking command ---
  ProvenanceLog log;
  LoggedCommand cook_cmd;
  cook_cmd.text = "cooked = Calibrate(raw, gain=1.7, bias=-170)";
  cook_cmd.inputs = {"raw"};
  cook_cmd.output = "cooked";
  cook_cmd.params = {{"gain", "1.7"}, {"bias", "-170"}};
  cook_cmd.lineage = CellwiseLineage("raw", "cooked");
  cook_cmd.rerun = [ctx, raw] {
    return Calibrate(ctx, *raw, "adu", 1.7, -170.0);
  };
  int64_t cook_id = log.Record(std::move(cook_cmd));

  // --- 3. detect sources on the calibrated attribute ---
  auto detections = DetectSources(*cooked, "adu_cal", 60.0).ValueOrDie();
  std::printf("detected %zu sources; brightest peak=%.1f at %s (%lld px)\n",
              detections.size(), detections[0].peak_value,
              CoordsToString(detections[0].peak).c_str(),
              (long long)detections[0].npix);

  // Regridded 16x16 sky map of mean flux.
  MemArray skymap =
      Regrid(ctx, *cooked, {16, 16}, "avg", "adu_cal").ValueOrDie();
  std::printf("sky map: %lld bins\n", (long long)skymap.CellCount());

  // --- 4. trace the brightest detection back to raw pixels ---
  auto steps =
      log.TraceBack({"cooked", detections[0].peak}).ValueOrDie();
  std::printf("provenance of %s: %zu step(s); first step command #%lld "
              "with %zu contributing raw cell(s)\n",
              CoordsToString(detections[0].peak).c_str(), steps.size(),
              (long long)steps[0].command_id,
              steps[0].contributors.size());
  // Re-derive (no overwrite — the result would be committed as new
  // history, §2.5).
  MemArray rederived = log.Rerun(cook_id).ValueOrDie();
  std::printf("re-derivation reproduced %lld cells\n",
              (long long)rederived.CellCount());

  // --- 5. distribute over a 2x2 grid and aggregate in parallel ---
  auto part = std::make_shared<FixedGridPartitioner>(
      Box({1, 1}, {kSide, kSide}), std::vector<int64_t>{2, 2});
  DistributedArray grid(cooked->schema(), part);
  if (!grid.Load(*cooked, 0).ok()) return 1;
  MemArray total =
      grid.ParallelAggregate(ctx, {}, "sum", "adu_cal").ValueOrDie();
  std::printf("grid: %d nodes, imbalance %.3f, total flux %.1f\n",
              grid.num_nodes(), grid.LoadImbalance(),
              (*total.GetCell({1}))[0].double_value());
  return 0;
}
