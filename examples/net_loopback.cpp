// The grid over real sockets (DESIGN.md §10): distribute an array
// across a 4-node grid whose nodes talk TCP on 127.0.0.1, run a
// parallel aggregate, inject seeded network faults and show the result
// does not change, then partition a node and show the clean error.
//
//   $ ./build/examples/example_net_loopback
#include <cstdio>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/rng.h"
#include "grid/cluster.h"
#include "grid/partitioner.h"

using namespace scidb;

namespace {

constexpr int64_t kSide = 64;
constexpr int64_t kChunk = 16;

ArraySchema SkySchema() {
  return ArraySchema("sky",
                     {{"ra", 1, kSide, kChunk}, {"dec", 1, kSide, kChunk}},
                     {{"flux", DataType::kDouble, true, false}});
}

MemArray MakeSky() {
  MemArray sky(SkySchema());
  Rng rng(TestSeed(7));
  for (int64_t i = 1; i <= kSide; ++i) {
    for (int64_t j = 1; j <= kSide; ++j) {
      Status st = sky.SetCell({i, j}, Value(rng.NextDouble() * 100.0));
      if (!st.ok()) std::abort();
    }
  }
  return sky;
}

double GrandSum(const ExecContext& ctx, DistributedArray* grid) {
  Result<MemArray> sum = grid->ParallelAggregate(ctx, {}, "sum", "flux");
  if (!sum.ok()) std::abort();
  return (*sum.value().GetCell({1}))[0].double_value();
}

}  // namespace

int main() {
  FunctionRegistry functions;
  AggregateRegistry aggregates;
  ExecContext ctx{&functions, &aggregates, true, nullptr};
  MemArray sky = MakeSky();
  auto quad = [] {
    return std::make_shared<FixedGridPartitioner>(
        Box({1, 1}, {kSide, kSide}), std::vector<int64_t>{2, 2});
  };

  // --- 1. a 2x2 grid over loopback TCP: every chunk travels through a
  //        real socket (frames, preambles, kernel buffers) ---
  GridNetOptions tcp;
  tcp.transport = GridNetOptions::TransportKind::kTcp;
  DistributedArray grid(SkySchema(), quad(), tcp);
  if (!grid.Load(sky, 0).ok()) std::abort();
  const double clean_sum = GrandSum(ctx, &grid);
  std::printf("tcp grid:    sum(flux) = %.6f over %lld cells\n", clean_sum,
              static_cast<long long>(grid.TotalCells()));

  // --- 2. the same workload through a seeded lossy network: drops,
  //        duplicates, delays, reorders — retries mask all of it, and
  //        the answer is bit-identical ---
  GridNetOptions lossy;
  lossy.transport = GridNetOptions::TransportKind::kInline;
  lossy.fault_seed = 11;  // what `set net_faults = 11` sets process-wide
  // Some schedules drop one request many times in a row; give retries
  // room so the demo shows masking, not a (correct, clean) Unavailable.
  lossy.call.max_attempts = 20;
  DistributedArray faulty(SkySchema(), quad(), lossy);
  if (!faulty.Load(sky, 0).ok()) std::abort();
  const double faulty_sum = GrandSum(ctx, &faulty);
  std::printf("lossy grid:  sum(flux) = %.6f (%s; dropped=%lld dup=%lld)\n",
              faulty_sum,
              faulty_sum == clean_sum ? "bit-identical" : "MISMATCH",
              static_cast<long long>(faulty.fault_injector()->frames_dropped()),
              static_cast<long long>(
                  faulty.fault_injector()->frames_duplicated()));

  // --- 3. partition a node: calls fail cleanly within the deadline
  //        budget (never hang); healing restores service ---
  faulty.fault_injector()->PartitionNode(2);
  Result<MemArray> cut = faulty.ParallelAggregate(ctx, {}, "sum", "flux");
  std::printf("partitioned: %s\n", cut.ok()
                                       ? "unexpectedly succeeded"
                                       : cut.status().ToString().c_str());
  faulty.fault_injector()->HealPartition(2);
  std::printf("healed:      sum(flux) = %.6f\n", GrandSum(ctx, &faulty));

  // --- 4. what the wire did, from the process metrics registry ---
  Counter* frames = Metrics::Instance().counter("scidb.net.frames_sent");
  Counter* retries = Metrics::Instance().counter("scidb.net.retries");
  std::printf("wire:        %lld frames sent, %lld retries\n",
              static_cast<long long>(frames->value()),
              static_cast<long long>(retries->value()));
  return 0;
}
