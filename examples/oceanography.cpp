// Oceanography (MBARI/OHSU in the paper's requirements group):
//  - a mooring section: depth x station grid where depth levels are
//    IRREGULAR (paper §2.1: "coordinates 16.3, 27.6, 48.2, ...") —
//    addressed through an irregular enhancement,
//  - a circular study region around an eddy via a shape function,
//  - window smoothing of a noisy salinity section,
//  - uncertain temperature with instrument error bars, aggregated with
//    error propagation.
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "exec/operators.h"
#include "udf/enhanced_array.h"

using namespace scidb;

int main() {
  FunctionRegistry functions;
  AggregateRegistry aggregates;
  ExecContext ctx{&functions, &aggregates, true, nullptr};

  // 24 irregular depth levels (tight near the surface, sparse below) and
  // 40 stations along the section.
  std::vector<double> depths;
  double z = 2.0;
  for (int k = 0; k < 24; ++k) {
    depths.push_back(z);
    z *= 1.28;  // 2m, 2.6m, 3.3m, ... ~350m
  }
  const int64_t kDepths = 24, kStations = 40;

  ArraySchema section(
      "section", {{"level", 1, kDepths, 8}, {"station", 1, kStations, 8}},
      {{"temp", DataType::kDouble, true, /*uncertain=*/true},
       {"salinity", DataType::kDouble, true, false}});
  auto arr = std::make_shared<MemArray>(section);
  Rng rng(TestSeed(1234));
  for (int64_t l = 1; l <= kDepths; ++l) {
    double depth = depths[static_cast<size_t>(l - 1)];
    for (int64_t s = 1; s <= kStations; ++s) {
      // Thermocline-ish profile + noise.
      double temp = 4.0 + 14.0 / (1.0 + depth / 30.0) +
                    0.3 * rng.NextGaussian();
      double sal = 33.5 + depth / 400.0 + 0.05 * rng.NextGaussian();
      if (!arr->SetCell({l, s}, {Value(Uncertain(temp, 0.05)), Value(sal)})
               .ok()) {
        return 1;
      }
    }
  }
  std::printf("section: %lld levels x %lld stations\n",
              (long long)kDepths, (long long)kStations);

  // --- irregular depth addressing (paper §2.1) ---
  EnhancedArray enhanced(arr);
  std::vector<std::vector<double>> tables = {
      depths, std::vector<double>()};
  // Station positions in km along the transect: 5 km spacing.
  for (int64_t s = 1; s <= kStations; ++s) {
    tables[1].push_back(5.0 * static_cast<double>(s));
  }
  if (!enhanced
           .Enhance(std::make_shared<IrregularEnhancement>(
               "depth_km", std::vector<std::string>{"depth_m", "along_km"},
               tables))
           .ok()) {
    return 1;
  }
  // section{depth_m = 16.9..., along_km = 100}
  auto probe = enhanced.Project("depth_km", {10, 20}).ValueOrDie();
  std::printf("cell [10, 20] sits at depth %.1f m, %.0f km along track\n",
              probe[0].double_value(), probe[1].double_value());
  auto by_depth = enhanced.GetEnhanced(
      "depth_km", {Value(probe[0].double_value()),
                   Value(probe[1].double_value())});
  if (by_depth.ok()) {
    std::printf("section{%.1f m, %.0f km}.temp = %s\n",
                probe[0].double_value(), probe[1].double_value(),
                by_depth.value()[0].ToString().c_str());
  }

  // --- circular eddy study region via a shape function ---
  auto eddy = std::make_shared<CircleShape>(12, 20, 6);
  ArraySchema eddy_schema = section;
  eddy_schema.set_name("eddy_region");
  auto eddy_arr = std::make_shared<MemArray>(eddy_schema);
  EnhancedArray eddy_enh(eddy_arr);
  if (!eddy_enh.SetShape(eddy).ok()) return 1;
  int64_t inside = 0, rejected = 0;
  arr->ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                       int64_t rank) {
    std::vector<Value> vals;
    for (size_t a = 0; a < chunk.nattrs(); ++a) {
      vals.push_back(chunk.block(a).Get(rank));
    }
    if (eddy_enh.SetCell(c, vals).ok()) {
      ++inside;
    } else {
      ++rejected;
    }
    return true;
  });
  std::printf("eddy region: %lld cells inside the disc, %lld outside "
              "(rejected by the shape function)\n",
              (long long)inside, (long long)rejected);
  DimBounds slice = eddy_enh.ShapeSlice({12, 0}, 1).ValueOrDie();
  std::printf("shape(eddy[12, *]) = [%lld, %lld]\n",
              (long long)slice.low, (long long)slice.high);

  // --- window smoothing of salinity (5-point along-track window) ---
  MemArray smooth =
      WindowAggregate(ctx, *arr, {0, 2}, "avg", "salinity").ValueOrDie();
  double raw_sd =
      (*Aggregate(ctx, *arr, {}, "stddev", "salinity").ValueOrDie()
            .GetCell({1}))[0]
          .double_value();
  double smooth_sd =
      (*Aggregate(ctx, smooth, {}, "stddev", "avg").ValueOrDie()
            .GetCell({1}))[0]
          .double_value();
  std::printf("salinity stddev: raw %.4f -> smoothed %.4f\n", raw_sd,
              smooth_sd);

  // --- uncertain mean temperature per level (error bars propagate) ---
  MemArray level_means =
      Aggregate(ctx, *arr, {"level"}, "uavg", "temp").ValueOrDie();
  Uncertain surface = (*level_means.GetCell({1}))[0].uncertain_value();
  Uncertain deep = (*level_means.GetCell({kDepths}))[0].uncertain_value();
  std::printf("mean temp: surface %.2f±%.3f, deepest %.2f±%.3f\n",
              surface.mean, surface.stderr_, deep.mean, deep.stderr_);
  return 0;
}
