// Quickstart: the paper's own syntax, end to end.
//
//   define Remote (s1 = float, s2 = float, s3 = float) (I, J)
//   create My_remote as Remote [1024, 1024]
//   ... insert cells, query with Subsample / Aggregate / Exists.
//
// Build & run:  ./build/examples/example_quickstart
#include <cstdio>

#include "query/session.h"

using namespace scidb;

static void Run(Session& session, const std::string& stmt) {
  auto result = session.Execute(stmt);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n  in: %s\n",
                 result.status().ToString().c_str(), stmt.c_str());
    std::exit(1);
  }
  const QueryResult& r = result.value();
  switch (r.kind) {
    case QueryResult::Kind::kNone:
      std::printf("> %-60s -- %s\n", stmt.c_str(), r.message.c_str());
      break;
    case QueryResult::Kind::kBool:
      std::printf("> %-60s -- %s\n", stmt.c_str(),
                  r.boolean ? "true" : "false");
      break;
    case QueryResult::Kind::kArray:
      std::printf("> %-60s -- %lld cells\n", stmt.c_str(),
                  static_cast<long long>(r.array->CellCount()));
      break;
    case QueryResult::Kind::kCells:
      std::printf("> %-60s -- %zu cells traced\n", stmt.c_str(),
                  r.cells.size());
      break;
    case QueryResult::Kind::kValues:
      std::printf("> %-60s -- %zu value(s)\n", stmt.c_str(),
                  r.values.size());
      break;
  }
}

int main() {
  Session session;

  // The paper's running example (§2.1).
  Run(session, "define Remote (s1 = float, s2 = float, s3 = float) (I, J)");
  Run(session, "create My_remote as Remote [1024, 1024]");

  // Load a small region.
  for (int64_t i = 1; i <= 32; ++i) {
    for (int64_t j = 1; j <= 32; ++j) {
      Run(session, "insert My_remote [" + std::to_string(i) + ", " +
                       std::to_string(j) + "] values (" +
                       std::to_string(i * j) + ".0, " +
                       std::to_string(i + j) + ".0, 0.5)");
    }
  }

  // A[7, 8].s1 via the C++ binding.
  auto arr = session.GetArray("My_remote").ValueOrDie();
  auto cell = arr->GetCell({7, 8});
  std::printf("A[7,8].s1 = %s\n", (*cell)[0].ToString().c_str());

  // Structural and content operators (§2.2).
  Run(session, "select Exists(My_remote, 7, 7)");
  Run(session, "select Subsample(My_remote, even(I) and J <= 8)");
  Run(session, "select Filter(My_remote, s1 > 500)");
  Run(session, "select Aggregate(My_remote, {I}, sum(s1))");
  Run(session, "select Regrid(My_remote, [8, 8], avg(s1))");
  Run(session, "store Subsample(My_remote, I <= 4 and J <= 4) into Corner");
  Run(session, "select Aggregate(Corner, {}, count(s1))");

  std::printf("quickstart done.\n");
  return 0;
}
