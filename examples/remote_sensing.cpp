// Remote sensing (the paper's §2.1/§2.11/§2.13 running domain):
//  - three satellite passes over one grid, each with per-pixel cloud
//    cover and nadir angle,
//  - production cooking composites by least cloud cover; a scientist's
//    named version re-cooks a study region by nearest-overhead (§2.11),
//  - uncertainty: reflectance carries error bars, aggregates propagate
//    them (§2.13),
//  - enhancements: Mercator lat/lon addressing (§2.1),
//  - in-situ: the composite is also written to / read from a NetCDF-like
//    file without a load step (§2.9).
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "cook/cooking.h"
#include "insitu/formats.h"
#include "udf/enhanced_array.h"
#include "version/named_version.h"

using namespace scidb;

int main() {
  const int64_t kSide = 64;
  FunctionRegistry functions;
  AggregateRegistry aggregates;
  ExecContext ctx{&functions, &aggregates, true, nullptr};

  ArraySchema pass_schema(
      "pass", {{"row", 1, kSide, 16}, {"col", 1, kSide, 16}},
      {{"refl", DataType::kDouble, true, /*uncertain=*/true},
       {"cloud", DataType::kDouble, true, false},
       {"nadir", DataType::kDouble, true, false}});

  // --- three passes with different cloud fields ---
  Rng rng(TestSeed(42));
  std::vector<MemArray> passes;
  for (int p = 0; p < 3; ++p) {
    MemArray pass(pass_schema);
    for (int64_t i = 1; i <= kSide; ++i) {
      for (int64_t j = 1; j <= kSide; ++j) {
        double refl = 0.2 + 0.1 * std::sin(i * 0.2) * std::cos(j * 0.15) +
                      0.02 * rng.NextGaussian();
        double cloud = rng.NextDouble();
        double nadir = std::fabs(static_cast<double>(j) -
                                 (16 + p * 16));  // swath center per pass
        // Every reflectance carries the instrument's 1-sigma error bar —
        // constant per pass, so storage cost is negligible (§2.13).
        if (!pass.SetCell({i, j}, {Value(Uncertain(refl, 0.01)),
                                   Value(cloud), Value(nadir)})
                 .ok()) {
          return 1;
        }
      }
    }
    passes.push_back(std::move(pass));
  }

  // --- production cooking: least cloud cover ---
  MemArray production =
      Composite({&passes[0], &passes[1], &passes[2]}, "cloud").ValueOrDie();
  std::printf("composite (least cloud): %lld cells\n",
              (long long)production.CellCount());

  // --- named version with an alternative algorithm for a study region ---
  VersionTree tree(pass_schema);
  std::vector<CellUpdate> base_load;
  production.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                             int64_t rank) {
    std::vector<Value> vals;
    for (size_t a = 0; a < chunk.nattrs(); ++a) {
      vals.push_back(chunk.block(a).Get(rank));
    }
    base_load.push_back(CellUpdate::Set(c, vals));
    return true;
  });
  if (!tree.Commit("", base_load, 1000).ok()) return 1;
  if (!tree.CreateVersion("overhead_study", "").ok()) return 1;
  std::printf("version 'overhead_study' created: %zu delta bytes (free "
              "until it diverges)\n",
              tree.VersionByteSize("overhead_study").ValueOrDie());

  MemArray alt =
      Composite({&passes[0], &passes[1], &passes[2]}, "nadir").ValueOrDie();
  std::vector<CellUpdate> patch;
  alt.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                      int64_t rank) {
    if (c[0] > 16 || c[1] > 16) return true;  // study region only
    std::vector<Value> vals;
    for (size_t a = 0; a < chunk.nattrs(); ++a) {
      vals.push_back(chunk.block(a).Get(rank));
    }
    patch.push_back(CellUpdate::Set(c, vals));
    return true;
  });
  if (!tree.Commit("overhead_study", patch, 2000).ok()) return 1;
  std::printf("after divergence: version stores %zu bytes; base %zu\n",
              tree.VersionByteSize("overhead_study").ValueOrDie(),
              tree.VersionByteSize("").ValueOrDie());

  // --- uncertainty-aware aggregate over the production composite ---
  MemArray mean =
      Aggregate(ctx, production, {}, "uavg", "refl").ValueOrDie();
  Uncertain m = (*mean.GetCell({1}))[0].uncertain_value();
  std::printf("mean reflectance = %.4f +/- %.6f (error bars propagated)\n",
              m.mean, m.stderr_);

  // --- Mercator enhancement: address cells by lat/lon (§2.1) ---
  auto base_arr = std::make_shared<MemArray>(production);
  EnhancedArray enhanced(base_arr);
  if (!enhanced
           .Enhance(std::make_shared<MercatorEnhancement>("merc", kSide,
                                                          kSide))
           .ok()) {
    return 1;
  }
  auto at_equator =
      enhanced.GetEnhanced("merc", {Value(0.5), Value(-1.0)});
  if (at_equator.ok()) {
    std::printf("composite{lat=0.5, lon=-1.0}.refl = %s\n",
                at_equator.value()[0].ToString().c_str());
  }

  // --- in-situ round trip via the NetCDF-like format (§2.9) ---
  NcFileContents nc;
  nc.dimensions = {{"row", kSide}, {"col", kSide}};
  NcVariable refl;
  refl.name = "reflectance";
  refl.dim_ids = {0, 1};
  refl.data.resize(static_cast<size_t>(kSide * kSide), 0.0);
  Box bounds({1, 1}, {kSide, kSide});
  production.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                             int64_t rank) {
    auto v = chunk.block(0).Get(rank).AsDouble();
    refl.data[static_cast<size_t>(RankInBox(bounds, c))] =
        v.ok() ? v.value() : 0.0;
    return true;
  });
  nc.variables.push_back(std::move(refl));
  nc.attributes = {{"source", "scidb-repro remote_sensing example"}};
  std::string path = "/tmp/scidb_remote_sensing.snc";
  if (!WriteNcFile(path, nc).ok()) return 1;

  auto adaptor =
      NcVariableAdaptor::Open(path, "reflectance", "ext_refl").ValueOrDie();
  MemArray window =
      adaptor->ReadRegion(Box({1, 1}, {8, 8})).ValueOrDie();
  std::printf("in-situ window from %s: %lld cells, %lld bytes touched\n",
              path.c_str(), (long long)window.CellCount(),
              (long long)adaptor->bytes_read());
  return 0;
}
