// Interactive AQL shell: type the paper's statements, see results.
//
//   $ ./build/examples/example_aql_shell
//   scidb> define Remote (s1 = float) (I, J)
//   scidb> create A as Remote [8, 8]
//   scidb> insert A [1, 2] values (3.5)
//   scidb> select Aggregate(A, {}, sum(s1))
//
// Meta commands: \list (arrays), \schema <name>, \dump <name>, \quit.
#include <cstdio>
#include <iostream>
#include <string>

#include "query/session.h"

using namespace scidb;

namespace {

void PrintArray(const MemArray& a, int64_t limit = 20) {
  std::printf("%s  (%lld cells)\n", a.schema().ToString().c_str(),
              static_cast<long long>(a.CellCount()));
  int64_t shown = 0;
  a.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                    int64_t rank) {
    if (shown++ >= limit) return false;
    std::string row = CoordsToString(c) + " = (";
    for (size_t at = 0; at < chunk.nattrs(); ++at) {
      if (at) row += ", ";
      row += chunk.block(at).Get(rank).ToString();
    }
    row += ")";
    std::printf("  %s\n", row.c_str());
    return true;
  });
  if (a.CellCount() > limit) {
    std::printf("  ... %lld more\n",
                static_cast<long long>(a.CellCount() - limit));
  }
}

}  // namespace

int main() {
  Session session;
  std::printf("SciDB-Repro AQL shell. \\quit to exit, \\list for arrays.\n");
  std::string line;
  while (true) {
    std::printf("scidb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;

    if (line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\list") {
        for (const auto& name : session.ArrayNames()) {
          std::printf("  %s\n", name.c_str());
        }
        continue;
      }
      if (line.rfind("\\schema ", 0) == 0) {
        auto arr = session.GetArray(line.substr(8));
        if (arr.ok()) {
          std::printf("  %s\n", arr.value()->schema().ToString().c_str());
        } else {
          std::printf("  error: %s\n", arr.status().ToString().c_str());
        }
        continue;
      }
      if (line.rfind("\\dump ", 0) == 0) {
        auto arr = session.GetArray(line.substr(6));
        if (arr.ok()) {
          PrintArray(*arr.value());
        } else {
          std::printf("  error: %s\n", arr.status().ToString().c_str());
        }
        continue;
      }
      std::printf("  unknown meta command\n");
      continue;
    }

    auto result = session.Execute(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    const QueryResult& r = result.value();
    switch (r.kind) {
      case QueryResult::Kind::kNone:
        std::printf("%s\n", r.message.c_str());
        break;
      case QueryResult::Kind::kBool:
        std::printf("%s\n", r.boolean ? "true" : "false");
        break;
      case QueryResult::Kind::kArray:
        PrintArray(*r.array);
        break;
      case QueryResult::Kind::kCells:
        std::printf("%s\n", r.message.c_str());
        for (const auto& cell : r.cells) {
          std::printf("  %s\n", cell.ToString().c_str());
        }
        break;
      case QueryResult::Kind::kExplain:
        std::printf("%s", r.message.c_str());
        break;
      case QueryResult::Kind::kValues: {
        std::string row = "(";
        for (size_t i = 0; i < r.values.size(); ++i) {
          if (i) row += ", ";
          row += r.values[i].ToString();
        }
        row += ")";
        std::printf("%s\n", row.c_str());
        break;
      }
    }
  }
  std::printf("bye.\n");
  return 0;
}
