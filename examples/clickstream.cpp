// eBay clickstream analytics (paper §2.14): the click log is a
// one-dimensional time-series array whose cells embed the array of search
// results surfaced at that moment. UDFs + built-in operators answer "how
// relevant is the keyword search engine?" — including analysis of the
// user-IGNORED content, which weblog tools cannot see.
#include <cstdio>
#include <memory>

#include "common/macros.h"
#include "common/rng.h"
#include "exec/operators.h"
#include "query/session.h"

using namespace scidb;

int main() {
  const int64_t kEvents = 20000;
  Session session;
  ExecContext ctx = session.MakeContext();

  // Event log: time -> (session id, clicked position, impressions array).
  // clicked < 0 means "left without clicking".
  ArraySchema log_schema(
      "clicks", {{"t", 1, kEvents, 1024}},
      {{"session", DataType::kInt64, true, false},
       {"clicked_pos", DataType::kInt64, true, false},
       {"impressions", DataType::kArray, true, false}});
  auto log = std::make_shared<MemArray>(log_schema);

  Rng rng(TestSeed(777));
  int64_t session_id = 1;
  for (int64_t t = 1; t <= kEvents; ++t) {
    if (rng.NextDouble() < 0.1) ++session_id;  // new user session
    // The result page surfaced at this step: item ids, Zipf-popular.
    auto impressions = std::make_shared<NestedArray>();
    int64_t shown = 10;
    impressions->shape = {shown};
    for (int64_t k = 0; k < shown; ++k) {
      impressions->values.emplace_back(
          static_cast<double>(rng.Zipf(5000, 1.1)));
    }
    // Users click lower positions more; 25% of views get no click.
    int64_t clicked = -1;
    if (rng.NextDouble() > 0.25) {
      clicked = std::min<int64_t>(shown - 1, rng.Zipf(shown, 1.3));
    }
    if (!log->SetCell({t}, {Value(session_id), Value(clicked),
                            Value(impressions)})
             .ok()) {
      return 1;
    }
  }
  if (!session.RegisterArray(log).ok()) return 1;
  std::printf("click log: %lld events, %lld sessions\n",
              (long long)kEvents, (long long)session_id);

  // --- UDF: was the click below the fold (position > 5)? ---
  if (!session.functions()
           ->Register(UserFunction(
               "below_fold", {{DataType::kInt64}, {DataType::kBool}},
               [](const std::vector<Value>& args)
                   -> Result<std::vector<Value>> {
                 ASSIGN_OR_RETURN(int64_t pos, args[0].AsInt64());
                 return std::vector<Value>{Value(pos > 5)};
               }))
           .ok()) {
    return 1;
  }

  // Abandonment rate: events with no click at all. The search strategy is
  // "flawed" for these queries (paper: the top items were not of
  // interest).
  auto abandoned = session
                       .Execute("select Aggregate(Filter(clicks, "
                                "clicked_pos < 0), {}, count(session))")
                       .ValueOrDie();
  int64_t no_click =
      (*abandoned.array->GetCell({1}))[0].int64_value();

  auto deep = session
                  .Execute("select Aggregate(Filter(clicks, "
                           "below_fold(clicked_pos)), {}, count(session))")
                  .ValueOrDie();
  int64_t below_fold = (*deep.array->GetCell({1}))[0].int64_value();
  std::printf("abandoned: %lld (%.1f%%); clicks below fold: %lld (%.1f%%)\n",
              (long long)no_click, 100.0 * no_click / kEvents,
              (long long)below_fold, 100.0 * below_fold / kEvents);

  // --- ignored-content analysis: which items keep being surfaced but
  //     never clicked? Scan the embedded impression arrays. ---
  std::map<int64_t, std::pair<int64_t, int64_t>> item_stats;  // shown, hit
  log->ForEachCell([&](const Coordinates&, const Chunk& chunk,
                       int64_t rank) {
    Value imp = chunk.block(2).Get(rank);
    int64_t clicked = chunk.block(1).GetInt64(rank);
    if (!imp.is_array()) return true;
    const auto& items = imp.array_value()->values;
    for (size_t k = 0; k < items.size(); ++k) {
      int64_t item = static_cast<int64_t>(items[k].double_value());
      auto& [shown, hit] = item_stats[item];
      ++shown;
      if (clicked == static_cast<int64_t>(k)) ++hit;
    }
    return true;
  });
  int64_t surfaced_never_clicked = 0;
  int64_t best_item = -1;
  int64_t best_shown = 0;
  for (const auto& [item, sh] : item_stats) {
    if (sh.second == 0 && sh.first >= 20) {
      ++surfaced_never_clicked;
      if (sh.first > best_shown) {
        best_shown = sh.first;
        best_item = item;
      }
    }
  }
  std::printf("items surfaced >=20 times with zero clicks: %lld "
              "(worst offender: item %lld, %lld impressions)\n",
              (long long)surfaced_never_clicked, (long long)best_item,
              (long long)best_shown);

  // --- session-level funnel via Aggregate on the time series ---
  auto per_session =
      session.Execute("select Aggregate(clicks, {}, count(clicked_pos))")
          .ValueOrDie();
  std::printf("total logged events: %lld\n",
              (long long)(*per_session.array->GetCell({1}))[0].int64_value());

  // Windowed click-through rate along time (Regrid over the 1-D series):
  // fraction of events with a click per window of 2048 events.
  MemArray clicked_flag =
      Apply(ctx, *log, "has_click", DataType::kDouble,
            Bin(BinaryOp::kGe, Ref("clicked_pos"), Lit(int64_t{0})))
          .ValueOrDie();
  // has_click is bool -> coerced 0/1 when aggregated as double.
  MemArray ctr =
      Regrid(ctx, clicked_flag, {2048}, "avg", "has_click").ValueOrDie();
  std::printf("windowed CTR (%lld windows): first=%.3f last=%.3f\n",
              (long long)ctr.CellCount(),
              (*ctr.GetCell({1}))[0].double_value(),
              (*ctr.GetCell({ctr.CellCount()}))[0].double_value());
  return 0;
}
