// AQL parser harness: arbitrary bytes must never crash the
// lexer/parser, and for every statement that parses, print -> re-parse
// must be a fixed point (DESIGN.md §9). Found for real: std::stoll /
// std::stod throwing out_of_range on oversized numeric literals, and
// stack exhaustion on deeply nested "((((" / "not not" / "Filter(Filter("
// inputs.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "query/aql_printer.h"
#include "query/parser.h"

namespace {

[[noreturn]] void Fail(const char* property, const std::string& detail) {
  std::fprintf(stderr, "fuzz_parser: %s\n%s\n", property, detail.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);
  auto parsed = scidb::ParseStatement(input, nullptr);
  if (!parsed.ok()) return 0;  // rejecting is fine; crashing is not

  // Accepted statements must print, and the printed form is canonical:
  // it re-parses, and printing the re-parse reproduces it byte for byte.
  auto printed = scidb::StatementToAql(parsed.value());
  if (!printed.ok()) {
    Fail("parsed statement failed to print",
         input + "\n" + printed.status().ToString());
  }
  auto reparsed = scidb::ParseStatement(printed.value(), nullptr);
  if (!reparsed.ok()) {
    Fail("printed statement failed to re-parse",
         printed.value() + "\n" + reparsed.status().ToString());
  }
  auto printed2 = scidb::StatementToAql(reparsed.value());
  if (!printed2.ok()) {
    Fail("re-parsed statement failed to print", printed.value());
  }
  if (printed2.value() != printed.value()) {
    Fail("print -> parse -> print is not a fixed point",
         printed.value() + "\n!=\n" + printed2.value());
  }
  return 0;
}
