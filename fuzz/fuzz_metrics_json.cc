// Metrics JSON harness: SnapshotFromJson over arbitrary bytes must
// return a Status (never crash; its integer parsing saturates rather
// than overflows), and any snapshot it accepts must round-trip through
// SnapshotToJson losslessly.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/metrics.h"

namespace {

[[noreturn]] void Fail(const char* property, const std::string& detail) {
  std::fprintf(stderr, "fuzz_metrics_json: %s\n%s\n", property,
               detail.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);
  auto snap = scidb::SnapshotFromJson(input);
  if (!snap.ok()) return 0;

  std::string json = scidb::SnapshotToJson(snap.value());
  auto snap2 = scidb::SnapshotFromJson(json);
  if (!snap2.ok()) {
    Fail("exported snapshot failed to re-parse", json);
  }
  std::string json2 = scidb::SnapshotToJson(snap2.value());
  if (json2 != json) {
    Fail("json -> snapshot -> json is not a fixed point",
         json + "\n!=\n" + json2);
  }
  return 0;
}
