// Network frame harness: DecodeFrame over arbitrary bytes must return a
// Status — never throw, read past the buffer, or allocate from a hostile
// length field (the payload cap is checked before any allocation). Three
// properties hold for every input:
//
//   1. Accepted bytes are an encode fixed point: EncodeFrame(decoded)
//      reproduces the input exactly (header layout, CRC, payload).
//   2. The streaming path agrees with the whole-buffer path: feeding the
//      same bytes through FrameAssembler yields the same accept/reject
//      decision and the same frame.
//   3. A frame's payload feeds the typed message decoder matching its
//      type; the decoder must reject or round-trip, never misbehave.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "net/frame.h"
#include "net/message.h"

namespace {

[[noreturn]] void Fail(const char* property) {
  std::fprintf(stderr, "fuzz_frame: %s\n", property);
  std::fflush(stderr);
  std::abort();
}

// The typed decoders each own the "reject or round-trip" contract; a
// decode that succeeds must re-encode to the exact payload bytes.
void CheckPayload(const scidb::net::Frame& frame) {
  using scidb::net::MessageType;
  switch (frame.type) {
    case MessageType::kChunkPut: {
      auto m = scidb::net::ChunkPutRequest::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("ChunkPutRequest decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kChunkGet: {
      auto m = scidb::net::ChunkGetRequest::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("ChunkGetRequest decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kScanShard: {
      auto m = scidb::net::ScanShardRequest::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("ScanShardRequest decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kNodeStatsReq: {
      auto m = scidb::net::NodeStatsResponse::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("NodeStatsResponse decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kAck: {
      auto m = scidb::net::ScanShardResponse::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("ScanShardResponse decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kMetricsGet: {
      auto m = scidb::net::MetricsGetRequest::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("MetricsGetRequest decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kTraceGet: {
      auto m = scidb::net::TraceGetRequest::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("TraceGetRequest decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kMarkDead: {
      auto m = scidb::net::MarkDeadRequest::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("MarkDeadRequest decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kQuery: {
      auto m = scidb::net::QueryRequest::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("QueryRequest decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kResultChunk: {
      auto m = scidb::net::ResultChunkRequest::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("ResultChunkRequest decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kQueryDone: {
      // The response is the interesting decoder (status + schema on the
      // wire), so the harness aims it at the kQueryDone payload even
      // though live traffic carries it inside kAck.
      auto m = scidb::net::QueryDoneResponse::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("QueryDoneResponse decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kCancel: {
      auto m = scidb::net::CancelRequest::Decode(frame.payload);
      if (m.ok() && m.value().EncodePayload() != frame.payload) {
        Fail("CancelRequest decode/encode is not a fixed point");
      }
      break;
    }
    case MessageType::kError: {
      scidb::Status transported;
      (void)scidb::net::DecodeErrorPayload(frame.payload, &transported);
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::vector<uint8_t> bytes(data, data + size);

  auto whole = scidb::net::DecodeFrame(bytes);

  // Streaming reassembly must reach the same verdict on the same bytes.
  scidb::net::FrameAssembler assembler;
  assembler.Append(bytes.data(), bytes.size());
  scidb::net::Frame streamed;
  auto got = assembler.Next(&streamed);

  if (whole.ok()) {
    if (!got.ok() || !got.value()) {
      Fail("assembler rejected a frame the whole-buffer decoder accepted");
    }
    const std::vector<uint8_t> out = scidb::net::EncodeFrame(whole.value());
    if (out != bytes) Fail("decode -> encode is not a fixed point");
    if (scidb::net::EncodeFrame(streamed) != out) {
      Fail("assembler and whole-buffer decoder disagree on frame contents");
    }
    CheckPayload(whole.value());
  }
  return 0;
}
