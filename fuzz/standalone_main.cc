// Replay driver for the fuzz harnesses when libFuzzer is unavailable
// (GCC builds, or clang without SCIDB_FUZZ). Feeds every file named on
// the command line — directories are walked recursively — through
// LLVMFuzzerTestOneInput exactly once, which is how the checked-in
// corpora run as regression tests under ctest in every build
// configuration. With SCIDB_FUZZ=ON this file is not linked; libFuzzer
// provides main().

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                               bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path p(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(p)) {
        if (!entry.is_regular_file()) continue;
        if (RunFile(entry.path()) != 0) return 1;
        ++ran;
      }
    } else {
      if (RunFile(p) != 0) return 1;
      ++ran;
    }
  }
  std::fprintf(stderr, "replayed %d input(s), no crashes\n", ran);
  return 0;
}
