// Chunk decode harness: DeserializeChunk over arbitrary bytes must
// return a Status — never throw, overflow, or allocate unboundedly —
// and anything it accepts must survive a serialize/deserialize round
// trip. Found for real: Box::CellCount() signed-multiply overflow and
// multi-GB allocations from hostile box extents, and unchecked nested
// array rank/size varints driving resize()/reserve() with 2^60 counts.
//
// The first input byte selects one of four attribute manifests so the
// fuzzer can explore every value codec (delta-coded int64, float,
// double, string, bool, nested array, constant-stderr uncertain).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "array/chunk.h"
#include "storage/chunk_serde.h"

namespace {

std::vector<scidb::AttributeDesc> Manifest(uint8_t selector) {
  using scidb::AttributeDesc;
  using scidb::DataType;
  std::vector<AttributeDesc> attrs;
  switch (selector % 4) {
    case 0:
      attrs.push_back({"v", DataType::kInt64, false});
      break;
    case 1:
      attrs.push_back({"d", DataType::kDouble, false});
      attrs.push_back({"s", DataType::kString, false});
      break;
    case 2:
      attrs.push_back({"m", DataType::kFloat, true});  // uncertain (§2.13)
      attrs.push_back({"b", DataType::kBool, false});
      break;
    default:
      attrs.push_back({"a", DataType::kArray, false});
      break;
  }
  return attrs;
}

[[noreturn]] void Fail(const char* property) {
  std::fprintf(stderr, "fuzz_chunk_serde: %s\n", property);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  std::vector<scidb::AttributeDesc> attrs = Manifest(data[0]);
  std::vector<uint8_t> bytes(data + 1, data + size);

  auto chunk = scidb::DeserializeChunk(bytes, attrs);
  if (!chunk.ok()) return 0;  // rejecting corrupt bytes is the job

  // Accepted bytes decode to a chunk the encoder can reproduce: the
  // re-serialization must decode again, to a chunk that serializes
  // identically (value-level losslessness).
  std::vector<uint8_t> out = scidb::SerializeChunk(chunk.value());
  auto again = scidb::DeserializeChunk(out, attrs);
  if (!again.ok()) Fail("re-serialized chunk failed to decode");
  if (scidb::SerializeChunk(again.value()) != out) {
    Fail("serialize -> deserialize -> serialize is not a fixed point");
  }
  return 0;
}
