// Distributed execution must be semantically invisible: for any data and
// any partitioner, parallel results equal serial results, and
// repartitioning never loses or duplicates cells.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "grid/cluster.h"

namespace scidb {
namespace {

struct Params {
  uint64_t seed;
  int scheme;  // 0 = fixed, 1 = hash, 2 = range
};

class GridPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {
 protected:
  GridPropertyTest() {
    ctx_.functions = &fns_;
    ctx_.aggregates = &aggs_;
  }

  static constexpr int64_t kSide = 48;

  ArraySchema Schema() {
    return ArraySchema("g", {{"x", 1, kSide, 6}, {"y", 1, kSide, 6}},
                       {{"v", DataType::kDouble, true, false}});
  }

  std::shared_ptr<const Partitioner> Scheme(int kind) {
    switch (kind) {
      case 0:
        return std::make_shared<FixedGridPartitioner>(
            Box({1, 1}, {kSide, kSide}), std::vector<int64_t>{2, 2});
      case 1:
        return std::make_shared<HashPartitioner>(4);
      default:
        return std::make_shared<RangePartitioner>(
            0, std::vector<int64_t>{12, 24, 36});
    }
  }

  MemArray RandomData(uint64_t seed, double density) {
    MemArray a(Schema());
    Rng rng(TestSeed(seed));
    for (int64_t x = 1; x <= kSide; ++x) {
      for (int64_t y = 1; y <= kSide; ++y) {
        if (rng.NextDouble() < density) {
          SCIDB_CHECK(
              a.SetCell({x, y}, Value(rng.NextDouble() * 100)).ok());
        }
      }
    }
    return a;
  }

  FunctionRegistry fns_;
  AggregateRegistry aggs_;
  ExecContext ctx_;
};

TEST_P(GridPropertyTest, ParallelAggregateEqualsSerial) {
  auto [seed, scheme] = GetParam();
  MemArray src = RandomData(seed, 0.4);
  DistributedArray d(Schema(), Scheme(scheme));
  ASSERT_TRUE(d.Load(src, 0).ok());
  EXPECT_EQ(d.TotalCells(), src.CellCount());

  for (const char* agg : {"sum", "count", "min", "max", "avg"}) {
    MemArray par = d.ParallelAggregate(ctx_, {"x"}, agg, "v").ValueOrDie();
    MemArray ser = Aggregate(ctx_, src, {"x"}, agg, "v").ValueOrDie();
    ASSERT_EQ(par.CellCount(), ser.CellCount()) << agg;
    ser.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                        int64_t rank) {
      auto got = par.GetCell(c);
      EXPECT_TRUE(got.has_value()) << agg;
      if (got.has_value()) {
        auto want = chunk.block(0).Get(rank);
        if (want.is_null()) {
          EXPECT_TRUE((*got)[0].is_null()) << agg;
        } else {
          EXPECT_NEAR((*got)[0].AsDouble().ValueOrDie(),
                      want.AsDouble().ValueOrDie(), 1e-9)
              << agg << " at " << CoordsToString(c);
        }
      }
      return true;
    });
  }
}

TEST_P(GridPropertyTest, ParallelSjoinEqualsSerial) {
  auto [seed, scheme] = GetParam();
  MemArray a_src = RandomData(seed, 0.3);
  ArraySchema sb("h", {{"x", 1, kSide, 6}, {"y", 1, kSide, 6}},
                 {{"w", DataType::kDouble, true, false}});
  MemArray b_src(sb);
  Rng rng(TestSeed(seed + 99));
  for (int64_t x = 1; x <= kSide; ++x) {
    for (int64_t y = 1; y <= kSide; ++y) {
      if (rng.NextDouble() < 0.3) {
        SCIDB_CHECK(b_src.SetCell({x, y}, Value(rng.NextDouble())).ok());
      }
    }
  }
  DistributedArray da(a_src.schema(), Scheme(scheme));
  ASSERT_TRUE(da.Load(a_src, 0).ok());
  // Deliberately different partitioning for b: forces movement.
  DistributedArray db(sb, Scheme((scheme + 1) % 3));
  ASSERT_TRUE(db.Load(b_src, 0).ok());

  int64_t moved = 0;
  MemArray par =
      da.ParallelSjoin(ctx_, db, {{"x", "x"}, {"y", "y"}}, &moved)
          .ValueOrDie();
  MemArray ser =
      Sjoin(ctx_, a_src, b_src, {{"x", "x"}, {"y", "y"}}).ValueOrDie();
  EXPECT_EQ(par.CellCount(), ser.CellCount());
  ser.ForEachCell([&](const Coordinates& c, const Chunk&, int64_t) {
    EXPECT_TRUE(par.Exists(c)) << CoordsToString(c);
    return true;
  });
}

TEST_P(GridPropertyTest, RepartitionPreservesEveryCell) {
  auto [seed, scheme] = GetParam();
  MemArray src = RandomData(seed, 0.5);
  DistributedArray d(Schema(), Scheme(scheme));
  ASSERT_TRUE(d.Load(src, 0).ok());
  // Bounce through the other two schemes and back.
  for (int next : {(scheme + 1) % 3, (scheme + 2) % 3, scheme}) {
    ASSERT_TRUE(d.Repartition(Scheme(next), 0).ok());
    EXPECT_EQ(d.TotalCells(), src.CellCount());
  }
  // Every original cell is still present on exactly one node with the
  // right value.
  src.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                      int64_t rank) {
    int found = 0;
    double value = 0;
    for (int node = 0; node < d.num_nodes(); ++node) {
      auto cell = d.shard(node).GetCell(c);
      if (cell.has_value()) {
        ++found;
        value = (*cell)[0].double_value();
      }
    }
    EXPECT_EQ(found, 1) << CoordsToString(c);
    EXPECT_EQ(value, chunk.block(0).GetDouble(rank));
    return true;
  });
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<uint64_t, int>>& info) {
  static const char* kNames[] = {"fixed", "hash", "range"};
  return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
         kNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSchemes, GridPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(7, 19, 31),
                       ::testing::Values(0, 1, 2)),
    ParamName);

}  // namespace
}  // namespace scidb
