// Distributed execution must be semantically invisible: for any data and
// any partitioner, parallel results equal serial results, and
// repartitioning never loses or duplicates cells. The replica-placement
// properties (DESIGN.md §13) live here too: k distinct nodes per chunk,
// placement stability under node-set identity, bounded replica spread,
// and monotone recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "grid/cluster.h"
#include "net/rpc.h"

namespace scidb {
namespace {

struct Params {
  uint64_t seed;
  int scheme;  // 0 = fixed, 1 = hash, 2 = range
};

class GridPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {
 protected:
  GridPropertyTest() {
    ctx_.functions = &fns_;
    ctx_.aggregates = &aggs_;
  }

  static constexpr int64_t kSide = 48;

  ArraySchema Schema() {
    return ArraySchema("g", {{"x", 1, kSide, 6}, {"y", 1, kSide, 6}},
                       {{"v", DataType::kDouble, true, false}});
  }

  std::shared_ptr<const Partitioner> Scheme(int kind) {
    switch (kind) {
      case 0:
        return std::make_shared<FixedGridPartitioner>(
            Box({1, 1}, {kSide, kSide}), std::vector<int64_t>{2, 2});
      case 1:
        return std::make_shared<HashPartitioner>(4);
      default:
        return std::make_shared<RangePartitioner>(
            0, std::vector<int64_t>{12, 24, 36});
    }
  }

  MemArray RandomData(uint64_t seed, double density) {
    MemArray a(Schema());
    Rng rng(TestSeed(seed));
    for (int64_t x = 1; x <= kSide; ++x) {
      for (int64_t y = 1; y <= kSide; ++y) {
        if (rng.NextDouble() < density) {
          SCIDB_CHECK(
              a.SetCell({x, y}, Value(rng.NextDouble() * 100)).ok());
        }
      }
    }
    return a;
  }

  FunctionRegistry fns_;
  AggregateRegistry aggs_;
  ExecContext ctx_;
};

TEST_P(GridPropertyTest, ParallelAggregateEqualsSerial) {
  auto [seed, scheme] = GetParam();
  MemArray src = RandomData(seed, 0.4);
  DistributedArray d(Schema(), Scheme(scheme));
  ASSERT_TRUE(d.Load(src, 0).ok());
  EXPECT_EQ(d.TotalCells(), src.CellCount());

  for (const char* agg : {"sum", "count", "min", "max", "avg"}) {
    MemArray par = d.ParallelAggregate(ctx_, {"x"}, agg, "v").ValueOrDie();
    MemArray ser = Aggregate(ctx_, src, {"x"}, agg, "v").ValueOrDie();
    ASSERT_EQ(par.CellCount(), ser.CellCount()) << agg;
    ser.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                        int64_t rank) {
      auto got = par.GetCell(c);
      EXPECT_TRUE(got.has_value()) << agg;
      if (got.has_value()) {
        auto want = chunk.block(0).Get(rank);
        if (want.is_null()) {
          EXPECT_TRUE((*got)[0].is_null()) << agg;
        } else {
          EXPECT_NEAR((*got)[0].AsDouble().ValueOrDie(),
                      want.AsDouble().ValueOrDie(), 1e-9)
              << agg << " at " << CoordsToString(c);
        }
      }
      return true;
    });
  }
}

TEST_P(GridPropertyTest, ParallelSjoinEqualsSerial) {
  auto [seed, scheme] = GetParam();
  MemArray a_src = RandomData(seed, 0.3);
  ArraySchema sb("h", {{"x", 1, kSide, 6}, {"y", 1, kSide, 6}},
                 {{"w", DataType::kDouble, true, false}});
  MemArray b_src(sb);
  Rng rng(TestSeed(seed + 99));
  for (int64_t x = 1; x <= kSide; ++x) {
    for (int64_t y = 1; y <= kSide; ++y) {
      if (rng.NextDouble() < 0.3) {
        SCIDB_CHECK(b_src.SetCell({x, y}, Value(rng.NextDouble())).ok());
      }
    }
  }
  DistributedArray da(a_src.schema(), Scheme(scheme));
  ASSERT_TRUE(da.Load(a_src, 0).ok());
  // Deliberately different partitioning for b: forces movement.
  DistributedArray db(sb, Scheme((scheme + 1) % 3));
  ASSERT_TRUE(db.Load(b_src, 0).ok());

  int64_t moved = 0;
  MemArray par =
      da.ParallelSjoin(ctx_, db, {{"x", "x"}, {"y", "y"}}, &moved)
          .ValueOrDie();
  MemArray ser =
      Sjoin(ctx_, a_src, b_src, {{"x", "x"}, {"y", "y"}}).ValueOrDie();
  EXPECT_EQ(par.CellCount(), ser.CellCount());
  ser.ForEachCell([&](const Coordinates& c, const Chunk&, int64_t) {
    EXPECT_TRUE(par.Exists(c)) << CoordsToString(c);
    return true;
  });
}

TEST_P(GridPropertyTest, RepartitionPreservesEveryCell) {
  auto [seed, scheme] = GetParam();
  MemArray src = RandomData(seed, 0.5);
  DistributedArray d(Schema(), Scheme(scheme));
  ASSERT_TRUE(d.Load(src, 0).ok());
  // Bounce through the other two schemes and back.
  for (int next : {(scheme + 1) % 3, (scheme + 2) % 3, scheme}) {
    ASSERT_TRUE(d.Repartition(Scheme(next), 0).ok());
    EXPECT_EQ(d.TotalCells(), src.CellCount());
  }
  // Every original cell is still present on exactly one node with the
  // right value.
  src.ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                      int64_t rank) {
    int found = 0;
    double value = 0;
    for (int node = 0; node < d.num_nodes(); ++node) {
      auto cell = d.shard(node).GetCell(c);
      if (cell.has_value()) {
        ++found;
        value = (*cell)[0].double_value();
      }
    }
    EXPECT_EQ(found, 1) << CoordsToString(c);
    EXPECT_EQ(value, chunk.block(0).GetDouble(rank));
    return true;
  });
}

// Every chunk origin of the kSide x kSide grid with chunk interval 6.
std::vector<Coordinates> AllChunkOrigins() {
  std::vector<Coordinates> v;
  for (int64_t x = 1; x <= 48; x += 6) {
    for (int64_t y = 1; y <= 48; y += 6) v.push_back({x, y});
  }
  return v;
}

TEST_P(GridPropertyTest, ReplicasAreKDistinctNodesPrimaryFirst) {
  auto [seed, scheme] = GetParam();
  (void)seed;
  auto part = Scheme(scheme);
  for (int k = 1; k <= part->num_nodes() + 1; ++k) {
    ReplicaPlacement place(part, k);
    const int want = std::min(k, part->num_nodes());
    ASSERT_EQ(place.replication(), want);
    for (const Coordinates& origin : AllChunkOrigins()) {
      std::vector<int> replicas = place.ReplicasFor(origin, 0);
      ASSERT_EQ(static_cast<int>(replicas.size()), want);
      std::set<int> distinct(replicas.begin(), replicas.end());
      EXPECT_EQ(distinct.size(), replicas.size())
          << "duplicate replica node at " << CoordsToString(origin);
      for (int n : replicas) {
        EXPECT_GE(n, 0);
        EXPECT_LT(n, part->num_nodes());
      }
      // k = 1 placement is exactly the un-replicated grid.
      EXPECT_EQ(replicas[0], part->NodeFor(origin, 0));
      // The preference order is a total order over the nodes.
      std::vector<int> order = place.PreferenceOrder(origin, 0);
      std::vector<int> sorted = order;
      std::sort(sorted.begin(), sorted.end());
      std::vector<int> ident(part->num_nodes());
      for (int i = 0; i < part->num_nodes(); ++i) ident[i] = i;
      EXPECT_EQ(sorted, ident);
    }
  }
}

TEST_P(GridPropertyTest, PlacementStableUnderNodeSetIdentity) {
  // Death permutes nothing: the owner and live replica set under any
  // dead set D are the preference order with D's members deleted —
  // survivors keep their relative ranks. Two placements built over
  // equal schemes agree exactly.
  auto [seed, scheme] = GetParam();
  auto part = Scheme(scheme);
  ReplicaPlacement place(part, 2);
  ReplicaPlacement twin(Scheme(scheme), 2);
  Rng rng(TestSeed(seed));
  for (const Coordinates& origin : AllChunkOrigins()) {
    const std::vector<int> order = place.PreferenceOrder(origin, 0);
    ASSERT_EQ(order, twin.PreferenceOrder(origin, 0));
    EXPECT_EQ(place.OwnerFor(origin, 0, {}), part->NodeFor(origin, 0));
    // A handful of random dead sets per origin, including the empty
    // and the all-dead one.
    for (int trial = 0; trial < 4; ++trial) {
      std::set<int> dead;
      for (int n = 0; n < part->num_nodes(); ++n) {
        if (rng.NextDouble() < 0.4) dead.insert(n);
      }
      std::vector<int> survivors;
      for (int n : order) {
        if (dead.count(n) == 0) survivors.push_back(n);
      }
      const int want_owner = survivors.empty() ? -1 : survivors[0];
      EXPECT_EQ(place.OwnerFor(origin, 0, dead), want_owner);
      if (static_cast<int>(survivors.size()) > place.replication()) {
        survivors.resize(static_cast<size_t>(place.replication()));
      }
      EXPECT_EQ(place.LiveReplicasFor(origin, 0, dead), survivors);
    }
  }
}

TEST_P(GridPropertyTest, ReplicaCountSpreadIsBounded) {
  // Rendezvous scores must not pile the copies onto a few nodes: over
  // all 64 chunk origins at k = 2, every node holds a bounded share.
  auto [seed, scheme] = GetParam();
  (void)seed;
  auto part = Scheme(scheme);
  ReplicaPlacement place(part, 2);
  std::vector<int> count(static_cast<size_t>(part->num_nodes()), 0);
  int total = 0;
  for (const Coordinates& origin : AllChunkOrigins()) {
    for (int n : place.ReplicasFor(origin, 0)) {
      ++count[static_cast<size_t>(n)];
      ++total;
    }
  }
  const double mean = static_cast<double>(total) / part->num_nodes();
  const int max = *std::max_element(count.begin(), count.end());
  const int min = *std::min_element(count.begin(), count.end());
  EXPECT_GE(min, static_cast<int>(mean / 4)) << "starved node";
  EXPECT_LE(max, static_cast<int>(mean * 2.5)) << "overloaded node";
}

TEST_P(GridPropertyTest, RecoveryRestoresReplicationMonotonically) {
  // Kill one node: the next parallel op fails over, declares it dead,
  // and auto-recovers. Afterwards every chunk is back to k live
  // copies, no live shard shrank (re-replication only adds bytes), and
  // a second Recover() is a fixed point.
  auto [seed, scheme] = GetParam();
  MemArray src = RandomData(seed, 0.4);

  net::VirtualTime vt;
  GridNetOptions net;
  net.fault_seed = seed + 1;  // enables the fault wrapper...
  net.fault_profile = net::FaultProfile{};  // ...with no random faults
  net.call.max_attempts = 20;
  net.call.deadline_ns = 10'000'000'000'000ull;  // shared virtual clock
  net.clock = vt.clock();
  net.sleep = vt.sleep();
  net.replication = 2;
  net.dead_after_failures = 1;
  DistributedArray d(Schema(), Scheme(scheme), net);
  ASSERT_TRUE(d.Load(src, 0).ok());

  const int victim = 1;
  std::vector<size_t> bytes_before(static_cast<size_t>(d.num_nodes()));
  for (int n = 0; n < d.num_nodes(); ++n) {
    bytes_before[static_cast<size_t>(n)] = d.shard(n).ByteSize();
  }

  ASSERT_NE(d.fault_injector(), nullptr);
  d.fault_injector()->PartitionNode(victim);
  MemArray par = d.ParallelAggregate(ctx_, {"x"}, "sum", "v").ValueOrDie();
  MemArray ser = Aggregate(ctx_, src, {"x"}, "sum", "v").ValueOrDie();
  EXPECT_EQ(par.CellCount(), ser.CellCount());

  const std::set<int> dead = d.dead_nodes();
  ASSERT_EQ(dead, (std::set<int>{victim}));

  // Monotone: no live shard lost bytes to the recovery.
  for (int n = 0; n < d.num_nodes(); ++n) {
    if (dead.count(n) != 0) continue;
    EXPECT_GE(d.shard(n).ByteSize(), bytes_before[static_cast<size_t>(n)])
        << "node " << n;
  }

  // Full k restored: every chunk lives on exactly its k live replicas.
  for (const Coordinates& origin : AllChunkOrigins()) {
    bool exists = false;
    for (int n = 0; n < d.num_nodes(); ++n) {
      if (d.shard(n).FindChunk(origin) != nullptr && dead.count(n) == 0) {
        exists = true;
      }
    }
    if (!exists) continue;  // density < 1: some chunks hold no cells
    std::vector<int> want = d.placement().LiveReplicasFor(origin, 0, dead);
    ASSERT_EQ(want.size(), 2u);
    for (int n = 0; n < d.num_nodes(); ++n) {
      const bool holds =
          dead.count(n) == 0 && d.shard(n).FindChunk(origin) != nullptr;
      const bool should =
          std::find(want.begin(), want.end(), n) != want.end();
      EXPECT_EQ(holds, should)
          << "node " << n << " at " << CoordsToString(origin);
    }
  }

  // Fixed point: recovery with nothing missing copies nothing and
  // leaves the byte imbalance exactly where it was.
  const double imbalance = d.LoadImbalanceBytes();
  Result<int64_t> again = d.Recover();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(*again, 0);
  EXPECT_EQ(d.LoadImbalanceBytes(), imbalance);
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<uint64_t, int>>& info) {
  static const char* kNames[] = {"fixed", "hash", "range"};
  return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
         kNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSchemes, GridPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(7, 19, 31),
                       ::testing::Values(0, 1, 2)),
    ParamName);

}  // namespace
}  // namespace scidb
