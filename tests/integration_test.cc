// End-to-end integration: pipelines that cross module boundaries the way
// the paper's lighthouse customers would — ingest, cook, version, query,
// persist, distribute, trace.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "cook/cooking.h"
#include "grid/auto_designer.h"
#include "grid/cluster.h"
#include "insitu/formats.h"
#include "provenance/provenance.h"
#include "query/session.h"
#include "storage/storage_manager.h"
#include "version/named_version.h"

namespace scidb {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  std::string dir = (fs::temp_directory_path() /
                     ("scidb_integ_" + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(IntegrationTest, InSituToSessionToDisk) {
  // Foreign NetCDF-like file -> in-situ adaptor -> session query ->
  // result persisted by the storage manager -> reopened and re-queried.
  std::string dir = TempDir("pipeline");

  // 1. A foreign instrument file appears.
  NcFileContents nc;
  nc.dimensions = {{"lat", 16}, {"lon", 16}};
  NcVariable sst;
  sst.name = "sst";
  sst.dim_ids = {0, 1};
  Rng rng(TestSeed(1));
  for (int i = 0; i < 256; ++i) sst.data.push_back(10 + rng.NextDouble());
  nc.variables.push_back(sst);
  std::string nc_path = dir + "/buoy.snc";
  ASSERT_TRUE(WriteNcFile(nc_path, nc).ok());

  // 2. Query it in-situ through a session (no load step).
  auto adaptor = NcVariableAdaptor::Open(nc_path, "sst", "sst").ValueOrDie();
  Session session;
  auto arr = std::make_shared<MemArray>(adaptor->ReadAll().ValueOrDie());
  ASSERT_TRUE(session.RegisterArray(arr).ok());
  auto hot = session.Execute("store Filter(sst, value > 10.5) into Hot")
                 .ValueOrDie();
  (void)hot;

  // 3. Persist the derived array.
  StorageManager sm(dir);
  auto hot_arr = session.GetArray("Hot").ValueOrDie();
  DiskArray* disk = sm.CreateArray(hot_arr->schema()).ValueOrDie();
  ASSERT_TRUE(disk->WriteAll(*hot_arr).ok());
  ASSERT_TRUE(disk->Flush().ok());

  // 4. Reopen from disk; counts agree.
  StorageManager sm2(dir);
  DiskArray* back = sm2.OpenArray("Hot").ValueOrDie();
  MemArray restored = back->ReadAll().ValueOrDie();
  EXPECT_EQ(restored.CellCount(), hot_arr->CellCount());
  fs::remove_all(dir);
}

TEST(IntegrationTest, CookVersionTraceRederive) {
  // The full §2.10-§2.12 loop: cook inside the engine with a logged
  // command, spot a bad pixel, trace it back, re-derive, and commit the
  // replacement as new history (never overwriting).
  FunctionRegistry fns;
  AggregateRegistry aggs;
  ExecContext ctx{&fns, &aggs, true, nullptr};

  ArraySchema raw_schema("raw", {{"x", 1, 8, 4}, {"y", 1, 8, 4}},
                         {{"adu", DataType::kDouble, true, false}});
  auto raw = std::make_shared<MemArray>(raw_schema);
  for (int64_t x = 1; x <= 8; ++x) {
    for (int64_t y = 1; y <= 8; ++y) {
      ASSERT_TRUE(
          raw->SetCell({x, y}, Value(100.0 + x * 8 + y)).ok());
    }
  }

  ProvenanceLog log;
  auto cook = [&]() { return Calibrate(ctx, *raw, "adu", 2.0, -200.0); };
  auto cooked = std::make_shared<MemArray>(cook().ValueOrDie());
  cooked->mutable_schema()->set_name("cooked");
  LoggedCommand cmd;
  cmd.text = "cooked = Calibrate(raw, 2.0, -200)";
  cmd.inputs = {"raw"};
  cmd.output = "cooked";
  cmd.lineage = CellwiseLineage("raw", "cooked");
  cmd.rerun = cook;
  int64_t cook_id = log.Record(std::move(cmd));

  // The cooked array lives in a versioned store.
  VersionTree tree(cooked->schema());
  std::vector<CellUpdate> load;
  cooked->ForEachCell([&](const Coordinates& c, const Chunk& chunk,
                          int64_t rank) {
    std::vector<Value> vals;
    for (size_t a = 0; a < chunk.nattrs(); ++a) {
      vals.push_back(chunk.block(a).Get(rank));
    }
    load.push_back(CellUpdate::Set(c, vals));
    return true;
  });
  ASSERT_TRUE(tree.Commit("", load, 1000).ok());

  // A scientist suspects cooked[3, 3]: trace backwards.
  auto steps = log.TraceBack({"cooked", {3, 3}}).ValueOrDie();
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].command_id, cook_id);
  EXPECT_EQ(steps[0].contributors[0], (CellRef{"raw", {3, 3}}));

  // The raw pixel was indeed bad; fix it upstream and re-derive.
  ASSERT_TRUE(raw->SetCell({3, 3}, Value(999.0)).ok());
  MemArray rederived = log.Rerun(cook_id).ValueOrDie();
  size_t ai = rederived.schema().AttrIndex("adu_cal").ValueOrDie();
  double fixed = (*rederived.GetCell({3, 3}))[ai].double_value();
  EXPECT_EQ(fixed, 999.0 * 2 - 200);

  // Commit the replacement as new history: both values remain visible.
  auto old_cell = tree.GetCell("", {3, 3}).ValueOrDie();
  std::vector<Value> new_vals = *old_cell;
  new_vals[ai] = Value(fixed);
  ASSERT_TRUE(
      tree.Commit("", {CellUpdate::Set({3, 3}, new_vals)}, 2000).ok());
  EXPECT_EQ((*tree.base().GetCellAt({3, 3}, 1).ValueOrDie())[ai]
                .double_value(),
            (*old_cell)[ai].double_value());
  EXPECT_EQ((*tree.base().GetCellAt({3, 3}, 2).ValueOrDie())[ai]
                .double_value(),
            fixed);
}

TEST(IntegrationTest, DesignerDrivenRepartitioning) {
  // Observe a workload, let the designer suggest a better partitioning,
  // repartition, and verify both the improvement and the movement cost.
  ArraySchema s("obs", {{"x", 1, 64, 8}, {"y", 1, 64, 8}},
                {{"v", DataType::kDouble, true, false}});
  MemArray src(s);
  Rng rng(TestSeed(3));
  for (int64_t x = 1; x <= 64; ++x) {
    for (int64_t y = 1; y <= 64; ++y) {
      ASSERT_TRUE(src.SetCell({x, y}, Value(rng.NextDouble())).ok());
    }
  }
  // Initial: everything ranged on x with naive uniform boundaries.
  auto naive = std::make_shared<RangePartitioner>(
      0, std::vector<int64_t>{17, 33, 49});
  DistributedArray d(s, naive);
  ASSERT_TRUE(d.Load(src, 0).ok());

  // Hot workload on rows 1..8.
  AutoDesigner designer(Box({1, 1}, {64, 64}), 0, 4);
  for (int k = 0; k < 90; ++k) designer.Observe({Box({1, 1}, {8, 64})});
  for (int k = 0; k < 10; ++k) designer.Observe({Box({9, 1}, {64, 64})});
  auto designed = designer.Design().ValueOrDie();

  double before = designer.PredictedImbalance(*naive);
  double after = designer.PredictedImbalance(*designed);
  EXPECT_LT(after, before / 1.5);

  int64_t moved = d.Repartition(designed, 0).ValueOrDie();
  EXPECT_GT(moved, 0);
  EXPECT_EQ(d.TotalCells(), 64 * 64);  // nothing lost in the move
}

TEST(IntegrationTest, SessionPipelineWithWindowAndStore) {
  Session session;
  ASSERT_TRUE(session.Execute("define T (v = double) (t)").ok());
  ASSERT_TRUE(session.Execute("create Series as T [32]").ok());
  Rng rng(TestSeed(4));
  for (int64_t t = 1; t <= 32; ++t) {
    ASSERT_TRUE(session
                    .Execute("insert Series [" + std::to_string(t) +
                             "] values (" +
                             std::to_string(10 + (t % 5)) + ".0)")
                    .ok());
  }
  // Smooth, subsample the smoothed series, store, aggregate the stored.
  ASSERT_TRUE(session
                  .Execute("store Subsample(Window(Series, [2], avg(v)), "
                           "t >= 8 and t <= 24) into Smooth")
                  .ok());
  auto stats = session
                   .Execute("select Aggregate(Smooth, {}, stddev(avg))")
                   .ValueOrDie();
  // Smoothing a periodic signal shrinks the spread well below the raw
  // signal's (raw stddev ~1.4; 5-wide window of period-5 signal ~0).
  EXPECT_LT((*stats.array->GetCell({1}))[0].double_value(), 0.5);
}

TEST(IntegrationTest, UncertainPipelineEndToEnd) {
  // Uncertain data flows from schema declaration through arithmetic,
  // aggregation and serialization without losing its error bars.
  Session session;
  ASSERT_TRUE(
      session.Execute("define U (m = uncertain double) (i)").ok());
  ASSERT_TRUE(session.Execute("create Meas as U [16]").ok());
  auto arr = session.GetArray("Meas").ValueOrDie();
  for (int64_t i = 1; i <= 16; ++i) {
    ASSERT_TRUE(
        arr->SetCell({i}, Value(Uncertain(static_cast<double>(i), 0.5)))
            .ok());
  }
  auto mean = session.Execute("select Aggregate(Meas, {}, uavg(m))")
                  .ValueOrDie();
  Uncertain m = (*mean.array->GetCell({1}))[0].uncertain_value();
  EXPECT_DOUBLE_EQ(m.mean, 8.5);
  EXPECT_NEAR(m.stderr_, 0.5 / 4, 1e-12);  // sigma/sqrt(16)

  // Round trip through disk preserves error bars and the constant-stderr
  // encoding.
  std::string dir = TempDir("uncertain");
  StorageManager sm(dir);
  DiskArray* disk = sm.CreateArray(arr->schema()).ValueOrDie();
  ASSERT_TRUE(disk->WriteAll(*arr).ok());
  MemArray back = disk->ReadAll().ValueOrDie();
  EXPECT_EQ((*back.GetCell({7}))[0].uncertain_value().stderr_, 0.5);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace scidb
