// Concurrent multi-session query server (DESIGN.md §15): protocol
// round-trips, per-client session isolation, snapshot reads pinned to
// the shared catalog's epoch, typed Busy admission rejection, cancel
// within one morsel, per-session parallelism clamped by the server cap,
// and FIFO fairness for cheap queries behind a heavy one.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>  // NOLINT(no-raw-thread): concurrent-client harness
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "net/inprocess_transport.h"
#include "query/session.h"
#include "server/query_client.h"
#include "server/query_server.h"
#include "server/shared_catalog.h"

namespace scidb {
namespace {

using server::QueryClient;
using server::QueryServer;

constexpr int kServerNode = 0;

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Bit-exact equality over present cells: same chunk origins, presence,
// null masks, and payload bits (doubles compared as uint64 patterns).
void ExpectArraysIdentical(const MemArray& a, const MemArray& b,
                           const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.CellCount(), b.CellCount());
  ASSERT_EQ(a.chunks().size(), b.chunks().size());
  auto ita = a.chunks().begin();
  auto itb = b.chunks().begin();
  for (; ita != a.chunks().end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first) << "chunk origins differ";
    const Chunk& ca = *ita->second;
    const Chunk& cb = *itb->second;
    ASSERT_EQ(ca.box(), cb.box());
    ASSERT_EQ(ca.present_count(), cb.present_count());
    for (int64_t rank = 0; rank < ca.cell_capacity(); ++rank) {
      ASSERT_EQ(ca.IsPresent(rank), cb.IsPresent(rank)) << "rank " << rank;
      if (!ca.IsPresent(rank)) continue;
      for (size_t at = 0; at < ca.nattrs(); ++at) {
        const Value& va = ca.block(at).Get(rank);
        const Value& vb = cb.block(at).Get(rank);
        ASSERT_EQ(va.is_null(), vb.is_null());
        if (va.is_null()) continue;
        ASSERT_EQ(va.is_double(), vb.is_double());
        if (va.is_double()) {
          ASSERT_EQ(DoubleBits(va.double_value()),
                    DoubleBits(vb.double_value()))
              << "double bits differ at rank " << rank;
        } else {
          ASSERT_EQ(va.ToString(), vb.ToString());
        }
      }
    }
  }
}

ArraySchema SharedSchema(const std::string& name) {
  return ArraySchema(
      name, {{"i", 1, 16, 8}},
      {{"v", DataType::kDouble, /*nullable=*/true, /*uncertain=*/false}},
      /*updatable=*/true);
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(QueryServer::Options opts = {}) {
    server_ = std::make_unique<QueryServer>(&transport_, kServerNode, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<QueryClient> Connect(int node) {
    auto c = std::make_unique<QueryClient>(&transport_, node, kServerNode);
    EXPECT_TRUE(c->Bind().ok());
    return c;
  }

  net::InProcessTransport transport_{net::InProcessTransport::Mode::kInline};
  std::unique_ptr<QueryServer> server_;
};

TEST_F(ServerTest, StatementRoundTrip) {
  StartServer();
  auto client = Connect(1);
  ASSERT_TRUE(
      client->Execute("define Vec (v = double) (x)").value().status.ok());
  ASSERT_TRUE(client->Execute("create A as Vec [8]").value().status.ok());
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(client
                    ->Execute("insert A [" + std::to_string(i) + "] values (" +
                              std::to_string(i * 1.5) + ")")
                    .value()
                    .status.ok());
  }
  auto out = client->Execute("select Filter(A, v > 4.0)").value();
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  ASSERT_NE(out.array, nullptr);

  // Differential check: the identical statements on a local session.
  Session local;
  ASSERT_TRUE(local.Execute("define Vec (v = double) (x)").ok());
  ASSERT_TRUE(local.Execute("create A as Vec [8]").ok());
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(local
                    .Execute("insert A [" + std::to_string(i) + "] values (" +
                             std::to_string(i * 1.5) + ")")
                    .ok());
  }
  auto expect = local.Execute("select Filter(A, v > 4.0)").ValueOrDie();
  ExpectArraysIdentical(*out.array, *expect.array, "filter roundtrip");
}

TEST_F(ServerTest, SessionsAreIsolated) {
  StartServer();
  auto alice = Connect(1);
  auto bob = Connect(2);

  ASSERT_TRUE(
      alice->Execute("define Vec (v = double) (x)").value().status.ok());
  ASSERT_TRUE(alice->Execute("create A as Vec [4]").value().status.ok());
  ASSERT_TRUE(
      alice->Execute("insert A [1] values (42.0)").value().status.ok());

  // Bob cannot see Alice's catalog...
  auto bob_read = bob->Execute("select Filter(A, v > 0)").value();
  EXPECT_TRUE(bob_read.status.IsNotFound()) << bob_read.status.ToString();

  // ...and Bob's own A is a different array entirely.
  ASSERT_TRUE(bob->Execute("define Vec (v = double) (x)").value().status.ok());
  ASSERT_TRUE(bob->Execute("create A as Vec [4]").value().status.ok());
  ASSERT_TRUE(bob->Execute("insert A [1] values (7.0)").value().status.ok());

  auto alice_a = alice->Execute("select Filter(A, v > 0)").value();
  ASSERT_TRUE(alice_a.status.ok());
  ASSERT_EQ(alice_a.array->CellCount(), 1);
  auto bob_a = bob->Execute("select Filter(A, v > 0)").value();
  ASSERT_TRUE(bob_a.status.ok());
  ASSERT_EQ(bob_a.array->CellCount(), 1);
  // 42 vs 7: same name, different contents, no bleed-through.
  EXPECT_NE(alice_a.array->chunks().begin()->second->block(0).Get(0)
                .double_value(),
            bob_a.array->chunks().begin()->second->block(0).Get(0)
                .double_value());
}

TEST_F(ServerTest, SharedCatalogInsertAndSnapshotEpoch) {
  StartServer();
  ASSERT_TRUE(server_->catalog()->Define(SharedSchema("S")).ok());
  auto writer = Connect(1);
  auto reader = Connect(2);

  // Epoch advances per committed insert.
  for (int i = 1; i <= 4; ++i) {
    auto out = writer
                   ->Execute("insert S [" + std::to_string(i) + "] values (" +
                             std::to_string(i * 10.0) + ")")
                   .value();
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_EQ(out.snapshot_epoch, i);
  }

  // A read pins the current epoch and reports it back; the result is
  // bit-identical to a direct snapshot of that epoch.
  auto read = reader->Execute("select Filter(S, v > 0)").value();
  ASSERT_TRUE(read.status.ok()) << read.status.ToString();
  EXPECT_EQ(read.snapshot_epoch, 4);
  ASSERT_NE(read.array, nullptr);
  MemArray direct =
      server_->catalog()->SnapshotAt("S", read.snapshot_epoch).ValueOrDie();
  EXPECT_EQ(read.array->CellCount(), direct.CellCount());
}

// The snapshot-read satellite: a loader commits cells while a scanner
// reads concurrently. Every scan must equal the serial materialization
// of the epoch it reports — no torn reads, no partially visible commit.
TEST_F(ServerTest, ConcurrentLoaderAndScannerAreSnapshotConsistent) {
  StartServer();
  ASSERT_TRUE(server_->catalog()->Define(SharedSchema("S")).ok());

  constexpr int kInserts = 16;
  std::thread loader([&] {  // NOLINT(no-raw-thread): concurrent client
    auto writer = Connect(1);
    for (int i = 1; i <= kInserts; ++i) {
      auto out = writer
                     ->Execute("insert S [" + std::to_string(i) +
                               "] values (" + std::to_string(i * 1.0) + ")")
                     .value();
      ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    }
  });

  auto scanner = Connect(2);
  for (int scan = 0; scan < 8; ++scan) {
    auto out = scanner->Execute("select Filter(S, v > 0)").value();
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    ASSERT_NE(out.array, nullptr);
    // Bit-identical to the serial snapshot of the pinned epoch.
    MemArray expect =
        server_->catalog()->SnapshotAt("S", out.snapshot_epoch).ValueOrDie();
    Session local;
    ASSERT_TRUE(local.RegisterArray(
                         std::make_shared<MemArray>(std::move(expect)))
                    .ok());
    auto serial = local.Execute("select Filter(S, v > 0)").ValueOrDie();
    ExpectArraysIdentical(*out.array, *serial.array,
                          "scan @" + std::to_string(out.snapshot_epoch));
  }
  loader.join();

  // After the loader finishes, a final scan sees all commits.
  auto final_scan = scanner->Execute("select Filter(S, v > 0)").value();
  ASSERT_TRUE(final_scan.status.ok());
  EXPECT_EQ(final_scan.array->CellCount(), kInserts);
  EXPECT_EQ(final_scan.snapshot_epoch, kInserts);
}

TEST_F(ServerTest, AdmissionRejectsWithBusyWhenResultBuffersFull) {
  QueryServer::Options opts;
  opts.max_queued_result_bytes = 1;  // any buffered array result fills it
  StartServer(opts);
  auto client = Connect(1);
  ASSERT_TRUE(
      client->Execute("define Vec (v = double) (x)").value().status.ok());
  ASSERT_TRUE(client->Execute("create A as Vec [4]").value().status.ok());
  ASSERT_TRUE(client->Execute("insert A [1] values (1.0)").value().status.ok());

  Counter* rejects = Metrics::Instance().counter(
      "scidb.server.admission_rejects");
  const int64_t rejects_before = rejects->value();

  // Finish a query but do NOT fetch/release: its buffered result chunks
  // now exceed the queue bound.
  uint64_t held = client->Submit("select Filter(A, v > 0)").ValueOrDie();
  for (;;) {
    auto done = client->Poll(held).ValueOrDie();
    if (done.done != 0) break;
  }

  // New work is rejected with the typed Busy status — not queued.
  auto second = Connect(2);
  auto rejected = second->Submit("select Filter(A, v > 0)");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsBusy()) << rejected.status().ToString();
  EXPECT_GT(rejects->value(), rejects_before);

  // Releasing the held query frees the buffers; work is admitted again.
  ASSERT_TRUE(client->Cancel(held).ok());
  auto retried = second->Execute("select Filter(A, v > 0)");
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(retried.value().status.IsNotFound());  // B has no catalog
}

TEST_F(ServerTest, AdmissionRejectsWhenConcurrencyFull) {
  QueryServer::Options opts;
  opts.max_concurrent_queries = 1;
  opts.pool_width = 2;
  StartServer(opts);

  auto heavy = Connect(1);
  ASSERT_TRUE(
      heavy->Execute("define Grid (v = double) (i, j)").value().status.ok());
  ASSERT_TRUE(heavy->Execute("create G as Grid [96, 96]").value().status.ok());
  for (int i = 1; i <= 96; i += 7) {
    for (int j = 1; j <= 96; j += 7) {
      ASSERT_TRUE(heavy
                      ->Execute("insert G [" + std::to_string(i) + ", " +
                                std::to_string(j) + "] values (1.0)")
                      .value()
                      .status.ok());
    }
  }
  uint64_t slow =
      heavy->Submit("select Window(G, [12, 12], avg(v))").ValueOrDie();

  // While the window query occupies the one slot, a second submit is
  // rejected Busy; if the window happens to finish first the submit
  // succeeds — either way nothing queues server-side.
  auto second = Connect(2);
  auto submitted = second->Submit("select Filter(G, v > 0)");
  if (!submitted.ok()) {
    EXPECT_TRUE(submitted.status().IsBusy()) << submitted.status().ToString();
  } else {
    (void)second->Await(submitted.value());  // status-ignored: drain only
  }
  ASSERT_TRUE(heavy->Await(slow).ok());
}

TEST_F(ServerTest, CancelAbortsLongQueryWithinOneMorsel) {
  QueryServer::Options opts;
  opts.pool_width = 2;
  opts.slice_morsels = 1;
  StartServer(opts);
  auto client = Connect(1);
  ASSERT_TRUE(
      client->Execute("define Grid (v = double) (i, j)").value().status.ok());
  ASSERT_TRUE(
      client->Execute("create G as Grid [256, 256]").value().status.ok());
  for (int i = 1; i <= 256; i += 3) {
    ASSERT_TRUE(client
                    ->Execute("insert G [" + std::to_string(i) + ", " +
                              std::to_string(i) + "] values (2.0)")
                    .value()
                    .status.ok());
  }

  Counter* cancels = Metrics::Instance().counter("scidb.server.cancels");
  const int64_t cancels_before = cancels->value();

  // A 256x256 window-[16,16] aggregate is hundreds of ms of work; the
  // cancel lands long before it completes and must abort it within one
  // morsel (the engine polls the flag before every morsel).
  uint64_t qid =
      client->Submit("select Window(G, [16, 16], avg(v))").ValueOrDie();
  ASSERT_TRUE(client->Cancel(qid).ok());
  EXPECT_EQ(cancels->value(), cancels_before + 1);

  // The released id reports Cancelled; a duplicate cancel is a no-op.
  auto after = client->Poll(qid).ValueOrDie();
  EXPECT_EQ(after.done, 1);
  EXPECT_EQ(after.status_code, static_cast<uint8_t>(StatusCode::kCancelled));
  ASSERT_TRUE(client->Cancel(qid).ok());
  EXPECT_EQ(cancels->value(), cancels_before + 1);
}

TEST_F(ServerTest, SetParallelismIsClampedByServerCap) {
  QueryServer::Options opts;
  opts.per_query_parallelism = 2;
  opts.pool_width = 4;
  StartServer(opts);
  auto client = Connect(1);

  auto out = client->Execute("set parallelism = 8").value();
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_NE(out.message.find("clamped"), std::string::npos) << out.message;

  // At or under the cap there is nothing to clamp.
  auto ok = client->Execute("set parallelism = 2").value();
  ASSERT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.message.find("clamped"), std::string::npos) << ok.message;
}

// The fairness satellite: with FIFO slicing, a cheap query behind a
// heavy one waits at most one slice per queued competitor instead of
// the heavy query's full runtime.
TEST_F(ServerTest, CheapQueriesCompleteWhileHeavyQueryRuns) {
  QueryServer::Options opts;
  opts.max_concurrent_queries = 4;
  opts.pool_width = 2;
  opts.slice_morsels = 1;
  StartServer(opts);

  auto heavy = Connect(1);
  ASSERT_TRUE(
      heavy->Execute("define Grid (v = double) (i, j)").value().status.ok());
  ASSERT_TRUE(
      heavy->Execute("create G as Grid [256, 256]").value().status.ok());
  for (int i = 1; i <= 256; i += 3) {
    ASSERT_TRUE(heavy
                    ->Execute("insert G [" + std::to_string(i) + ", " +
                              std::to_string(i) + "] values (2.0)")
                    .value()
                    .status.ok());
  }
  ASSERT_TRUE(server_->catalog()->Define(SharedSchema("S")).ok());
  auto seeder = Connect(3);
  ASSERT_TRUE(seeder->Execute("insert S [1] values (5.0)").value().status.ok());

  uint64_t slow =
      heavy->Submit("select Window(G, [16, 16], avg(v))").ValueOrDie();

  // Cheap shared-catalog scans from another client finish while the
  // heavy query still runs — they interleave on the sliced pool rather
  // than queueing behind ~hundreds of ms of window work.
  auto cheap = Connect(2);
  for (int i = 0; i < 5; ++i) {
    auto out = cheap->Execute("select Filter(S, v > 0)").value();
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    ASSERT_EQ(out.array->CellCount(), 1);
  }
  // The heavy query is (overwhelmingly likely) still in flight; either
  // way its result arrives intact afterwards.
  auto slow_out = heavy->Await(slow).value();
  ASSERT_TRUE(slow_out.status.ok()) << slow_out.status.ToString();
  ASSERT_NE(slow_out.array, nullptr);

  Counter* slices =
      Metrics::Instance().counter("scidb.server.scheduler_slices");
  EXPECT_GT(slices->value(), 0);
}

TEST_F(ServerTest, ReplayedSubmitOfReleasedIdIsSuppressed) {
  StartServer();
  auto client = Connect(1);
  ASSERT_TRUE(
      client->Execute("define Vec (v = double) (x)").value().status.ok());

  Counter* queries = Metrics::Instance().counter("scidb.server.queries");
  const int64_t before = queries->value();

  uint64_t qid = client->Submit("create A as Vec [4]").ValueOrDie();
  auto out = client->Await(qid).value();
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ(queries->value(), before + 1);

  // A maximally delayed duplicate of the released submit frame must NOT
  // start a second execution (re-running this create would fail with
  // AlreadyExists). The watermark suppresses it; the server just acks
  // (the ack lands at the client's RPC demux as a stale id and is
  // dropped, exactly like a late duplicate response).
  net::QueryRequest replay;
  replay.client_qid = qid;
  replay.statement = "create A as Vec [4]";
  net::Frame frame;
  frame.type = net::MessageType::kQuery;
  frame.request_id = 0xdead;
  frame.payload = replay.EncodePayload();
  ASSERT_TRUE(transport_.Send(/*src=*/1, kServerNode, frame).ok());
  EXPECT_EQ(queries->value(), before + 1);

  // And the released id still answers polls (Cancelled, not a hang).
  auto poll = client->Poll(qid).ValueOrDie();
  EXPECT_EQ(poll.done, 1);
}

TEST_F(ServerTest, ShutdownCancelsInFlightQueries) {
  QueryServer::Options opts;
  opts.pool_width = 2;
  opts.slice_morsels = 1;
  StartServer(opts);
  auto client = Connect(1);
  ASSERT_TRUE(
      client->Execute("define Grid (v = double) (i, j)").value().status.ok());
  ASSERT_TRUE(
      client->Execute("create G as Grid [256, 256]").value().status.ok());
  for (int i = 1; i <= 256; i += 5) {
    ASSERT_TRUE(client
                    ->Execute("insert G [" + std::to_string(i) + ", " +
                              std::to_string(i) + "] values (1.0)")
                    .value()
                    .status.ok());
  }
  uint64_t qid =
      client->Submit("select Window(G, [16, 16], avg(v))").ValueOrDie();
  (void)qid;
  server_->Shutdown();  // joins the driver; must not hang or crash
  auto refused = client->Submit("select Filter(G, v > 0)");
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable())
      << refused.status().ToString();
}

}  // namespace
}  // namespace scidb
