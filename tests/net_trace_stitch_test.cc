// Distributed-trace stitching (DESIGN.md §12): a traced grid operation
// ends with one "node <i>" sub-tree per node under the operator's trace
// child, each holding the rpc.* client spans (attempt/retry/backoff/wire
// notes) with the matching server.* handler spans nested inside. The
// tree *shape* must be identical across transports, and a seeded
// drop-only fault schedule must yield a fully deterministic analyze
// output whose retry notes account for every injected drop.
//
// All fault/deadline behaviour here runs on net::VirtualTime or a clean
// network with generous budgets — no real sleeps (tools/lint.py
// net-test-clock).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/trace.h"
#include "grid/cluster.h"
#include "grid/partitioner.h"
#include "net/rpc.h"

namespace scidb {
namespace {

ArraySchema Sky(int64_t n = 16, int64_t chunk = 4) {
  return ArraySchema("sky", {{"ra", 1, n, chunk}, {"dec", 1, n, chunk}},
                     {{"flux", DataType::kDouble, true, false}});
}

MemArray UniformSky(int64_t n, int64_t chunk, uint64_t seed) {
  MemArray a(Sky(n, chunk));
  Rng rng(TestSeed(seed));
  for (int64_t i = 1; i <= n; ++i) {
    for (int64_t j = 1; j <= n; ++j) {
      SCIDB_CHECK(a.SetCell({i, j}, Value(rng.NextDouble())).ok());
    }
  }
  return a;
}

std::shared_ptr<FixedGridPartitioner> QuadPartitioner(int64_t n = 16) {
  return std::make_shared<FixedGridPartitioner>(
      Box({1, 1}, {n, n}), std::vector<int64_t>{2, 2});
}

// Clean-network call budgets wide enough that a slow CI machine cannot
// manufacture a retry (which would add a server.* child and change the
// tree shape this suite compares).
net::CallOptions GenerousCall() {
  net::CallOptions call;
  call.deadline_ns = 20'000'000'000ull;       // 20 s
  call.attempt_timeout_ns = 5'000'000'000ull; // 5 s
  return call;
}

// Runs a traced grand aggregate and returns the trace.
QueryTrace TracedAggregate(DistributedArray* d) {
  FunctionRegistry fns;
  AggregateRegistry aggs;
  ExecContext ctx{&fns, &aggs, true, nullptr};
  QueryTrace trace;
  d->set_trace_node(&trace.root);
  Result<MemArray> r = d->ParallelAggregate(ctx, {}, "sum", "flux");
  d->set_trace_node(nullptr);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return trace;
}

int64_t SumNote(const TraceNode& node, const std::string& key) {
  int64_t total = 0;
  const double* v = node.FindNote(key);
  if (v != nullptr) total += static_cast<int64_t>(*v);
  for (const auto& child : node.children) total += SumNote(*child, key);
  return total;
}

int CountLabel(const TraceNode& node, const std::string& label) {
  int total = node.label == label ? 1 : 0;
  for (const auto& child : node.children) total += CountLabel(*child, label);
  return total;
}

TEST(NetTraceStitchTest, AggregateTreeShapeIsIdenticalAcrossTransports) {
  MemArray src = UniformSky(16, 4, 23);
  std::vector<std::string> shapes;
  for (auto kind : {GridNetOptions::TransportKind::kInline,
                    GridNetOptions::TransportKind::kThreaded,
                    GridNetOptions::TransportKind::kTcp}) {
    GridNetOptions net;
    net.transport = kind;
    net.call = GenerousCall();
    DistributedArray d(Sky(), QuadPartitioner(), net);
    ASSERT_TRUE(d.Load(src, 0).ok());
    QueryTrace trace = TracedAggregate(&d);
    shapes.push_back(trace.ToString(/*analyze=*/false));
  }
  ASSERT_EQ(shapes.size(), 3u);
  // One sub-tree per node, an rpc.ScanShard under each, a
  // server.ScanShard under that — on every transport.
  for (int node = 0; node < 4; ++node) {
    EXPECT_NE(shapes[0].find("node " + std::to_string(node)),
              std::string::npos)
        << shapes[0];
  }
  EXPECT_NE(shapes[0].find("rpc.ScanShard"), std::string::npos) << shapes[0];
  EXPECT_NE(shapes[0].find("server.ScanShard"), std::string::npos)
      << shapes[0];
  // Bit-identical shape: the loopback-TCP and threaded trees print
  // exactly like the deterministic inline tree.
  EXPECT_EQ(shapes[0], shapes[1]);
  EXPECT_EQ(shapes[0], shapes[2]);
}

TEST(NetTraceStitchTest, AnalyzeOutputCarriesPerRpcTimingNotes) {
  MemArray src = UniformSky(16, 4, 29);
  GridNetOptions net;
  net.call = GenerousCall();
  DistributedArray d(Sky(), QuadPartitioner(), net);
  ASSERT_TRUE(d.Load(src, 0).ok());
  QueryTrace trace = TracedAggregate(&d);
  const std::string analyze = trace.ToString(/*analyze=*/true);
  EXPECT_NE(analyze.find("grid.parallel_aggregate"), std::string::npos)
      << analyze;
  EXPECT_NE(analyze.find("attempts"), std::string::npos) << analyze;
  EXPECT_NE(analyze.find("retries"), std::string::npos) << analyze;
  EXPECT_NE(analyze.find("wire_us"), std::string::npos) << analyze;
  // One ScanShard RPC per node on a clean network, each served exactly
  // once.
  EXPECT_EQ(CountLabel(trace.root, "rpc.ScanShard"), 4);
  EXPECT_EQ(CountLabel(trace.root, "server.ScanShard"), 4);
  EXPECT_EQ(SumNote(trace.root, "retries"), 0);
}

// Drop-only fault options on the inline transport + virtual time: the
// fault schedule is a pure function of (seed, send sequence), Load is a
// sequential coordinator loop, and every sleep is instant — the whole
// traced run is deterministic.
GridNetOptions DropOnlyOptions(net::VirtualTime* vt, uint64_t seed) {
  GridNetOptions net;
  net.fault_seed = seed;
  net.fault_profile = net::FaultProfile{};  // zero rates...
  net.fault_profile.drop_p = 0.25;          // ...except drops
  net.call.max_attempts = 30;
  net.call.deadline_ns = 10'000'000'000'000ull;
  net.clock = vt->clock();
  net.sleep = vt->sleep();
  return net;
}

QueryTrace TracedLoad(DistributedArray* d, const MemArray& src) {
  QueryTrace trace;
  d->set_trace_node(&trace.root);
  Status s = d->Load(src, 0);
  d->set_trace_node(nullptr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return trace;
}

TEST(NetTraceStitchTest, SeededDropScheduleYieldsDeterministicTrace) {
  MemArray src = UniformSky(16, 4, 31);
  constexpr uint64_t kSeed = 77;

  // Reference run, untraced: the injected fault plan for this exact
  // send sequence. A traced run issues the identical Send sequence (the
  // trace context rides the frames but consumes no fault draws), so
  // this drop count is the plan the traced runs below must absorb.
  // Measured on the untraced run because the traced runs' stitch issues
  // its own TraceGet RPCs, which keep consuming the fault schedule and
  // contaminate the counter.
  int64_t planned_drops;
  {
    net::VirtualTime vt;
    DistributedArray d(Sky(), QuadPartitioner(), DropOnlyOptions(&vt, kSeed));
    ASSERT_TRUE(d.Load(src, 0).ok());
    ASSERT_NE(d.fault_injector(), nullptr);
    planned_drops = d.fault_injector()->frames_dropped();
  }
  ASSERT_GT(planned_drops, 0);

  net::VirtualTime vt1;
  DistributedArray d1(Sky(), QuadPartitioner(), DropOnlyOptions(&vt1, kSeed));
  QueryTrace t1 = TracedLoad(&d1, src);

  net::VirtualTime vt2;
  DistributedArray d2(Sky(), QuadPartitioner(), DropOnlyOptions(&vt2, kSeed));
  QueryTrace t2 = TracedLoad(&d2, src);

  // Bit-identical analyze output: same spans, same attempt counts, same
  // virtual timings, run to run.
  EXPECT_EQ(t1.ToString(/*analyze=*/true), t2.ToString(/*analyze=*/true));

  // Every injected drop (request or reply) forced exactly one retry of
  // a ChunkPut, and nothing else causes retries on a drop-only network:
  // the per-RPC attempt notes reconcile exactly with the fault plan.
  EXPECT_EQ(SumNote(t1.root, "retries"), planned_drops);
  const int64_t chunk_puts = CountLabel(t1.root, "rpc.ChunkPut");
  EXPECT_EQ(chunk_puts, 16);  // 4x4 chunk grid, all non-empty
  EXPECT_EQ(SumNote(t1.root, "attempts"), chunk_puts + planned_drops);
}

TEST(NetTraceStitchTest, FaultedAttemptCountsAgreeAcrossTransports) {
  // The same drop plan produces the same per-RPC retry totals whether
  // frames ride the inline, threaded, or TCP transport: the injector
  // sits above the transport, and Load's sequential send sequence is
  // transport-independent. Real transports need the real clock, so the
  // budgets are generous instead of virtual.
  MemArray src = UniformSky(16, 4, 37);
  constexpr uint64_t kSeed = 91;
  std::vector<int64_t> retry_totals;
  std::vector<std::string> shapes;
  for (auto kind : {GridNetOptions::TransportKind::kInline,
                    GridNetOptions::TransportKind::kThreaded,
                    GridNetOptions::TransportKind::kTcp}) {
    GridNetOptions net;
    net.transport = kind;
    net.fault_seed = kSeed;
    net.fault_profile = net::FaultProfile{};
    net.fault_profile.drop_p = 0.2;
    // A dropped frame costs one attempt timeout of real waiting, so the
    // attempt budget is short — still two orders of magnitude above a
    // loopback round trip, so a healthy attempt never times out.
    net.call.deadline_ns = 60'000'000'000ull;
    net.call.attempt_timeout_ns = 250'000'000ull;
    net.call.max_attempts = 60;
    DistributedArray d(Sky(), QuadPartitioner(), net);
    QueryTrace trace = TracedLoad(&d, src);
    retry_totals.push_back(SumNote(trace.root, "retries"));
    shapes.push_back(trace.ToString(/*analyze=*/false));
  }
  ASSERT_EQ(retry_totals.size(), 3u);
  EXPECT_GT(retry_totals[0], 0);
  EXPECT_EQ(retry_totals[0], retry_totals[1]);
  EXPECT_EQ(retry_totals[0], retry_totals[2]);
  EXPECT_EQ(shapes[0], shapes[1]);
  EXPECT_EQ(shapes[0], shapes[2]);
}

}  // namespace
}  // namespace scidb
