#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/metrics.h"
#include "common/trace.h"
#include "query/session.h"
#include "storage/storage_manager.h"

namespace scidb {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  std::string dir = (fs::temp_directory_path() /
                     ("scidb_explain_" + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// A session with a small in-memory array A holding three cells.
void Populate(Session* session) {
  ASSERT_TRUE(session->Execute("define T (v = double) (I, J)").ok());
  ASSERT_TRUE(session->Execute("create A as T [8, 8]").ok());
  ASSERT_TRUE(session->Execute("insert A [1, 1] values (1.5)").ok());
  ASSERT_TRUE(session->Execute("insert A [2, 3] values (2.5)").ok());
  ASSERT_TRUE(session->Execute("insert A [5, 7] values (4.0)").ok());
}

TEST(ExplainTest, PlainExplainPrintsOptimizedPlan) {
  Session session;
  Populate(&session);
  Result<QueryResult> r =
      session.Execute("explain select Aggregate(Filter(A, v > 1), {I}, sum(v))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().kind, QueryResult::Kind::kExplain);
  EXPECT_EQ(r.value().trace, nullptr);  // plain explain executes nothing
  EXPECT_EQ(r.value().message,
            "aggregate [{I} sum(v)]\n"
            "  filter [(v > 1)]\n"
            "    scan A\n");
}

TEST(ExplainTest, AnalyzeTreeShapeMatchesPlainExplain) {
  Session session;
  Populate(&session);
  const std::string query = "Aggregate(Filter(A, v > 1), {I}, sum(v))";

  Result<QueryResult> plain = session.Execute("explain select " + query);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  Result<QueryResult> analyzed =
      session.Execute("explain analyze select " + query);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_NE(analyzed.value().trace, nullptr);

  // Same labels, same nesting: the annotated tree renders to exactly the
  // plain plan when the annotations are stripped.
  EXPECT_EQ(analyzed.value().trace->ToString(false), plain.value().message);
  EXPECT_EQ(session.last_trace(), analyzed.value().trace);
}

TEST(ExplainTest, AnalyzeTimingsWithInjectedClock) {
  Session session;
  Populate(&session);

  // Fake clock: every read advances 1 us, so each span's wall time is
  // exactly 1000 * (clock reads inside it) — deterministic and positive.
  uint64_t now = 0;
  session.set_clock([&now]() {
    now += 1000;
    return now;
  });

  Result<QueryResult> r = session.Execute(
      "explain analyze select Aggregate(Filter(A, v > 1), {}, sum(v))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::shared_ptr<const QueryTrace> trace = r.value().trace;
  ASSERT_NE(trace, nullptr);

  EXPECT_GT(trace->parse_ns, 0u);
  EXPECT_GT(trace->optimize_ns, 0u);
  EXPECT_GT(trace->execute_ns, 0u);
  EXPECT_EQ(trace->parse_ns % 1000, 0u);  // the fake clock ticks in us

  // Wall times are non-negative and monotone: a parent span encloses all
  // of its children, so it can never be shorter than their sum.
  const TraceNode* agg = &trace->root;
  ASSERT_EQ(agg->children.size(), 1u);
  const TraceNode* filter = agg->children[0].get();
  ASSERT_EQ(filter->children.size(), 1u);
  const TraceNode* scan = filter->children[0].get();

  EXPECT_GT(agg->wall_ns, 0u);
  EXPECT_GT(filter->wall_ns, 0u);
  EXPECT_GT(scan->wall_ns, 0u);
  EXPECT_GE(agg->wall_ns, filter->wall_ns + scan->wall_ns);
  EXPECT_GE(filter->wall_ns, scan->wall_ns);
  EXPECT_GE(trace->execute_ns, agg->wall_ns);

  // Cell counts ride along: 3 cells scanned, 3 kept by filter (false
  // cells become NULL, not absent), 1 aggregate output.
  EXPECT_EQ(scan->out_cells, 3);
  EXPECT_EQ(filter->out_cells, 3);
  EXPECT_EQ(agg->out_cells, 1);

  // Restoring the real clock must not break subsequent statements.
  session.set_clock(nullptr);
  EXPECT_TRUE(session.Execute("select Filter(A, v > 1)").ok());
}

TEST(ExplainTest, AnalyzeExistsTracesInputAndVerdict) {
  Session session;
  Populate(&session);
  Result<QueryResult> r =
      session.Execute("explain analyze select Exists(A, 1, 1)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r.value().trace, nullptr);
  const TraceNode& root = r.value().trace->root;
  const double* verdict = root.FindNote("exists");
  ASSERT_NE(verdict, nullptr);
  EXPECT_EQ(*verdict, 1.0);
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0]->label, "scan A");
}

TEST(ExplainTest, ParserRejectsExplainWithoutQuery) {
  Session session;
  EXPECT_FALSE(session.Execute("explain").ok());
  EXPECT_FALSE(session.Execute("explain analyze").ok());
}

// The acceptance scenario: filter + aggregate over a chunked array that
// lives on disk behind the chunk cache. The second run is cache-resident
// and the trace must say so.
TEST(ExplainTest, AnalyzeStoredArrayReportsCacheHitRatio) {
  StorageManager sm(TempDir("cache"));
  ArraySchema schema("S", {{"I", 1, 8, 4}, {"J", 1, 8, 4}},
                     {{"v", DataType::kDouble, true, false}});
  MemArray data(schema);
  for (int64_t i = 1; i <= 8; ++i) {
    for (int64_t j = 1; j <= 8; ++j) {
      ASSERT_TRUE(
          data.SetCell({i, j}, {Value(static_cast<double>(i * j))}).ok());
    }
  }
  Result<DiskArray*> da = sm.CreateArray(schema);
  ASSERT_TRUE(da.ok()) << da.status().ToString();
  ASSERT_TRUE(da.value()->WriteAll(data).ok());
  da.value()->EnableCache(1 << 20);

  Session session;
  session.AttachStorage(&sm);
  const std::string query =
      "explain analyze select Aggregate(Filter(S, v > 10), {}, count(*))";

  // Cold: every bucket is a cache miss read from disk.
  Result<QueryResult> cold = session.Execute(query);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const TraceNode* scan =
      cold.value().trace->root.children[0]->children[0].get();
  EXPECT_EQ(scan->label, "scan S");
  EXPECT_EQ(scan->out_cells, 64);
  ASSERT_NE(scan->FindNote("cache_misses"), nullptr);
  EXPECT_GT(*scan->FindNote("cache_misses"), 0.0);
  ASSERT_NE(scan->FindNote("cache_hit_ratio"), nullptr);
  EXPECT_EQ(*scan->FindNote("cache_hit_ratio"), 0.0);
  ASSERT_NE(scan->FindNote("disk_bytes_read"), nullptr);
  EXPECT_GT(*scan->FindNote("disk_bytes_read"), 0.0);

  // Warm: same buckets, all served from the cache, zero disk bytes.
  Result<QueryResult> warm = session.Execute(query);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  scan = warm.value().trace->root.children[0]->children[0].get();
  ASSERT_NE(scan->FindNote("cache_hit_ratio"), nullptr);
  EXPECT_EQ(*scan->FindNote("cache_hit_ratio"), 1.0);
  EXPECT_EQ(*scan->FindNote("disk_bytes_read"), 0.0);

  // The rendered output carries the acceptance-visible annotations.
  EXPECT_NE(warm.value().message.find("wall "), std::string::npos);
  EXPECT_NE(warm.value().message.find("cells"), std::string::npos);
  EXPECT_NE(warm.value().message.find("cache_hit_ratio 1"),
            std::string::npos);

  // And the registry saw the same traffic, programmatically.
  const MetricsSnapshot snap = session.MetricsSnapshot();
  const MetricsSnapshot::Entry* hits =
      snap.find("scidb.storage.cache.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_GT(hits->value, 0);
  const MetricsSnapshot::Entry* ops = snap.find("scidb.exec.op.aggregate");
  ASSERT_NE(ops, nullptr);
  EXPECT_GT(ops->value, 0);
  const MetricsSnapshot::Entry* lat = snap.find("scidb.query.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->kind, MetricsSnapshot::Kind::kHistogram);
  EXPECT_GT(lat->count, 0);
}

// Storage fallback works for plain (untraced) queries too.
TEST(ExplainTest, StorageBackedArrayUsableWithoutExplain) {
  StorageManager sm(TempDir("plain"));
  ArraySchema schema("D", {{"I", 1, 4, 2}},
                     {{"v", DataType::kDouble, true, false}});
  MemArray data(schema);
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(data.SetCell({i}, {Value(static_cast<double>(i))}).ok());
  }
  Result<DiskArray*> da = sm.CreateArray(schema);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(da.value()->WriteAll(data).ok());

  Session session;
  // Without storage attached the name does not resolve.
  EXPECT_FALSE(session.Execute("select Filter(D, v > 2)").ok());
  session.AttachStorage(&sm);
  Result<QueryResult> r = session.Execute("select Filter(D, v > 2)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().array->CellCount(), 4);  // filter keeps NULLed cells
}

}  // namespace
}  // namespace scidb
