// tools/staticcheck: tokenizer corner cases, a positive and a negative
// per pass, suppression (NOLINT, baseline), SARIF shape, and a
// regression guard that shells out to the built binary against seeded
// bad fixtures — so a future refactor cannot quietly turn the analyzer
// into a yes-machine.
#include "tools/staticcheck/staticcheck.h"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace staticcheck {
namespace {

SourceFile MakeFile(const std::string& path, const std::string& text) {
  SourceFile f;
  f.path = path;
  f.text = text;
  Lex(&f);
  return f;
}

std::vector<Token> TokensOfKind(const SourceFile& f, TokKind k) {
  std::vector<Token> out;
  for (const auto& t : f.tokens) {
    if (t.kind == k) out.push_back(t);
  }
  return out;
}

bool HasIdent(const SourceFile& f, const std::string& name) {
  for (const auto& t : f.tokens) {
    if (t.kind == TokKind::kIdent && t.text == name) return true;
  }
  return false;
}

// ------------------------------------------------------------- tokenizer

TEST(Lexer, RawStringsHideCommentAndStringSyntax) {
  SourceFile f = MakeFile(
      "src/x/a.cc",
      "const char* s = R\"x(no \"quote\" // not a comment)x\";\n"
      "int after = 1;\n");
  // The raw string is one token; its contents never leak into the
  // comment-stripped view the per-line rules run on.
  ASSERT_EQ(TokensOfKind(f, TokKind::kString).size(), 1u);
  EXPECT_TRUE(HasIdent(f, "after"));
  ASSERT_GE(f.code_lines.size(), 2u);
  EXPECT_EQ(f.code_lines[0].find("comment"), std::string::npos);
  EXPECT_EQ(f.code_lines[0].find("quote"), std::string::npos);
}

TEST(Lexer, LineSplicedCommentSwallowsNextLine) {
  SourceFile f = MakeFile("src/x/a.cc",
                          "// spliced comment \\\n"
                          "int not_code = 1;\n"
                          "int real = 2;\n");
  // Line 2 is still comment (the backslash splices it into line 1); the
  // first real token is on line 3.
  EXPECT_FALSE(HasIdent(f, "not_code"));
  ASSERT_TRUE(HasIdent(f, "real"));
  EXPECT_EQ(f.tokens.front().line, 3);
}

TEST(Lexer, BlockCommentsDoNotNest) {
  // Per the language, /* */ does not nest: the first */ closes the
  // comment, so `mid` is code and the trailing */ would be a stray
  // token, not swallowed text.
  SourceFile f =
      MakeFile("src/x/a.cc", "/* outer /* inner */ int mid = 3;\n");
  EXPECT_TRUE(HasIdent(f, "mid"));
  EXPECT_FALSE(HasIdent(f, "inner"));
}

TEST(Lexer, DirectivesAreCapturedNotTokenized) {
  SourceFile f = MakeFile("src/x/a.cc",
                          "#include \"net/rpc.h\"  // trailing\n"
                          "#define WIDTH 4\n"
                          "int x = WIDTH;\n");
  ASSERT_EQ(f.directives.size(), 2u);
  EXPECT_EQ(f.directives[0].kind, "include");
  EXPECT_EQ(f.directives[0].rest, "\"net/rpc.h\"");
  EXPECT_EQ(f.directives[0].line, 1);
  EXPECT_EQ(f.directives[1].kind, "define");
  // Directive bodies are not part of the expression token stream.
  EXPECT_EQ(f.tokens.front().text, "int");
}

// ------------------------------------------------------------- layering

constexpr char kManifest[] =
    "common:\n"
    "net: common\n"
    "exec: common\n";

TEST(LayeringPass, FlagsUndeclaredEdgeAtIncludeLine) {
  Analysis a;
  a.config.layering_manifest = kManifest;
  a.files.push_back(MakeFile("src/net/a.h",
                             "#include \"common/status.h\"\n"
                             "#include \"exec/expression.h\"\n"));
  std::vector<Diagnostic> diags;
  RunLayeringPass(a, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].path, "src/net/a.h");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[0].check, "layering");
  EXPECT_NE(diags[0].message.find("net -> exec"), std::string::npos);
}

TEST(LayeringPass, DeclaredEdgesAndNonModuleIncludesAreClean) {
  Analysis a;
  a.config.layering_manifest = kManifest;
  a.files.push_back(MakeFile("src/net/a.h",
                             "#include <vector>\n"
                             "#include \"common/status.h\"\n"
                             "#include \"net/frame.h\"\n"));
  std::vector<Diagnostic> diags;
  RunLayeringPass(a, &diags);
  EXPECT_TRUE(diags.empty());
}

TEST(LayeringPass, ManifestCycleCannotLegalizeItself) {
  // Declaring both directions must itself be an error, or a back-edge
  // report could be "fixed" by adding the reverse edge to the manifest.
  Analysis a;
  a.config.layering_manifest = "net: exec\nexec: net\n";
  std::vector<Diagnostic> diags;
  RunLayeringPass(a, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("cycle"), std::string::npos);
}

// -------------------------------------------------------- lock-coverage

TEST(LockCoveragePass, FlagsUnguardedMemberOfMutexOwningClass) {
  Analysis a;
  a.files.push_back(MakeFile("src/x/c.h",
                             "class Cache {\n"
                             " private:\n"
                             "  Mutex mu_;\n"
                             "  int hits_ = 0;\n"
                             "  int total_ GUARDED_BY(mu_) = 0;\n"
                             "};\n"));
  std::vector<Diagnostic> diags;
  RunLockCoveragePass(a, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_EQ(diags[0].check, "lock-coverage");
  EXPECT_NE(diags[0].message.find("'hits_'"), std::string::npos);
}

TEST(LockCoveragePass, SafeMembersAndMutexFreeClassesAreClean) {
  Analysis a;
  a.files.push_back(MakeFile(
      "src/x/c.h",
      "class Plain {\n"
      "  int anything_ = 0;\n"  // no mutex: out of scope for this pass
      "};\n"
      "class Guarded {\n"
      "  std::mutex mu_;\n"
      "  const int limit_ = 8;\n"
      "  std::atomic<int> seq_{0};\n"
      "  std::vector<int> rows_ GUARDED_BY(mu_);\n"
      "};\n"));
  std::vector<Diagnostic> diags;
  RunLockCoveragePass(a, &diags);
  EXPECT_TRUE(diags.empty());
}

TEST(LockCoveragePass, BraceInitializedMutexStillMarksOwnership) {
  // Regression: `Mutex mu_{"name"};` must read as a member with a brace
  // initializer, not a function body that hides the rest of the class.
  Analysis a;
  a.files.push_back(MakeFile("src/x/c.h",
                             "class S {\n"
                             "  mutable Mutex mu_{\"S::mu_\"};\n"
                             "  int state_ = 0;\n"
                             "};\n"));
  std::vector<Diagnostic> diags;
  RunLockCoveragePass(a, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'state_'"), std::string::npos);
}

// ------------------------------------------------------- protocol-drift

TEST(ProtocolDriftPass, FlagsSwitchMissingEnumeratorAndDefaultArm) {
  Analysis a;
  a.config.protocol_manifest = "enum Color\n";
  a.files.push_back(
      MakeFile("src/x/e.h", "enum class Color { kRed, kGreen };\n"));
  a.files.push_back(MakeFile("src/x/u.cc",
                             "int F(Color c) {\n"
                             "  switch (c) {\n"
                             "    case Color::kRed: return 1;\n"
                             "  }\n"
                             "  return 0;\n"
                             "}\n"
                             "int G(Color c) {\n"
                             "  switch (c) {\n"
                             "    case Color::kRed: return 1;\n"
                             "    case Color::kGreen: return 2;\n"
                             "    default: return 0;\n"
                             "  }\n"
                             "}\n"));
  std::vector<Diagnostic> diags;
  RunProtocolDriftPass(a, &diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_NE(diags[0].message.find("kGreen"), std::string::npos);
  EXPECT_NE(diags[1].message.find("default"), std::string::npos);
}

TEST(ProtocolDriftPass, CompleteSwitchIsClean) {
  Analysis a;
  a.config.protocol_manifest = "enum Color\n";
  a.files.push_back(
      MakeFile("src/x/e.h", "enum class Color { kRed, kGreen };\n"));
  a.files.push_back(MakeFile("src/x/u.cc",
                             "int F(Color c) {\n"
                             "  switch (c) {\n"
                             "    case Color::kRed: return 1;\n"
                             "    case Color::kGreen: return 2;\n"
                             "  }\n"
                             "  return 0;\n"
                             "}\n"));
  std::vector<Diagnostic> diags;
  RunProtocolDriftPass(a, &diags);
  EXPECT_TRUE(diags.empty());
}

TEST(ProtocolDriftPass, DispatchTableMustRegisterEveryEnumerator) {
  Analysis a;
  a.config.protocol_manifest =
      "enum Color\n"
      "dispatch Color src/x/reg.cc Register except kGreen\n";
  a.files.push_back(
      MakeFile("src/x/e.h", "enum class Color { kRed, kGreen, kBlue };\n"));
  a.files.push_back(MakeFile("src/x/reg.cc",
                             "void Wire() {\n"
                             "  Register(Color::kRed, 1);\n"
                             "}\n"));
  std::vector<Diagnostic> diags;
  RunProtocolDriftPass(a, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "protocol-drift");
  EXPECT_NE(diags[0].message.find("kBlue"), std::string::npos);
}

// ---------------------------------------------------------- status-flow

TEST(StatusFlowPass, FlagsUntaggedDiscardAcrossFiles) {
  Analysis a;
  // The fallible callee is declared in a different file than the
  // discard: the pass must union names across the whole tree.
  a.files.push_back(MakeFile("src/x/api.h", "Status Flush(int fd);\n"));
  a.files.push_back(MakeFile(
      "src/x/use.cc",
      "void A(int fd) { (void)Flush(fd); }\n"
      "void B(int fd) { (void)Flush(fd); }  // status-ignored: "
      "best-effort\n"
      "void C() { (void)printf(\"x\"); }\n"));  // not fallible: ignored
  std::vector<Diagnostic> diags;
  RunStatusFlowPass(a, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_EQ(diags[0].check, "status-flow");
  EXPECT_NE(diags[0].message.find("'Flush'"), std::string::npos);
}

// ------------------------------------------- textual rules + suppression

TEST(TextualPass, MigratedRulesFireOnLibraryCode) {
  Analysis a;
  a.files.push_back(MakeFile("src/x/t.cc",
                             "void F() { throw 1; }\n"
                             "int* G() { return new int(3); }\n"));
  std::vector<Diagnostic> diags;
  RunTextualPass(a, &diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].check, "no-throw");
  EXPECT_EQ(diags[1].check, "no-naked-new");
}

TEST(Suppression, ScopedNolintSilencesOnlyTheNamedCheck) {
  Analysis a;
  a.files.push_back(
      MakeFile("src/x/t.cc",
               "void F() { throw 1; }  // NOLINT(no-throw)\n"
               "void G() { throw 2; }  // NOLINT(no-naked-new)\n"
               "void H() { throw 3; }  // NOLINT\n"));
  size_t n = RunAnalysis(&a);
  // Line 1: scoped match, suppressed. Line 2: scope names a different
  // check, NOT suppressed. Line 3: bare NOLINT suppresses everything.
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(a.diagnostics[0].line, 2);
}

TEST(Suppression, BaselineFiltersExactMatchAndReportsStaleEntries) {
  Analysis a;
  a.files.push_back(MakeFile("src/x/t.cc", "void F() { throw 1; }\n"));
  std::vector<Diagnostic> raw;
  RunTextualPass(a, &raw);
  ASSERT_EQ(raw.size(), 1u);
  a.config.baseline = "no-throw|src/x/t.cc|" + raw[0].message +
                      "\n"
                      "no-throw|src/gone.cc|stale entry\n";
  size_t n = RunAnalysis(&a);
  EXPECT_EQ(n, 0u);
  // The entry that matched nothing must be surfaced, or baselines only
  // ever grow.
  ASSERT_EQ(a.notes.size(), 1u);
  EXPECT_NE(a.notes[0].find("src/gone.cc"), std::string::npos);
}

TEST(Sarif, EmitsRuleAndResultForEachDiagnostic) {
  Analysis a;
  a.files.push_back(MakeFile("src/x/t.cc", "void F() { throw 1; }\n"));
  size_t n = RunAnalysis(&a);
  ASSERT_EQ(n, 1u);
  std::string sarif = ToSarif(a);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"no-throw\""), std::string::npos);
  EXPECT_NE(sarif.find("src/x/t.cc"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

// ------------------------------------------------- regression guard (f)

#ifdef SCIDB_STATICCHECK_BIN

struct RunResult {
  int exit_code;
  std::string output;
};

RunResult RunBinary(const std::string& args) {
  std::string cmd = std::string(SCIDB_STATICCHECK_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  char buf[512];
  while (pipe != nullptr && fgets(buf, sizeof(buf), pipe) != nullptr) {
    out += buf;
  }
  int status = pipe != nullptr ? pclose(pipe) : -1;
  int code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return {code, out};
}

void WriteFixture(const std::filesystem::path& p, const std::string& text) {
  std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  ASSERT_TRUE(out.good()) << p;
  out << text;
}

// Seeds a layering back-edge (net -> exec) and an unguarded member into
// throwaway fixtures and asserts the binary exits non-zero naming the
// exact file:line of each. If this test starts passing with exit 0, the
// analyzer has stopped analyzing.
TEST(RegressionGuard, SeededViolationsFailWithExactLocations) {
  namespace fs = std::filesystem;
  fs::path tmp = fs::path(::testing::TempDir()) / "staticcheck_fixture";
  fs::remove_all(tmp);

  WriteFixture(tmp / "src/net/bad.h",
               "#ifndef SCIDB_NET_BAD_H_\n"
               "#define SCIDB_NET_BAD_H_\n"
               "\n"
               "#include \"exec/expression.h\"\n"
               "\n"
               "#endif  // SCIDB_NET_BAD_H_\n");
  WriteFixture(tmp / "src/common/bad_lock.h",
               "#ifndef SCIDB_COMMON_BAD_LOCK_H_\n"
               "#define SCIDB_COMMON_BAD_LOCK_H_\n"
               "\n"
               "class Cache {\n"
               " public:\n"
               "  int Get();\n"
               "\n"
               " private:\n"
               "  Mutex mu_;\n"
               "  int hits_ = 0;\n"
               "};\n"
               "\n"
               "#endif  // SCIDB_COMMON_BAD_LOCK_H_\n");
  WriteFixture(tmp / "layering.manifest",
               "common:\n"
               "net: common\n"
               "exec: common\n");

  RunResult r = RunBinary(
      "--root " + tmp.string() + " --manifest " +
      (tmp / "layering.manifest").string() + " " +
      (tmp / "src/net/bad.h").string() + " " +
      (tmp / "src/common/bad_lock.h").string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("src/net/bad.h:4"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("src/common/bad_lock.h:10"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[lock-coverage]"), std::string::npos)
      << r.output;

  fs::remove_all(tmp);
}

// The real tree must be clean under the checked-in manifests — the same
// invocation the `staticcheck` ctest entry and CI run.
TEST(RegressionGuard, CheckedInTreeIsClean) {
  std::string root = SCIDB_SOURCE_ROOT;
  std::string sc = root + "/tools/staticcheck";
  RunResult r = RunBinary("--root " + root + " --manifest " + sc +
                          "/layering.manifest --protocol " + sc +
                          "/protocol.manifest --baseline " + sc +
                          "/baseline");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

#endif  // SCIDB_STATICCHECK_BIN

}  // namespace
}  // namespace staticcheck
